"""Run a BERT-Large encoder layer on the simulated RSN-XNN overlay.

Reproduces the paper's primary experiment (Table 9) at a configurable batch
size: the encoder is executed once in the layer-serial overlay style and once
with all RSN optimisations, and the per-segment latencies are printed.

    python examples/bert_encoder.py [batch] [seq_len]
"""

from __future__ import annotations

import sys

from repro.analysis.reporting import Table
from repro.xnn import CodegenOptions, XNNConfig, XNNExecutor


def main(batch: int = 6, seq_len: int = 512) -> None:
    variants = {
        "layer-serial overlay (no optimize)": CodegenOptions.baseline(),
        "RSN-XNN (all optimizations)": CodegenOptions.all_optimizations(),
    }
    table = Table(f"BERT-Large 1st encoder, batch={batch}, seq_len={seq_len} (simulated)",
                  ["variant", "QKV (ms)", "attention+dense (ms)", "FFN (ms)",
                   "total (ms)", "achieved TFLOPS", "tasks/s"])
    results = {}
    for name, options in variants.items():
        executor = XNNExecutor(config=XNNConfig(carry_data=False), options=options)
        result = executor.run_encoder(batch=batch, seq_len=seq_len)
        results[name] = result
        segments = {s.name: s.latency_ms for s in result.segments}
        table.add_row(name, segments["qkv"], segments["attention+dense"], segments["ffn"],
                      result.latency_ms, result.achieved_tflops,
                      result.throughput_tasks_per_s)
    baseline, optimized = results.values()
    table.add_note(f"speedup from the RSN optimisations: "
                   f"{baseline.latency_s / optimized.latency_s:.2f}x "
                   "(paper: 2.47x at batch 6, sequence length 512)")
    table.print()


if __name__ == "__main__":
    batch = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    seq_len = int(sys.argv[2]) if len(sys.argv) > 2 else 512
    main(batch, seq_len)
