"""Describe a transformer encoder with RSNlib and run it on the overlay.

The Fig. 13 flow: build the model from high-level operators, choose a
schedule, let RSNlib validate the combination against the backend's supported
patterns, and execute.

    python examples/rsnlib_model.py
"""

from __future__ import annotations

from repro.rsnlib import EncoderModel, Schedule, ScheduleError, compile_encoder


def main() -> None:
    model = EncoderModel.standard("bert-large-block", hidden=1024, num_heads=16,
                                  intermediate=4096)
    print(f"model {model.name!r}: {model.parameter_count() / 1e6:.1f} M parameters")

    schedule = Schedule(batch=2, sequence_length=128,
                        pipeline_attention=True, interleave_load_store=True)
    compiled = compile_encoder(model, schedule)
    result = compiled.run()
    print(f"simulated latency: {result.latency_ms:.2f} ms "
          f"({result.achieved_tflops:.2f} TFLOPS achieved)")

    # The template matcher rejects schedules the backend has no pattern for.
    try:
        compile_encoder(model, Schedule(batch=1, sequence_length=100))
    except ScheduleError as error:
        print(f"rejected unsupported schedule as expected: {error}")


if __name__ == "__main__":
    main()
