"""Dynamic layer pipelining and bandwidth orchestration on a GEMM chain.

Demonstrates the two RSN-specific capabilities the paper highlights
(Section 4.3 / 4.4) on a small two-layer workload:

* functional correctness of the overlay against NumPy, and
* the latency effect of fine-grained DDR load/store interleaving.

    python examples/gemm_pipelining.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import Table
from repro.workloads import mlp_model
from repro.xnn import CodegenOptions, XNNConfig, XNNExecutor
from repro.xnn.mapping import MappingType, compare_mapping_types
from repro.workloads import bert_large_encoder


def functional_check() -> None:
    """Run one GEMM with real data through the overlay and check it."""
    rng = np.random.default_rng(7)
    m, k, n = 512, 384, 640
    lhs = rng.standard_normal((m, k)).astype(np.float32)
    rhs = rng.standard_normal((k, n)).astype(np.float32)
    executor = XNNExecutor(config=XNNConfig(carry_data=True),
                           options=CodegenOptions())
    result, out = executor.run_gemm(m, k, n, lhs_data=lhs, rhs_data=rhs)
    error = float(np.abs(out - lhs @ rhs).max())
    print(f"functional GEMM {m}x{k}x{n}: latency {result.latency_ms:.3f} ms, "
          f"max |error| vs NumPy = {error:.2e}")
    assert error < 1e-3


def bandwidth_orchestration() -> None:
    """Compare DDR load/store orderings on a small MLP (timing only)."""
    model = mlp_model(batch=1536, hidden=2048, depth=3)
    table = Table("Effect of instruction-controlled DDR load/store interleaving",
                  ["ordering", "latency (ms)", "achieved TFLOPS"])
    for name, options in (
            ("strict load-compute-store", CodegenOptions.baseline()),
            ("interleaved (RSN instructions)", CodegenOptions(pipeline_attention=False))):
        executor = XNNExecutor(config=XNNConfig(carry_data=False), options=options)
        result = executor.run_feedforward_model(model)
        table.add_row(name, result.latency_ms, result.achieved_tflops)
    table.print()


def mapping_type_analysis() -> None:
    """First-order comparison of the Fig. 3 mapping types for BERT attention."""
    encoder = bert_large_encoder(batch=6, seq_len=512)
    estimates = compare_mapping_types(encoder.layer("attention_mm1"),
                                      encoder.layer("attention_mm2"))
    table = Table("Mapping-type estimates for the attention pair (Table 3 style)",
                  ["mapping", "final latency (ms)"])
    for mapping in MappingType:
        table.add_row(mapping.value, estimates[mapping].final_latency_ms)
    table.print()


if __name__ == "__main__":
    functional_check()
    bandwidth_orchestration()
    mapping_type_analysis()
