"""Quickstart: build a tiny RSN datapath, trigger a path, and run it.

This is the Fig. 6 flavour of RSN in ~60 lines: three functional units
(a loader, an adder, a store unit) connected by latency-insensitive streams,
programmed by assigning each FU a short uOP sequence.  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (Datapath, Delay, FunctionalUnit, Path, PathProgram,
                        Read, TileMessage, UOp, Write)


class LoadFU(FunctionalUnit):
    """Reads a slice of the input array and streams it out."""

    def __init__(self, name, source):
        super().__init__(name, fu_type="LOAD")
        self.source = source
        self.add_output("out")

    def kernel(self, uop):
        addr, count = uop["addr"], uop["count"]
        yield Delay(count * 1e-9)                       # 1 GB/s load port
        yield Write(self.port("out"), TileMessage.from_array(self.source[addr:addr + count]))


class AddFU(FunctionalUnit):
    """Adds a constant to every element of an incoming tile."""

    def __init__(self, name):
        super().__init__(name, fu_type="ADD", compute_throughput=1e9)
        self.add_input("in")
        self.add_output("out")

    def kernel(self, uop):
        tile = yield Read(self.port("in"))
        yield self.charge_compute(tile.element_count)
        yield Write(self.port("out"), tile.map(lambda x: x + uop["addend"]))


class StoreFU(FunctionalUnit):
    """Writes an incoming tile into the output array."""

    def __init__(self, name, sink):
        super().__init__(name, fu_type="STORE")
        self.sink = sink
        self.add_input("in")

    def kernel(self, uop):
        tile = yield Read(self.port("in"))
        addr = uop["addr"]
        self.sink[addr:addr + tile.element_count] = tile.data


def main() -> None:
    source = np.arange(200, dtype=np.float32)
    sink = np.zeros(200, dtype=np.float32)

    datapath = Datapath("quickstart")
    load, add, store = LoadFU("load", source), AddFU("add"), StoreFU("store", sink)
    datapath.add_fus([load, add, store])
    datapath.connect(load, "out", add, "in")
    datapath.connect(add, "out", store, "in")

    # Programming a computation = triggering a path: each FU gets the uOPs
    # that make it participate.  Here: two 100-element chunks, +1 then +10.
    path = Path("two-chunks")
    path.assign("load", [UOp("LOAD", {"addr": 0, "count": 100}),
                         UOp("LOAD", {"addr": 100, "count": 100})])
    path.assign("add", [UOp("ADD", {"addend": 1.0}), UOp("ADD", {"addend": 10.0})])
    path.assign("store", [UOp("STORE", {"addr": 0}), UOp("STORE", {"addr": 100})])
    PathProgram("quickstart").add(path).load_into(datapath)

    stats = datapath.build_simulator().run()

    expected = source.copy()
    expected[:100] += 1.0
    expected[100:] += 10.0
    assert np.allclose(sink, expected)
    print(f"simulated {stats.events} events in {stats.end_time * 1e6:.2f} simulated us")
    print(f"first/last outputs: {sink[0]} ... {sink[-1]} (correct)")


if __name__ == "__main__":
    main()
