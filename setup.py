"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that legacy editable installs (``pip install -e . --no-use-pep517``) work
on machines without the ``wheel`` package, e.g. offline evaluation
environments.
"""

from setuptools import setup

setup()
