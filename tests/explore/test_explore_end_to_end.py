"""End-to-end exploration: proxy search, engine certification, caching.

These run the real ``dse_encoder`` kind on the 16-point ``encoder-smoke``
space -- small enough that even the cycle-level verification phase is cheap
-- and pin the subsystem's headline contracts:

* the verified frontier is non-empty and every verified point satisfies the
  analytic lower-bound + byte-identical-traffic contract;
* a second identical exploration is served entirely from cache and produces
  a byte-identical report;
* explorations are deterministic under a fixed seed.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import dse_frontier_table, dse_verification_table
from repro.explore import (get_space, get_strategy, run_exploration,
                           SuccessiveHalving)
from repro.runner import ResultCache


def _strip_volatile(report_dict):
    for key in ("proxy_wall_s", "verify_wall_s", "proxy_cache_hits"):
        report_dict.pop(key)
    return report_dict


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "dse-cache")


class TestExploration:
    @pytest.mark.parametrize("strategy_name", ["grid", "random", "halving"])
    def test_verified_frontier_satisfies_contract(self, strategy_name, cache):
        report = run_exploration(get_space("encoder-smoke"),
                                 get_strategy(strategy_name), budget=16,
                                 verify_top=3, seed=7, cache=cache)
        assert report.frontier, "frontier must be non-empty"
        assert report.verified, "verification must cover frontier points"
        assert len(report.verified) <= 3
        for point in report.verified:
            assert point.lower_bound_ok, \
                f"{point.point_id}: analytic {point.proxy_latency_s} above " \
                f"engine {point.engine_latency_s}"
            assert point.traffic_match
            assert 0.0 < point.latency_ratio <= 1.0 + 1e-9
        assert report.contract_ok

    def test_cache_reproducible_second_run(self, cache):
        space, strategy = get_space("encoder-smoke"), get_strategy("halving")
        first = run_exploration(space, strategy, budget=16, verify_top=3,
                                seed=7, cache=cache)
        second = run_exploration(space, strategy, budget=16, verify_top=3,
                                 seed=7, cache=cache)
        assert second.proxy_cache_hits == second.evaluations
        assert _strip_volatile(first.to_dict()) == \
            _strip_volatile(second.to_dict())

    def test_deterministic_under_seed_without_cache(self):
        space, strategy = get_space("encoder-smoke"), get_strategy("random")
        runs = [run_exploration(space, strategy, budget=8, verify_top=0,
                                seed=11, cache=None) for _ in range(2)]
        assert _strip_volatile(runs[0].to_dict()) == \
            _strip_volatile(runs[1].to_dict())

    def test_verify_top_zero_skips_engine_phase(self, cache):
        report = run_exploration(get_space("encoder-smoke"),
                                 get_strategy("grid"), budget=4,
                                 verify_top=0, cache=cache)
        assert report.verified == []
        assert report.verify_wall_s == 0.0
        assert report.rank_agreement is None

    def test_rank_agreement_within_bounds_when_present(self, cache):
        report = run_exploration(get_space("encoder-smoke"),
                                 get_strategy("grid"), budget=16,
                                 verify_top=4, seed=0, cache=cache)
        if report.rank_agreement is not None:
            assert -1.0 <= report.rank_agreement <= 1.0

    def test_halving_spends_less_full_fidelity_than_grid(self, cache):
        space = get_space("encoder-smoke")
        halving = run_exploration(space, SuccessiveHalving(min_final=2),
                                  budget=16, verify_top=0, seed=1,
                                  cache=cache)
        grid = run_exploration(space, get_strategy("grid"), budget=16,
                               verify_top=0, cache=cache)
        assert halving.candidates < grid.candidates
        assert halving.evaluations <= 16

    def test_bad_budget_and_verify_top_rejected(self):
        space, strategy = get_space("encoder-smoke"), get_strategy("grid")
        with pytest.raises(ValueError, match="budget"):
            run_exploration(space, strategy, budget=0)
        with pytest.raises(ValueError, match="verify_top"):
            run_exploration(space, strategy, budget=1, verify_top=-1)


class TestExecutorThreading:
    """The exploration's evaluate closures fan out through whichever
    executor the caller provides -- and the executor must be invisible in
    the report (the acceptance pin for the distributed work queue)."""

    def test_workqueue_exploration_matches_serial(self, tmp_path):
        from repro.runner import SerialExecutor, WorkQueueExecutor
        space, seed = get_space("encoder-smoke"), 7
        serial = run_exploration(space, get_strategy("halving"), budget=16,
                                 verify_top=2, seed=seed,
                                 executor=SerialExecutor(), cache=None)
        with WorkQueueExecutor(tmp_path / "spool", local_workers=1,
                               poll_s=0.02, timeout_s=600.0) as executor:
            distributed = run_exploration(space, get_strategy("halving"),
                                          budget=16, verify_top=2, seed=seed,
                                          executor=executor, cache=None)
        assert _strip_volatile(serial.to_dict()) == \
            _strip_volatile(distributed.to_dict())

    def test_pool_executor_matches_serial(self):
        from repro.runner import ProcessPoolExecutor
        space = get_space("encoder-smoke")
        serial = run_exploration(space, get_strategy("grid"), budget=8,
                                 verify_top=1, cache=None)
        pooled = run_exploration(space, get_strategy("grid"), budget=8,
                                 verify_top=1, cache=None,
                                 executor=ProcessPoolExecutor(2))
        assert _strip_volatile(serial.to_dict()) == \
            _strip_volatile(pooled.to_dict())


class TestReportRendering:
    def test_tables_render_frontier_and_verification(self, cache):
        report = run_exploration(get_space("encoder-smoke"),
                                 get_strategy("halving"), budget=16,
                                 verify_top=3, seed=7, cache=cache)
        frontier = dse_frontier_table(report).render()
        assert "Pareto frontier" in frontier
        assert report.frontier[0].point_id in frontier
        verification = dse_verification_table(report).render()
        assert "bound ok" in verification
        assert "rank agreement" in verification or len(report.verified) < 2

    def test_report_dict_is_json_able(self, cache):
        import json
        report = run_exploration(get_space("encoder-smoke"),
                                 get_strategy("halving"), budget=8,
                                 verify_top=2, seed=3, cache=cache)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["space"] == "encoder-smoke"
        assert payload["contract_ok"] is True
        assert payload["frontier"]


class TestSeedRecording:
    """Regression: ``seed=None`` used to hand ``random.Random(None)`` its
    OS-entropy seeding and record nothing, so an unseeded exploration could
    never be replayed.  Now the seed is drawn explicitly and reported."""

    def test_unseeded_run_records_a_replayable_seed(self):
        space, strategy = get_space("encoder-smoke"), get_strategy("random")
        report = run_exploration(space, strategy, budget=8, verify_top=0,
                                 seed=None, cache=None)
        assert isinstance(report.seed, int)
        assert report.to_dict()["seed"] == report.seed
        replay = run_exploration(space, strategy, budget=8, verify_top=0,
                                 seed=report.seed, cache=None)
        assert _strip_volatile(report.to_dict()) == \
            _strip_volatile(replay.to_dict())

    def test_two_unseeded_runs_draw_distinct_seeds(self):
        space, strategy = get_space("encoder-smoke"), get_strategy("random")
        seeds = {run_exploration(space, strategy, budget=4, verify_top=0,
                                 seed=None, cache=None).seed
                 for _ in range(4)}
        assert len(seeds) > 1, "entropy-drawn seeds should not collide 4/4"
