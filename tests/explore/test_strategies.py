"""Strategy behaviour: coverage, budgets, and seed determinism."""

from __future__ import annotations

import random

import pytest

from repro.explore import (Axis, DesignSpace, GridSearch, RandomSearch,
                           SuccessiveHalving, get_strategy, strategy_names)


def _space() -> DesignSpace:
    return DesignSpace(
        name="toy",
        kind="dse_encoder",
        base_params={"model": "bert_large", "batch": 1},
        axes=(
            Axis("seq_len", (64, 128)),
            Axis("pipeline_attention", (False, True)),
            Axis("tile_m", (256, 512, 768)),
            Axis("bandwidth_scale", (1.0, 2.0)),
        ),
    )


def _fake_evaluate(calls=None):
    """A cheap deterministic payload: latency falls with tile_m, traffic
    rises with seq_len -- enough structure for rank-based selection."""

    def evaluate(assignments, fidelity):
        if calls is not None:
            calls.append((len(assignments), fidelity))
        payloads = []
        for a in assignments:
            payloads.append({
                "latency_s": 1.0 / a["tile_m"] + 0.001 * a["seq_len"],
                "offchip_bytes": a["seq_len"] * 1000,
                "utilization": 0.5 if a["pipeline_attention"] else 0.4,
            })
        return payloads

    return evaluate


class TestGridSearch:
    def test_full_budget_covers_every_point(self):
        space = _space()
        candidates = GridSearch().search(space, 100, _fake_evaluate(),
                                         random.Random(0))
        assert len(candidates) == len(space.points())

    def test_small_budget_strides_across_the_space(self):
        space = _space()
        candidates = GridSearch().search(space, 6, _fake_evaluate(),
                                         random.Random(0))
        assert len(candidates) == 6
        # Striding must reach past the first corner of the enumeration.
        seq_lens = {c.assignment["seq_len"] for c in candidates}
        assert seq_lens == {64, 128}

    def test_deterministic_without_rng(self):
        space = _space()
        a = GridSearch().search(space, 6, _fake_evaluate(), random.Random(0))
        b = GridSearch().search(space, 6, _fake_evaluate(), random.Random(99))
        assert [c.point_id for c in a] == [c.point_id for c in b]


class TestRandomSearch:
    def test_budget_respected_and_unique(self):
        candidates = RandomSearch().search(_space(), 5, _fake_evaluate(),
                                           random.Random(3))
        assert len(candidates) == 5
        assert len({c.point_id for c in candidates}) == 5

    def test_same_seed_same_sample(self):
        a = RandomSearch().search(_space(), 5, _fake_evaluate(),
                                  random.Random(3))
        b = RandomSearch().search(_space(), 5, _fake_evaluate(),
                                  random.Random(3))
        assert [c.point_id for c in a] == [c.point_id for c in b]

    def test_different_seed_different_sample(self):
        a = RandomSearch().search(_space(), 5, _fake_evaluate(),
                                  random.Random(3))
        b = RandomSearch().search(_space(), 5, _fake_evaluate(),
                                  random.Random(4))
        assert [c.point_id for c in a] != [c.point_id for c in b]


class TestSuccessiveHalvingPlan:
    def test_plan_total_within_budget(self):
        strategy = SuccessiveHalving(min_final=4)
        for feasible, budget in ((1512, 200), (16, 16), (100, 50), (3, 10)):
            sizes = strategy.plan(feasible, budget)
            assert sum(sizes) <= budget
            assert sizes[0] <= feasible
            assert sizes[-1] <= strategy.min_final or len(sizes) == 1

    def test_plan_decays_geometrically(self):
        sizes = SuccessiveHalving(min_final=4).plan(1000, 200)
        for bigger, smaller in zip(sizes, sizes[1:]):
            assert smaller == max(4, bigger // 2)

    def test_tiny_budget_still_yields_one_evaluation(self):
        assert SuccessiveHalving().plan(1000, 1) == [1]

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="eta"):
            SuccessiveHalving(eta=1)
        with pytest.raises(ValueError, match="min_final"):
            SuccessiveHalving(min_final=0)
        with pytest.raises(ValueError, match="min_fidelity"):
            SuccessiveHalving(min_fidelity=0.0)
        with pytest.raises(ValueError, match="budget"):
            SuccessiveHalving().plan(10, 0)


class TestSuccessiveHalvingSearch:
    def test_budget_respected(self):
        calls = []
        SuccessiveHalving(min_final=2).search(_space(), 12,
                                              _fake_evaluate(calls),
                                              random.Random(1))
        assert sum(n for n, _ in calls) <= 12

    def test_final_rung_runs_at_full_fidelity(self):
        calls = []
        candidates = SuccessiveHalving(min_final=2).search(
            _space(), 12, _fake_evaluate(calls), random.Random(1))
        assert calls[-1][1] == 1.0
        assert calls[-1][0] == len(candidates)

    def test_earlier_rungs_run_reduced_fidelity(self):
        calls = []
        SuccessiveHalving(min_final=2).search(_space(), 20,
                                              _fake_evaluate(calls),
                                              random.Random(1))
        assert len(calls) >= 2
        assert all(fidelity < 1.0 for _, fidelity in calls[:-1])
        assert all(fidelity >= 0.25 for _, fidelity in calls)

    def test_deterministic_under_fixed_seed(self):
        space = _space()
        runs = [
            SuccessiveHalving(min_final=2).search(space, 14, _fake_evaluate(),
                                                  random.Random(42))
            for _ in range(2)
        ]
        assert [c.point_id for c in runs[0]] == [c.point_id for c in runs[1]]
        assert [c.payload for c in runs[0]] == [c.payload for c in runs[1]]

    def test_survivors_prefer_low_pareto_rank(self):
        # tile_m=768 strictly improves latency at equal traffic/util, so the
        # full-fidelity survivors should be drawn from large tile_m designs.
        candidates = SuccessiveHalving(min_final=2).search(
            _space(), 20, _fake_evaluate(), random.Random(0))
        assert all(c.assignment["tile_m"] >= 512 for c in candidates)

    def test_missing_objective_key_raises(self):
        def bad_evaluate(assignments, fidelity):
            return [{"latency_s": 1.0} for _ in assignments]

        with pytest.raises(KeyError, match="offchip_bytes"):
            SuccessiveHalving(min_final=2).search(_space(), 12, bad_evaluate,
                                                  random.Random(1))


class TestStrategyRegistry:
    def test_names(self):
        assert strategy_names() == ["grid", "halving", "random"]

    def test_get_strategy(self):
        assert isinstance(get_strategy("halving"), SuccessiveHalving)

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError, match="halving"):
            get_strategy("simulated-annealing")


class TestWeightedHalving:
    def test_unknown_weight_key_rejected(self):
        with pytest.raises(ValueError, match="unknown objective weight"):
            SuccessiveHalving(weights={"latencyy": 1.0})

    def test_weighted_selection_overrides_rank(self):
        """With a pure-utilization weight, halving must keep the pipelined
        points (utilization 0.5) over the lowest-latency ones that a
        latency-flavoured rank sort would favour."""
        space = _space()
        weighted = SuccessiveHalving(min_final=2,
                                     weights={"utilization": 1.0})
        candidates = weighted.search(space, 24, _fake_evaluate(),
                                     random.Random(0))
        assert candidates
        assert all(c.assignment["pipeline_attention"] for c in candidates)

    def test_weighted_halving_deterministic_under_seed(self):
        space = _space()
        weights = {"latency_s": 2.0, "offchip_bytes": 1.0}
        first = SuccessiveHalving(weights=weights).search(
            space, 16, _fake_evaluate(), random.Random(11))
        second = SuccessiveHalving(weights=weights).search(
            space, 16, _fake_evaluate(), random.Random(11))
        assert [c.point_id for c in first] == [c.point_id for c in second]
