"""Hand-computed Pareto-frontier and rank-agreement correctness tests."""

from __future__ import annotations

import pytest

from repro.analysis.pareto import (dominates, kendall_tau, pareto_frontier,
                                   pareto_ranks)


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((1.0, 1.0), (2.0, 2.0), ("min", "min"))
        assert not dominates((2.0, 2.0), (1.0, 1.0), ("min", "min"))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0), ("min", "min"))

    def test_tradeoff_points_do_not_dominate(self):
        assert not dominates((1.0, 2.0), (2.0, 1.0), ("min", "min"))
        assert not dominates((2.0, 1.0), (1.0, 2.0), ("min", "min"))

    def test_weak_dominance_with_one_strict_improvement(self):
        assert dominates((1.0, 1.0), (1.0, 2.0), ("min", "min"))

    def test_maximize_sense_flips_direction(self):
        assert dominates((2.0,), (1.0,), ("max",))
        assert not dominates((1.0,), (2.0,), ("max",))

    def test_mixed_senses(self):
        # lower latency AND higher utilisation dominates.
        assert dominates((1.0, 0.9), (2.0, 0.5), ("min", "max"))
        # lower latency but lower utilisation is a trade-off.
        assert not dominates((1.0, 0.5), (2.0, 0.9), ("min", "max"))

    def test_unknown_sense_rejected(self):
        with pytest.raises(ValueError, match="unknown sense"):
            dominates((1.0,), (2.0,), ("down",))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="objectives"):
            dominates((1.0, 2.0), (1.0, 2.0), ("min",))


class TestParetoFrontier2D:
    # Hand-computed set (both minimised):
    #   A=(1,9) B=(3,7) C=(5,5) D=(7,3) E=(9,1)   -- a staircase, all on it
    #   F=(6,6) dominated by C; G=(9,9) dominated by everything.
    POINTS = [(1, 9), (3, 7), (5, 5), (7, 3), (9, 1), (6, 6), (9, 9)]

    def test_staircase_frontier(self):
        frontier = pareto_frontier(self.POINTS, ("min", "min"))
        assert frontier == [0, 1, 2, 3, 4]

    def test_ranks_peel_in_order(self):
        ranks = pareto_ranks(self.POINTS, ("min", "min"))
        assert ranks[:5] == [0, 0, 0, 0, 0]
        assert ranks[5] == 1  # F: frontier of the remainder
        assert ranks[6] == 2  # G: dominated even by F

    def test_single_point_is_the_frontier(self):
        assert pareto_frontier([(4.0, 4.0)], ("min", "min")) == [0]

    def test_duplicates_all_kept(self):
        frontier = pareto_frontier([(1, 1), (1, 1), (2, 2)], ("min", "min"))
        assert frontier == [0, 1]

    def test_empty_set(self):
        assert pareto_frontier([], ("min", "min")) == []


class TestParetoFrontier3D:
    # Hand-computed 3D set with senses (min latency, min traffic, max util):
    #   A=(1, 100, 0.2)  best latency           -> frontier
    #   B=(2, 50, 0.5)   balanced               -> frontier
    #   C=(3, 40, 0.9)   best traffic+util      -> frontier
    #   D=(2, 60, 0.5)   dominated by B (traffic worse, rest equal)
    #   E=(4, 50, 0.4)   dominated by B (latency+util worse, traffic equal)
    POINTS = [
        (1, 100, 0.2),
        (2, 50, 0.5),
        (3, 40, 0.9),
        (2, 60, 0.5),
        (4, 50, 0.4),
    ]
    SENSES = ("min", "min", "max")

    def test_frontier(self):
        assert pareto_frontier(self.POINTS, self.SENSES) == [0, 1, 2]

    def test_ranks(self):
        assert pareto_ranks(self.POINTS, self.SENSES) == [0, 0, 0, 1, 1]


class TestKendallTau:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3, 4], [40, 30, 20, 10]) == -1.0

    def test_hand_computed_mixed_case(self):
        # Pairs (1,1),(2,3),(3,2): concordant {12,13}, discordant {23}
        # tau = (2 - 1) / 3.
        assert kendall_tau([1, 2, 3], [1, 3, 2]) == pytest.approx(1.0 / 3.0)

    def test_ties_use_tau_b_correction(self):
        # x ties the pair (1,2): pairs=3, ties_x=1 -> denominator sqrt(2*3).
        # y orders: (1,2) discordant? dx=0 -> tie; (1,3): c; (2,3): c.
        assert kendall_tau([1, 1, 2], [1, 2, 3]) == pytest.approx(
            2.0 / (2 * 3) ** 0.5)

    def test_constant_sample_is_undefined(self):
        assert kendall_tau([1, 1, 1], [1, 2, 3]) is None

    def test_short_samples_are_undefined(self):
        assert kendall_tau([], []) is None
        assert kendall_tau([1.0], [2.0]) is None

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            kendall_tau([1, 2], [1])


class TestWeightedScalarization:
    """Hand-computed weighted-sum rankings (min-max normalised, lower=better)."""

    # Three points, latency (min) and utilization (max):
    #   A = (1.0, 0.2)   B = (2.0, 0.8)   C = (3.0, 0.5)
    POINTS = ((1.0, 0.2), (2.0, 0.8), (3.0, 0.5))
    SENSES = ("min", "max")

    def test_hand_computed_scores(self):
        from repro.analysis.pareto import weighted_scalarization
        # latency normalised: A=0, B=0.5, C=1; utilization (max sense,
        # best=0.8): A=1, B=0, C=0.5.  Weights (2, 1):
        #   A = 2*0 + 1*1 = 1.0;  B = 2*0.5 + 0 = 1.0;  C = 2*1 + 0.5 = 2.5
        scores = weighted_scalarization(self.POINTS, self.SENSES, (2.0, 1.0))
        assert scores == [1.0, 1.0, 2.5]

    def test_single_objective_weight_reproduces_that_ordering(self):
        from repro.analysis.pareto import weighted_scalarization
        scores = weighted_scalarization(self.POINTS, self.SENSES, (1.0, 0.0))
        assert scores == [0.0, 0.5, 1.0]  # pure latency order A < B < C
        scores = weighted_scalarization(self.POINTS, self.SENSES, (0.0, 3.0))
        assert scores == [3.0, 0.0, 1.5]  # pure utilization order B < C < A

    def test_constant_objective_contributes_nothing(self):
        from repro.analysis.pareto import weighted_scalarization
        points = ((1.0, 7.0), (2.0, 7.0))
        scores = weighted_scalarization(points, ("min", "min"), (1.0, 5.0))
        assert scores == [0.0, 1.0]

    def test_empty_cohort(self):
        from repro.analysis.pareto import weighted_scalarization
        assert weighted_scalarization((), ("min",), (1.0,)) == []

    def test_validation(self):
        from repro.analysis.pareto import weighted_scalarization
        with pytest.raises(ValueError, match="weight"):
            weighted_scalarization(self.POINTS, self.SENSES, (1.0,))
        with pytest.raises(ValueError, match="non-negative"):
            weighted_scalarization(self.POINTS, self.SENSES, (1.0, -2.0))
        with pytest.raises(ValueError, match="finite"):
            weighted_scalarization(self.POINTS, self.SENSES,
                                   (float("nan"), 1.0))
        with pytest.raises(ValueError, match="positive"):
            weighted_scalarization(self.POINTS, self.SENSES, (0.0, 0.0))
        with pytest.raises(ValueError, match="sense"):
            weighted_scalarization(self.POINTS, ("min", "sideways"), (1.0, 1.0))
