"""Tests for design-space declaration, enumeration, and materialisation."""

from __future__ import annotations

import pytest

from repro.explore import Axis, Constraint, DesignSpace, get_space, space_names
from repro.explore.space import scale_seq_len


def _toy_space(**kwargs) -> DesignSpace:
    defaults = dict(
        name="toy",
        kind="dse_encoder",
        base_params={"model": "bert_large", "batch": 1},
        axes=(
            Axis("seq_len", (64, 128)),
            Axis("tile_m", (256, 768)),
        ),
    )
    defaults.update(kwargs)
    return DesignSpace(**defaults)


class TestAxis:
    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            Axis("x", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Axis("x", (1, 2, 1))

    def test_non_jsonable_values_rejected(self):
        with pytest.raises(TypeError):
            Axis("x", (object(),))


class TestDesignSpaceDeclaration:
    def test_no_axes_rejected(self):
        with pytest.raises(ValueError, match="no axes"):
            DesignSpace(name="empty", axes=(), kind="dse_encoder")

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate axis names"):
            DesignSpace(name="dup", kind="dse_encoder",
                        axes=(Axis("x", (1,)), Axis("x", (2,))))

    def test_axis_shadowing_base_params_rejected(self):
        with pytest.raises(ValueError, match="shadow"):
            _toy_space(base_params={"seq_len": 64})


class TestEnumeration:
    def test_cardinality_and_points(self):
        space = _toy_space()
        assert space.cardinality == 4
        points = space.points()
        assert len(points) == 4
        # Deterministic axis-major order.
        assert points[0] == {"seq_len": 64, "tile_m": 256}
        assert points[-1] == {"seq_len": 128, "tile_m": 768}
        assert points == space.points()

    def test_constraints_prune_enumeration(self):
        space = _toy_space(constraints=(
            Constraint("big_tiles_only", lambda a: a["tile_m"] >= 768),
        ))
        points = space.points()
        assert len(points) == 2
        assert all(p["tile_m"] == 768 for p in points)


class TestMaterialise:
    def test_scenario_params_merge_base_and_assignment(self):
        space = _toy_space()
        point = space.materialize({"seq_len": 64, "tile_m": 256})
        assert point.scenario.kind == "dse_encoder"
        assert point.scenario.params == {"model": "bert_large", "batch": 1,
                                         "seq_len": 64, "tile_m": 256}
        assert point.scenario.tags == ("dse", "toy")
        assert point.fidelity == 1.0

    def test_point_id_is_stable_and_distinct(self):
        space = _toy_space()
        a = {"seq_len": 64, "tile_m": 256}
        b = {"seq_len": 64, "tile_m": 768}
        assert space.point_id(a) == space.point_id(a)
        assert space.point_id(a) != space.point_id(b)
        assert space.materialize(a).scenario.name == \
            f"dse/toy/{space.point_id(a)}"

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown axis"):
            _toy_space().materialize({"seq_len": 64, "bogus": 1})

    def test_infeasible_assignment_rejected_by_name(self):
        space = _toy_space(constraints=(
            Constraint("big_tiles_only", lambda a: a["tile_m"] >= 768),
        ))
        with pytest.raises(ValueError, match="big_tiles_only"):
            space.materialize({"seq_len": 64, "tile_m": 256})

    def test_fidelity_scales_params_and_renames_scenario(self):
        space = _toy_space()
        point = space.materialize({"seq_len": 128, "tile_m": 256},
                                  fidelity=0.5)
        assert point.scenario.params["seq_len"] == 64
        assert point.scenario.name.endswith("@f0.5")
        # identity is fidelity-independent: same design, cheaper evaluation.
        assert point.point_id == space.point_id({"seq_len": 128,
                                                 "tile_m": 256})

    def test_fidelity_out_of_range_rejected(self):
        space = _toy_space()
        for fidelity in (0.0, -1.0, 1.5):
            with pytest.raises(ValueError, match="fidelity"):
                space.materialize({"seq_len": 64, "tile_m": 256},
                                  fidelity=fidelity)


class TestScaleSeqLen:
    def test_scales_to_multiple_of_16(self):
        assert scale_seq_len({"seq_len": 384}, 0.5)["seq_len"] == 192

    def test_floor_is_32(self):
        assert scale_seq_len({"seq_len": 64}, 0.01)["seq_len"] == 32

    def test_never_exceeds_original(self):
        assert scale_seq_len({"seq_len": 32}, 0.9)["seq_len"] == 32

    def test_no_seq_len_is_a_no_op(self):
        assert scale_seq_len({"m": 1024}, 0.5) == {"m": 1024}


class TestCatalogue:
    def test_space_names(self):
        assert "encoder" in space_names()
        assert "encoder-smoke" in space_names()

    def test_unknown_space_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="encoder-smoke"):
            get_space("nope")

    def test_encoder_space_constraints_prune(self):
        space = get_space("encoder")
        assert len(space.points()) < space.cardinality

    def test_encoder_smoke_space_is_16_points(self):
        space = get_space("encoder-smoke")
        assert len(space.points()) == 16

    def test_catalogue_factories_return_fresh_instances(self):
        assert get_space("encoder") is not get_space("encoder")

    def test_describe_mentions_axes_and_constraints(self):
        text = get_space("encoder").describe()
        assert "axis num_mme" in text
        assert "constraint rhs_tile_fits_memb" in text
