"""Weighted-scalarisation exploration: report ordering and field plumbing."""

from __future__ import annotations

import pytest

from repro.explore import SuccessiveHalving, get_space, run_exploration


def _explore(weights=None, **kwargs):
    kwargs.setdefault("budget", 12)
    kwargs.setdefault("verify_top", 0)
    kwargs.setdefault("seed", 5)
    kwargs.setdefault("proxy", "batched")  # fast; payloads equal sweep's
    strategy = SuccessiveHalving(weights=weights) if weights \
        else SuccessiveHalving()
    return run_exploration(get_space("encoder-smoke"), strategy,
                           weights=weights, **kwargs)


def test_weighted_report_carries_scores_and_weights():
    weights = {"latency_s": 2.0, "offchip_bytes": 1.0, "utilization": 0.5}
    report = _explore(weights=weights)
    assert report.weights == weights
    assert report.frontier
    scores = [point.weighted_score for point in report.frontier]
    assert all(score is not None for score in scores)
    # Frontier is sorted best-score-first.
    assert scores == sorted(scores)
    payload = report.to_dict()
    assert payload["weights"] == weights
    assert all("weighted_score" in point for point in payload["frontier"])


def test_unweighted_report_has_no_scores():
    report = _explore()
    assert report.weights is None
    assert all(point.weighted_score is None for point in report.frontier)
    assert all("weighted_score" not in point
               for point in report.to_dict()["frontier"])


def test_pure_latency_weight_reproduces_latency_ordering():
    weighted = _explore(weights={"latency_s": 1.0})
    unweighted = _explore()
    # A single latency weight scores points by normalised latency, so the
    # frontier order must match the default latency-sorted order.
    assert [p.point_id for p in weighted.frontier] == \
        [p.point_id for p in unweighted.frontier]


def test_unknown_weight_key_raises():
    with pytest.raises(KeyError, match="unknown objective weight"):
        run_exploration(get_space("encoder-smoke"), SuccessiveHalving(),
                        budget=4, verify_top=0, weights={"nope": 1.0})


def test_unknown_proxy_and_missing_batch_runner_raise():
    with pytest.raises(KeyError, match="proxy"):
        run_exploration(get_space("encoder-smoke"), SuccessiveHalving(),
                        budget=4, verify_top=0, proxy="warp")
    # A space whose kind has no batch runner must fail loudly in batched mode.
    from repro.explore import Axis, DesignSpace
    space = DesignSpace(name="chain", kind="engine_chain",
                        axes=(Axis("n_msgs", (10, 20)),))
    with pytest.raises(KeyError, match="batch runner"):
        run_exploration(space, SuccessiveHalving(), budget=2, verify_top=0,
                        proxy="batched")
