"""Weighted-scalarisation exploration: report ordering and field plumbing."""

from __future__ import annotations

import pytest

from repro.analysis.pareto import weighted_scalarization
from repro.explore import (
    COST_OBJECTIVES,
    DEFAULT_OBJECTIVES,
    PIPELINE_THROUGHPUT_OBJECTIVE,
    SuccessiveHalving,
    get_space,
    objectives_for,
    run_exploration,
)


def _explore(weights=None, **kwargs):
    kwargs.setdefault("budget", 12)
    kwargs.setdefault("verify_top", 0)
    kwargs.setdefault("seed", 5)
    kwargs.setdefault("proxy", "batched")  # fast; payloads equal sweep's
    strategy = SuccessiveHalving(weights=weights) if weights \
        else SuccessiveHalving()
    return run_exploration(get_space("encoder-smoke"), strategy,
                           weights=weights, **kwargs)


def test_weighted_report_carries_scores_and_weights():
    weights = {"latency_s": 2.0, "offchip_bytes": 1.0, "utilization": 0.5}
    report = _explore(weights=weights)
    assert report.weights == weights
    assert report.frontier
    scores = [point.weighted_score for point in report.frontier]
    assert all(score is not None for score in scores)
    # Frontier is sorted best-score-first.
    assert scores == sorted(scores)
    payload = report.to_dict()
    assert payload["weights"] == weights
    assert all("weighted_score" in point for point in payload["frontier"])


def test_unweighted_report_has_no_scores():
    report = _explore()
    assert report.weights is None
    assert all(point.weighted_score is None for point in report.frontier)
    assert all("weighted_score" not in point
               for point in report.to_dict()["frontier"])


def test_pure_latency_weight_reproduces_latency_ordering():
    weighted = _explore(weights={"latency_s": 1.0})
    unweighted = _explore()
    # A single latency weight scores points by normalised latency, so the
    # frontier order must match the default latency-sorted order.
    assert [p.point_id for p in weighted.frontier] == \
        [p.point_id for p in unweighted.frontier]


def test_unknown_weight_key_raises():
    with pytest.raises(KeyError, match="unknown objective weight"):
        run_exploration(get_space("encoder-smoke"), SuccessiveHalving(),
                        budget=4, verify_top=0, weights={"nope": 1.0})


def test_scalarization_with_cost_terms_hand_computed():
    """Hand-checked ranking over latency/area/energy/throughput columns."""
    # columns: latency (min), area (min), energy (min), throughput (max)
    points = [
        [1.0, 30.0, 5.0, 10.0],
        [2.0, 20.0, 5.0, 30.0],
        [3.0, 10.0, 5.0, 20.0],
    ]
    senses = ["min", "min", "min", "max"]
    # latency normalises to [0, 0.5, 1]; area to [1, 0.5, 0]; energy is
    # constant (skipped); throughput (max) to [1, 0, 0.5].
    scores = weighted_scalarization(points, senses, [1.0, 2.0, 3.0, 1.0])
    assert scores == pytest.approx([1 * 0.0 + 2 * 1.0 + 1 * 1.0,
                                    1 * 0.5 + 2 * 0.5 + 1 * 0.0,
                                    1 * 1.0 + 2 * 0.0 + 1 * 0.5])
    # Heavy area weighting makes the small-area point 1 the winner even
    # though it has the worst latency.
    heavy_area = weighted_scalarization(points, senses, [1.0, 10.0, 0.0, 0.0])
    assert min(range(3), key=lambda i: heavy_area[i]) == 2
    # Pure latency weighting ranks in latency order.
    pure_latency = weighted_scalarization(points, senses, [1.0, 0.0, 0.0, 0.0])
    assert pure_latency == sorted(pure_latency)


def test_objectives_for_space_kinds():
    extras = (PIPELINE_THROUGHPUT_OBJECTIVE,) + COST_OBJECTIVES
    # Chiplet spaces always carry the throughput and cost axes.
    assert objectives_for(get_space("chiplet-smoke")) == \
        DEFAULT_OBJECTIVES + extras
    # Single-chip spaces keep the classic axes...
    encoder = get_space("encoder-smoke")
    assert objectives_for(encoder) == DEFAULT_OBJECTIVES
    assert objectives_for(encoder, {"latency_s": 1.0}) == DEFAULT_OBJECTIVES
    # ...unless the weights explicitly opt into a cost axis.
    opted = objectives_for(encoder, {"latency_s": 1.0, "area_luts": 2.0})
    assert opted == DEFAULT_OBJECTIVES + COST_OBJECTIVES[:1]


def test_weighted_chiplet_exploration_scores_cost_axes():
    space = get_space("chiplet-smoke")
    objectives = objectives_for(space)
    obj_pairs = tuple((o.key, o.sense) for o in objectives)
    weights = {"latency_s": 1.0, "area_luts": 2.0, "energy_j": 1.0}
    report = run_exploration(
        space,
        SuccessiveHalving(objectives=obj_pairs, weights=weights),
        budget=12, verify_top=0, seed=5, objectives=objectives,
        proxy="batched", weights=weights)
    assert report.frontier
    scores = [point.weighted_score for point in report.frontier]
    assert all(score is not None for score in scores)
    assert scores == sorted(scores)
    # Area dominates the weighting, so no frontier leader uses more chips
    # than the best single-chip design.
    best = report.frontier[0]
    assert best.assignment["num_chips"] == 1
    names = {name for point in report.frontier for name in point.objectives}
    assert {"area", "energy", "pipeline_throughput"} <= names


def test_unknown_proxy_and_missing_batch_runner_raise():
    with pytest.raises(KeyError, match="proxy"):
        run_exploration(get_space("encoder-smoke"), SuccessiveHalving(),
                        budget=4, verify_top=0, proxy="warp")
    # A space whose kind has no batch runner must fail loudly in batched mode.
    from repro.explore import Axis, DesignSpace
    space = DesignSpace(name="chain", kind="engine_chain",
                        axes=(Axis("n_msgs", (10, 20)),))
    with pytest.raises(KeyError, match="batch runner"):
        run_exploration(space, SuccessiveHalving(), budget=2, verify_top=0,
                        proxy="batched")
