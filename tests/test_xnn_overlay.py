"""Tests for the RSN-XNN overlay: datapath, tiling, codegen, executor, analyses."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import FusedOp, MatMulLayer, bert_large_encoder, mlp_model
from repro.workloads.bert import BertConfig
from repro.xnn import (CodegenOptions, ProgramBuilder, XNNConfig, XNNDatapath, XNNExecutor,
                       plan_gemm_tiling, segment_model)
from repro.xnn.bandwidth import LoadStoreOrdering, ddr_busy_estimate
from repro.xnn.mapping import MappingType, compare_mapping_types
from repro.xnn.segmentation import SegmentKind, is_memory_bound

TINY = BertConfig(hidden=64, heads=4, ffn_hidden=128, layers=1)


class TestTiling:
    def test_paper_tiling_reuse_factors(self):
        tiling = plan_gemm_tiling(3072, 1024, 1024)
        assert tiling.k_steps == 8
        assert len(tiling.m_blocks) == 4
        assert tiling.lhs_reuse() == pytest.approx(1024)
        assert tiling.rhs_reuse() == pytest.approx(768)

    def test_small_layers_clip_tiles(self):
        tiling = plan_gemm_tiling(64, 48, 80)
        assert tiling.k_steps == 1
        assert tiling.supertile_count == 1
        assert tiling.active_mmes(0) == 6

    def test_column_split_covers_n_exactly(self):
        tiling = plan_gemm_tiling(256, 128, 100, num_mme=6)
        columns = tiling.mme_columns[0]
        assert sum(c.size for c in columns) == 100
        assert columns[0].start == 0

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            plan_gemm_tiling(0, 1, 1)

    @given(m=st.integers(1, 2048), k=st.integers(1, 2048), n=st.integers(1, 2048))
    @settings(max_examples=50, deadline=None)
    def test_blocks_partition_every_dimension(self, m, k, n):
        tiling = plan_gemm_tiling(m, k, n)
        assert sum(b.size for b in tiling.m_blocks) == m
        assert sum(b.size for b in tiling.k_blocks) == k
        assert sum(b.size for b in tiling.n_super_blocks) == n
        for columns in tiling.mme_columns:
            assert all(c.size > 0 for c in columns)


class TestDatapathConstruction:
    def test_default_counts_match_fig10(self):
        xnn = XNNDatapath(XNNConfig(carry_data=False))
        assert len(xnn.mme_names) == 6
        assert len(xnn.mem_a_names) == 3
        assert len(xnn.mem_b_names) == 3
        assert len(xnn.mem_c_names) == 6
        assert xnn.mem_c_for("MME2") == "MemC2"
        assert len(xnn.datapath.channels) > 30

    def test_fu_properties_report(self):
        xnn = XNNDatapath(XNNConfig(carry_data=False))
        properties = {p["fu"]: p for p in xnn.fu_properties()}
        assert properties["MME0"]["tflops"] > 1.0
        assert properties["MeshA"]["memory_mb"] == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            XNNConfig(num_mme=4, num_mem_c=2)


class TestFunctionalCorrectness:
    def test_gemm_matches_numpy(self):
        rng = np.random.default_rng(0)
        lhs = rng.standard_normal((96, 80)).astype(np.float32)
        rhs = rng.standard_normal((80, 112)).astype(np.float32)
        executor = XNNExecutor(config=XNNConfig(carry_data=True))
        _, out = executor.run_gemm(96, 80, 112, lhs_data=lhs, rhs_data=rhs)
        np.testing.assert_allclose(out, lhs @ rhs, rtol=1e-4, atol=1e-4)

    def test_gemm_with_bias_and_gelu(self):
        rng = np.random.default_rng(1)
        lhs = rng.standard_normal((64, 48)).astype(np.float32)
        rhs = rng.standard_normal((48, 64)).astype(np.float32)
        bias = rng.standard_normal(64).astype(np.float32)
        executor = XNNExecutor(config=XNNConfig(carry_data=True))
        _, out = executor.run_gemm(64, 48, 64, lhs_data=lhs, rhs_data=rhs,
                                   fused_ops=(FusedOp.BIAS, FusedOp.GELU), bias_data=bias)
        from repro.workloads import reference
        np.testing.assert_allclose(out, reference.gelu(lhs @ rhs + bias),
                                   rtol=1e-3, atol=1e-3)

    @pytest.mark.parametrize("options", [
        CodegenOptions.all_optimizations(),
        CodegenOptions.baseline(),
        CodegenOptions(interleave_load_store=True, pipeline_attention=False,
                       overlap_prolog_epilog=False),
        CodegenOptions(interleave_load_store=False, pipeline_attention=True,
                       overlap_prolog_epilog=False),
    ], ids=["all", "none", "interleave", "pipeline"])
    def test_small_encoder_matches_reference(self, options):
        """The simulated encoder output equals the NumPy reference under every
        optimisation combination (i.e. the optimisations never break data
        dependences)."""
        executor = XNNExecutor(config=XNNConfig(carry_data=True), options=options)
        executor.run_encoder(batch=2, seq_len=32, config=TINY)
        error = np.abs(executor.encoder_output() - executor.reference_encoder_output()).max()
        assert error < 1e-4

    def test_feedforward_model_functional(self):
        executor = XNNExecutor(config=XNNConfig(carry_data=True))
        model = mlp_model(batch=64, hidden=96, depth=2)
        result = executor.run_feedforward_model(model)
        assert result.latency_s > 0
        final = executor._final_memory.array("act2")
        assert final.shape == (64, 96)
        assert np.isfinite(final).all()


class TestTimingBehaviour:
    def test_optimizations_reduce_encoder_latency(self):
        base = XNNExecutor(config=XNNConfig(carry_data=False),
                           options=CodegenOptions.baseline()).run_encoder(2, 128, TINY)
        opt = XNNExecutor(config=XNNConfig(carry_data=False),
                          options=CodegenOptions.all_optimizations()).run_encoder(2, 128, TINY)
        assert opt.latency_s < base.latency_s

    def test_attention_pipelining_reduces_ddr_traffic(self):
        base = XNNExecutor(config=XNNConfig(carry_data=False),
                           options=CodegenOptions.baseline()).run_encoder(2, 128, TINY)
        pipe = XNNExecutor(config=XNNConfig(carry_data=False),
                           options=CodegenOptions(interleave_load_store=False,
                                                  overlap_prolog_epilog=False,
                                                  pipeline_attention=True)
                           ).run_encoder(2, 128, TINY)
        assert pipe.ddr_bytes < base.ddr_bytes

    def test_bandwidth_scaling_speeds_up_memory_bound_runs(self):
        slow = XNNExecutor(config=XNNConfig(carry_data=False, bandwidth_scale=0.5)
                           ).run_encoder(2, 128, TINY)
        fast = XNNExecutor(config=XNNConfig(carry_data=False, bandwidth_scale=2.0)
                           ).run_encoder(2, 128, TINY)
        assert fast.latency_s < slow.latency_s

    def test_latency_grows_with_batch(self):
        executor = XNNExecutor(config=XNNConfig(carry_data=False))
        small = executor.run_encoder(1, 128, TINY)
        large = executor.run_encoder(4, 128, TINY)
        assert large.latency_s > small.latency_s
        assert large.throughput_tasks_per_s > small.throughput_tasks_per_s


class TestCodegen:
    #: a layer big enough to have several K steps and output tiles, so the
    #: schedule actually exhibits reuse and interleaving.
    M, K, N = 1536, 512, 1024

    def _builder(self):
        xnn = XNNDatapath(XNNConfig(carry_data=False))
        xnn.memory.add("lhs", (self.M, self.K))
        xnn.memory.add("rhs", (self.K, self.N))
        xnn.memory.allocate("out", (self.M, self.N))
        return xnn, ProgramBuilder(xnn, CodegenOptions())

    def test_send_receive_counts_match(self):
        """The builder honours the RSN contract: producer sends == consumer receives."""
        xnn, builder = self._builder()
        layer = MatMulLayer("gemm", m=self.M, k=self.K, n=self.N)
        builder.add_gemm_layer(layer, lhs="lhs", rhs="rhs", out="out")
        builder.finalize()
        uops = builder.per_fu_uops()
        ddr_loads = sum(1 for u in uops["DDR"] if u.get("load"))
        mem_a_loads = sum(1 for u in uops["MemA0"] if u.get("load"))
        # every DDR load of the LHS lands in MemA0 exactly once
        assert ddr_loads == mem_a_loads
        mme_outputs = sum(1 for name in xnn.mme_names for u in uops[name] if u.get("emit"))
        memc_recvs = sum(1 for name in xnn.mem_c_names for u in uops[name] if u.get("recv"))
        ddr_stores = sum(1 for u in uops["DDR"] if u.get("store"))
        assert mme_outputs == memc_recvs == ddr_stores

    def test_multi_instance_layer_requires_attention_path(self):
        xnn, builder = self._builder()
        layer = MatMulLayer("heads", m=32, k=16, n=32, num=4)
        with pytest.raises(ValueError):
            builder.add_gemm_layer(layer, lhs="lhs", rhs="rhs", out="out")

    def test_rsn_program_compresses_uops(self):
        xnn, builder = self._builder()
        layer = MatMulLayer("gemm", m=self.M, k=self.K, n=self.N)
        builder.add_gemm_layer(layer, lhs="lhs", rhs="rhs", out="out")
        program = builder.build_rsn_program()
        report = program.size_report()
        assert program.packet_count < builder.uop_count()
        # stream-side FUs compress much better than the off-chip FUs
        assert report.compression_ratio("MemB") > report.compression_ratio("DDR")

    def test_interleaved_schedule_defers_stores(self):
        xnn, builder = self._builder()
        layer = MatMulLayer("gemm", m=self.M, k=self.K, n=self.N)
        builder.add_gemm_layer(layer, lhs="lhs", rhs="rhs", out="out")
        builder.finalize()
        ddr = [u for u in builder.per_fu_uops()["DDR"] if u.opcode == "DDR"]
        first_store = next(i for i, u in enumerate(ddr) if u.get("store"))
        # with interleaving the first store retires after later loads were issued
        assert any(u.get("load") for u in ddr[first_store:])


class TestMappingAndSegmentation:
    def test_mapping_comparison_shape(self):
        encoder = bert_large_encoder(batch=6, seq_len=512)
        estimates = compare_mapping_types(encoder.layer("attention_mm1"),
                                          encoder.layer("attention_mm2"))
        final = {m: e.final_latency_s for m, e in estimates.items()}
        assert final[MappingType.PIPELINE] == min(final.values())
        assert final[MappingType.TASK_BY_TASK] > 3 * final[MappingType.PIPELINE]

    def test_segmentation_pipelines_attention_but_not_ffn(self):
        encoder = bert_large_encoder(batch=6, seq_len=512)
        segments = {s.name: s for s in segment_model(encoder)}
        assert any(s.kind is SegmentKind.PIPELINED and "attention_mm1" in s.name
                   for s in segments.values())
        ffn_segments = [s for s in segments.values() if "ffn_mm1" in s.name]
        assert all(s.kind is SegmentKind.SINGLE for s in ffn_segments)

    def test_memory_boundness_classifier(self):
        encoder = bert_large_encoder(batch=6, seq_len=512)
        assert is_memory_bound(encoder.layer("attention_mm1"))
        assert not is_memory_bound(encoder.layer("ffn_mm1"))

    def test_ddr_busy_estimate_orderings(self):
        strict = ddr_busy_estimate(1.0, 0.5, 1.2, LoadStoreOrdering.STRICT, tiles=10)
        hw = ddr_busy_estimate(1.0, 0.5, 1.2, LoadStoreOrdering.HARDWARE_ARBITRATED, tiles=10)
        rsn = ddr_busy_estimate(1.0, 0.5, 1.2, LoadStoreOrdering.INSTRUCTION_INTERLEAVED,
                                tiles=10)
        assert rsn <= hw <= strict
        with pytest.raises(ValueError):
            ddr_busy_estimate(-1, 0, 0, LoadStoreOrdering.STRICT)
