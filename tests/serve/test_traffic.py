"""Traffic generation: M/M/1-style sanity, seeded replay, mix behaviour."""

from __future__ import annotations

import math

import pytest

from repro.serve.traffic import (
    RequestClass,
    Workload,
    class_mixes,
    generate_trace,
    get_workload,
    workload_names,
)


class TestCatalogue:
    def test_names_and_lookup(self):
        assert "encoder-mix" in workload_names()
        workload = get_workload("encoder-mix")
        assert len(workload.classes) == 3

    def test_unknown_workload_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="encoder-mix"):
            get_workload("nope")

    def test_class_may_not_fix_batch(self):
        with pytest.raises(ValueError, match="batch"):
            RequestClass("bad", {"batch": 4})

    def test_workload_rejects_duplicate_class_names(self):
        cls = RequestClass("a", {"seq_len": 64})
        with pytest.raises(ValueError, match="repeats"):
            Workload("w", "d", (cls, cls))


class TestExponentialArrivals:
    """Hand-computed Poisson-process sanity: for rate R over n arrivals the
    mean inter-arrival must approach 1/R and the variance (1/R)^2 -- the
    exponential distribution's signature (CV = 1)."""

    def test_mean_and_cv_match_poisson(self):
        rate, count = 250.0, 50_000
        times, _ = generate_trace(
            get_workload("uniform-128"), "exponential", rate, count, 10, seed=1
        )
        gaps = [b - a for a, b in zip([0.0] + times[:-1], times)]
        mean = sum(gaps) / count
        var = sum((g - mean) ** 2 for g in gaps) / count
        assert mean == pytest.approx(1.0 / rate, rel=0.02)
        assert math.sqrt(var) / mean == pytest.approx(1.0, rel=0.03)

    def test_times_strictly_increase(self):
        times, _ = generate_trace(
            get_workload("encoder-mix"), "exponential", 100.0, 2000, 10, seed=2
        )
        assert all(b > a for a, b in zip(times, times[1:]))


class TestBurstyArrivals:
    def test_seeded_replay_is_byte_identical(self):
        workload = get_workload("encoder-mix")
        first = generate_trace(workload, "bursty", 300.0, 5000, 50, seed=9)
        second = generate_trace(workload, "bursty", 300.0, 5000, 50, seed=9)
        assert first == second

    def test_different_seed_differs(self):
        workload = get_workload("encoder-mix")
        assert generate_trace(workload, "bursty", 300.0, 500, 50, seed=9) != \
            generate_trace(workload, "bursty", 300.0, 500, 50, seed=10)

    def test_mean_rate_is_preserved_but_gaps_clump(self):
        # A switched Poisson process keeps the time-average rate but its
        # inter-arrival CV must exceed the exponential baseline of 1.
        rate, count = 250.0, 50_000
        times, _ = generate_trace(
            get_workload("uniform-128"), "bursty", rate, count, 10, seed=3,
            burstiness=0.8)
        mean = times[-1] / count
        assert mean == pytest.approx(1.0 / rate, rel=0.1)
        gaps = [b - a for a, b in zip([0.0] + times[:-1], times)]
        gap_mean = sum(gaps) / count
        var = sum((g - gap_mean) ** 2 for g in gaps) / count
        assert math.sqrt(var) / gap_mean > 1.05

    def test_burstiness_must_stay_below_one(self):
        with pytest.raises(ValueError, match="burstiness"):
            generate_trace(get_workload("uniform-128"), "bursty", 100.0, 10,
                           1, seed=0, burstiness=1.0)


class TestDiurnalArrivals:
    def test_peak_half_outdraws_trough_half(self):
        # rate(t) = R*(1 + 0.8*sin(2*pi*t/period)): the first half-period is
        # the peak, the second the trough.
        period = 10.0
        times, _ = generate_trace(
            get_workload("uniform-128"), "diurnal", 200.0, 4000, 10, seed=4,
            period_s=period)
        peak = sum(1 for t in times if (t % period) < period / 2)
        trough = len(times) - peak
        assert peak > 1.5 * trough


class TestUserMixes:
    def test_mixes_are_valid_distributions(self):
        for name in workload_names():
            for cumulative in class_mixes(get_workload(name)):
                assert cumulative[-1] == 1.0
                assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))

    def test_user_boost_skews_per_residue_mix(self):
        workload = get_workload("encoder-mix")
        mixes = class_mixes(workload)
        base = [cls.weight for cls in workload.classes]
        total = sum(base)
        for residue, cumulative in enumerate(mixes):
            probabilities = [
                b - a for a, b in zip([0.0] + cumulative[:-1], cumulative)
            ]
            for index, p in enumerate(probabilities):
                expected = base[index] * (2.0 if index == residue else 1.0)
                assert p == pytest.approx(
                    expected / (total + base[residue]), rel=1e-12)

    def test_population_draws_cover_every_class(self):
        _, classes = generate_trace(
            get_workload("encoder-mix"), "exponential", 100.0, 3000, 100,
            seed=5)
        assert set(classes) == {0, 1, 2}


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0}, {"rate": -1.0}, {"count": 0}, {"users": 0},
    ])
    def test_bad_parameters_raise(self, kwargs):
        params = {"rate": 100.0, "count": 10, "users": 1, "seed": 0}
        params.update(kwargs)
        with pytest.raises(ValueError):
            generate_trace(get_workload("uniform-128"), "exponential",
                           params["rate"], params["count"], params["users"],
                           params["seed"])

    def test_unknown_arrival_raises(self):
        with pytest.raises(ValueError, match="arrival"):
            generate_trace(get_workload("uniform-128"), "weibull", 100.0, 10,
                           1, seed=0)
