"""The serving cost table must be byte-exact to the scalar analytic runner."""

from __future__ import annotations

import json

import pytest

from repro.runner import REGISTRY, run_sweep
from repro.runner.scenarios import Scenario
from repro.serve.cost import build_cost_table, engine_params
from repro.serve.traffic import get_workload


@pytest.fixture(scope="module")
def table():
    return build_cost_table(get_workload("encoder-mix"), 4)


class TestCostTable:
    def test_payloads_match_scalar_dse_encoder(self, table):
        """Each (class, size) cell is exactly what a standalone analytic
        ``dse_encoder`` run of that design point at that batch returns."""
        workload = get_workload("encoder-mix")
        runner = REGISTRY.runner("dse_encoder", "analytic")
        for class_index in range(len(workload.classes)):
            for size in (1, 3, 4):
                scalar = runner(**engine_params(workload, class_index, size))
                cell = table.payload(class_index, size)
                assert json.dumps(cell, sort_keys=True) == json.dumps(
                    scalar, sort_keys=True
                )

    def test_latency_grid_indexes_by_size(self, table):
        workload = get_workload("encoder-mix")
        for class_index in range(len(workload.classes)):
            row = table.latency_s[class_index]
            assert len(row) == 5  # padding + sizes 1..4
            assert row[0] == 0.0
            for size in range(1, 5):
                assert row[size] == table.payload(class_index, size)["latency_s"]
                assert row[size] > 0

    def test_batch_cost_grows_sublinearly(self, table):
        """Batching must amortise: a size-4 batch is costlier than size-1
        but cheaper than four size-1 dispatches, else batching policies
        would be pointless."""
        for row in table.latency_s:
            assert row[1] < row[4] < 4 * row[1]

    def test_memoized_per_workload_and_batch_max(self, table):
        assert build_cost_table(get_workload("encoder-mix"), 4) is table
        assert build_cost_table(get_workload("encoder-mix"), 5) is not table

    def test_batch_max_domain(self):
        with pytest.raises(ValueError, match="batch_max"):
            build_cost_table(get_workload("uniform-128"), 0)


class TestEngineParams:
    def test_recertification_scenario_upholds_the_contract(self):
        """The exact engine scenario the re-certification pass would run
        must bound the cost-table cell from above, with byte-identical
        off-chip traffic -- the serve-side restatement of the DSE
        verify-top contract."""
        workload = get_workload("encoder-mix")
        table = build_cost_table(workload, 4)
        params = engine_params(workload, 0, 4)
        assert params["batch"] == 4
        [outcome] = run_sweep(
            [Scenario(name="serve-cert-test/b4", kind="dse_encoder", params=params)],
            backend="engine",
        )
        cell = table.payload(0, 4)
        assert cell["latency_s"] <= outcome.result["latency_s"] * (1 + 1e-9)
        assert cell["ddr_bytes"] == outcome.result["ddr_bytes"]
        assert cell["lpddr_bytes"] == outcome.result["lpddr_bytes"]
