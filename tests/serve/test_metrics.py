"""Honest tail percentiles: hand-computed nearest-rank checks."""

from __future__ import annotations

import pytest

from repro.serve.metrics import downsample_timeline, latency_summary, percentile


class TestPercentile:
    def test_hand_computed_nearest_rank(self):
        # n=10: p50 -> ceil(5)-1 = index 4; p90 -> ceil(9)-1 = index 8.
        values = [float(v) for v in range(1, 11)]
        assert percentile(values, 0.50) == (5.0, True)
        assert percentile(values, 0.90) == (9.0, True)

    def test_p99_exact_at_100_samples(self):
        values = [float(v) for v in range(100)]
        # ceil(0.99 * 100) - 1 = 98: the second-largest sample, observed.
        assert percentile(values, 0.99) == (98.0, True)

    def test_p999_under_1000_samples_widens_to_max(self):
        values = [float(v) for v in range(999)]
        value, exact = percentile(values, 0.999)
        assert value == 998.0 and exact is False

    def test_p999_at_1000_samples_is_exact(self):
        # Nearest rank: ceil(0.999 * 1000) = 999, the 999th smallest.
        values = [float(v) for v in range(1000)]
        assert percentile(values, 0.999) == (998.0, True)

    def test_strict_refuses_to_extrapolate(self):
        with pytest.raises(ValueError, match="refusing to extrapolate"):
            percentile([1.0, 2.0], 0.999, strict=True)

    def test_empty_sample(self):
        assert percentile([], 0.5) == (None, False)
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5, strict=True)

    @pytest.mark.parametrize("q", [0.0, 1.0, -0.1, 1.5])
    def test_quantile_domain(self, q):
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], q)


class TestLatencySummary:
    def test_small_sample_flags_widened_tails(self):
        summary = latency_summary([0.1, 0.2, 0.3])
        assert summary["count"] == 3
        assert summary["mean_s"] == pytest.approx(0.2)
        assert summary["p50_s"] == 0.2 and summary["p50_exact"] is True
        # 3 samples cannot resolve p99 or p999: both widen to the max.
        assert summary["p99_s"] == 0.3 and summary["p99_exact"] is False
        assert summary["p999_s"] == 0.3 and summary["p999_exact"] is False
        assert summary["max_s"] == 0.3

    def test_strict_raises_instead_of_widening(self):
        with pytest.raises(ValueError):
            latency_summary([0.1, 0.2, 0.3], strict=True)

    def test_empty_sample_reports_nones(self):
        summary = latency_summary([])
        assert summary["count"] == 0
        assert summary["mean_s"] is None
        assert summary["p999_s"] is None and summary["p999_exact"] is False

    def test_input_order_does_not_matter(self):
        assert latency_summary([3.0, 1.0, 2.0]) == latency_summary([1.0, 2.0, 3.0])


class TestDownsampleTimeline:
    def test_short_timeline_passes_through(self):
        timeline = [(0.1, 1), (0.2, 3)]
        assert downsample_timeline(timeline) == [[0.1, 1], [0.2, 3]]

    def test_long_timeline_is_bounded_and_keeps_endpoint(self):
        timeline = [(float(i), i) for i in range(10_000)]
        sampled = downsample_timeline(timeline, limit=512)
        assert len(sampled) <= 512
        assert sampled[0] == [0.0, 0]
        assert sampled[-1] == [9999.0, 9999]

    def test_deterministic(self):
        timeline = [(float(i), i % 7) for i in range(5000)]
        assert downsample_timeline(timeline) == downsample_timeline(timeline)

    def test_limit_domain(self):
        with pytest.raises(ValueError, match="limit"):
            downsample_timeline([(0.0, 0)], limit=1)
