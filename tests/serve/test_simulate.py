"""The serving event loop: conservation, policy behaviour, determinism."""

from __future__ import annotations

import json

import pytest

from repro.serve.simulate import run_serve_sim


def conserved(result: dict) -> bool:
    return (
        result["completed"] + result["dropped"] + result["timed_out"]
        == result["requests"]
    )


class TestConservation:
    """Every issued request is exactly one of completed/dropped/timed out."""

    @pytest.mark.parametrize("arrival", ["exponential", "bursty", "diurnal", "closed"])
    @pytest.mark.parametrize("policy", ["static", "dynamic", "continuous"])
    def test_all_arrivals_and_policies(self, arrival, policy):
        result = run_serve_sim(
            workload="encoder-mix",
            arrival=arrival,
            policy=policy,
            rate=400.0,
            requests=1500,
            batch_max=8,
            queue_depth=64,
            timeout_s=0.5,
            clients=32,
            think_s=0.02,
            seed=11,
        )
        assert conserved(result)
        assert result["latency"]["count"] == result["completed"]

    def test_unlimited_queue_completes_everything(self):
        result = run_serve_sim(
            workload="uniform-128",
            arrival="exponential",
            rate=150.0,
            requests=2000,
            queue_depth=10**9,
            seed=3,
        )
        assert result["completed"] == result["requests"] == 2000
        assert result["dropped"] == 0 and result["timed_out"] == 0


class TestQueueBounds:
    def test_depth_never_exceeds_the_limit(self):
        result = run_serve_sim(
            workload="encoder-mix",
            arrival="bursty",
            rate=2000.0,  # far beyond capacity: the queue must saturate
            requests=3000,
            queue_depth=32,
            seed=4,
        )
        assert 0 < result["queue"]["max_depth"] <= 32
        assert result["dropped"] > 0
        assert all(depth <= 32 for _, depth in result["queue"]["timeline"])

    def test_timeouts_purge_stale_requests(self):
        overloaded = run_serve_sim(
            workload="encoder-mix",
            arrival="exponential",
            policy="static",
            rate=1500.0,
            requests=2000,
            queue_depth=512,
            timeout_s=0.05,
            seed=5,
        )
        assert overloaded["timed_out"] > 0
        assert conserved(overloaded)
        # No served latency may exceed timeout + the largest service time:
        # requests past the deadline are purged at dispatch instants.
        slowest = max(
            entry["latency_s"] for entry in overloaded["batch_mix"]
        )
        assert overloaded["latency"]["max_s"] <= 0.05 + slowest + 1e-12


class TestPolicies:
    def test_static_waits_for_full_batches(self):
        result = run_serve_sim(
            workload="uniform-128",
            arrival="exponential",
            policy="static",
            rate=300.0,
            requests=4000,
            batch_max=8,
            queue_depth=10**9,
            seed=6,
        )
        # Single class + no starvation pressure: all but the trailing flush
        # dispatch exactly batch_max, so the mean sits just under 8.
        assert result["batches"]["max_size"] == 8
        assert result["batches"]["mean_size"] > 7.5

    def test_continuous_dispatches_eagerly_at_low_load(self):
        result = run_serve_sim(
            workload="uniform-128",
            arrival="exponential",
            policy="continuous",
            rate=20.0,  # sparse: the server is nearly always free
            requests=1000,
            batch_max=8,
            seed=7,
        )
        assert result["batches"]["mean_size"] < 2.0

    def test_dynamic_window_trades_latency_for_batching(self):
        common = dict(
            workload="uniform-128",
            arrival="exponential",
            policy="dynamic",
            rate=200.0,
            requests=4000,
            batch_max=8,
            seed=8,
        )
        short = run_serve_sim(window_s=0.001, **common)
        long = run_serve_sim(window_s=0.05, **common)
        assert long["batches"]["mean_size"] > short["batches"]["mean_size"]
        assert long["latency"]["p50_s"] > short["latency"]["p50_s"]


class TestClosedLoop:
    def test_issues_exactly_the_budget(self):
        result = run_serve_sim(
            arrival="closed",
            requests=800,
            clients=16,
            think_s=0.05,
            seed=9,
        )
        assert result["requests"] == 800
        assert conserved(result)
        assert result["offered_load_rps"] is None
        assert result["clients"] == 16

    def test_in_flight_is_bounded_by_clients(self):
        result = run_serve_sim(
            arrival="closed",
            requests=1000,
            clients=8,
            think_s=0.001,
            queue_depth=10**9,
            seed=10,
        )
        # Each client has at most one request outstanding.
        assert result["queue"]["max_depth"] <= 8


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        kwargs = dict(
            workload="chat-tiers",
            arrival="bursty",
            rate=500.0,
            requests=3000,
            queue_depth=128,
            timeout_s=0.2,
            seed=12,
        )
        first = run_serve_sim(**kwargs)
        second = run_serve_sim(**kwargs)
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_different_seed_differs(self):
        kwargs = dict(arrival="exponential", rate=300.0, requests=2000)
        assert run_serve_sim(seed=1, **kwargs) != run_serve_sim(seed=2, **kwargs)


class TestReportShape:
    def test_batch_mix_accounts_for_every_completion(self):
        result = run_serve_sim(
            arrival="exponential", rate=250.0, requests=2000, seed=13
        )
        served = sum(
            entry["count"] * entry["batch"] for entry in result["batch_mix"]
        )
        assert served == result["completed"]
        assert result["batches"]["count"] == sum(
            entry["count"] for entry in result["batch_mix"]
        )
        for entry in result["batch_mix"]:
            assert entry["latency_s"] > 0
            assert entry["ddr_bytes"] >= 0 and entry["lpddr_bytes"] >= 0

    def test_goodput_and_utilization_are_consistent(self):
        result = run_serve_sim(
            arrival="exponential", rate=200.0, requests=2000, seed=14
        )
        assert result["goodput_rps"] == pytest.approx(
            result["completed"] / result["horizon_s"]
        )
        assert 0.0 < result["utilization"] <= 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"requests": 0},
            {"queue_depth": 0},
            {"timeout_s": 0.0},
            {"arrival": "closed", "clients": 0},
            {"arrival": "closed", "think_s": 0.0},
            {"policy": "nope"},
            {"workload": "nope"},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        params = dict(arrival="exponential", rate=100.0, requests=10, seed=0)
        params.update(kwargs)
        with pytest.raises((ValueError, KeyError)):
            run_serve_sim(**params)
