"""Golden-value pins for end-to-end simulation results.

These values were captured from the event-driven simulator and lock down the
exact numbers the benchmark tables are built from (integer byte/uop counts
exactly; latencies to a tight relative tolerance so a legitimate platform
libm difference cannot mask a real drift).  An engine or codegen refactor
that changes any of them must either be a deliberate, documented modelling
change or is a regression -- the shape-level assertions in ``benchmarks/``
are far too loose to catch silent drift on their own.
"""

from __future__ import annotations

import pytest

from repro.baselines import CharmModel
from repro.runner import REGISTRY

#: tight enough that any modelling change trips it; loose enough for libm.
REL = 1e-9


class TestGemmGolden:
    """The Table 6 end-to-end GEMM path, 1024^3."""

    def test_gemm_1024_latency_and_traffic(self):
        result = REGISTRY.run("table6b/gemm-1024")
        assert result["latency_s"] == pytest.approx(5.477340231334078e-04, rel=REL)
        assert result["flops"] == 2_147_483_648
        assert result["ddr_bytes"] == 8_388_608
        assert result["lpddr_bytes"] == 8_388_608
        assert result["uops"] == 294


class TestEncoderGolden:
    """One Table 9 configuration: all optimizations, B=6, L=512."""

    def test_encoder_total_latency(self):
        result = REGISTRY.run("table9/all-optimizations")
        assert result["latency_s"] == pytest.approx(2.054221190486559e-02, rel=REL)

    def test_encoder_qkv_segment(self):
        result = REGISTRY.run("table9/all-optimizations")
        qkv = next(s for s in result["segments"] if s["name"] == "qkv")
        assert qkv["latency_s"] == pytest.approx(3.940597342203657e-03, rel=REL)
        assert qkv["ddr_bytes"] == 75_497_472
        assert qkv["lpddr_bytes"] == 50_331_648
        assert qkv["uops"] == 1_654

    def test_encoder_segment_inventory(self):
        result = REGISTRY.run("table9/all-optimizations")
        segments = {s["name"]: s for s in result["segments"]}
        assert set(segments) == {"qkv", "attention+dense", "ffn"}
        assert segments["attention+dense"]["uops"] == 2_062
        assert segments["ffn"]["uops"] == 4_110
        assert segments["ffn"]["latency_s"] == pytest.approx(9.373511761857637e-03,
                                                             rel=REL)


class TestCharmGolden:
    """The CHARM analytical baseline the paper's comparisons hinge on."""

    def test_charm_gemm_1024_throughput(self):
        assert CharmModel().gemm_throughput_gflops(1024) == pytest.approx(
            2375.7142234047192, rel=REL)

    def test_charm_scenario_matches_direct_model(self):
        scenario = REGISTRY.run("table6b/charm-1024")
        assert scenario["gflops"] == pytest.approx(
            CharmModel().gemm_throughput_gflops(1024), rel=0)
