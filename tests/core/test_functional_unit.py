"""Tests for the functional-unit abstraction and its run loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConfigurationError,
    Datapath,
    Delay,
    ExitUOp,
    FunctionalUnit,
    PassthroughFU,
    Read,
    TileMessage,
    UOp,
    Write,
)


class SourceFU(FunctionalUnit):
    """Emits ``count`` tiles built from a value; control plane: (count, value)."""

    def __init__(self, name):
        super().__init__(name, fu_type="SRC")
        self.add_output("out")

    def kernel(self, uop):
        count = uop.get("count", 1)
        value = uop.get("value", 0.0)
        for i in range(count):
            tile = TileMessage.from_array(np.full((2, 2), value + i), tag=f"{self.name}[{i}]")
            yield Write(self.port("out"), tile)


class SinkFU(FunctionalUnit):
    """Collects ``count`` tiles; control plane: (count,)."""

    def __init__(self, name):
        super().__init__(name, fu_type="SINK")
        self.add_input("in")
        self.received = []

    def kernel(self, uop):
        for _ in range(uop.get("count", 1)):
            message = yield Read(self.port("in"))
            self.received.append(message)


class AdderFU(FunctionalUnit):
    """Adds a constant to each incoming tile; control plane: (count, addend)."""

    def __init__(self, name):
        super().__init__(name, fu_type="ADD", compute_throughput=1e9)
        self.add_input("in")
        self.add_output("out")

    def kernel(self, uop):
        addend = uop.get("addend", 1.0)
        for _ in range(uop.get("count", 1)):
            message = yield Read(self.port("in"))
            yield self.charge_compute(message.element_count)
            yield Write(self.port("out"), message.map(lambda x: x + addend))


def build_pipeline():
    dp = Datapath("pipeline")
    src, add, sink = SourceFU("src"), AdderFU("add"), SinkFU("sink")
    dp.add_fus([src, add, sink])
    dp.connect(src, "out", add, "in")
    dp.connect(add, "out", sink, "in")
    return dp, src, add, sink


class TestPorts:
    def test_duplicate_port_name_rejected(self):
        fu = SourceFU("s")
        with pytest.raises(ConfigurationError):
            fu.add_output("out")

    def test_unknown_port_lookup_raises(self):
        fu = SourceFU("s")
        with pytest.raises(ConfigurationError):
            fu.port("missing")

    def test_port_direction_lists(self):
        fu = AdderFU("a")
        assert [p.name for p in fu.input_ports()] == ["in"]
        assert [p.name for p in fu.output_ports()] == ["out"]


class TestRunLoop:
    def test_local_program_executes_and_data_flows(self):
        dp, src, add, sink = build_pipeline()
        src.load_program([UOp("SRC", {"count": 3, "value": 10.0}), ExitUOp()])
        add.load_program([UOp("ADD", {"count": 3, "addend": 5.0}), ExitUOp()])
        sink.load_program([UOp("SINK", {"count": 3}), ExitUOp()])
        dp.build_simulator().run()
        assert len(sink.received) == 3
        np.testing.assert_allclose(sink.received[0].data, 15.0)
        np.testing.assert_allclose(sink.received[2].data, 17.0)

    def test_exit_uop_stops_before_remaining_program(self):
        dp, src, add, sink = build_pipeline()
        src.load_program([UOp("SRC", {"count": 1}), ExitUOp(), UOp("SRC", {"count": 5})])
        add.load_program([UOp("ADD", {"count": 1}), ExitUOp()])
        sink.load_program([UOp("SINK", {"count": 1}), ExitUOp()])
        dp.build_simulator().run()
        assert src.stats.kernels_executed == 1
        assert src.exited

    def test_stats_track_kernels_and_flops(self):
        dp, src, add, sink = build_pipeline()
        src.load_program([UOp("SRC", {"count": 2}), ExitUOp()])
        add.load_program([UOp("ADD", {"count": 2}), ExitUOp()])
        sink.load_program([UOp("SINK", {"count": 2}), ExitUOp()])
        dp.build_simulator().run()
        assert add.stats.kernels_executed == 1
        assert add.stats.flops == pytest.approx(8.0)  # two 2x2 tiles
        assert add.stats.compute_seconds > 0

    def test_compute_time_requires_throughput(self):
        fu = SourceFU("s")  # no compute throughput configured
        with pytest.raises(ConfigurationError):
            fu.compute_time(100)

    def test_compute_time_zero_flops_is_free(self):
        fu = AdderFU("a")
        assert fu.compute_time(0) == 0.0

    def test_kernel_not_implemented_raises(self):
        fu = FunctionalUnit("raw")
        fu.load_program([UOp("RAW"), ExitUOp()])
        dp = Datapath("d")
        dp.add_fu(fu)
        with pytest.raises(NotImplementedError):
            dp.build_simulator().run()

    def test_load_program_append_mode(self):
        fu = SourceFU("s")
        fu.load_program([UOp("SRC", {"count": 1})])
        fu.load_program([UOp("SRC", {"count": 2})], append=True)
        assert fu.program_length == 2

    def test_passthrough_fu_forwards_and_transforms(self):
        dp = Datapath("p")
        src, mid, sink = SourceFU("src"), PassthroughFU("mid", transform=lambda x: x * 3), SinkFU("sink")
        dp.add_fus([src, mid, sink])
        dp.connect(src, "out", mid, "in")
        dp.connect(mid, "out", sink, "in")
        src.load_program([UOp("SRC", {"count": 2, "value": 1.0}), ExitUOp()])
        mid.load_program([UOp("PASS", {"count": 2}), ExitUOp()])
        sink.load_program([UOp("SINK", {"count": 2}), ExitUOp()])
        dp.build_simulator().run()
        np.testing.assert_allclose(sink.received[0].data, 3.0)

    def test_describe_includes_ports(self):
        fu = AdderFU("a")
        info = fu.describe()
        assert info["inputs"] == ["in"]
        assert info["outputs"] == ["out"]
        assert info["type"] == "ADD"


class TestBackPressure:
    def test_slow_consumer_throttles_producer(self):
        """A stalled downstream FU back-pressures upstream FUs through the stream."""
        dp = Datapath("bp")
        src, sink = SourceFU("src"), SinkFU("sink")

        class SlowSink(SinkFU):
            def kernel(self, uop):
                for _ in range(uop.get("count", 1)):
                    message = yield Read(self.port("in"))
                    self.received.append(message)
                    yield Delay(1.0)

        slow = SlowSink("slow")
        dp.add_fus([src, slow])
        dp.connect(src, "out", slow, "in", capacity=1)
        src.load_program([UOp("SRC", {"count": 10}), ExitUOp()])
        slow.load_program([UOp("SINK", {"count": 10}), ExitUOp()])
        stats = dp.build_simulator().run()
        assert len(slow.received) == 10
        assert stats.end_time >= 10.0
        # The producer spent most of the run blocked on the full channel.
        assert stats.blocked_time("src") > 5.0
