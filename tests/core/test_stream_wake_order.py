"""Wake-order regression tests for blocked readers and writers.

The engine wakes blocked processes strictly FIFO -- first blocked, first
woken.  PR 4 switched ``StreamChannel._blocked_readers`` / ``_blocked_writers``
from lists (where every wake-up paid an O(n) ``pop(0)``) to ``collections.deque``;
these tests pin the FIFO contract under multiple simultaneously blocked
processes so a future "optimisation" to LIFO or priority order fails loudly.
"""

from __future__ import annotations

from collections import deque

from repro.core import Delay, Read, Simulator, StreamChannel, Write


class _Msg:
    __slots__ = ("nbytes", "label")

    def __init__(self, label: str, nbytes: int = 64):
        self.label = label
        self.nbytes = nbytes


def test_blocked_waiter_queues_are_deques():
    # Structural pin for the O(1) wake-up: the waiter queues must stay
    # deques (list.pop(0) is O(n) per wake, quadratic over a long stall).
    channel = StreamChannel("ch", capacity=1)
    assert isinstance(channel._blocked_readers, deque)
    assert isinstance(channel._blocked_writers, deque)


def test_multiple_blocked_readers_wake_in_block_order():
    sim = Simulator()
    channel = StreamChannel("ch", capacity=None, bandwidth=1e9)
    received = []

    def reader(name):
        message = yield Read(channel)
        received.append((name, message.label))

    def producer():
        yield Delay(1.0)  # let every reader block first, in add order
        for index in range(3):
            yield Write(channel, _Msg(f"m{index}"))

    for index in range(3):
        sim.add_process(f"reader{index}", reader(f"reader{index}"))
    sim.add_process("producer", producer())
    sim.run()

    # First blocked reader gets the first message, and so on.
    assert received == [
        ("reader0", "m0"),
        ("reader1", "m1"),
        ("reader2", "m2"),
    ]


def test_multiple_blocked_writers_wake_in_block_order():
    sim = Simulator()
    # Capacity 1 and instantaneous transfers: the first write lands, every
    # later writer blocks in process order until the consumer drains.
    channel = StreamChannel("ch", capacity=1)
    drained = []

    def writer(label):
        yield Write(channel, _Msg(label, nbytes=0))

    def consumer():
        yield Delay(1.0)  # let all writers queue up first
        for _ in range(4):
            message = yield Read(channel)
            drained.append(message.label)

    for index in range(4):
        sim.add_process(f"writer{index}", writer(f"w{index}"))
    sim.add_process("consumer", consumer())
    sim.run()

    assert drained == ["w0", "w1", "w2", "w3"]


def test_wake_order_is_identical_with_and_without_fast_path():
    """The deque wake order must not depend on the zero-delay fast path."""

    def run(fast_zero_delay):
        sim = Simulator(fast_zero_delay=fast_zero_delay)
        channel = StreamChannel("ch", capacity=2, bandwidth=1e9)
        order = []

        def writer(label):
            yield Write(channel, _Msg(label))
            order.append(f"sent-{label}")

        def consumer():
            yield Delay(1.0)
            for _ in range(5):
                message = yield Read(channel)
                order.append(f"got-{message.label}")

        for index in range(5):
            sim.add_process(f"writer{index}", writer(f"w{index}"))
        sim.add_process("consumer", consumer())
        stats = sim.run()
        return order, stats.events, stats.end_time

    fast = run(True)
    compat = run(False)
    assert fast == compat
