"""Tests for the discrete-event engine: delays, streams, blocking, deadlock."""

from __future__ import annotations

import pytest

from repro.core import (
    DeadlockError,
    Delay,
    Fork,
    Parallel,
    Read,
    SimulationLimitError,
    Simulator,
    StreamChannel,
    StreamClosedError,
    TileMessage,
    Trace,
    Wait,
    Write,
)


def make_channel(name="ch", capacity=2, bandwidth=None, latency=0.0):
    return StreamChannel(name, capacity=capacity, bandwidth=bandwidth, latency=latency)


class TestDelay:
    def test_single_delay_advances_clock(self):
        sim = Simulator()

        def proc():
            yield Delay(2.5)

        sim.add_process("p", proc())
        stats = sim.run()
        assert stats.end_time == pytest.approx(2.5)

    def test_sequential_delays_accumulate(self):
        sim = Simulator()

        def proc():
            yield Delay(1.0)
            yield Delay(0.5)
            yield Delay(0.25)

        sim.add_process("p", proc())
        stats = sim.run()
        assert stats.end_time == pytest.approx(1.75)

    def test_parallel_processes_overlap_in_time(self):
        sim = Simulator()

        def proc(duration):
            yield Delay(duration)

        sim.add_process("a", proc(3.0))
        sim.add_process("b", proc(1.0))
        stats = sim.run()
        assert stats.end_time == pytest.approx(3.0)

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def proc():
            yield Delay(-1.0)

        sim.add_process("p", proc())
        with pytest.raises(ValueError):
            sim.run()

    def test_zero_delay_is_fine(self):
        sim = Simulator()

        def proc():
            yield Delay(0.0)

        sim.add_process("p", proc())
        assert sim.run().end_time == 0.0


class TestStreams:
    def test_message_passes_producer_to_consumer(self):
        sim = Simulator()
        channel = make_channel()
        received = []

        def producer():
            yield Write(channel, TileMessage.placeholder((4, 4), tag="t0"))

        def consumer():
            message = yield Read(channel)
            received.append(message)

        sim.add_process("producer", producer())
        sim.add_process("consumer", consumer())
        sim.run()
        assert len(received) == 1
        assert received[0].tag == "t0"

    def test_messages_preserve_fifo_order(self):
        sim = Simulator()
        channel = make_channel(capacity=8)
        received = []

        def producer():
            for i in range(5):
                yield Write(channel, TileMessage.placeholder((1,), tag=f"m{i}"))

        def consumer():
            for _ in range(5):
                message = yield Read(channel)
                received.append(message.tag)

        sim.add_process("producer", producer())
        sim.add_process("consumer", consumer())
        sim.run()
        assert received == [f"m{i}" for i in range(5)]

    def test_transfer_time_charged_by_bandwidth(self):
        sim = Simulator()
        channel = make_channel(bandwidth=100.0)  # 100 B/s

        def producer():
            yield Write(channel, TileMessage.placeholder((50,), dtype="int8"))  # 50 bytes

        def consumer():
            yield Read(channel)

        sim.add_process("producer", producer())
        sim.add_process("consumer", consumer())
        stats = sim.run()
        assert stats.end_time == pytest.approx(0.5)

    def test_fixed_latency_added_per_message(self):
        sim = Simulator()
        channel = make_channel(bandwidth=None, latency=0.125)

        def producer():
            yield Write(channel, TileMessage.placeholder((100,)))

        def consumer():
            yield Read(channel)

        sim.add_process("producer", producer())
        sim.add_process("consumer", consumer())
        assert sim.run().end_time == pytest.approx(0.125)

    def test_producer_blocks_when_channel_full(self):
        sim = Simulator()
        channel = make_channel(capacity=1, latency=1.0)
        timeline = []

        def producer():
            for i in range(3):
                yield Write(channel, TileMessage.placeholder((1,), tag=f"m{i}"))
                timeline.append(("sent", i, sim.now))

        def consumer():
            for _ in range(3):
                yield Read(channel)
                yield Delay(10.0)  # slow consumer forces back-pressure

        sim.add_process("producer", producer())
        sim.add_process("consumer", consumer())
        stats = sim.run()
        # The slow consumer paces the producer: the third message cannot be
        # sent until the consumer frees capacity.
        assert timeline[-1][2] > 2.0
        assert channel.stats.messages == 3
        assert stats.end_time >= 30.0

    def test_consumer_blocks_until_data_arrives(self):
        sim = Simulator()
        channel = make_channel()
        arrival = []

        def producer():
            yield Delay(5.0)
            yield Write(channel, TileMessage.placeholder((1,)))

        def consumer():
            yield Read(channel)
            arrival.append(sim.now)

        sim.add_process("producer", producer())
        sim.add_process("consumer", consumer())
        sim.run()
        assert arrival[0] >= 5.0

    def test_channel_stats_count_bytes_and_messages(self):
        sim = Simulator()
        channel = make_channel(capacity=4)

        def producer():
            for _ in range(3):
                yield Write(channel, TileMessage.placeholder((8, 8), dtype="fp32"))

        def consumer():
            for _ in range(3):
                yield Read(channel)

        sim.add_process("producer", producer())
        sim.add_process("consumer", consumer())
        sim.run()
        assert channel.stats.messages == 3
        assert channel.stats.bytes == 3 * 64 * 4

    def test_write_to_closed_channel_raises(self):
        sim = Simulator()
        channel = make_channel()
        channel.close()

        def producer():
            yield Write(channel, TileMessage.placeholder((1,)))

        sim.add_process("producer", producer())
        with pytest.raises(StreamClosedError):
            sim.run()


class TestDeadlockAndLimits:
    def test_read_with_no_producer_deadlocks(self):
        sim = Simulator()
        channel = make_channel()

        def consumer():
            yield Read(channel)

        sim.add_process("consumer", consumer())
        with pytest.raises(DeadlockError) as excinfo:
            sim.run()
        assert any("consumer" in name for name, _ in excinfo.value.blocked)

    def test_mismatched_send_receive_counts_deadlock(self):
        # The paper: "if the sends are fewer than the receives, the receiving
        # kernel will block indefinitely".
        sim = Simulator()
        channel = make_channel(capacity=4)

        def producer():
            for _ in range(2):
                yield Write(channel, TileMessage.placeholder((1,)))

        def consumer():
            for _ in range(3):
                yield Read(channel)

        sim.add_process("producer", producer())
        sim.add_process("consumer", consumer())
        with pytest.raises(DeadlockError):
            sim.run()

    def test_producer_overrun_blocks_when_channel_full(self):
        # "...if the sends exceed the receives, the producer kernel will block
        # once the stream channel is full."
        sim = Simulator()
        channel = make_channel(capacity=2)

        def producer():
            for _ in range(5):
                yield Write(channel, TileMessage.placeholder((1,)))

        def consumer():
            yield Read(channel)

        sim.add_process("producer", producer())
        sim.add_process("consumer", consumer())
        with pytest.raises(DeadlockError):
            sim.run()

    def test_event_limit_enforced(self):
        sim = Simulator(max_events=10)

        def proc():
            for _ in range(100):
                yield Delay(1.0)

        sim.add_process("p", proc())
        with pytest.raises(SimulationLimitError):
            sim.run()

    def test_time_limit_enforced(self):
        sim = Simulator(max_time=5.0)

        def proc():
            for _ in range(100):
                yield Delay(1.0)

        sim.add_process("p", proc())
        with pytest.raises(SimulationLimitError):
            sim.run()


class TestStructuredConcurrency:
    def test_parallel_waits_for_all_branches(self):
        sim = Simulator()

        def branch(duration):
            yield Delay(duration)
            return duration

        def proc():
            results = yield Parallel([branch(1.0), branch(3.0), branch(2.0)])
            assert results == [1.0, 3.0, 2.0]

        sim.add_process("p", proc())
        stats = sim.run()
        assert stats.end_time == pytest.approx(3.0)

    def test_parallel_with_no_branches_is_noop(self):
        sim = Simulator()

        def proc():
            results = yield Parallel([])
            assert results == []
            yield Delay(1.0)

        sim.add_process("p", proc())
        assert sim.run().end_time == pytest.approx(1.0)

    def test_parallel_branches_share_simulated_time(self):
        # load+send overlap (the ping-pong buffer idiom): total time is the
        # max of the two, not the sum.
        sim = Simulator()
        channel = make_channel(capacity=4)

        def load():
            yield Delay(4.0)

        def send():
            for _ in range(2):
                yield Write(channel, TileMessage.placeholder((1,)))
                yield Delay(1.0)

        def sink():
            for _ in range(2):
                yield Read(channel)

        def fu():
            yield Parallel([load(), send()])

        sim.add_process("fu", fu())
        sim.add_process("sink", sink())
        assert sim.run().end_time == pytest.approx(4.0)

    def test_fork_and_wait(self):
        sim = Simulator()

        def background():
            yield Delay(2.0)
            return "done"

        def proc():
            handle = yield Fork(background(), name="bg")
            yield Delay(0.5)
            result = yield Wait(handle)
            assert result == "done"

        sim.add_process("p", proc())
        assert sim.run().end_time == pytest.approx(2.0)

    def test_wait_on_already_finished_fork(self):
        sim = Simulator()

        def background():
            yield Delay(0.1)
            return 42

        def proc():
            handle = yield Fork(background())
            yield Delay(1.0)
            result = yield Wait(handle)
            assert result == 42

        sim.add_process("p", proc())
        assert sim.run().end_time == pytest.approx(1.0)


class TestStatsAndTrace:
    def test_process_busy_and_blocked_times(self):
        sim = Simulator()
        channel = make_channel()

        def producer():
            yield Delay(4.0)
            yield Write(channel, TileMessage.placeholder((1,)))

        def consumer():
            yield Read(channel)

        sim.add_process("producer", producer())
        sim.add_process("consumer", consumer())
        stats = sim.run()
        assert stats.busy_time("producer") == pytest.approx(4.0)
        assert stats.blocked_time("consumer") == pytest.approx(4.0)

    def test_trace_records_events(self):
        trace = Trace()
        sim = Simulator(trace=trace)
        channel = make_channel()

        def producer():
            yield Write(channel, TileMessage.placeholder((1,)))

        def consumer():
            yield Read(channel)

        sim.add_process("producer", producer())
        sim.add_process("consumer", consumer())
        sim.run()
        kinds = trace.counts()
        assert kinds.get("write", 0) >= 1
        assert kinds.get("finish", 0) == 2
        assert trace.first("finish") is not None

    def test_trace_capacity_drops_extra_events(self):
        trace = Trace(capacity=2)
        sim = Simulator(trace=trace)

        def proc():
            for _ in range(10):
                yield Delay(1.0)

        sim.add_process("p", proc())
        sim.run()
        assert len(trace) == 2
        assert trace.dropped > 0

    def test_unsupported_request_raises_type_error(self):
        sim = Simulator()

        def proc():
            yield "not-a-request"

        sim.add_process("p", proc())
        with pytest.raises(TypeError):
            sim.run()
