"""Regression tests for engine hot-path semantics.

Covers the pitfalls the optimized engine must not reintroduce:

* a legitimate ``None`` result/message must survive every resume path (the
  old ``value if value is not None else process.pending_value`` conflated
  ``None`` with "no pending value"; the engine now uses an explicit sentinel);
* deadlock reports must list the *full* blocked set with ``waiting_on``
  strings;
* ``max_events`` / ``max_time`` must trip at the exact boundary;
* the zero-delay fast path must be event-for-event identical to the
  heap-only compatibility mode.
"""

from __future__ import annotations

import pytest

from repro.core import (
    DeadlockError,
    Delay,
    Fork,
    Parallel,
    Read,
    SimulationLimitError,
    Simulator,
    StreamChannel,
    Wait,
    Write,
)


class TestNoneValues:
    """A ``None`` result or message is a value, not "nothing pending"."""

    def test_wait_joins_process_returning_none(self):
        sim = Simulator()
        seen = []

        def child():
            yield Delay(1.0)
            return None

        def parent():
            handle = yield Fork(child(), "child")
            result = yield Wait(handle)
            seen.append(result)

        sim.add_process("parent", parent())
        sim.run()
        assert seen == [None]

    def test_wait_on_already_finished_none_process(self):
        sim = Simulator()
        seen = []

        def child():
            yield Delay(0.0)
            return None

        def parent():
            handle = yield Fork(child(), "child")
            yield Delay(5.0)  # child finishes long before the join
            assert handle.finished
            result = yield Wait(handle)
            seen.append(result)

        sim.add_process("parent", parent())
        sim.run()
        assert seen == [None]

    def test_read_delivers_none_message(self):
        sim = Simulator()
        channel = StreamChannel("ch", capacity=1)
        seen = []

        def writer():
            yield Write(channel, None)

        def reader():
            message = yield Read(channel)
            seen.append(message)

        sim.add_process("writer", writer())
        sim.add_process("reader", reader())
        sim.run()
        assert seen == [None]

    def test_blocked_read_delivers_none_message(self):
        sim = Simulator()
        channel = StreamChannel("ch", capacity=1)
        seen = []

        def reader():
            message = yield Read(channel)  # blocks: nothing written yet
            seen.append(message)

        def writer():
            yield Delay(1.0)
            yield Write(channel, None)

        sim.add_process("reader", reader())
        sim.add_process("writer", writer())
        sim.run()
        assert seen == [None]

    def test_parallel_collects_none_results(self):
        sim = Simulator()
        seen = []

        def branch(value):
            yield Delay(1.0)
            return value

        def parent():
            results = yield Parallel([branch(None), branch(7), branch(None)])
            seen.append(results)

        sim.add_process("parent", parent())
        sim.run()
        assert seen == [[None, 7, None]]


class TestDeadlockReport:
    def test_blocked_set_lists_every_process_with_waiting_on(self):
        sim = Simulator()
        empty_a = StreamChannel("empty_a", capacity=1)
        empty_b = StreamChannel("empty_b", capacity=1)

        def reader(channel):
            yield Read(channel)

        sim.add_process("reader_a", reader(empty_a))
        sim.add_process("reader_b", reader(empty_b))
        with pytest.raises(DeadlockError) as excinfo:
            sim.run()
        blocked = dict(excinfo.value.blocked)
        assert set(blocked) == {"reader_a", "reader_b"}
        assert blocked["reader_a"] == "data on 'empty_a'"
        assert blocked["reader_b"] == "data on 'empty_b'"

    def test_blocked_writer_and_joiner_reported(self):
        sim = Simulator()
        # capacity-1 channel that nobody drains: the second write blocks.
        channel = StreamChannel("full_ch", capacity=1)

        class _Msg:
            nbytes = 8

        def writer():
            yield Write(channel, _Msg())
            yield Write(channel, _Msg())  # blocks forever

        def stuck_child():
            yield Read(StreamChannel("never", capacity=1))

        def joiner():
            handle = yield Fork(stuck_child(), "stuck_child")
            yield Wait(handle)

        sim.add_process("writer", writer())
        sim.add_process("joiner", joiner())
        with pytest.raises(DeadlockError) as excinfo:
            sim.run()
        blocked = dict(excinfo.value.blocked)
        assert blocked["writer"] == "write space on 'full_ch'"
        assert blocked["joiner"] == "join on 'stuck_child'"
        assert blocked["stuck_child"] == "data on 'never'"
        # The report names every unfinished process.
        assert set(blocked) == {"writer", "joiner", "stuck_child"}


class TestLimits:
    @staticmethod
    def _delays(count):
        def proc():
            for _ in range(count):
                yield Delay(1.0)
        return proc()

    def test_max_events_exact_boundary(self):
        # One initial resume plus one resume per delay = 6 events.
        sim = Simulator(max_events=6)
        sim.add_process("p", self._delays(5))
        assert sim.run().events == 6

        sim = Simulator(max_events=5)
        sim.add_process("p", self._delays(5))
        with pytest.raises(SimulationLimitError, match="event limit of 5"):
            sim.run()

    def test_max_time_exact_boundary(self):
        # An event at exactly max_time is allowed...
        sim = Simulator(max_time=5.0)
        sim.add_process("p", self._delays(5))
        assert sim.run().end_time == pytest.approx(5.0)

        # ...the first event strictly beyond it raises.
        sim = Simulator(max_time=4.999999)
        sim.add_process("p", self._delays(5))
        with pytest.raises(SimulationLimitError, match="time limit"):
            sim.run()


class TestFastPathEquivalence:
    @staticmethod
    def _pipeline(sim, n_msgs=200):
        first = StreamChannel("first", capacity=2, bandwidth=1e6)
        second = StreamChannel("second", capacity=2, bandwidth=1e6)

        class _Msg:
            nbytes = 32

        def producer():
            for _ in range(n_msgs):
                yield Delay(1e-6)
                yield Write(first, _Msg())

        def relay():
            for _ in range(n_msgs):
                message = yield Read(first)
                yield Write(second, message)

        def consumer():
            for _ in range(n_msgs):
                yield Read(second)

        sim.add_process("producer", producer())
        sim.add_process("relay", relay())
        sim.add_process("consumer", consumer())
        return sim.run()

    def test_fast_and_compat_modes_are_event_identical(self):
        fast = self._pipeline(Simulator(fast_zero_delay=True))
        compat = self._pipeline(Simulator(fast_zero_delay=False))
        assert fast.events == compat.events
        assert fast.end_time == compat.end_time
        assert fast.process_times == compat.process_times

    def test_zero_delay_and_zero_transfer_use_fast_path(self):
        sim = Simulator()
        untimed = StreamChannel("untimed", capacity=1)  # no bandwidth, no latency

        class _Msg:
            nbytes = 4

        def proc():
            yield Delay(0.0)
            yield Write(untimed, _Msg())

        def reader():
            yield Read(untimed)

        sim.add_process("proc", proc())
        sim.add_process("reader", reader())
        stats = sim.run()
        assert stats.end_time == 0.0
        # Nothing should remain queued after a clean run.
        assert not sim._event_queue and not sim._immediate
