"""Tests for datapath construction, validation, paths, and path programs."""

from __future__ import annotations

import pytest

from repro.core import (ConfigurationError, Datapath, Path, PathProgram, UOp,
                        UtilizationReport)
from tests.core.test_functional_unit import AdderFU, SinkFU, SourceFU


def toy_datapath():
    dp = Datapath("toy")
    dp.add_fus([SourceFU("src"), AdderFU("add"), SinkFU("sink")])
    dp.connect("src", "out", "add", "in")
    dp.connect("add", "out", "sink", "in")
    return dp


class TestDatapath:
    def test_duplicate_fu_rejected(self):
        dp = Datapath("d")
        dp.add_fu(SourceFU("src"))
        with pytest.raises(ConfigurationError):
            dp.add_fu(SourceFU("src"))

    def test_unknown_fu_lookup(self):
        dp = Datapath("d")
        with pytest.raises(ConfigurationError):
            dp.fu("nope")

    def test_connect_by_name_and_object(self):
        dp = Datapath("d")
        src, sink = SourceFU("src"), SinkFU("sink")
        dp.add_fus([src, sink])
        channel = dp.connect(src, "out", "sink", "in")
        assert channel.source.owner is src
        assert channel.sink.owner is sink

    def test_connect_wrong_direction_rejected(self):
        dp = Datapath("d")
        dp.add_fus([SourceFU("src"), SinkFU("sink")])
        with pytest.raises(ConfigurationError):
            dp.connect("sink", "in", "src", "out")

    def test_duplicate_channel_name_rejected(self):
        dp = Datapath("d")
        dp.add_fus([SourceFU("a"), SinkFU("b"), SourceFU("c"), SinkFU("e")])
        dp.connect("a", "out", "b", "in", name="link")
        with pytest.raises(ConfigurationError):
            dp.connect("c", "out", "e", "in", name="link")

    def test_fus_of_type(self):
        dp = toy_datapath()
        assert [fu.name for fu in dp.fus_of_type("SRC")] == ["src"]
        assert dp.fus_of_type("MME") == []

    def test_unconnected_ports_reported(self):
        dp = Datapath("d")
        dp.add_fu(SourceFU("src"))
        assert [p.qualified_name for p in dp.unconnected_ports()] == ["src.out"]
        with pytest.raises(ConfigurationError):
            dp.validate(allow_unconnected=False)

    def test_adjacency_graph(self):
        dp = toy_datapath()
        assert dp.adjacency() == {"src": ["add"], "add": ["sink"], "sink": []}

    def test_describe_lists_edges(self):
        dp = toy_datapath()
        info = dp.describe()
        assert len(info["fus"]) == 3
        assert len(info["edges"]) == 2

    def test_reset_stats_clears_counters(self):
        dp = toy_datapath()
        program = PathProgram("p").add(
            Path("run")
            .assign("src", [UOp("SRC", {"count": 1})])
            .assign("add", [UOp("ADD", {"count": 1})])
            .assign("sink", [UOp("SINK", {"count": 1})])
        )
        program.load_into(dp)
        dp.build_simulator().run()
        assert dp.total_stream_bytes() > 0
        dp.reset_stats()
        assert dp.total_stream_bytes() == 0
        assert dp.fu("add").stats.kernels_executed == 0


class TestPath:
    def test_assign_and_query(self):
        path = Path("p1")
        path.assign("fu1", [UOp("A"), UOp("A")])
        path.assign("fu2", [UOp("B")])
        assert path.total_uops == 3
        assert path.fu_names() == ["fu1", "fu2"]
        assert len(path.uops_for("fu1")) == 2
        assert path.uops_for("missing") == []

    def test_assign_append_vs_replace(self):
        path = Path("p")
        path.assign("fu", [UOp("A")])
        path.assign("fu", [UOp("A")], append=True)
        assert path.total_uops == 2
        path.assign("fu", [UOp("A")], append=False)
        assert path.total_uops == 1

    def test_conflicts_detected(self):
        p1 = Path("p1", {"fu1": [UOp("A")], "fu2": [UOp("B")]})
        p2 = Path("p2", {"fu2": [UOp("B")], "fu3": [UOp("C")]})
        assert p1.conflicts_with(p2) == {"fu2"}

    def test_merged_concatenates_uops(self):
        p1 = Path("p1", {"fu1": [UOp("A", {"n": 1})]})
        p2 = Path("p2", {"fu1": [UOp("A", {"n": 2})], "fu2": [UOp("B")]})
        merged = p1.merged(p2)
        assert merged.total_uops == 3
        assert [u["n"] for u in merged.uops_for("fu1")] == [1, 2]

    def test_uop_bytes_accounting(self):
        path = Path("p", {"fu": [UOp("A", nbytes=3), UOp("A", nbytes=5)]})
        assert path.uop_bytes() == 8


class TestPathProgram:
    def test_parallel_paths_must_be_disjoint(self):
        program = PathProgram()
        p1 = Path("p1", {"fu1": [UOp("A")]})
        p2 = Path("p2", {"fu1": [UOp("A")]})
        with pytest.raises(ConfigurationError):
            program.add_parallel([p1, p2])

    def test_parallel_disjoint_paths_accepted(self):
        program = PathProgram()
        p1 = Path("p1", {"fu1": [UOp("A")]})
        p2 = Path("p2", {"fu2": [UOp("B")]})
        program.add_parallel([p1, p2])
        assert program.total_uops == 2

    def test_sequential_paths_reuse_fus(self):
        program = PathProgram()
        program.add(Path("first", {"fu1": [UOp("A", {"step": 1})]}))
        program.add(Path("second", {"fu1": [UOp("A", {"step": 2})]}))
        flat = program.per_fu_uops()
        assert [u["step"] for u in flat["fu1"]] == [1, 2]

    def test_load_into_appends_exit_and_terminates_unused_fus(self):
        dp = toy_datapath()
        program = PathProgram("p").add(
            Path("only-src-sink")
            .assign("src", [UOp("SRC", {"count": 0})])
            .assign("sink", [UOp("SINK", {"count": 0})])
        )
        program.load_into(dp)
        # The 'add' FU is not on the path but still receives an exit uOP.
        assert dp.fu("add").program_length == 1
        dp.build_simulator().run()  # terminates cleanly

    def test_end_to_end_two_independent_paths(self):
        """Two FU-disjoint paths execute concurrently (spatial parallelism)."""
        dp = Datapath("two-paths")
        dp.add_fus([SourceFU("src1"), SinkFU("sink1"), SourceFU("src2"), SinkFU("sink2")])
        dp.connect("src1", "out", "sink1", "in")
        dp.connect("src2", "out", "sink2", "in")
        path1 = Path("path1", {"src1": [UOp("SRC", {"count": 4})],
                               "sink1": [UOp("SINK", {"count": 4})]})
        path2 = Path("path2", {"src2": [UOp("SRC", {"count": 4})],
                               "sink2": [UOp("SINK", {"count": 4})]})
        program = PathProgram().add_parallel([path1, path2])
        program.load_into(dp)
        stats = dp.build_simulator().run()
        assert len(dp.fu("sink1").received) == 4
        assert len(dp.fu("sink2").received) == 4
        report = UtilizationReport.from_simulation(dp, stats)
        assert set(report.fu_busy) == {"src1", "sink1", "src2", "sink2"}

    def test_uop_byte_totals(self):
        program = PathProgram()
        program.add(Path("p", {"fu": [UOp("A", nbytes=4), UOp("A", nbytes=4)]}))
        assert program.uop_bytes() == 8
