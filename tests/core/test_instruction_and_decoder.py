"""Tests for RSN instruction packets, programs, and the decoder hierarchy."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConfigurationError,
    Datapath,
    DeadlockError,
    DecoderConfig,
    ExitUOp,
    FieldSpec,
    InstructionDecoder,
    InstructionPacket,
    MOp,
    RSNProgram,
    UOp,
    UOpFormat,
)
from tests.core.test_functional_unit import AdderFU, SinkFU, SourceFU


def toy_datapath():
    dp = Datapath("toy")
    dp.add_fus([SourceFU("src"), AdderFU("add"), SinkFU("sink")])
    dp.connect("src", "out", "add", "in")
    dp.connect("add", "out", "sink", "in")
    return dp


def toy_program(count=3):
    program = RSNProgram("toy")
    program.emit("SRC", ["src"], [MOp({"count": count, "value": 1.0})], label="load")
    program.emit("ADD", ["add"], [MOp({"count": count, "addend": 2.0})], label="add")
    program.emit("SINK", ["sink"], [MOp({"count": count})], label="store")
    program.finalize({"SRC": ["src"], "ADD": ["add"], "SINK": ["sink"]})
    return program


class TestUOpFormat:
    def test_format_bit_and_byte_width(self):
        fmt = UOpFormat("MME", (FieldSpec("matrix_size", 16), FieldSpec("tile_size", 16),
                                FieldSpec("add_bias", 1)))
        assert fmt.bits == 33
        assert fmt.nbytes == 5

    def test_make_validates_field_names(self):
        fmt = UOpFormat("DDR", (FieldSpec("addr", 32), FieldSpec("load", 1, default=False)))
        uop = fmt.make(addr=128)
        assert uop["addr"] == 128
        assert uop["load"] is False
        with pytest.raises(ValueError):
            fmt.make(bogus=1)

    def test_uop_mapping_interface(self):
        uop = UOp("DDR", {"addr": 5, "load": True})
        assert uop["addr"] == 5
        assert "load" in uop
        assert uop.get("missing", 7) == 7
        assert set(uop) == {"addr", "load"}
        replaced = uop.replace(addr=9)
        assert replaced["addr"] == 9
        assert uop["addr"] == 5


class TestInstructionPacket:
    def test_header_plus_payload_bytes(self):
        packet = InstructionPacket("DDR", ["DDR"], [MOp(nbytes=6), MOp(nbytes=6)], reuse=4)
        assert packet.window_size == 2
        assert packet.nbytes == 4 + 12

    def test_invalid_reuse_and_empty_mask(self):
        with pytest.raises(ConfigurationError):
            InstructionPacket("DDR", ["DDR"], [], reuse=0)
        with pytest.raises(ConfigurationError):
            InstructionPacket("DDR", [], [])

    def test_expand_applies_window_and_reuse(self):
        packet = InstructionPacket("MEM", ["MemB0", "MemB1"],
                                   [MOp({"step": 1}), MOp({"step": 2})], reuse=3)
        expanded = packet.expand()
        assert set(expanded) == {"MemB0", "MemB1"}
        assert len(expanded["MemB0"]) == 6
        assert [u["step"] for u in expanded["MemB0"]] == [1, 2, 1, 2, 1, 2]

    def test_expand_with_last_appends_exit(self):
        packet = InstructionPacket("MEM", ["MemB0"], [MOp({"step": 1})], last=True)
        expanded = packet.expand()
        assert isinstance(expanded["MemB0"][-1], ExitUOp)
        assert packet.expanded_uop_count == 2

    def test_per_fu_overrides(self):
        mop = MOp({"dest": "MemB0"}, overrides={"MemB1": {"dest": "MemB1"}})
        packet = InstructionPacket("LPDDR", ["MemB0", "MemB1"], [mop])
        expanded = packet.expand()
        assert expanded["MemB0"][0]["dest"] == "MemB0"
        assert expanded["MemB1"][0]["dest"] == "MemB1"

    @given(window=st.integers(1, 6), reuse=st.integers(1, 50), n_targets=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_expansion_count_matches_formula(self, window, reuse, n_targets):
        targets = [f"FU{i}" for i in range(n_targets)]
        packet = InstructionPacket("T", targets, [MOp({"i": i}) for i in range(window)],
                                   reuse=reuse)
        expanded = packet.expand()
        assert sum(len(v) for v in expanded.values()) == window * reuse * n_targets

    @given(window=st.integers(1, 6), reuse=st.integers(1, 100))
    @settings(max_examples=60, deadline=None)
    def test_compression_grows_with_reuse(self, window, reuse):
        """Instruction bytes stay fixed while expanded uOP bytes scale with reuse."""
        packet = InstructionPacket("T", ["FU0"], [MOp({"i": i}, nbytes=4) for i in range(window)],
                                   reuse=reuse)
        expanded_bytes = sum(u.nbytes for u in packet.expand()["FU0"])
        assert packet.nbytes == 4 + 4 * window
        assert expanded_bytes == 4 * window * reuse


class TestRSNProgram:
    def test_size_report_compression_ratio(self):
        program = RSNProgram("p")
        program.emit("MEM", ["MemA0"], [MOp({"step": 1}, nbytes=4)], reuse=16)
        report = program.size_report()
        assert report.instruction_bytes["MEM"] == 8
        assert report.uop_bytes["MEM"] == 64
        assert report.compression_ratio("MEM") == pytest.approx(8.0)
        assert report.compression_ratio("missing") == 0.0

    def test_finalize_adds_exit_packets_once(self):
        program = toy_program()
        exits = [p for p in program.packets if p.last]
        assert {p.opcode for p in exits} == {"SRC", "ADD", "SINK"}
        before = program.packet_count
        program.finalize({"SRC": ["src"], "ADD": ["add"], "SINK": ["sink"]})
        assert program.packet_count == before  # idempotent

    def test_static_load_into_runs_datapath(self):
        dp = toy_datapath()
        program = toy_program(count=2)
        program.load_into(dp)
        dp.build_simulator().run()
        assert len(dp.fu("sink").received) == 2

    def test_expand_merges_packets_in_program_order(self):
        program = RSNProgram()
        program.emit("SRC", ["src"], [MOp({"count": 1})])
        program.emit("SRC", ["src"], [MOp({"count": 2})])
        uops = program.expand()["src"]
        assert [u["count"] for u in uops] == [1, 2]

    def test_uop_formats_used_during_expansion(self):
        fmt = UOpFormat("SRC", (FieldSpec("count", 16, default=1), FieldSpec("value", 32, default=0.0)))
        program = RSNProgram(uop_formats={"SRC": fmt})
        program.emit("SRC", ["src"], [MOp({"count": 3})])
        uop = program.expand()["src"][0]
        assert uop.nbytes == fmt.nbytes
        assert uop["value"] == 0.0


class TestDecoderPipeline:
    def test_decoded_execution_matches_static_expansion(self):
        """Running through the timed decoder produces the same data movement."""
        dp = toy_datapath()
        program = toy_program(count=4)
        decoder = InstructionDecoder(dp, program)
        sim = dp.build_simulator(extra_processes=decoder.processes())
        sim.run()
        assert len(dp.fu("sink").received) == 4
        assert dp.fu("add").stats.kernels_executed == 1

    def test_decoder_adds_only_small_latency(self):
        dp_static = toy_datapath()
        program = toy_program(count=4)
        program.load_into(dp_static)
        static_time = dp_static.build_simulator().run().end_time

        dp_decoded = toy_datapath()
        decoder = InstructionDecoder(dp_decoded, toy_program(count=4))
        decoded_time = dp_decoded.build_simulator(
            extra_processes=decoder.processes()).run().end_time
        # The decoder is off the critical path: its contribution is bounded by
        # a few microseconds for this tiny program.
        assert decoded_time >= static_time
        assert decoded_time - static_time < 1e-3

    def test_untargeted_fus_still_terminate(self):
        dp = toy_datapath()
        program = RSNProgram("partial")
        program.emit("SRC", ["src"], [MOp({"count": 0})], last=True)
        decoder = InstructionDecoder(dp, program)
        sim = dp.build_simulator(extra_processes=decoder.processes())
        sim.run()  # 'add' and 'sink' exit via locally injected ExitUOps

    def test_attach_twice_rejected(self):
        dp = toy_datapath()
        decoder = InstructionDecoder(dp, toy_program())
        decoder.attach()
        with pytest.raises(ConfigurationError):
            decoder.attach()

    def test_shallow_fifo_can_deadlock_deep_fifo_cannot(self):
        """Reproduces the Section 3.3 deadlock scenario.

        The producer FU ('src') is given many uOPs before the packet that
        tells the consumer ('add'/'sink') to drain its stream.  With a deep
        enough decoder FIFO the fetch unit can run ahead and deliver the
        consumer's instructions; with a FIFO of depth 1 and a producer that
        floods the stream, the fetch unit stalls first and the system wedges.
        """
        def build(depth):
            dp = toy_datapath()
            program = RSNProgram("deadlock-prone")
            # Many small SRC packets first: each produces one tile into the
            # stream toward 'add', which has capacity 2.
            for i in range(12):
                program.emit("SRC", ["src"], [MOp({"count": 1, "value": float(i)})])
            # Only afterwards do the consumer instructions appear in program order.
            program.emit("ADD", ["add"], [MOp({"count": 12, "addend": 0.0})])
            program.emit("SINK", ["sink"], [MOp({"count": 12})])
            program.finalize({"SRC": ["src"], "ADD": ["add"], "SINK": ["sink"]})
            decoder = InstructionDecoder(dp, program, DecoderConfig(fifo_depth=depth))
            sim = dp.build_simulator(extra_processes=decoder.processes())
            return dp, sim

        # Deep FIFOs (the paper uses 6) let the fetch unit run ahead: no deadlock.
        dp_ok, sim_ok = build(depth=6)
        sim_ok.run()
        assert len(dp_ok.fu("sink").received) == 12

        # A depth-1 FIFO stalls the fetch unit before the consumer is programmed.
        _, sim_bad = build(depth=1)
        with pytest.raises(DeadlockError):
            sim_bad.run()
