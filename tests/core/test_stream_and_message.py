"""Tests for stream channels, ports, and stream messages."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConfigurationError,
    ControlToken,
    Port,
    StreamChannel,
    TileMessage,
    dtype_size,
)


class TestChannelConstruction:
    def test_defaults(self):
        channel = StreamChannel("c")
        assert channel.capacity == 2
        assert channel.is_empty
        assert not channel.is_full

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamChannel("c", capacity=0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamChannel("c", bandwidth=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamChannel("c", latency=-1)

    def test_unbounded_channel_never_full(self):
        channel = StreamChannel("c", capacity=None)
        for _ in range(100):
            channel.reserve()
            channel.deliver(object(), 1)
        assert not channel.is_full
        assert channel.occupancy == 100

    def test_transfer_time_components(self):
        channel = StreamChannel("c", bandwidth=1e9, latency=1e-6)
        assert channel.transfer_time(1_000_000) == pytest.approx(1e-6 + 1e-3)
        assert channel.transfer_time(0) == pytest.approx(1e-6)

    def test_transfer_time_without_bandwidth(self):
        channel = StreamChannel("c", bandwidth=None, latency=2e-6)
        assert channel.transfer_time(10**9) == pytest.approx(2e-6)


class TestPorts:
    def test_port_direction_validation(self):
        with pytest.raises(ConfigurationError):
            Port("p", "sideways")

    def test_double_bind_rejected(self):
        port = Port("out", Port.OUTPUT)
        port.bind(StreamChannel("a"))
        with pytest.raises(ConfigurationError):
            port.bind(StreamChannel("b"))

    def test_bind_registers_endpoints(self):
        src = Port("out", Port.OUTPUT)
        dst = Port("in", Port.INPUT)
        channel = StreamChannel("c")
        src.bind(channel)
        dst.bind(channel)
        assert channel.source is src
        assert channel.sink is dst

    def test_require_channel_on_unbound_port(self):
        port = Port("out", Port.OUTPUT)
        with pytest.raises(ConfigurationError):
            port.require_channel()


class TestDtypeSize:
    @pytest.mark.parametrize("name,size", [
        ("fp32", 4), ("float32", 4), ("fp16", 2), ("int8", 1), ("int16", 2), ("int32", 4),
    ])
    def test_known_dtypes(self, name, size):
        assert dtype_size(name) == size

    def test_unknown_dtype(self):
        with pytest.raises(ValueError):
            dtype_size("bf128")


class TestTileMessage:
    def test_from_array_sets_shape_and_bytes(self):
        message = TileMessage.from_array(np.zeros((16, 32), dtype=np.float32))
        assert message.shape == (16, 32)
        assert message.nbytes == 16 * 32 * 4
        assert message.carries_data

    def test_placeholder_has_no_data(self):
        message = TileMessage.placeholder((8, 8), dtype="fp16")
        assert not message.carries_data
        assert message.nbytes == 64 * 2

    def test_map_applies_transform_to_payload(self):
        message = TileMessage.from_array(np.ones((4, 4)))
        doubled = message.map(lambda x: x * 2)
        np.testing.assert_allclose(doubled.data, 2.0)

    def test_map_on_placeholder_keeps_shape(self):
        message = TileMessage.placeholder((4, 8))
        mapped = message.map(lambda x: x * 2)
        assert mapped.shape == (4, 8)
        assert not mapped.carries_data

    def test_map_changes_shape_with_data(self):
        message = TileMessage.from_array(np.ones((4, 8)))
        transposed = message.map(np.transpose)
        assert transposed.shape == (8, 4)

    def test_control_token_is_zero_bytes(self):
        token = ControlToken(kind="flip")
        assert token.nbytes == 0

    @given(rows=st.integers(1, 64), cols=st.integers(1, 64),
           dtype=st.sampled_from(["fp32", "fp16", "int8"]))
    @settings(max_examples=50, deadline=None)
    def test_placeholder_byte_accounting_matches_dtype(self, rows, cols, dtype):
        message = TileMessage.placeholder((rows, cols), dtype=dtype)
        assert message.nbytes == rows * cols * dtype_size(dtype)
        assert message.element_count == rows * cols
