"""Tests for the sweep executor: caching, parallel fan-out, CLI plumbing."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.runner import (REGISTRY, ProcessPoolExecutor, ResultCache,
                          SerialExecutor, run_sweep)
from repro.runner.cli import main as cli_main
from repro.runner.scenarios import Scenario

#: cheap scenarios (analytic models + synthetic engine runs) used so the
#: sweep machinery tests stay fast even on one core.
CHEAP = [
    "table6a/aie-32x16x32",
    "table6a/aie-32x32x32",
    "table6b/charm-1024",
    "table6b/charm-6144",
    "fig18/charm-b1",
    "fig18/charm-b24",
    "smoke/engine-chain",
    "smoke/engine-chain-deep",
]


def _dumps(outcomes):
    return [json.dumps(o.result, sort_keys=True) for o in outcomes]


class TestRunSweep:
    def test_serial_sweep_preserves_order(self):
        outcomes = run_sweep(CHEAP)
        assert [o.scenario for o in outcomes] == CHEAP
        assert all(not o.cached for o in outcomes)
        assert all(isinstance(o.result, dict) and o.result for o in outcomes)

    def test_parallel_results_match_serial(self):
        serial = run_sweep(CHEAP, executor=SerialExecutor())
        parallel = run_sweep(CHEAP, executor=ProcessPoolExecutor(2))
        assert _dumps(serial) == _dumps(parallel)
        assert [o.scenario for o in parallel] == CHEAP

    def test_cache_hits_skip_execution_and_match(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = run_sweep(CHEAP, cache=cache)
        assert all(not o.cached for o in first)
        second = run_sweep(CHEAP, cache=cache)
        assert all(o.cached for o in second)
        assert _dumps(first) == _dumps(second)

    def test_force_reruns_despite_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(CHEAP[:2], cache=cache)
        forced = run_sweep(CHEAP[:2], cache=cache, force=True)
        assert all(not o.cached for o in forced)

    def test_duplicate_names_execute_only_once(self, monkeypatch):
        import repro.runner.sweep as sweep_module
        calls = []
        real_run_one = sweep_module._run_one

        def counting_run_one(scenario, backend="engine", **kwargs):
            calls.append(scenario.name)
            return real_run_one(scenario, backend=backend, **kwargs)

        monkeypatch.setattr(sweep_module, "_run_one", counting_run_one)
        outcomes = run_sweep(["smoke/engine-chain", "smoke/engine-chain"])
        assert len(outcomes) == 2
        assert calls == ["smoke/engine-chain"]
        assert json.dumps(outcomes[0].result) == json.dumps(outcomes[1].result)

    def test_ad_hoc_scenario_runs_with_its_own_params(self, tmp_path):
        # An unregistered Scenario of a registered kind must execute with
        # exactly the parameters it carries (not a same-named registry entry)
        # and must be cached under its own identity.
        ad_hoc = Scenario(name="smoke/engine-chain", kind="engine_chain",
                          params={"n_msgs": 10, "stages": 1})
        cache = ResultCache(tmp_path / "cache")
        outcome = run_sweep([ad_hoc], cache=cache)[0]
        # 10 messages through 1 relay is far fewer events than the registered
        # scenario's 2000 messages through 2 relays.
        assert outcome.result["events"] < 100
        registered = REGISTRY.run("smoke/engine-chain")
        assert registered["events"] > 10_000
        # The cache entry belongs to the ad-hoc identity, not the registered one.
        assert cache.load(ad_hoc)["result"] == outcome.result
        assert cache.load(REGISTRY.get("smoke/engine-chain")) is None

    def test_workers_alias_warns_and_matches_executor(self):
        names = CHEAP[:2]
        via_executor = run_sweep(names, executor=ProcessPoolExecutor(2))
        with pytest.warns(DeprecationWarning, match="workers=.*deprecated"):
            via_alias = run_sweep(names, workers=2)
        assert _dumps(via_executor) == _dumps(via_alias)

    def test_workers_and_executor_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            run_sweep(CHEAP[:1], workers=2, executor=SerialExecutor())

    def test_large_duplicate_sweep_resolves_fast(self, monkeypatch):
        # Regression for the O(n^2) duplicate scan: resolving the work list
        # must not rescan every queued scenario per input.  2000 distinct
        # ad-hoc scenarios, each submitted twice, with execution stubbed out
        # so only the resolution machinery is on the clock -- the quadratic
        # scan took tens of seconds here, the seen-keys set takes well under
        # a second.
        import repro.runner.sweep as sweep_module
        monkeypatch.setattr(
            sweep_module, "_run_one",
            lambda scenario, backend="engine", segment_memo_dir=None:
                (scenario.name, {"ok": True}, 0.0))
        distinct = [Scenario(name=f"bulk/{i}", kind="engine_chain",
                             params={"n_msgs": i + 1, "stages": 1})
                    for i in range(2000)]
        scenarios = distinct * 2
        start = time.perf_counter()
        outcomes = run_sweep(scenarios)
        elapsed = time.perf_counter() - start
        assert len(outcomes) == 4000
        assert outcomes[0].result == {"ok": True}
        assert elapsed < 10.0, f"duplicate resolution took {elapsed:.1f}s"

    @pytest.mark.skipif((os.cpu_count() or 1) < 4,
                        reason="parallel speedup needs >= 4 cores")
    def test_parallel_sweep_is_faster_on_multicore(self):
        # The acceptance sweep: >= 8 simulation scenarios, 4 workers.  Kept
        # out of single-core environments where the pool can only add
        # overhead; the conservative 1.5x floor absorbs CI timing noise (the
        # embarrassingly parallel sweep exceeds 2x on unloaded 4-core boxes).
        names = [s.name for s in REGISTRY.select(tags=["table9", "fig18"])
                 if "charm" not in s.name]
        assert len(names) >= 8
        start = time.perf_counter()
        serial = run_sweep(names)
        serial_wall = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run_sweep(names, executor=ProcessPoolExecutor(4))
        parallel_wall = time.perf_counter() - start
        assert _dumps(serial) == _dumps(parallel)
        assert serial_wall / parallel_wall > 1.5


class TestCli:
    def test_list_and_run_and_cache(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert cli_main(["list", "--tag", "table6a"]) == 0
        out = capsys.readouterr().out
        assert "table6a/aie-32x32x32" in out

        cache_dir = str(tmp_path / "cache")
        args = ["run", "smoke/engine-chain", "--cache-dir", cache_dir,
                "--json", str(tmp_path / "out.json")]
        assert cli_main(args) == 0
        first = capsys.readouterr().out
        assert "1 executed, 0 cache hit(s)" in first
        payload = json.loads((tmp_path / "out.json").read_text())
        assert payload[0]["scenario"] == "smoke/engine-chain"
        assert payload[0]["result"]["events"] > 0

        assert cli_main(args) == 0
        second = capsys.readouterr().out
        assert "0 executed, 1 cache hit(s)" in second

        assert cli_main(["cache", "--cache-dir", cache_dir]) == 0
        assert "1 entrie(s)" in capsys.readouterr().out
        assert cli_main(["cache", "--cache-dir", cache_dir, "--clear"]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_sweep_requires_a_selection(self, capsys):
        assert cli_main(["sweep"]) == 2
