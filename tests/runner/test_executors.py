"""Unit tests for the executor layer and the spool protocol.

The cross-executor byte-identity contract lives in
``tests/differential/test_executor_contract.py``; this file covers the
mechanics: scenario wire round-trips, executor construction/validation,
spool claim semantics (atomic-rename exclusivity), heartbeats, orphan
requeue, and the in-process worker loop.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.runner import REGISTRY, canonical_json
from repro.runner.cache import code_version
from repro.runner.executors import (ProcessPoolExecutor, SerialExecutor, Spool,
                                    WorkQueueExecutor, default_executor,
                                    format_job_id, scenario_from_payload,
                                    scenario_to_payload)
from repro.runner.scenarios import Scenario
from repro.runner.worker import run_worker


def _job_payload(job_id, scenario, backend="engine", segment_memo_dir=None):
    return {
        "job": job_id,
        "scenario": scenario_to_payload(scenario),
        "backend": backend,
        "segment_memo_dir": segment_memo_dir,
        "code_version": code_version(),
    }


CHEAP = Scenario(name="unit/chain", kind="engine_chain",
                 params={"n_msgs": 5, "stages": 1})


class TestScenarioWireFormat:
    def test_round_trip_is_identity(self):
        scenario = Scenario(name="a/b", kind="engine_chain",
                            params={"n_msgs": 3, "stages": 2},
                            tags=("x", "y"), description="d")
        rebuilt = scenario_from_payload(scenario_to_payload(scenario))
        assert rebuilt == scenario
        assert rebuilt.canonical() == scenario.canonical()

    def test_wire_form_is_json_able(self):
        payload = scenario_to_payload(REGISTRY.get("smoke/engine-chain"))
        assert scenario_from_payload(json.loads(canonical_json(payload))) \
            == REGISTRY.get("smoke/engine-chain")


class TestExecutorConstruction:
    def test_default_executor_maps_worker_counts(self):
        assert isinstance(default_executor(None), SerialExecutor)
        assert isinstance(default_executor(1), SerialExecutor)
        pool = default_executor(4)
        assert isinstance(pool, ProcessPoolExecutor)
        assert pool.workers == 4

    def test_pool_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolExecutor(0)

    def test_workqueue_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            WorkQueueExecutor(tmp_path, local_workers=-1)
        with pytest.raises(ValueError):
            WorkQueueExecutor(tmp_path, poll_s=0.0)
        with pytest.raises(ValueError):
            WorkQueueExecutor(tmp_path, orphan_timeout_s=0.0)

    def test_executors_are_context_managers(self, tmp_path):
        with SerialExecutor() as ex:
            assert ex.submit([], lambda s: None) == []
        with WorkQueueExecutor(tmp_path / "spool") as ex:
            assert ex.submit([], lambda s: None) == []

    def test_configure_absolutizes_memo_dir_for_workqueue(self, tmp_path,
                                                          monkeypatch):
        monkeypatch.chdir(tmp_path)
        executor = WorkQueueExecutor(tmp_path / "spool")
        executor.configure("engine", "rel-cache/segments")
        assert os.path.isabs(executor.segment_memo_dir)
        executor.configure("engine", None)
        assert executor.segment_memo_dir is None


class TestSpoolClaims:
    def test_claim_moves_job_and_preserves_payload(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        payload = _job_payload("j.00000", CHEAP)
        spool.enqueue("j.00000", payload)
        claimed = spool.claim("w1")
        assert claimed is not None and claimed.job_id == "j.00000"
        assert not list(spool.pending_dir.glob("*.json"))
        assert json.loads(claimed.path.read_text()) == payload

    def test_claim_is_exclusive(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue("j.00000", _job_payload("j.00000", CHEAP))
        first = spool.claim("w1")
        second = spool.claim("w2")
        assert first is not None
        assert second is None

    def test_claims_come_in_job_order(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        for index in range(3):
            job_id = f"j.{index:05d}"
            spool.enqueue(job_id, _job_payload(job_id, CHEAP))
        claimed = [spool.claim("w1").job_id for _ in range(3)]
        assert claimed == ["j.00000", "j.00001", "j.00002"]
        assert spool.claim("w1") is None

    def test_worker_ids_are_sanitized_in_filenames(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue("j.00000", _job_payload("j.00000", CHEAP))
        claimed = spool.claim("host/with:odd chars")
        assert claimed is not None
        assert "/" not in claimed.path.name[len("j.00000"):]
        spool.beat("host/with:odd chars")
        assert spool.live_workers(within_s=60.0)

    def test_job_ids_sort_lexicographically_past_100k(self):
        # Regression: f"{batch}.{index:05d}" overflowed its zero-padding at
        # 100k jobs, so lexicographic claim order diverged from submission
        # order exactly at the roadmap's DSE scale ("b.100000" < "b.99999"
        # as strings).
        indices = [0, 9, 99998, 99999, 100000, 100001, 10**6, 10**7]
        ids = [format_job_id("b", index) for index in indices]
        assert ids == sorted(ids)

    def test_claim_cache_tolerates_contention_and_late_enqueues(self,
                                                                tmp_path):
        # Two worker processes (two Spool instances) interleave claims over
        # one backlog: the listing cache must skip entries another worker
        # claimed first, never hand out a job twice, and still see jobs
        # enqueued after its snapshot.
        mine = Spool(tmp_path / "spool").ensure()
        other = Spool(tmp_path / "spool")
        for index in range(4):
            job_id = format_job_id("b", index)
            mine.enqueue(job_id, _job_payload(job_id, CHEAP))
        assert mine.claim("w1").job_id == "b.00000000"
        # The rival drains two jobs out from under `mine`'s cached listing.
        assert other.claim("w2").job_id == "b.00000001"
        assert other.claim("w2").job_id == "b.00000002"
        assert mine.claim("w1").job_id == "b.00000003"  # stale entries skipped
        assert mine.claim("w1") is None
        late = format_job_id("b", 4)
        mine.enqueue(late, _job_payload(late, CHEAP))
        assert mine.claim("w1").job_id == late  # fresh listing finds it
        claimed = {path.stem for path in mine.claimed_dir.glob("*.json")}
        assert len(claimed) == 5  # every job claimed exactly once


class TestSpoolOrphanRequeue:
    def test_stale_claim_is_requeued_with_identical_payload(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        payload = _job_payload("j.00000", CHEAP)
        spool.enqueue("j.00000", payload)
        claimed = spool.claim("dead-worker")
        # The dead worker never heartbeat; its claim file's age is the
        # liveness signal.  Backdate it far beyond any timeout.
        os.utime(claimed.path, (1.0, 1.0))
        requeued = spool.requeue_orphans(orphan_timeout_s=30.0)
        assert requeued == ["j.00000"]
        restored = spool.pending_dir / "j.00000.json"
        assert json.loads(restored.read_text()) == payload

    def test_fresh_heartbeat_protects_the_claim(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue("j.00000", _job_payload("j.00000", CHEAP))
        claimed = spool.claim("alive-worker")
        os.utime(claimed.path, (1.0, 1.0))  # old claim ...
        spool.beat("alive-worker")  # ... but a live heartbeat
        assert spool.requeue_orphans(orphan_timeout_s=30.0) == []
        assert claimed.path.exists()

    def test_stale_pending_job_is_not_instantly_orphaned(self, tmp_path):
        # Regression: os.replace preserves the pending file's mtime, so a
        # job that waited in pending/ longer than the orphan timeout used
        # to look abandoned the moment it was claimed (before the worker's
        # first heartbeat) -- and two workers would then execute it.  The
        # claim must be touched at claim time.
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue("j.00000", _job_payload("j.00000", CHEAP))
        pending = spool.pending_dir / "j.00000.json"
        os.utime(pending, (1.0, 1.0))  # waited in pending since forever
        claimed = spool.claim("slow-to-beat-worker")
        assert claimed.path.stat().st_mtime > 1.0
        assert spool.requeue_orphans(orphan_timeout_s=30.0) == []
        assert claimed.path.exists()

    def test_requeue_defaults_to_the_fileserver_clock(self, tmp_path,
                                                      monkeypatch):
        # Regression: with `now` omitted, requeue_orphans used the
        # submitter's local time.time() -- exactly the NFS clock-skew bug
        # the fs_now docstring warns about.  Simulate a submitter whose
        # local clock runs far ahead of the fileserver: filesystem mtimes
        # (heartbeats, claims) are untouched by the monkeypatch, so a
        # correct default must still see them as fresh.
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue("j.00000", _job_payload("j.00000", CHEAP))
        claimed = spool.claim("alive-worker")
        spool.beat("alive-worker")
        skewed = time.time() + 1e8
        monkeypatch.setattr("time.time", lambda: skewed)
        assert spool.requeue_orphans(orphan_timeout_s=30.0) == []
        assert claimed.path.exists()

    def test_job_id_filter_shields_co_tenant_submitters(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        for job_id in ("mine.00000", "theirs.00000"):
            spool.enqueue(job_id, _job_payload(job_id, CHEAP))
        for _ in range(2):
            os.utime(spool.claim("dead-worker").path, (1.0, 1.0))
        requeued = spool.requeue_orphans(orphan_timeout_s=30.0,
                                         job_ids=["mine.00000"])
        assert requeued == ["mine.00000"]
        assert (spool.pending_dir / "mine.00000.json").exists()
        assert not (spool.pending_dir / "theirs.00000.json").exists()


class TestSpoolLivenessAndMaintenance:
    def test_live_workers_defaults_to_the_fileserver_clock(self, tmp_path,
                                                           monkeypatch):
        # Regression: with `now` omitted, live_workers judged heartbeat
        # mtimes against the submitter-local time.time() -- the same NFS
        # clock-skew family as the requeue_orphans bug.  A skewed
        # submitter's _check_for_dead_pool would then falsely abort a sweep
        # (live external workers look dead) or hang forever (dead ones look
        # alive).  Heartbeat mtimes are untouched by the monkeypatch, so a
        # correct default must still see the worker as live.
        spool = Spool(tmp_path / "spool").ensure()
        spool.beat("external-worker")
        skewed = time.time() + 1e8
        monkeypatch.setattr("time.time", lambda: skewed)
        assert spool.live_workers(within_s=30.0) == ["external-worker"]

    def test_beat_with_info_publishes_live_counters(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        spool.beat("w1", info={"pid": 7, "host": "h", "processed": 0,
                               "started": 1000.0})
        spool.beat("w1", info={"pid": 7, "host": "h", "processed": 42,
                               "started": 1000.0})
        (record,) = spool.status()["workers"]
        assert record["worker"] == "w1"
        assert record["processed"] == 42
        assert record["pid"] == 7

    def test_status_reports_queue_depth_and_claim_ages(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        for index in range(3):
            job_id = format_job_id("b", index)
            spool.enqueue(job_id, _job_payload(job_id, CHEAP))
        claimed = spool.claim("w1")
        os.utime(claimed.path, (1.0, 1.0))
        status = spool.status()
        assert status["pending"] == 2
        assert status["results"] == 0
        (claim,) = status["claimed"]
        assert claim["job"] == "b.00000000" and claim["worker"] == "w1"
        assert claim["age_s"] > 1e6  # backdated to the epoch's first second

    def test_fs_now_leaves_no_clock_scratch_behind(self, tmp_path):
        # Regression: every fs_now call leaked one .clock file per token
        # forever (and two callers sharing a token could race each other's
        # scratch into the local-clock fallback).
        spool = Spool(tmp_path / "spool").ensure()
        for _ in range(3):
            spool.fs_now("submitter")
        assert not list(spool.workers_dir.glob("*.clock"))

    def test_drained_spool_gcs_to_empty(self, tmp_path):
        # Leak inventory after a batch whose submitter vanished and whose
        # workers died: uncollected results, a dead worker's claim +
        # heartbeat + log, a crashed caller's fs_now scratch, and a stale
        # published memo entry.  One GC pass must sweep all of it.
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue("b.00000000", _job_payload("b.00000000", CHEAP))
        claimed = spool.claim("dead-worker")
        spool.beat("dead-worker")
        spool.write_result("b.00000001", {"job": "b.00000001"})
        (spool.workers_dir / "crashed-caller.clock").touch()
        (spool.workers_dir / "dead-worker.log").write_text("log tail\n")
        spool.memo_sync([{"key": "deadbeef", "code_version": "x",
                          "result": {"latency_s": 1.0}}])
        for path in spool.root.rglob("*.*"):
            os.utime(path, (1.0, 1.0))  # everything aged far past max_age
        report = spool.gc(max_age_s=30.0)
        assert report["removed"] == {"results": 1, "claims": 1,
                                     "heartbeats": 1, "clocks": 1, "logs": 1,
                                     "memo": 1}
        for directory in (spool.claimed_dir, spool.results_dir,
                          spool.workers_dir, spool.memo_dir):
            assert not list(directory.iterdir())
        assert not claimed.path.exists()

    def test_gc_spares_live_workers_and_pending_jobs(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        # A live worker's long-running claim is work, not garbage.
        spool.enqueue("b.00000000", _job_payload("b.00000000", CHEAP))
        claimed = spool.claim("busy-worker")
        os.utime(claimed.path, (1.0, 1.0))
        spool.beat("busy-worker")
        # A pending job is a promise to some submitter, however old.
        spool.enqueue("b.00000001", _job_payload("b.00000001", CHEAP))
        os.utime(spool.pending_dir / "b.00000001.json", (1.0, 1.0))
        report = spool.gc(max_age_s=30.0)
        assert sum(report["removed"].values()) == 0
        assert (spool.pending_dir / "b.00000001.json").exists()
        assert claimed.path.exists()
        assert spool.live_workers(within_s=30.0) == ["busy-worker"]

    def test_gc_rejects_a_negative_age(self, tmp_path):
        with pytest.raises(ValueError):
            Spool(tmp_path / "spool").ensure().gc(max_age_s=-1.0)


class TestWorkerLoop:
    """The worker loop run in-process (the subprocess path is covered by the
    differential suite and the CLI tests)."""

    def test_processes_a_job_and_publishes_the_result(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue("j.00000", _job_payload("j.00000", CHEAP))
        processed = run_worker(spool.root, poll_s=0.01, max_jobs=1,
                               worker_id="unit-worker")
        assert processed == 1
        result = json.loads(spool.result_path("j.00000").read_text())
        assert result["scenario"] == "unit/chain"
        assert result["code_version"] == code_version()
        assert result["result"] == REGISTRY.run(CHEAP)
        # The claim is gone and the heartbeat file was cleaned up on exit.
        assert not list(spool.claimed_dir.glob("*.json"))
        assert not list(spool.workers_dir.glob("*.json"))

    def test_idle_exit_returns_zero_jobs(self, tmp_path):
        processed = run_worker(tmp_path / "spool", poll_s=0.01,
                               idle_exit_s=0.05, worker_id="idle-worker")
        assert processed == 0

    def test_corrupt_job_file_yields_recoverable_error_result(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        (spool.pending_dir / "j.00000.json").write_text("{definitely not json")
        processed = run_worker(spool.root, poll_s=0.01, max_jobs=1,
                               worker_id="unit-worker")
        assert processed == 1
        result = json.loads(spool.result_path("j.00000").read_text())
        assert result["error"]["type"] == "corrupt-job"

    def test_version_mismatch_yields_fatal_error_result(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        payload = _job_payload("j.00000", CHEAP)
        payload["code_version"] = "somebody-elses-tree"
        spool.enqueue("j.00000", payload)
        run_worker(spool.root, poll_s=0.01, max_jobs=1, worker_id="unit-worker")
        result = json.loads(spool.result_path("j.00000").read_text())
        assert result["error"]["type"] == "version-mismatch"

    def test_vanished_claim_publishes_nothing(self, tmp_path):
        # A stalled worker whose claim was orphan-requeued away must not
        # publish anything (it would clobber the new owner's result) and
        # must not count the job as processed.
        from repro.runner.worker import _execute
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue("j.00000", _job_payload("j.00000", CHEAP))
        claimed = spool.claim("stalled-worker")
        claimed.path.unlink()  # the orphan requeue, as seen by the worker
        assert _execute(claimed, "stalled-worker") is None
        assert not list(spool.results_dir.glob("*.json"))

    def test_fs_now_tracks_the_spool_filesystem_clock(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        before = time.time()
        now = spool.fs_now("unit-submitter")
        assert abs(now - before) < 60.0  # same clock on a local tmpdir
        # The scratch file must stay invisible to the protocol's globs.
        assert not list(spool.workers_dir.glob("*.json"))

    def test_raising_scenario_yields_exception_result(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        bad = Scenario(name="unit/bad", kind="no-such-kind", params={})
        spool.enqueue("j.00000", _job_payload("j.00000", bad))
        run_worker(spool.root, poll_s=0.01, max_jobs=1, worker_id="unit-worker")
        result = json.loads(spool.result_path("j.00000").read_text())
        assert result["error"]["type"] == "exception"
        assert "no-such-kind" in result["error"]["message"]


class TestWorkQueueExecutorRecovery:
    """Submitter-side failure handling, with the worker driven in-process so
    every interleaving is deterministic."""

    def _submit_async(self, executor, scenarios):
        box = {}

        def target():
            try:
                box["results"] = executor.submit(scenarios, run_fn=None)
            except BaseException as error:  # noqa: BLE001 - reported by test
                box["error"] = error

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        return thread, box

    def _wait_for(self, predicate, timeout_s=30.0, message="condition"):
        deadline = time.monotonic() + timeout_s
        while not predicate():
            if time.monotonic() > deadline:
                raise AssertionError(f"timed out waiting for {message}")
            time.sleep(0.01)

    def test_worker_exception_propagates_as_runtime_error(self, tmp_path):
        executor = WorkQueueExecutor(tmp_path / "spool", poll_s=0.01,
                                     timeout_s=60.0)
        executor.configure("engine", None)
        bad = Scenario(name="unit/bad", kind="no-such-kind", params={})
        thread, box = self._submit_async(executor, [bad])
        self._wait_for(lambda: list(executor.spool.pending_dir.glob("*.json")),
                       message="job publication")
        run_worker(executor.spool.root, poll_s=0.01, max_jobs=1,
                   worker_id="unit-worker")
        thread.join(timeout=30.0)
        assert isinstance(box.get("error"), RuntimeError)
        assert "no-such-kind" in str(box["error"])
        # Failure cleanup: no pending or result files left for the batch.
        assert not list(executor.spool.pending_dir.glob("*.json"))
        assert not list(executor.spool.results_dir.glob("*.json"))

    def test_version_mismatched_worker_is_fatal(self, tmp_path):
        executor = WorkQueueExecutor(tmp_path / "spool", poll_s=0.01,
                                     timeout_s=60.0)
        executor.configure("engine", None)
        thread, box = self._submit_async(executor, [CHEAP])
        self._wait_for(lambda: list(executor.spool.pending_dir.glob("*.json")),
                       message="job publication")
        # Play a worker from another source tree: claim the job ourselves
        # and publish a result recorded under a different code version.
        claimed = executor.spool.claim("stale-worker")
        executor.spool.write_result(claimed.job_id, {
            "job": claimed.job_id, "worker": "stale-worker",
            "scenario": CHEAP.name, "result": {"events": 1},
            "elapsed_s": 0.0, "code_version": "stale-tree",
        })
        thread.join(timeout=30.0)
        assert isinstance(box.get("error"), RuntimeError)
        assert "different code version" in str(box["error"])

    def test_timeout_raises_instead_of_hanging(self, tmp_path):
        executor = WorkQueueExecutor(tmp_path / "spool", poll_s=0.01,
                                     timeout_s=0.2)
        executor.configure("engine", None)
        with pytest.raises(TimeoutError, match="workqueue sweep timed out"):
            executor.submit([CHEAP], run_fn=None)
        # Abandoned jobs are withdrawn so no worker picks them up later.
        assert not list(executor.spool.pending_dir.glob("*.json"))

    def test_dead_local_worker_pool_fails_fast(self, tmp_path, monkeypatch):
        executor = WorkQueueExecutor(tmp_path / "spool", local_workers=1,
                                     poll_s=0.01, orphan_timeout_s=0.1,
                                     timeout_s=60.0)
        executor.configure("engine", None)

        class DeadProc:
            returncode = 1

            def poll(self):
                return 1

        monkeypatch.setattr(
            executor, "_spawn_local_workers",
            lambda: executor._procs.append(DeadProc()))
        with pytest.raises(RuntimeError, match="local workqueue worker"):
            executor.submit([CHEAP], run_fn=None)


class TestSpoolMemoSync:
    def _entry(self, key, latency=1.0):
        return {"key": key, "code_version": "abc123",
                "result": {"latency_s": latency}}

    def test_push_then_pull_round_trips_entries(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        pushed = [self._entry("workload-" + "a" * 64),
                  self._entry("b" * 64)]
        fetched = spool.memo_sync(pushed)
        assert sorted(e["key"] for e in fetched) == \
            sorted(e["key"] for e in pushed)
        # A second participant pulls them without pushing anything.
        assert sorted(e["key"] for e in spool.memo_sync([])) == \
            sorted(e["key"] for e in pushed)

    def test_known_keys_are_not_returned(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        keys = ["a" * 64, "b" * 64]
        spool.memo_sync([self._entry(key) for key in keys])
        assert spool.memo_sync([], known=keys) == []
        fetched = spool.memo_sync([], known=keys[:1])
        assert [e["key"] for e in fetched] == [keys[1]]

    def test_invalid_entries_and_keys_are_skipped(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        bad = [None, "text", {"no": "key"},
               self._entry("has/slash"), self._entry("dot.dot"),
               self._entry(""), self._entry("x" * 101)]
        assert spool.memo_sync(bad) == []
        assert not list(spool.memo_dir.glob("*"))

    def test_garbage_memo_files_are_skipped(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        spool.memo_sync([self._entry("a" * 64)])
        (spool.memo_dir / ("c" * 64 + ".json")).write_text("{not json")
        fetched = spool.memo_sync([])
        assert [e["key"] for e in fetched] == ["a" * 64]

    def test_republish_overwrites_idempotently(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        spool.memo_sync([self._entry("a" * 64, latency=1.0)])
        spool.memo_sync([self._entry("a" * 64, latency=2.0)])
        (fetched,) = spool.memo_sync([])
        assert fetched["result"]["latency_s"] == 2.0
        assert len(list(spool.memo_dir.glob("*.json"))) == 1
