"""Determinism regressions: identical runs must produce identical bytes.

The simulator seeds all RNG use explicitly (``repro.workloads.tensors``
defaults to ``DEFAULT_SEED``), and the engine's event ordering is fully
deterministic, so running the same scenario twice -- in-process, in a worker,
or through the cache -- must yield byte-identical serialized results.
"""

from __future__ import annotations


import numpy as np

from repro.runner import (REGISTRY, ProcessPoolExecutor, ResultCache,
                          canonical_json, run_sweep)
from repro.workloads import tensors


def _run_bytes(name: str) -> str:
    return canonical_json(REGISTRY.run(name))


class TestScenarioDeterminism:
    def test_engine_chain_twice_identical(self):
        assert _run_bytes("smoke/engine-chain") == _run_bytes("smoke/engine-chain")

    def test_simulated_gemm_twice_identical(self):
        assert _run_bytes("table6b/gemm-1024") == _run_bytes("table6b/gemm-1024")

    def test_encoder_scenario_twice_identical(self):
        # Full event-driven encoder simulation: every segment latency, byte
        # count, and uop count must match exactly across runs.
        assert _run_bytes("table9/all-optimizations") == \
            _run_bytes("table9/all-optimizations")

    def test_cache_round_trip_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        names = ["table6b/gemm-1024", "smoke/engine-chain"]
        fresh = run_sweep(names, cache=cache)
        cached = run_sweep(names, cache=cache)
        assert all(o.cached for o in cached)
        for fresh_outcome, cached_outcome in zip(fresh, cached):
            assert canonical_json(fresh_outcome.result) == \
                canonical_json(cached_outcome.result)

    def test_worker_results_match_in_process(self):
        names = ["smoke/engine-chain", "table6b/charm-1024"]
        in_process = run_sweep(names)
        via_pool = run_sweep(names, executor=ProcessPoolExecutor(2))
        for a, b in zip(in_process, via_pool):
            assert canonical_json(a.result) == canonical_json(b.result)


class TestSeededRng:
    def test_default_rng_is_reproducible(self):
        first = tensors.make_rng().standard_normal(16)
        second = tensors.make_rng().standard_normal(16)
        np.testing.assert_array_equal(first, second)

    def test_workload_tensors_are_reproducible(self):
        a = tensors.activation((8, 8), tensors.make_rng())
        b = tensors.activation((8, 8), tensors.make_rng())
        np.testing.assert_array_equal(a, b)
        assert a.tobytes() == b.tobytes()
