"""Segment-memo keying, invalidation, and wiring tests.

The memo must hit iff a simulation would be byte-identical: same uOP
streams, same hardware configuration, same codegen options, same code
version.  Anything else -- a changed tile knob, a scaled bandwidth (which
does not even change the uOPs!), a bumped code version, a corrupted disk
entry -- must be a miss that falls back to fresh simulation.
"""

from __future__ import annotations

import json

import pytest

from repro.runner import cache as cache_module
from repro.runner.cache import ResultCache, SegmentMemo
from repro.runner.sweep import run_sweep
from repro.xnn import CodegenOptions, XNNConfig, XNNExecutor
from repro.xnn.codegen import ProgramBuilder
from repro.xnn.datapath import XNNDatapath
from repro.workloads.layers import MatMulLayer


def _gemm_fingerprint(config: XNNConfig, options: CodegenOptions) -> str:
    xnn = XNNDatapath(config)
    memory = xnn.memory
    memory.add("lhs", (256, 256))
    memory.add("rhs", (256, 256))
    memory.allocate("out", (256, 256))
    builder = ProgramBuilder(xnn, options)
    builder.add_gemm_layer(MatMulLayer("gemm", m=256, k=256, n=256),
                           lhs="lhs", rhs="rhs", out="out")
    return builder.fingerprint()


TIMING_CONFIG = XNNConfig(carry_data=False)


class TestFingerprint:
    def test_identical_programs_have_identical_fingerprints(self):
        first = _gemm_fingerprint(TIMING_CONFIG, CodegenOptions())
        second = _gemm_fingerprint(TIMING_CONFIG, CodegenOptions())
        assert first == second

    def test_codegen_options_change_fingerprint(self):
        base = _gemm_fingerprint(TIMING_CONFIG, CodegenOptions())
        tiled = _gemm_fingerprint(TIMING_CONFIG, CodegenOptions(tile_m=384))
        assert base != tiled

    def test_config_change_without_uop_change_fingerprints_differently(self):
        # bandwidth_scale alters transfer *times* but not a single uOP --
        # the config must be part of the key or scaled runs would collide.
        base = _gemm_fingerprint(TIMING_CONFIG, CodegenOptions())
        scaled = _gemm_fingerprint(XNNConfig(carry_data=False,
                                             bandwidth_scale=2.0),
                                   CodegenOptions())
        assert base != scaled

    def test_code_version_changes_fingerprint(self, monkeypatch):
        base = _gemm_fingerprint(TIMING_CONFIG, CodegenOptions())
        monkeypatch.setattr(cache_module, "code_version",
                            lambda: "deadbeefdeadbeef")
        bumped = _gemm_fingerprint(TIMING_CONFIG, CodegenOptions())
        assert base != bumped


class TestMemoBehaviour:
    def test_identical_runs_hit_and_match_fresh_exactly(self):
        # A cold segment misses both layers (upstream workload key, then
        # downstream program fingerprint) and stores under both; a warm
        # segment is one upstream hit with zero codegen.
        memo = SegmentMemo()
        executor = XNNExecutor(config=TIMING_CONFIG, segment_memo=memo)
        first, _ = executor.run_gemm(256, 256, 256)
        assert memo.hits == 0 and memo.misses == 2
        second, _ = executor.run_gemm(256, 256, 256)
        assert memo.hits == 1 and memo.misses == 2

        fresh, _ = XNNExecutor(config=TIMING_CONFIG,
                               segment_memo=None).run_gemm(256, 256, 256)
        for memoized in (first, second):
            assert memoized.latency_s == fresh.latency_s
            assert memoized.ddr_bytes == fresh.ddr_bytes
            assert memoized.lpddr_bytes == fresh.lpddr_bytes
            assert memoized.uops == fresh.uops

    def test_option_change_misses(self):
        memo = SegmentMemo()
        XNNExecutor(config=TIMING_CONFIG, segment_memo=memo).run_gemm(256, 256, 256)
        XNNExecutor(config=TIMING_CONFIG, options=CodegenOptions(tile_m=384),
                    segment_memo=memo).run_gemm(256, 256, 256)
        assert memo.hits == 0 and memo.misses == 4

    def test_config_change_misses(self):
        memo = SegmentMemo()
        XNNExecutor(config=TIMING_CONFIG, segment_memo=memo).run_gemm(256, 256, 256)
        XNNExecutor(config=XNNConfig(carry_data=False, bandwidth_scale=2.0),
                    segment_memo=memo).run_gemm(256, 256, 256)
        assert memo.hits == 0 and memo.misses == 4

    def test_functional_runs_bypass_the_memo(self):
        import numpy as np
        memo = SegmentMemo()
        executor = XNNExecutor(config=XNNConfig(carry_data=True),
                               segment_memo=memo)
        rng = np.random.default_rng(0)
        lhs = rng.standard_normal((64, 64)).astype(np.float32)
        rhs = rng.standard_normal((64, 64)).astype(np.float32)
        _, out = executor.run_gemm(64, 64, 64, lhs_data=lhs, rhs_data=rhs)
        assert out is not None
        assert len(memo) == 0 and memo.hits == 0 and memo.misses == 0


class TestDiskLayer:
    def test_disk_round_trip_is_exact_across_memo_instances(self, tmp_path):
        first = SegmentMemo(root=tmp_path)
        executor = XNNExecutor(config=TIMING_CONFIG, segment_memo=first)
        result, _ = executor.run_gemm(256, 256, 256)

        # A fresh memo on the same directory serves the entry without any
        # simulation, byte-identically (JSON float round-trip is exact).
        second = SegmentMemo(root=tmp_path)
        executor = XNNExecutor(config=TIMING_CONFIG, segment_memo=second)
        reloaded, _ = executor.run_gemm(256, 256, 256)
        assert second.hits == 1 and second.misses == 0
        assert reloaded.latency_s == result.latency_s
        assert reloaded.ddr_bytes == result.ddr_bytes
        assert reloaded.lpddr_bytes == result.lpddr_bytes

    def test_stale_code_version_on_disk_misses(self, tmp_path):
        memo = SegmentMemo(root=tmp_path)
        XNNExecutor(config=TIMING_CONFIG, segment_memo=memo).run_gemm(256, 256, 256)
        entries = sorted(tmp_path.glob("segment-*.json"))
        assert entries
        for path in entries:
            payload = json.loads(path.read_text())
            payload["code_version"] = "0000000000000000"
            path.write_text(json.dumps(payload))
        stale = SegmentMemo(root=tmp_path)
        XNNExecutor(config=TIMING_CONFIG, segment_memo=stale).run_gemm(256, 256, 256)
        assert stale.hits == 0 and stale.misses == 2

    def test_corrupted_disk_entry_is_a_miss(self, tmp_path):
        memo = SegmentMemo(root=tmp_path)
        XNNExecutor(config=TIMING_CONFIG, segment_memo=memo).run_gemm(256, 256, 256)
        for path in tmp_path.glob("segment-*.json"):
            path.write_text("{not json")
        corrupted = SegmentMemo(root=tmp_path)
        XNNExecutor(config=TIMING_CONFIG,
                    segment_memo=corrupted).run_gemm(256, 256, 256)
        assert corrupted.hits == 0 and corrupted.misses == 2


class TestSweepWiring:
    @pytest.fixture(autouse=True)
    def _isolate_process_memo(self):
        # The sweep attaches the on-disk layer to the process-wide memo;
        # detach and drop test entries afterwards so other tests see the
        # same pristine memo they started with.
        memo = cache_module.process_segment_memo()
        yield
        memo.set_root(None)

    def test_cached_sweep_persists_segment_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        outcomes = run_sweep(["smoke/engine-chain"], cache=cache)
        assert not outcomes[0].cached
        # engine_chain runs the raw engine (no executor), so only the wiring
        # is observable here: the memo must now point at the cache directory.
        assert cache_module.process_segment_memo().root == cache.segments_dir

    def test_prune_keeps_current_and_drops_stale_segments(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        memo = SegmentMemo(root=cache.segments_dir)
        XNNExecutor(config=TIMING_CONFIG, segment_memo=memo).run_gemm(256, 256, 256)
        # one simulated segment persists two entries: upstream + downstream.
        assert len(list(cache.segments_dir.glob("segment-*.json"))) == 2

        stats = cache.prune()
        assert stats.removed == 0 and stats.kept == 2

        for path in cache.segments_dir.glob("segment-*.json"):
            payload = json.loads(path.read_text())
            payload["code_version"] = "0000000000000000"
            path.write_text(json.dumps(payload))
        stats = cache.prune()
        assert stats.removed == 2 and stats.kept == 0

    def test_clear_removes_segment_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        memo = SegmentMemo(root=cache.segments_dir)
        XNNExecutor(config=TIMING_CONFIG, segment_memo=memo).run_gemm(256, 256, 256)
        assert cache.clear() == 2
        assert not list(cache.segments_dir.glob("segment-*.json"))


class TestCrossHostSurface:
    """The ``take_new`` / ``keys`` / ``absorb`` trio behind spool memo sync."""

    def _entry(self, key="workload-" + "a" * 64, latency=1.5):
        from repro.runner.cache import code_version
        return {"key": key, "code_version": code_version(),
                "result": {"latency_s": latency, "ddr_bytes": 1,
                           "lpddr_bytes": 2, "uops": 3}}

    def test_take_new_returns_fresh_entries_once(self):
        memo = SegmentMemo()
        executor = XNNExecutor(config=TIMING_CONFIG, segment_memo=memo)
        executor.run_gemm(256, 256, 256)
        entries = memo.take_new()
        assert len(entries) == 2  # upstream + downstream key
        from repro.runner.cache import code_version
        for entry in entries:
            assert entry["code_version"] == code_version()
            assert set(entry["result"]) == {"latency_s", "ddr_bytes",
                                            "lpddr_bytes", "uops"}
        assert memo.take_new() == []  # drained
        # A warm run creates nothing new to ship.
        executor.run_gemm(256, 256, 256)
        assert memo.take_new() == []

    def test_absorb_accepts_current_version_and_serves_hits(self):
        memo = SegmentMemo()
        entry = self._entry()
        assert memo.absorb([entry]) == 1
        assert memo.keys() == [entry["key"]]
        assert memo.load(entry["key"]) == entry["result"]
        assert memo.hits == 1

    def test_absorbed_entries_do_not_ship_again(self):
        # No ping-pong: what came from a peer is not in take_new().
        memo = SegmentMemo()
        assert memo.absorb([self._entry()]) == 1
        assert memo.take_new() == []

    def test_absorb_does_not_overwrite_local_entries(self):
        memo = SegmentMemo()
        entry = self._entry()
        memo.store(entry["key"], {"latency_s": 9.0})
        memo.take_new()
        # A valid entry for a key we already hold is accepted (validated)
        # but must not replace the local result.
        assert memo.absorb([self._entry(latency=1.0)]) == 1
        assert memo.load(entry["key"]) == {"latency_s": 9.0}

    def test_absorb_rejects_malformed_and_stale_entries(self):
        memo = SegmentMemo()
        stale = {**self._entry(), "code_version": "0" * 16}
        rejects = [None, 42, {}, {"key": 7, "code_version": "x",
                                  "result": {}},
                   {"key": "k", "code_version": "x"},
                   {"key": "k", "code_version": "x", "result": "not-a-dict"},
                   stale]
        assert memo.absorb(rejects) == 0
        assert memo.keys() == []

    def test_clear_drops_pending_fresh_entries(self):
        memo = SegmentMemo()
        executor = XNNExecutor(config=TIMING_CONFIG, segment_memo=memo)
        executor.run_gemm(256, 256, 256)
        memo.clear()
        assert memo.take_new() == []
