"""Direct tests for the ``python -m repro.runner`` CLI.

Covers every subcommand (list / run / sweep / cache) through ``main()`` with
``capsys``, and pins the robustness contract: user errors -- unknown scenario
names, invalid worker counts, unsupported backends, empty selections -- exit
with status 2 and a one-line message, never a traceback.
"""

from __future__ import annotations

import json

import pytest

from repro.runner.cli import main


def _run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestListCommand:
    def test_list_prints_catalogue_and_tags(self, capsys):
        code, out, err = _run(capsys, "list")
        assert code == 0 and not err
        assert "table6b/gemm-1024" in out
        assert "smoke/engine-chain" in out
        assert "tags:" in out

    def test_list_filters_by_tag(self, capsys):
        code, out, _ = _run(capsys, "list", "--tag", "table9")
        assert code == 0
        assert "table9/no-optimize" in out
        assert "table6b/gemm-1024" not in out

    def test_list_shows_backends(self, capsys):
        code, out, _ = _run(capsys, "list", "--tag", "table6b")
        assert code == 0
        assert "(engine/analytic)" in out


class TestRunCommand:
    def test_run_executes_and_prints_headline(self, capsys, tmp_path):
        code, out, err = _run(capsys, "run", "table6a/aie-32x32x32",
                              "--cache-dir", str(tmp_path))
        assert code == 0 and not err
        assert "GFLOPS" in out
        assert "1 scenario(s) on the engine backend" in out

    def test_run_analytic_backend(self, capsys, tmp_path):
        code, out, _ = _run(capsys, "run", "table6b/gemm-1024",
                            "--backend", "analytic", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "analytic backend" in out

    def test_run_preserves_user_name_order(self, capsys, tmp_path):
        code, out, _ = _run(capsys, "run", "table6a/aie-32x32x32",
                            "table6a/aie-32x16x32", "--cache-dir", str(tmp_path))
        assert code == 0
        lines = [line for line in out.splitlines()
                 if line.startswith("table6a/")]
        assert [line.split()[0] for line in lines] == ["table6a/aie-32x32x32",
                                                "table6a/aie-32x16x32"]

    def test_run_writes_json_with_backend(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        code, _, _ = _run(capsys, "run", "smoke/engine-chain", "--no-cache",
                          "--json", str(path))
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload[0]["scenario"] == "smoke/engine-chain"
        assert payload[0]["backend"] == "engine"
        assert payload[0]["result"]["events"] > 0


class TestSweepCommand:
    def test_sweep_by_tag(self, capsys, tmp_path):
        code, out, _ = _run(capsys, "sweep", "--tag", "table6a",
                            "--cache-dir", str(tmp_path))
        assert code == 0
        assert "3 scenario(s)" in out

    def test_sweep_without_selection_errors(self, capsys):
        code, _, err = _run(capsys, "sweep")
        assert code == 2
        assert "pass scenario names" in err

    def test_sweep_with_unmatched_tag_errors(self, capsys):
        code, _, err = _run(capsys, "sweep", "--tag", "no-such-tag")
        assert code == 2
        assert "no scenarios matched" in err

    def test_sweep_cache_round_trip(self, capsys, tmp_path):
        code, out, _ = _run(capsys, "sweep", "--tag", "table6a",
                            "--cache-dir", str(tmp_path))
        assert code == 0 and "3 executed" in out
        code, out, _ = _run(capsys, "sweep", "--tag", "table6a",
                            "--cache-dir", str(tmp_path))
        assert code == 0
        assert "0 executed" in out and "3 cache hit(s)" in out


class TestCacheCommand:
    def test_cache_show_and_clear(self, capsys, tmp_path):
        _run(capsys, "run", "table6a/aie-32x32x32", "--cache-dir", str(tmp_path))
        code, out, _ = _run(capsys, "cache", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "1 entrie(s)" in out
        code, out, _ = _run(capsys, "cache", "--clear", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "removed 1 entrie(s)" in out
        code, out, _ = _run(capsys, "cache", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "0 entrie(s)" in out


class TestCachePruneCommand:
    def test_prune_reports_kept_and_removed(self, capsys, tmp_path):
        _run(capsys, "run", "table6a/aie-32x32x32", "--cache-dir", str(tmp_path))
        code, out, err = _run(capsys, "cache", "--prune",
                              "--cache-dir", str(tmp_path))
        assert code == 0 and not err
        assert "pruned 0 entrie(s)" in out
        assert "kept 1 current entrie(s)" in out

    def test_prune_survives_corrupted_entries(self, capsys, tmp_path):
        """The satellite bugfix: corrupted entries are skipped with a
        warning on stderr and the command still exits 0 -- no traceback."""
        _run(capsys, "run", "table6a/aie-32x32x32", "--cache-dir", str(tmp_path))
        (tmp_path / "garbage-entry.json").write_text("{not json")
        code, out, err = _run(capsys, "cache", "--prune",
                              "--cache-dir", str(tmp_path))
        assert code == 0
        assert "warning: removing corrupted entry garbage-entry.json" in err
        assert "Traceback" not in err
        assert "pruned 1 entrie(s)" in out

    def test_show_clear_prune_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "--clear", "--prune"])
        assert excinfo.value.code == 2


class TestExploreCommand:
    def test_explore_smoke_space_end_to_end(self, capsys, tmp_path):
        code, out, err = _run(capsys, "explore", "--space", "encoder-smoke",
                              "--strategy", "grid", "--budget", "8",
                              "--verify-top", "2",
                              "--cache-dir", str(tmp_path))
        assert code == 0 and not err
        assert "Pareto frontier" in out
        assert "Engine verification" in out
        assert "engine-verified" in out

    def test_explore_writes_json_and_report(self, capsys, tmp_path):
        json_path = tmp_path / "report.json"
        report_path = tmp_path / "frontier.txt"
        code, _, _ = _run(capsys, "explore", "--space", "encoder-smoke",
                          "--strategy", "halving", "--budget", "8",
                          "--verify-top", "2", "--seed", "3",
                          "--cache-dir", str(tmp_path / "cache"),
                          "--json", str(json_path),
                          "--report", str(report_path))
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["space"] == "encoder-smoke"
        assert payload["contract_ok"] is True
        assert payload["frontier"]
        assert "Pareto frontier" in report_path.read_text()

    def test_explore_list_spaces(self, capsys):
        code, out, err = _run(capsys, "explore", "--list-spaces")
        assert code == 0 and not err
        assert "encoder-smoke" in out
        assert "axis num_mme" in out

    def test_explore_unknown_space_exits_2(self, capsys):
        code, _, err = _run(capsys, "explore", "--space", "warp-drive",
                            "--no-cache")
        assert code == 2
        assert "unknown design space" in err and "Traceback" not in err

    def test_explore_unknown_strategy_exits_2(self, capsys):
        code, _, err = _run(capsys, "explore", "--strategy", "annealing",
                            "--no-cache")
        assert code == 2
        assert "unknown search strategy" in err

    def test_explore_negative_verify_top_exits_2(self, capsys):
        code, _, err = _run(capsys, "explore", "--space", "encoder-smoke",
                            "--verify-top", "-1", "--no-cache")
        assert code == 2
        assert "--verify-top" in err


class TestRobustness:
    """User errors exit 2 with a message on stderr -- never a traceback."""

    def test_run_unknown_scenario(self, capsys):
        code, _, err = _run(capsys, "run", "no/such-scenario", "--no-cache")
        assert code == 2
        assert "unknown scenario" in err
        assert "Traceback" not in err

    def test_sweep_unknown_extra_name(self, capsys):
        code, _, err = _run(capsys, "sweep", "no/such-scenario",
                            "--tag", "table6a", "--no-cache")
        assert code == 2
        assert "unknown scenario" in err

    @pytest.mark.parametrize("workers", ["0", "-4", "two"])
    def test_invalid_workers_rejected(self, capsys, workers):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "smoke/engine-chain", "--workers", workers])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--workers" in err and "Traceback" not in err

    def test_unknown_backend_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "smoke/engine-chain", "--backend", "quantum"])
        assert excinfo.value.code == 2
        assert "--backend" in capsys.readouterr().err

    def test_unsupported_backend_for_kind(self, capsys):
        # A registry kind that only implements the engine backend must fail
        # cleanly when asked for the analytic one.  The global registry is
        # restored afterwards so catalogue-wide contract tests stay clean.
        from repro.runner import REGISTRY

        REGISTRY.kind("cli-test-engine-only")(lambda: {"ok": True})
        REGISTRY.add("cli-test/engine-only", "cli-test-engine-only",
                     tags=("cli-test",))
        try:
            code, _, err = _run(capsys, "run", "cli-test/engine-only",
                                "--backend", "analytic", "--no-cache")
            assert code == 2
            assert "does not support the 'analytic' backend" in err
        finally:
            REGISTRY._scenarios.pop("cli-test/engine-only")
            REGISTRY._kinds.pop("cli-test-engine-only")


class TestWorkersAuto:
    def test_auto_resolves_to_cpu_count(self):
        import os

        from repro.runner.cli import _build_parser
        args = _build_parser().parse_args(["sweep", "--all",
                                           "--workers", "auto"])
        assert args.workers == (os.cpu_count() or 1)

    def test_auto_is_case_insensitive(self):
        from repro.runner.cli import _build_parser
        args = _build_parser().parse_args(["run", "x", "--workers", "AUTO"])
        assert args.workers >= 1

    def test_plain_integers_still_parse(self):
        from repro.runner.cli import _build_parser
        args = _build_parser().parse_args(["sweep", "--all", "--workers", "3"])
        assert args.workers == 3

    def test_sweep_help_documents_auto(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "'auto'" in out and "CPU count" in out


class TestExecutorSelection:
    def test_executor_serial_explicit(self, capsys, tmp_path):
        code, out, _ = _run(capsys, "run", "table6b/charm-1024",
                            "--executor", "serial",
                            "--cache-dir", str(tmp_path))
        assert code == 0
        assert "1 executed" in out

    def test_workqueue_requires_spool(self, capsys):
        code, _, err = _run(capsys, "run", "smoke/engine-chain",
                            "--executor", "workqueue", "--no-cache")
        assert code == 2
        assert "--spool" in err and "Traceback" not in err

    def test_spool_requires_workqueue(self, capsys, tmp_path):
        code, _, err = _run(capsys, "run", "smoke/engine-chain",
                            "--spool", str(tmp_path / "spool"), "--no-cache")
        assert code == 2
        assert "only meaningful with --executor workqueue" in err

    def test_serial_contradicts_multiple_workers(self, capsys):
        code, _, err = _run(capsys, "run", "smoke/engine-chain",
                            "--executor", "serial", "--workers", "4",
                            "--no-cache")
        assert code == 2
        assert "contradicts" in err

    def test_unknown_executor_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "smoke/engine-chain", "--executor", "slurm"])
        assert excinfo.value.code == 2
        assert "--executor" in capsys.readouterr().err

    def test_workqueue_sweep_end_to_end(self, capsys, tmp_path):
        code, out, err = _run(capsys, "sweep", "fig18/charm-b1",
                              "fig18/charm-b2", "--executor", "workqueue",
                              "--spool", str(tmp_path / "spool"),
                              "--backend", "analytic", "--no-cache")
        assert code == 0, err
        assert "2 executed" in out


class TestWorkerCommand:
    def test_worker_requires_spool(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["worker"])
        assert excinfo.value.code == 2
        assert "--spool" in capsys.readouterr().err

    def test_worker_idle_exit_on_empty_spool(self, capsys, tmp_path):
        code, out, err = _run(capsys, "worker",
                              "--spool", str(tmp_path / "spool"),
                              "--poll", "0.01", "--idle-exit", "0.05",
                              "--worker-id", "cli-test-worker")
        assert code == 0 and not err
        assert "cli-test-worker" in out
        assert "processed 0 job(s)" in out

    def test_worker_drains_published_jobs(self, capsys, tmp_path):
        from repro.runner import REGISTRY, canonical_json
        from repro.runner.cache import code_version
        from repro.runner.executors import Spool, scenario_to_payload
        spool = Spool(tmp_path / "spool").ensure()
        scenario = REGISTRY.get("table6b/charm-1024")
        spool.enqueue("cli.00000", {
            "job": "cli.00000", "scenario": scenario_to_payload(scenario),
            "backend": "engine", "segment_memo_dir": None,
            "code_version": code_version(),
        })
        code, out, _ = _run(capsys, "worker",
                            "--spool", str(tmp_path / "spool"),
                            "--poll", "0.01", "--max-jobs", "1")
        assert code == 0
        assert "processed 1 job(s)" in out
        result = json.loads(spool.result_path("cli.00000").read_text())
        assert canonical_json(result["result"]) == \
            canonical_json(REGISTRY.run(scenario))

    def test_worker_rejects_non_positive_poll(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["worker", "--spool", "s", "--poll", "0"])
        assert excinfo.value.code == 2
        assert "--poll" in capsys.readouterr().err


class TestSpoolCommands:
    """``spool --status`` / ``spool --gc`` over both transports, and the
    ``spoold`` server's user-error handling."""

    def _live_spool(self, tmp_path):
        from repro.runner.executors import Spool
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue("cli.00000000", {"job": "cli.00000000"})
        spool.beat("cli-worker", info={"pid": 1, "host": "h",
                                       "processed": 4, "started": 1.0})
        return spool

    def test_spool_status_renders_queue_and_workers(self, capsys, tmp_path):
        spool = self._live_spool(tmp_path)
        code, out, err = _run(capsys, "spool", str(spool.root), "--status")
        assert code == 0 and not err
        assert "Spool status" in out
        assert "cli-worker" in out
        assert "1 pending job(s)" in out

    def test_spool_status_is_the_default_action(self, capsys, tmp_path):
        spool = self._live_spool(tmp_path)
        code, out, _ = _run(capsys, "spool", str(spool.root))
        assert code == 0
        assert "Spool status" in out

    def test_spool_gc_sweeps_and_reports(self, capsys, tmp_path):
        import os
        spool = self._live_spool(tmp_path)
        spool.write_result("old.00000000", {"job": "old.00000000"})
        for path in spool.root.rglob("*.json"):
            os.utime(path, (1.0, 1.0))
        code, out, err = _run(capsys, "spool", str(spool.root),
                              "--gc", "--max-age", "60")
        assert code == 0 and not err
        assert "removed 2 file(s)" in out  # result + heartbeat; pending kept
        assert (spool.pending_dir / "cli.00000000.json").exists()

    def test_spool_gc_is_a_no_op_on_a_clean_spool(self, capsys, tmp_path):
        from repro.runner.executors import Spool
        Spool(tmp_path / "spool").ensure()
        code, out, _ = _run(capsys, "spool", str(tmp_path / "spool"), "--gc")
        assert code == 0
        assert "removed 0 file(s)" in out

    def test_spool_status_json_is_machine_readable(self, capsys, tmp_path):
        spool = self._live_spool(tmp_path)
        code, out, err = _run(capsys, "spool", str(spool.root),
                              "--status", "--json")
        assert code == 0 and not err
        payload = json.loads(out)
        assert payload["target"] == str(spool.root)
        assert payload["pending"] == 1
        assert payload["results"] == 0
        assert payload["claimed"] == []
        assert [w["worker"] for w in payload["workers"]] == ["cli-worker"]
        assert payload["workers"][0]["processed"] == 4

    def test_spool_gc_json_reports_the_sweep(self, capsys, tmp_path):
        import os
        spool = self._live_spool(tmp_path)
        spool.write_result("old.00000000", {"job": "old.00000000"})
        for path in spool.root.rglob("*.json"):
            os.utime(path, (1.0, 1.0))
        code, out, err = _run(capsys, "spool", str(spool.root),
                              "--gc", "--max-age", "60", "--json")
        assert code == 0 and not err
        payload = json.loads(out)
        assert payload["max_age_s"] == 60.0
        assert sum(payload["removed"].values()) == 2
        # Pending jobs are never GC'd, however stale.
        assert (spool.pending_dir / "cli.00000000.json").exists()

    def test_spool_status_json_over_tcp(self, capsys, tmp_path):
        import threading
        from repro.runner.netqueue import SpoolServer
        server = SpoolServer(tmp_path / "spool", host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            server.spool.enqueue("cli.00000000", {"job": "cli.00000000"})
            code, out, err = _run(capsys, "spool", server.url,
                                  "--status", "--json")
            assert code == 0 and not err
            payload = json.loads(out)
            assert payload["target"] == server.url
            assert payload["pending"] == 1
            # The network transport additionally serves requeue counters.
            assert payload["requeues"] == {}
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=5.0)

    def test_spool_missing_directory_exits_2(self, capsys, tmp_path):
        code, _, err = _run(capsys, "spool", str(tmp_path / "nowhere"))
        assert code == 2
        assert "no spool directory" in err

    def test_spool_status_and_gc_are_mutually_exclusive(self, capsys,
                                                        tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["spool", str(tmp_path), "--status", "--gc"])
        assert excinfo.value.code == 2

    def test_spool_status_over_tcp(self, capsys, tmp_path):
        import threading
        from repro.runner.netqueue import SpoolServer
        server = SpoolServer(tmp_path / "spool", host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            server.spool.enqueue("cli.00000000", {"job": "cli.00000000"})
            code, out, err = _run(capsys, "spool", server.url, "--status")
            assert code == 0 and not err
            assert server.url in out
            assert "1 pending job(s)" in out
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=5.0)

    def test_spool_unreachable_server_exits_2(self, capsys):
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code, _, err = _run(capsys, "spool", f"tcp://127.0.0.1:{port}",
                            "--status")
        assert code == 2
        assert "unreachable" in err

    def test_spoold_unbindable_port_exits_2(self, capsys, tmp_path):
        code, _, err = _run(capsys, "spoold",
                            "--spool", str(tmp_path / "spool"),
                            "--port", "70000")
        assert code == 2
        assert "cannot bind" in err

    def test_worker_attaches_over_tcp(self, capsys, tmp_path):
        import threading
        from repro.runner import REGISTRY, canonical_json
        from repro.runner.cache import code_version
        from repro.runner.executors import scenario_to_payload
        from repro.runner.netqueue import SpoolServer
        server = SpoolServer(tmp_path / "spool", host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            scenario = REGISTRY.get("table6b/charm-1024")
            server.spool.enqueue("cli.00000000", {
                "job": "cli.00000000",
                "scenario": scenario_to_payload(scenario),
                "backend": "engine", "segment_memo_dir": None,
                "code_version": code_version(),
            })
            code, out, _ = _run(capsys, "worker", "--spool", server.url,
                                "--poll", "0.01", "--max-jobs", "1")
            assert code == 0
            assert "processed 1 job(s)" in out
            result = json.loads(
                server.spool.result_path("cli.00000000").read_text())
            assert canonical_json(result["result"]) == \
                canonical_json(REGISTRY.run(scenario))
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=5.0)


class TestExploreProxyAndWeights:
    def test_batched_proxy_end_to_end(self, capsys, tmp_path):
        code, out, err = _run(capsys, "explore", "--space", "encoder-smoke",
                              "--strategy", "grid", "--budget", "8",
                              "--verify-top", "1", "--proxy", "batched",
                              "--cache-dir", str(tmp_path))
        assert code == 0 and not err
        assert "Pareto frontier" in out
        assert "batched proxy" in out

    def test_weights_order_frontier_and_render_score_column(self, capsys,
                                                            tmp_path):
        json_path = tmp_path / "weighted.json"
        code, out, _ = _run(capsys, "explore", "--space", "encoder-smoke",
                            "--strategy", "halving", "--budget", "8",
                            "--verify-top", "0", "--proxy", "batched",
                            "--weights", "latency=2,traffic=1",
                            "--cache-dir", str(tmp_path / "cache"),
                            "--json", str(json_path))
        assert code == 0
        assert "score" in out
        assert "weighted scalarisation" in out
        payload = json.loads(json_path.read_text())
        assert payload["weights"] == {"latency_s": 2.0, "offchip_bytes": 1.0}
        scores = [point["weighted_score"] for point in payload["frontier"]]
        assert scores == sorted(scores)

    @pytest.mark.parametrize("weights", [
        "latency", "latency=x", "latency=-1", "bogus=1", "",
        "latency=0,traffic=0", "latency=1,latency=2",
        "latency=nan", "latency=inf,traffic=1",
        "area=1,watts=1", "throughput=1,bogus=2",
    ])
    def test_invalid_weights_exit_2(self, capsys, weights):
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", "--space", "encoder-smoke",
                  "--weights", weights])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--weights" in err and "Traceback" not in err


class TestExploreChipletSpace:
    def test_chiplet_weighted_cost_exploration(self, capsys, tmp_path):
        json_path = tmp_path / "chiplet.json"
        code, out, err = _run(capsys, "explore", "--space", "chiplet-smoke",
                              "--strategy", "halving", "--budget", "12",
                              "--verify-top", "2", "--proxy", "batched",
                              "--weights", "latency=1,area=2,energy=1",
                              "--cache-dir", str(tmp_path / "cache"),
                              "--json", str(json_path))
        assert code == 0 and not err
        payload = json.loads(json_path.read_text())
        assert payload["space"] == "chiplet-smoke"
        assert payload["contract_ok"] is True
        assert payload["weights"] == {"latency_s": 1.0, "area_luts": 2.0,
                                      "energy_j": 1.0}
        # The chiplet space reports the extended objective axes.
        names = {o["name"] for o in payload["objectives"]}
        assert {"area", "energy", "pipeline_throughput"} <= names
        assert payload["frontier"]

    def test_cost_weights_accepted_on_encoder_space(self, capsys, tmp_path):
        # Cost keys are scorable on the single-chip space too (its payloads
        # carry area/energy); they must not be rejected as unknown.
        code, _, err = _run(capsys, "explore", "--space", "encoder-smoke",
                            "--strategy", "halving", "--budget", "8",
                            "--verify-top", "0", "--proxy", "batched",
                            "--weights", "throughput=1,energy=1",
                            "--cache-dir", str(tmp_path))
        assert code == 0 and not err

    def test_list_spaces_includes_chiplet(self, capsys):
        code, out, _ = _run(capsys, "explore", "--list-spaces")
        assert code == 0
        assert "chiplet-encoder" in out
        assert "chiplet-smoke" in out


class TestSeedRecording:
    """`--seed random` draws a real seed and echoes it for replay."""

    def test_explore_random_seed_is_echoed_and_replayable(self, capsys,
                                                          tmp_path):
        json_path = tmp_path / "random.json"
        code, out, _ = _run(capsys, "explore", "--space", "encoder-smoke",
                            "--strategy", "halving", "--budget", "8",
                            "--verify-top", "0", "--seed", "random",
                            "--cache-dir", str(tmp_path / "cache"),
                            "--json", str(json_path))
        assert code == 0
        payload = json.loads(json_path.read_text())
        seed = payload["seed"]
        assert isinstance(seed, int)       # never None: the draw is recorded
        assert f"seed {seed}" in out
        # Replaying with the echoed seed reproduces the sampling decisions.
        replay_path = tmp_path / "replay.json"
        code, _, _ = _run(capsys, "explore", "--space", "encoder-smoke",
                          "--strategy", "halving", "--budget", "8",
                          "--verify-top", "0", "--seed", str(seed),
                          "--cache-dir", str(tmp_path / "cache"),
                          "--json", str(replay_path))
        assert code == 0
        replay = json.loads(replay_path.read_text())
        assert replay["frontier"] == payload["frontier"]

    def test_explore_report_file_names_the_replay_flag(self, capsys,
                                                       tmp_path):
        report_path = tmp_path / "frontier.txt"
        code, _, _ = _run(capsys, "explore", "--space", "encoder-smoke",
                          "--strategy", "grid", "--budget", "8",
                          "--verify-top", "0", "--seed", "42",
                          "--cache-dir", str(tmp_path / "cache"),
                          "--report", str(report_path))
        assert code == 0
        assert "seed: 42 (replay with --seed 42)" in report_path.read_text()

    def test_invalid_seed_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", "--space", "encoder-smoke", "--seed", "entropy"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--seed" in err and "Traceback" not in err


class TestServeCommand:
    def test_serve_open_loop_end_to_end(self, capsys, tmp_path):
        code, out, err = _run(capsys, "serve", "--arrival", "exponential",
                              "--requests", "2000", "--load", "200",
                              "--recertify", "1",
                              "--cache-dir", str(tmp_path))
        assert code == 0 and not err
        assert "latency p99" in out
        assert "Engine re-certification" in out
        assert "1 dispatch shape(s) engine-certified" in out

    def test_serve_load_sweep_renders_curve(self, capsys, tmp_path):
        code, out, _ = _run(capsys, "serve", "--requests", "1000",
                            "--load", "100,400", "--recertify", "0",
                            "--cache-dir", str(tmp_path))
        assert code == 0
        assert "Throughput-latency curve" in out
        assert "2 load point(s)" in out

    def test_serve_closed_loop(self, capsys, tmp_path):
        code, out, _ = _run(capsys, "serve", "--arrival", "closed",
                            "--requests", "500", "--clients", "8",
                            "--think", "0.05", "--recertify", "0",
                            "--cache-dir", str(tmp_path))
        assert code == 0
        assert "1 load point(s)" in out

    def test_serve_writes_json_and_report(self, capsys, tmp_path):
        json_path = tmp_path / "serve.json"
        report_path = tmp_path / "serve.txt"
        code, _, _ = _run(capsys, "serve", "--requests", "1000",
                          "--load", "150", "--seed", "9", "--recertify", "2",
                          "--cache-dir", str(tmp_path / "cache"),
                          "--json", str(json_path),
                          "--report", str(report_path))
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["seed"] == 9
        assert payload["results"][0]["completed"] > 0
        assert all(r["bound_ok"] and r["traffic_ok"]
                   for r in payload["certification"])
        assert "latency p50" in report_path.read_text()

    def test_serve_random_seed_replays_byte_identically(self, capsys,
                                                        tmp_path):
        first_path = tmp_path / "first.json"
        code, out, _ = _run(capsys, "serve", "--requests", "800",
                            "--load", "250", "--seed", "random",
                            "--recertify", "0", "--no-cache",
                            "--json", str(first_path))
        assert code == 0
        seed = json.loads(first_path.read_text())["seed"]
        assert isinstance(seed, int) and f"seed {seed}" in out
        replay_path = tmp_path / "replay.json"
        code, _, _ = _run(capsys, "serve", "--requests", "800",
                          "--load", "250", "--seed", str(seed),
                          "--recertify", "0", "--no-cache",
                          "--json", str(replay_path))
        assert code == 0
        assert json.loads(replay_path.read_text())["results"] == \
            json.loads(first_path.read_text())["results"]

    def test_serve_list_workloads(self, capsys):
        code, out, err = _run(capsys, "serve", "--list-workloads")
        assert code == 0 and not err
        assert "encoder-mix" in out
        assert "short-64" in out

    def test_serve_unknown_workload_exits_2(self, capsys):
        code, _, err = _run(capsys, "serve", "--workload", "warp-traffic",
                            "--no-cache")
        assert code == 2
        assert "unknown workload" in err and "Traceback" not in err

    def test_serve_negative_recertify_exits_2(self, capsys):
        code, _, err = _run(capsys, "serve", "--recertify", "-1",
                            "--no-cache")
        assert code == 2
        assert "--recertify" in err and "Traceback" not in err

    @pytest.mark.parametrize("loads", ["", "0", "-5", "100,,200", "100,x"])
    def test_serve_invalid_load_list_exits_2(self, capsys, loads):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--load", loads, "--no-cache"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--load" in err and "Traceback" not in err


class TestChunkSizeOption:
    """``--chunk-size`` policy parsing and plumbing on the sweep/explore
    front-ends (the byte-identity of the paths it selects is pinned by
    ``tests/differential/test_chunk_contract.py``)."""

    @pytest.mark.parametrize("value", ["2", "auto", "off"])
    def test_sweep_accepts_every_policy(self, capsys, value):
        code, out, err = _run(capsys, "sweep", "--tag", "fig18",
                              "--backend", "analytic", "--no-cache",
                              "--chunk-size", value)
        assert code == 0 and not err
        assert "fig18" in out

    def test_explore_batched_proxy_with_chunk_size(self, capsys, tmp_path):
        code, out, err = _run(capsys, "explore", "--space", "encoder-smoke",
                              "--strategy", "grid", "--budget", "16",
                              "--verify-top", "0", "--proxy", "batched",
                              "--chunk-size", "4", "--no-cache")
        assert code == 0 and not err
        assert "Pareto frontier" in out

    @pytest.mark.parametrize("bad", ["0", "-3", "none", "1.5", ""])
    def test_invalid_chunk_size_exits_2(self, capsys, bad):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--tag", "fig18", "--chunk-size", bad])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--chunk-size" in err and "Traceback" not in err
