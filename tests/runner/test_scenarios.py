"""Tests for the scenario registry and the shipped catalogue."""

from __future__ import annotations

import pytest

from repro.runner import REGISTRY, ScenarioRegistry, canonical_json


class TestScenarioRegistry:
    def test_kind_and_scenario_round_trip(self):
        registry = ScenarioRegistry()

        @registry.kind("double")
        def run_double(x):
            return {"doubled": 2 * x}

        scenario = registry.add("demo/two", "double", {"x": 2}, tags=("demo",))
        assert registry.get("demo/two") is scenario
        assert registry.run("demo/two") == {"doubled": 4}
        assert registry.run(scenario) == {"doubled": 4}

    def test_duplicate_kind_rejected(self):
        registry = ScenarioRegistry()
        registry.kind("k")(lambda: {})
        with pytest.raises(ValueError, match="already registered"):
            registry.kind("k")(lambda: {})

    def test_duplicate_scenario_rejected(self):
        registry = ScenarioRegistry()
        registry.kind("k")(lambda: {})
        registry.add("s", "k")
        with pytest.raises(ValueError, match="already registered"):
            registry.add("s", "k")

    def test_unknown_kind_and_name_rejected(self):
        registry = ScenarioRegistry()
        with pytest.raises(KeyError, match="unknown scenario kind"):
            registry.add("s", "missing-kind")
        with pytest.raises(KeyError, match="unknown scenario"):
            registry.get("missing")

    def test_non_jsonable_params_rejected_at_registration(self):
        registry = ScenarioRegistry()
        registry.kind("k")(lambda **kw: {})
        with pytest.raises(TypeError):
            registry.add("s", "k", {"bad": object()})

    def test_non_dict_runner_result_rejected(self):
        registry = ScenarioRegistry()
        registry.kind("k")(lambda: 42)
        registry.add("s", "k")
        with pytest.raises(TypeError, match="expected a JSON-able dict"):
            registry.run("s")

    def test_select_by_tag_and_name(self):
        registry = ScenarioRegistry()
        registry.kind("k")(lambda: {})
        registry.add("a", "k", tags=("t1",))
        registry.add("b", "k", tags=("t1", "t2"))
        registry.add("c", "k", tags=("t2",))
        assert [s.name for s in registry.select(tags=["t1"])] == ["a", "b"]
        assert [s.name for s in registry.select(names=["c"], tags=["t1"])] == \
            ["a", "b", "c"]
        assert [s.name for s in registry.select()] == ["a", "b", "c"]

    def test_canonical_identity_is_order_insensitive(self):
        registry = ScenarioRegistry()
        registry.kind("k")(lambda **kw: {})
        one = registry.add("one", "k", {"x": 1, "y": 2})
        two = registry.add("two", "k", {"y": 2, "x": 1})
        assert one.canonical() == two.canonical()
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestCatalogue:
    """The shipped library must cover the benchmark suite's points."""

    EXPECTED = [
        "table3/mapping-types",
        "table6a/aie-32x32x32",
        "table6b/gemm-1024",
        "table6b/charm-1024",
        "table7/bert", "table7/vit", "table7/ncf", "table7/mlp",
        "table8/encoder-peak",
        "table9/no-optimize", "table9/all-optimizations",
        "table10/l384-b8",
        "table11/bw-0.5x", "table11/bw-3x",
        "fig16/fu-properties",
        "fig18/rsn-b6", "fig18/charm-b6",
        "smoke/engine-chain",
    ]

    def test_expected_scenarios_registered(self):
        names = set(REGISTRY.names())
        missing = [name for name in self.EXPECTED if name not in names]
        assert not missing, f"catalogue is missing {missing}"
        assert len(names) >= 8  # the sweep acceptance floor, with a lot of slack

    def test_every_scenario_has_jsonable_params_and_tags(self):
        for name in REGISTRY.names():
            scenario = REGISTRY.get(name)
            canonical_json(scenario.params)  # must not raise
            assert scenario.tags, f"{name} has no tags"

    def test_cheap_scenarios_run(self):
        aie = REGISTRY.run("table6a/aie-32x32x32")
        assert 6000 < aie["gflops"] < 7600
        charm = REGISTRY.run("table6b/charm-1024")
        assert charm["gflops"] > 500
        chain = REGISTRY.run("smoke/engine-chain")
        assert chain["events"] > 0 and chain["end_time"] > 0
