"""Unit tests for the backend layer: registry declarations, cache identity,
and sweep execution on both backends."""

from __future__ import annotations

import math

import pytest

from repro.runner import (BACKENDS, DEFAULT_BACKEND, REGISTRY, ResultCache,
                          Scenario, ScenarioRegistry, canonical_json, run_sweep)


class TestBackendRegistry:
    def test_default_registration_is_engine_only(self):
        registry = ScenarioRegistry()
        registry.kind("k")(lambda: {"x": 1})
        assert registry.backends("k") == ("engine",)
        assert registry.supports("k", "engine")
        assert not registry.supports("k", "analytic")

    def test_per_backend_implementations(self):
        registry = ScenarioRegistry()
        registry.kind("k")(lambda: {"backend": "engine"})
        registry.kind("k", backend="analytic")(lambda: {"backend": "analytic"})
        registry.add("s", "k")
        assert registry.backends("k") == BACKENDS
        assert registry.run("s") == {"backend": "engine"}
        assert registry.run("s", backend="analytic") == {"backend": "analytic"}

    def test_backend_independent_registration(self):
        registry = ScenarioRegistry()

        @registry.kind("k", backend=("engine", "analytic"))
        def runner():
            return {"same": True}

        registry.add("s", "k")
        assert registry.run("s") == registry.run("s", backend="analytic")

    def test_duplicate_backend_rejected(self):
        registry = ScenarioRegistry()
        registry.kind("k")(lambda: {})
        with pytest.raises(ValueError,
                           match="already registered for the 'engine' backend"):
            registry.kind("k")(lambda: {})

    def test_unknown_backend_rejected_at_registration(self):
        registry = ScenarioRegistry()
        with pytest.raises(ValueError, match="unknown backend"):
            registry.kind("k", backend="quantum")(lambda: {})

    def test_unsupported_backend_raises_cleanly(self):
        registry = ScenarioRegistry()
        registry.kind("k")(lambda: {})
        registry.add("s", "k")
        with pytest.raises(KeyError, match="does not support the 'analytic'"):
            registry.run("s", backend="analytic")

    def test_select_filters_by_backend(self):
        registry = ScenarioRegistry()
        registry.kind("engine-only")(lambda: {})
        registry.kind("both", backend=BACKENDS)(lambda: {})
        registry.add("a", "engine-only")
        registry.add("b", "both")
        assert [s.name for s in registry.select(backend="analytic")] == ["b"]
        assert [s.name for s in registry.select(backend="engine")] == ["a", "b"]
        with pytest.raises(KeyError, match="does not support"):
            registry.select(names=["a"], backend="analytic")

    def test_catalogue_kinds_all_support_both_backends(self):
        for name in REGISTRY.names():
            assert REGISTRY.backends(REGISTRY.get(name).kind) == BACKENDS


class TestBackendCacheIdentity:
    def _scenario(self) -> Scenario:
        return REGISTRY.get("smoke/engine-chain")

    def test_backend_is_part_of_the_cache_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = self._scenario()
        assert cache.key(scenario, "engine") != cache.key(scenario, "analytic")
        assert cache.key(scenario) == cache.key(scenario, DEFAULT_BACKEND)

    def test_entries_do_not_cross_backends(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = self._scenario()
        cache.store(scenario, {"value": 1}, 0.1, backend="engine")
        assert cache.load(scenario, backend="analytic") is None
        cache.store(scenario, {"value": 2}, 0.1, backend="analytic")
        assert cache.load(scenario, backend="engine")["result"] == {"value": 1}
        assert cache.load(scenario, backend="analytic")["result"] == {"value": 2}

    def test_payload_records_backend(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = self._scenario()
        path = cache.store(scenario, {"value": 3}, 0.1, backend="analytic")
        assert '"backend": "analytic"' in path.read_text()


class TestBackendSweep:
    def test_sweep_runs_on_each_backend_and_caches_separately(self, tmp_path):
        cache = ResultCache(tmp_path)
        names = ["table6b/gemm-1024"]
        engine = run_sweep(names, cache=cache, backend="engine")
        analytic = run_sweep(names, cache=cache, backend="analytic")
        assert engine[0].backend == "engine" and not engine[0].cached
        assert analytic[0].backend == "analytic" and not analytic[0].cached
        assert analytic[0].result["latency_s"] <= engine[0].result["latency_s"]
        # Each backend hits only its own entry on the second pass.
        assert run_sweep(names, cache=cache, backend="engine")[0].cached
        assert run_sweep(names, cache=cache, backend="analytic")[0].cached
        assert len(cache.entries()) == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown backend"):
            run_sweep(["smoke/engine-chain"], backend="quantum")

    def test_unsupported_scenario_fails_before_execution(self):
        registry_kind = "backend-sweep-test-engine-only"
        REGISTRY.kind(registry_kind)(lambda: {"ok": True})
        try:
            scenario = Scenario(name="adhoc/engine-only", kind=registry_kind)
            with pytest.raises(KeyError, match="does not support"):
                run_sweep([scenario], backend="analytic")
        finally:
            REGISTRY._kinds.pop(registry_kind)


class TestCanonicalJsonNonFinite:
    """NaN/Infinity must be rejected instead of silently poisoning keys."""

    @pytest.mark.parametrize("value", [float("nan"), float("inf"),
                                       -float("inf")])
    def test_non_finite_floats_rejected(self, value):
        with pytest.raises(ValueError, match="non-finite"):
            canonical_json({"x": value})

    def test_nested_non_finite_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            canonical_json({"params": {"scales": [1.0, math.inf]}})

    def test_finite_values_still_canonical(self):
        assert canonical_json({"b": 1.5, "a": 2}) == '{"a":2,"b":1.5}'

    def test_scenario_registration_rejects_non_finite_params(self):
        registry = ScenarioRegistry()
        registry.kind("k")(lambda **kw: {})
        with pytest.raises(ValueError, match="non-finite"):
            registry.add("s", "k", {"scale": float("nan")})
