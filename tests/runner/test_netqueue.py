"""Unit tests for the network work-queue transport (``spoold`` + NetSpool).

The cross-transport byte-identity contract lives in
``tests/differential/test_executor_contract.py``; this file covers the
mechanics: URL parsing, JSON-lines protocol framing (malformed requests,
unknown ops, version handshakes), claim/result round-trips over a live
server, stale-claim rejection (the network transport's vanished-claim
path), connection-loss degradation, and server-side GC/status.
"""

from __future__ import annotations

import json
import os
import socket
import threading

import pytest

from repro.runner.cache import code_version
from repro.runner.executors import Spool, open_spool, scenario_to_payload
from repro.runner.netqueue import (DEFAULT_PORT, NetSpool, NetSpoolError,
                                   PROTOCOL_VERSION, SpoolServer,
                                   parse_spool_url)
from repro.runner.scenarios import Scenario
from repro.runner.worker import _execute, run_worker

CHEAP = Scenario(name="unit/chain", kind="engine_chain",
                 params={"n_msgs": 5, "stages": 1})


def _job_payload(job_id, scenario=CHEAP, backend="engine"):
    return {
        "job": job_id,
        "scenario": scenario_to_payload(scenario),
        "backend": backend,
        "segment_memo_dir": None,
        "code_version": code_version(),
    }


@pytest.fixture()
def server(tmp_path):
    instance = SpoolServer(tmp_path / "spool", host="127.0.0.1", port=0)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.close()
    thread.join(timeout=5.0)


class TestSpoolUrlParsing:
    def test_host_and_port(self):
        assert parse_spool_url("tcp://10.0.0.7:7000") == ("10.0.0.7", 7000)

    def test_port_defaults(self):
        assert parse_spool_url("tcp://queuehost") == ("queuehost", DEFAULT_PORT)

    def test_rejects_non_tcp_and_malformed_urls(self):
        for bad in ("http://h:1", "/just/a/path", "tcp://:7000",
                    "tcp://h:notaport", "tcp://h:0", "tcp://h:70000"):
            with pytest.raises(ValueError):
                parse_spool_url(bad)

    def test_open_spool_selects_the_transport(self, tmp_path):
        assert isinstance(open_spool(tmp_path / "dir"), Spool)
        assert isinstance(open_spool("tcp://h:7000"), NetSpool)


class TestProtocolFraming:
    """Raw-socket conversations: the wire contract itself."""

    def _converse(self, server, lines):
        """Send raw lines, return the response for each (None once the
        server hangs up)."""
        with socket.create_connection(server.address, timeout=10.0) as sock:
            handle = sock.makefile("rwb")
            responses = []
            for line in lines:
                handle.write(line + b"\n")
                handle.flush()
                reply = handle.readline()
                responses.append(json.loads(reply) if reply else None)
            return responses

    def test_malformed_json_gets_an_error_then_disconnect(self, server):
        first, second = self._converse(
            server, [b"{definitely not json", b'{"op": "hello"}'])
        assert first["ok"] is False and "malformed" in first["error"]
        assert second is None  # server hung up after the garbage

    def test_unknown_op_errors_but_keeps_the_connection(self, server):
        first, second = self._converse(
            server,
            [b'{"op": "warp-core-eject"}',
             json.dumps({"op": "hello",
                         "proto": PROTOCOL_VERSION}).encode()])
        assert first["ok"] is False and "unknown op" in first["error"]
        assert second["ok"] is True  # the connection survived

    def test_hello_rejects_a_protocol_version_mismatch(self, server):
        (reply,) = self._converse(
            server, [json.dumps({"op": "hello", "proto": 999}).encode()])
        assert reply["ok"] is False
        assert "protocol version" in reply["error"]

    def test_many_ops_share_one_connection(self, server):
        hello = json.dumps({"op": "hello", "proto": PROTOCOL_VERSION})
        now = json.dumps({"op": "now"})
        replies = self._converse(
            server, [hello.encode(), now.encode(), now.encode()])
        assert all(reply["ok"] for reply in replies)
        assert replies[1]["now"] > 0


class TestNetSpoolRoundTrips:
    def test_enqueue_claim_result_round_trip(self, server):
        client = NetSpool(server.url).ensure()
        payload = _job_payload("b.00000000")
        client.enqueue("b.00000000", payload)
        claimed = client.claim("net-worker")
        assert claimed is not None and claimed.job_id == "b.00000000"
        # The payload travelled with the claim, byte for byte.
        assert json.loads(claimed.read()) == payload
        assert client.claim("other-worker") is None  # exclusivity held
        assert client.finish(claimed, {"job": claimed.job_id, "x": 1}) is True
        results = client.take_results("b.")
        assert set(results) == {"b.00000000"}
        assert json.loads(results["b.00000000"]) == {"job": "b.00000000",
                                                     "x": 1}
        assert client.take_results("b.") == {}  # consumed exactly once
        client.close()

    def test_enqueue_many_is_claimed_in_submission_order(self, server):
        client = NetSpool(server.url).ensure()
        jobs = [(f"b.{i:08d}", _job_payload(f"b.{i:08d}")) for i in range(5)]
        assert client.enqueue_many(jobs) == 5
        claimed = [client.claim("w").job_id for _ in range(5)]
        assert claimed == [job_id for job_id, _ in jobs]
        client.close()

    def test_heartbeats_live_workers_and_clear(self, server):
        client = NetSpool(server.url).ensure()
        client.beat("net-worker", info={"pid": 1, "processed": 3})
        assert client.live_workers(within_s=60.0) == ["net-worker"]
        status = client.status()
        assert [w["worker"] for w in status["workers"]] == ["net-worker"]
        assert status["workers"][0]["processed"] == 3
        client.clear_heartbeat("net-worker")
        assert client.live_workers(within_s=60.0) == []
        client.close()

    def test_stale_claim_result_is_rejected_server_side(self, server):
        # The network transport's vanished-claim path: a stalled worker's
        # claim is orphan-requeued away; when the stalled worker finally
        # publishes, the server must drop the result (the job belongs to
        # the new owner) and the worker must not count it as processed.
        stalled = NetSpool(server.url).ensure()
        healthy = NetSpool(server.url).ensure()
        stalled.enqueue("b.00000000", _job_payload("b.00000000"))
        stale_claim = stalled.claim("stalled-worker")
        assert stale_claim is not None
        # Death certificate: backdate the server-side claim file.
        (claim_file,) = server.spool.claimed_dir.glob("*.json")
        os.utime(claim_file, (1.0, 1.0))
        assert stalled.requeue_orphans(30.0, prefix="b.") == ["b.00000000"]
        fresh_claim = healthy.claim("healthy-worker")
        assert fresh_claim is not None
        assert stalled.finish(stale_claim, {"owner": "stalled"}) is False
        assert healthy.finish(fresh_claim, {"owner": "healthy"}) is True
        results = healthy.take_results("b.")
        assert json.loads(results["b.00000000"]) == {"owner": "healthy"}
        stalled.close()
        healthy.close()

    def test_requeues_are_counted_in_status(self, server):
        client = NetSpool(server.url).ensure()
        client.enqueue("b.00000000", _job_payload("b.00000000"))
        client.claim("doomed-worker")
        (claim_file,) = server.spool.claimed_dir.glob("*.json")
        os.utime(claim_file, (1.0, 1.0))
        client.requeue_orphans(30.0, prefix="b.")
        assert client.status()["requeues"] == {"b.00000000": 1}
        client.close()

    def test_worker_loop_runs_against_a_tcp_spool(self, server):
        client = NetSpool(server.url).ensure()
        client.enqueue("b.00000000", _job_payload("b.00000000"))
        processed = run_worker(server.url, poll_s=0.01, max_jobs=1,
                               worker_id="tcp-worker")
        assert processed == 1
        results = client.take_results("b.")
        payload = json.loads(results["b.00000000"])
        assert payload["scenario"] == "unit/chain"
        assert payload["code_version"] == code_version()
        # The worker cleared its heartbeat on exit.
        assert client.live_workers(within_s=60.0) == []
        client.close()

    def test_gc_over_the_network(self, server):
        client = NetSpool(server.url).ensure()
        client.enqueue("b.00000000", _job_payload("b.00000000"))
        client.claim("dead-worker")
        for path in server.spool.claimed_dir.glob("*.json"):
            os.utime(path, (1.0, 1.0))
        report = client.gc(30.0)
        assert report["removed"]["claims"] == 1
        with pytest.raises(ValueError):
            client.gc(-1.0)
        client.close()


class TestConnectionLossDegradation:
    """A NetSpool pointed at a dead server must degrade, not crash: polling
    operations return their empty results (the caller's loop retries --
    which is what rides out a server restart), one-shot operations raise."""

    @pytest.fixture()
    def dead_url(self):
        # Bind-then-close guarantees an unused port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return f"tcp://127.0.0.1:{port}"

    def test_polling_operations_return_empty(self, dead_url):
        client = NetSpool(dead_url)
        assert client.claim("w") is None
        assert client.take_results("b.") == {}
        assert client.requeue_orphans(30.0, prefix="b.") == []
        assert client.live_workers(within_s=60.0) == []
        client.beat("w")  # must not raise
        client.clear_heartbeat("w")
        client.abandon("b.")
        client.close()

    def test_one_shot_operations_raise(self, dead_url):
        client = NetSpool(dead_url)
        with pytest.raises(NetSpoolError):
            client.ensure()
        with pytest.raises(NetSpoolError):
            client.status()
        with pytest.raises(NetSpoolError):
            client.gc(60.0)
        client.close()

    def test_client_reconnects_after_a_server_restart(self, tmp_path):
        first = SpoolServer(tmp_path / "spool", host="127.0.0.1", port=0)
        port = first.address[1]
        thread = threading.Thread(target=first.serve_forever, daemon=True)
        thread.start()
        client = NetSpool(first.url).ensure()
        client.enqueue("b.00000000", _job_payload("b.00000000"))
        first.shutdown()
        first.close()
        thread.join(timeout=5.0)
        # Same directory, same port: the disk state *is* the queue.
        second = SpoolServer(tmp_path / "spool", host="127.0.0.1", port=port)
        thread = threading.Thread(target=second.serve_forever, daemon=True)
        thread.start()
        try:
            claimed = client.claim("survivor")
            assert claimed is not None and claimed.job_id == "b.00000000"
            client.close()
        finally:
            second.shutdown()
            second.close()
            thread.join(timeout=5.0)


class TestVanishedClaimBothTransports:
    """``_execute`` + publish for a claim requeued away mid-execution: the
    directory transport detects it at read time, the network transport at
    publish time -- either way nothing of the stalled worker's survives."""

    def test_directory_transport_detects_at_read_time(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        spool.enqueue("b.00000000", _job_payload("b.00000000"))
        claimed = spool.claim("stalled-worker")
        claimed.path.unlink()  # the orphan requeue, as seen by the worker
        assert _execute(claimed, "stalled-worker") is None
        assert not list(spool.results_dir.glob("*.json"))

    def test_network_transport_detects_at_publish_time(self, server):
        client = NetSpool(server.url).ensure()
        client.enqueue("b.00000000", _job_payload("b.00000000"))
        claimed = client.claim("stalled-worker")
        # The claim travelled with its payload, so the read still works and
        # execution proceeds obliviously...
        result = _execute(claimed, "stalled-worker")
        assert result is not None and result["scenario"] == "unit/chain"
        # ...but the claim has been requeued away in the meantime, and the
        # publish is where the stale copy dies.
        (claim_file,) = server.spool.claimed_dir.glob("*.json")
        os.utime(claim_file, (1.0, 1.0))
        client.requeue_orphans(30.0, prefix="b.")
        assert client.finish(claimed, result) is False
        assert client.take_results("b.") == {}
        client.close()


class TestMemoSyncOverTheNetwork:
    def _entry(self, key, latency=1.0):
        return {"key": key, "code_version": code_version(),
                "result": {"latency_s": latency}}

    def test_push_pull_round_trip(self, server):
        pusher = NetSpool(server.url).ensure()
        puller = NetSpool(server.url).ensure()
        entries = [self._entry("workload-" + "a" * 64),
                   self._entry("b" * 64)]
        fetched = pusher.memo_sync(entries)
        assert sorted(e["key"] for e in fetched) == \
            sorted(e["key"] for e in entries)
        # A second participant pulls them; entries it already knows are
        # filtered server-side via the known list.
        assert sorted(e["key"] for e in puller.memo_sync([])) == \
            sorted(e["key"] for e in entries)
        assert puller.memo_sync(
            [], known=[e["key"] for e in entries]) == []
        pusher.close()
        puller.close()

    def test_entries_land_in_the_server_spool_memo_dir(self, server):
        client = NetSpool(server.url).ensure()
        client.memo_sync([self._entry("c" * 64)])
        published = list(server.spool.memo_dir.glob("*.json"))
        assert [p.stem for p in published] == ["c" * 64]
        assert json.loads(published[0].read_text())["key"] == "c" * 64
        client.close()

    def test_memo_sync_degrades_to_empty_on_connection_loss(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = NetSpool(f"tcp://127.0.0.1:{port}")
        # Polling semantics: a dead (or old, pre-memo-sync) server means no
        # sharing this round, never a crashed worker.
        assert client.memo_sync([self._entry("d" * 64)]) == []
        client.close()
