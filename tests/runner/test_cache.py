"""Tests for the on-disk result cache."""

from __future__ import annotations

import json

import pytest

from repro.runner import REGISTRY, ResultCache, code_version
from repro.runner.scenarios import Scenario


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _scenario(**params) -> Scenario:
    return Scenario(name="smoke/engine-chain", kind="engine_chain",
                    params={"n_msgs": 10, "stages": 1, **params})


class TestResultCache:
    def test_miss_then_store_then_hit(self, cache):
        scenario = _scenario()
        assert cache.load(scenario) is None
        result = REGISTRY.run(scenario)
        path = cache.store(scenario, result, elapsed_s=0.01)
        assert path.exists()
        payload = cache.load(scenario)
        assert payload is not None
        assert payload["result"] == result
        assert payload["scenario"] == scenario.name
        assert payload["code_version"] == code_version()

    def test_key_depends_on_params(self, cache):
        assert cache.key(_scenario()) != cache.key(_scenario(n_msgs=11))
        assert cache.key(_scenario()) == cache.key(_scenario())

    def test_stale_code_version_is_a_miss(self, cache):
        scenario = _scenario()
        path = cache.store(scenario, {"events": 1}, elapsed_s=0.0)
        payload = json.loads(path.read_text())
        payload["code_version"] = "0" * 16
        path.write_text(json.dumps(payload))
        assert cache.load(scenario) is None

    def test_params_mismatch_is_a_miss(self, cache):
        scenario = _scenario()
        path = cache.store(scenario, {"events": 1}, elapsed_s=0.0)
        payload = json.loads(path.read_text())
        payload["params"]["n_msgs"] = 999
        path.write_text(json.dumps(payload))
        assert cache.load(scenario) is None

    def test_corrupt_entry_is_a_miss(self, cache):
        scenario = _scenario()
        path = cache.store(scenario, {"events": 1}, elapsed_s=0.0)
        path.write_text("{not json")
        assert cache.load(scenario) is None

    def test_clear_removes_entries(self, cache):
        cache.store(_scenario(), {"events": 1}, elapsed_s=0.0)
        cache.store(_scenario(n_msgs=11), {"events": 2}, elapsed_s=0.0)
        assert len(cache.entries()) == 2
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_code_version_is_stable_within_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16

    def test_clear_tolerates_concurrent_removal(self, cache, monkeypatch):
        from pathlib import Path
        cache.store(_scenario(), {"events": 1}, elapsed_s=0.0)
        cache.store(_scenario(n_msgs=11), {"events": 2}, elapsed_s=0.0)
        real_unlink = Path.unlink
        raced = []

        def racy_unlink(self, *args, **kwargs):
            # A concurrent pruner deletes the first entry between the
            # directory listing and our unlink.
            if not raced:
                raced.append(self)
                real_unlink(self)
                raise FileNotFoundError(str(self))
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", racy_unlink)
        assert cache.clear() == 1  # the second entry; the raced one is free
        assert cache.entries() == []


class TestPrune:
    def test_prune_keeps_current_entries(self, cache):
        cache.store(_scenario(), {"events": 1}, elapsed_s=0.0)
        stats = cache.prune()
        assert (stats.kept, stats.removed, stats.warnings) == (1, 0, [])
        assert len(cache.entries()) == 1

    def test_prune_removes_stale_code_versions(self, cache):
        path = cache.store(_scenario(), {"events": 1}, elapsed_s=0.0)
        payload = json.loads(path.read_text())
        payload["code_version"] = "0" * 16
        path.write_text(json.dumps(payload))
        cache.store(_scenario(n_msgs=11), {"events": 2}, elapsed_s=0.0)
        stats = cache.prune()
        assert (stats.kept, stats.removed) == (1, 1)
        assert not path.exists()

    def test_prune_removes_corrupted_entries_with_warning(self, cache):
        path = cache.store(_scenario(), {"events": 1}, elapsed_s=0.0)
        path.write_text("{not json")
        (cache.root / "list-entry.json").write_text("[1, 2]")
        stats = cache.prune()
        assert stats.removed == 2
        assert len(stats.warnings) == 2
        assert any("corrupted" in warning for warning in stats.warnings)
        assert cache.entries() == []

    def test_prune_tolerates_unremovable_entries(self, cache, monkeypatch):
        """A read-only/foreign-owned entry degrades to a warning, never a
        traceback (the prune contract on shared cache directories)."""
        from pathlib import Path
        path = cache.store(_scenario(), {"events": 1}, elapsed_s=0.0)
        path.write_text("{not json")

        def denied(self, *args, **kwargs):
            raise PermissionError(f"[Errno 13] Permission denied: {self}")

        monkeypatch.setattr(Path, "unlink", denied)
        stats = cache.prune()  # must not raise
        assert stats.removed == 0
        assert any("cannot remove" in warning for warning in stats.warnings)

    def test_prune_tolerates_vanishing_files(self, cache, monkeypatch):
        from pathlib import Path
        cache.store(_scenario(), {"events": 1}, elapsed_s=0.0)

        def vanished(self, *args, **kwargs):
            raise FileNotFoundError(str(self))

        monkeypatch.setattr(Path, "read_text", vanished)
        stats = cache.prune()  # must not raise
        assert (stats.kept, stats.removed, stats.warnings) == (0, 0, [])

    def test_prune_removes_only_stale_tmp_spill_files(self, cache):
        import os
        import time
        fresh = cache.root / "inflight.tmp"
        fresh.write_text("partial write")
        stale = cache.root / "crashed.tmp"
        stale.write_text("partial write")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        stats = cache.prune()
        assert fresh.exists(), "a concurrent writer may still own fresh .tmp"
        assert not stale.exists()
        assert any("abandoned" in warning for warning in stats.warnings)
