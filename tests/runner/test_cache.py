"""Tests for the on-disk result cache."""

from __future__ import annotations

import json

import pytest

from repro.runner import REGISTRY, ResultCache, code_version
from repro.runner.scenarios import Scenario


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _scenario(**params) -> Scenario:
    return Scenario(name="smoke/engine-chain", kind="engine_chain",
                    params={"n_msgs": 10, "stages": 1, **params})


class TestResultCache:
    def test_miss_then_store_then_hit(self, cache):
        scenario = _scenario()
        assert cache.load(scenario) is None
        result = REGISTRY.run(scenario)
        path = cache.store(scenario, result, elapsed_s=0.01)
        assert path.exists()
        payload = cache.load(scenario)
        assert payload is not None
        assert payload["result"] == result
        assert payload["scenario"] == scenario.name
        assert payload["code_version"] == code_version()

    def test_key_depends_on_params(self, cache):
        assert cache.key(_scenario()) != cache.key(_scenario(n_msgs=11))
        assert cache.key(_scenario()) == cache.key(_scenario())

    def test_stale_code_version_is_a_miss(self, cache):
        scenario = _scenario()
        path = cache.store(scenario, {"events": 1}, elapsed_s=0.0)
        payload = json.loads(path.read_text())
        payload["code_version"] = "0" * 16
        path.write_text(json.dumps(payload))
        assert cache.load(scenario) is None

    def test_params_mismatch_is_a_miss(self, cache):
        scenario = _scenario()
        path = cache.store(scenario, {"events": 1}, elapsed_s=0.0)
        payload = json.loads(path.read_text())
        payload["params"]["n_msgs"] = 999
        path.write_text(json.dumps(payload))
        assert cache.load(scenario) is None

    def test_corrupt_entry_is_a_miss(self, cache):
        scenario = _scenario()
        path = cache.store(scenario, {"events": 1}, elapsed_s=0.0)
        path.write_text("{not json")
        assert cache.load(scenario) is None

    def test_clear_removes_entries(self, cache):
        cache.store(_scenario(), {"events": 1}, elapsed_s=0.0)
        cache.store(_scenario(n_msgs=11), {"events": 2}, elapsed_s=0.0)
        assert len(cache.entries()) == 2
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_code_version_is_stable_within_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16
