"""Unit coverage for the chunk-job machinery in :mod:`repro.runner.sweep`.

The differential suite (``tests/differential/test_chunk_contract.py``) pins
chunked distributed evaluation byte-identical to the serial batched path
end to end; this module covers the partitioning arithmetic and policy
resolution underneath it, plus the edge cases that never show up in a
healthy sweep -- empty generations, chunks larger than the generation,
scrambled completion order, and invalid policy values.
"""

from __future__ import annotations

import pytest

from repro.explore import get_space, run_exploration
from repro.explore.space import Axis, Constraint, DesignSpace
from repro.explore.strategies import GridSearch
from repro.runner import canonical_json, run_sweep
from repro.runner.executors import SerialExecutor
from repro.runner.sweep import (auto_chunk_size, evaluate_chunked,
                                partition_chunks, resolve_chunk_size)


def _generation():
    space = get_space("encoder-smoke")
    return space.kind, [space.point_params(a) for a in space.points()]


class TestPartitionChunks:
    def test_exact_multiple(self):
        assert partition_chunks(8, 4) == [(0, 4), (4, 8)]

    def test_uneven_tail(self):
        assert partition_chunks(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_size_one_degenerates_to_scalar_jobs(self):
        assert partition_chunks(3, 1) == [(0, 1), (1, 2), (2, 3)]

    def test_size_larger_than_count_is_one_chunk(self):
        assert partition_chunks(5, 100) == [(0, 5)]

    def test_zero_points_partition_into_no_chunks(self):
        assert partition_chunks(0, 4) == []

    def test_ranges_cover_everything_exactly_once(self):
        for count in (1, 7, 16, 33):
            for size in (1, 2, 5, 16, 40):
                ranges = partition_chunks(count, size)
                covered = [i for start, stop in ranges
                           for i in range(start, stop)]
                assert covered == list(range(count))

    def test_rejects_negative_count_and_nonpositive_size(self):
        with pytest.raises(ValueError):
            partition_chunks(-1, 4)
        with pytest.raises(ValueError):
            partition_chunks(4, 0)


class TestAutoChunkSize:
    def test_small_generations_hit_the_floor_then_the_total(self):
        # 64 points at target 32 jobs would mean 2-point chunks; the floor
        # lifts that to 16 -- and a tiny generation is one chunk outright.
        assert auto_chunk_size(64) == 16
        assert auto_chunk_size(10) == 10

    def test_targets_about_32_jobs(self):
        assert auto_chunk_size(1008) == 32  # ceil(1008 / 32)

    def test_huge_generations_hit_the_ceiling(self):
        assert auto_chunk_size(10**6) == 4096

    def test_alignment_rounds_to_axis_blocks(self):
        # The bigsweep shape: 120,960 points with a 3,840-point trailing
        # block round to exactly one block per chunk.
        assert auto_chunk_size(120_960, align=3840) == 3840

    def test_alignment_above_ceiling_still_yields_one_block(self):
        assert auto_chunk_size(10**6, align=5000) == 5000

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValueError):
            auto_chunk_size(0)
        with pytest.raises(ValueError):
            auto_chunk_size(10, align=0)


class TestResolveChunkSize:
    def test_off_means_one_point_per_chunk(self):
        assert resolve_chunk_size("off", 100) == 1

    def test_none_and_auto_share_the_heuristic(self):
        assert resolve_chunk_size(None, 1008) == auto_chunk_size(1008)
        assert resolve_chunk_size("auto", 1008) == auto_chunk_size(1008)
        assert resolve_chunk_size("auto", 120_960, align=3840) == 3840

    def test_explicit_sizes_clamp_to_the_total(self):
        assert resolve_chunk_size(7, 100) == 7
        assert resolve_chunk_size(500, 100) == 100

    @pytest.mark.parametrize("bad", ["bogus", 0, -3, 1.5, True])
    def test_rejects_invalid_policies(self, bad):
        with pytest.raises(ValueError):
            resolve_chunk_size(bad, 100)
        with pytest.raises(ValueError):
            evaluate_chunked("dse_encoder", [], chunk_size=bad)
        with pytest.raises(ValueError):
            run_sweep([], chunk_size=bad)


class _ScrambledExecutor(SerialExecutor):
    """Runs chunks in *reverse* submission order -- the submission-order
    alignment of the returned list is the whole contract."""

    def __init__(self):
        super().__init__()
        self.executed_sizes = []

    def submit_chunks(self, chunks, run_chunk_fn):
        results = [None] * len(chunks)
        for position in reversed(range(len(chunks))):
            results[position] = run_chunk_fn(chunks[position])
            self.executed_sizes.append(len(chunks[position][1]))
        return results


class TestEvaluateChunkedEdges:
    def test_empty_generation_is_a_no_op(self):
        results, hits = evaluate_chunked("dse_encoder", [],
                                         backend="analytic")
        assert results == [] and hits == 0

    def test_unknown_kind_raises_before_executing(self):
        with pytest.raises(KeyError):
            evaluate_chunked("no-such-kind", [{"x": 1}])

    def test_kind_without_batch_runner_raises(self):
        # engine_chain runs scalar-only: chunk jobs require a batch runner.
        with pytest.raises(KeyError):
            evaluate_chunked("engine_chain", [{"n_msgs": 10, "stages": 1}],
                             backend="engine")

    def test_chunk_size_one_and_oversized_match_the_batched_call(self):
        kind, params = _generation()
        reference, _ = evaluate_chunked(kind, params, backend="analytic")
        stripped = [canonical_json(r) for r in reference]
        for chunk_size in (1, len(params) + 100):
            results, hits = evaluate_chunked(kind, params, backend="analytic",
                                             chunk_size=chunk_size)
            assert hits == 0
            assert [canonical_json(r) for r in results] == stripped

    def test_splice_order_survives_scrambled_completion(self):
        kind, params = _generation()
        reference, _ = evaluate_chunked(kind, params, backend="analytic")
        executor = _ScrambledExecutor()
        results, _ = evaluate_chunked(kind, params, backend="analytic",
                                      executor=executor, chunk_size=3)
        # The scramble really happened (the 1-point tail chunk ran first),
        # yet the splice reproduces input order exactly.
        assert executor.executed_sizes == [1, 3, 3, 3, 3, 3]
        assert [canonical_json(r) for r in results] == \
            [canonical_json(r) for r in reference]


class TestInfeasibleGenerations:
    def test_fully_infeasible_space_explores_to_an_empty_frontier(self):
        space = DesignSpace(
            name="infeasible",
            kind="dse_encoder",
            description="every assignment violates the constraint",
            base_params={"model": "bert_large", "batch": 1},
            axes=(Axis("seq_len", (64, 128)),),
            constraints=(
                Constraint("never", lambda a: False, "rejects everything"),
            ),
        )
        assert space.feasible_count() == 0
        report = run_exploration(space, GridSearch(), budget=4, verify_top=0,
                                 proxy="batched", cache=None)
        assert report.evaluations == 0
        assert report.frontier == []
