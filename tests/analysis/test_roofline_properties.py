"""Property-based tests for the roofline invariants (requires hypothesis).

The roofline formula is the foundation both the mapping analysis and the
analytic fast-model backend stand on, so its algebraic invariants are pinned
property-style over wide input ranges:

* ``latency_s == max(compute_s, memory_s)`` exactly;
* latency is monotonically non-increasing in bandwidth and in FLOP rate;
* ``compute_bound`` is consistent with the machine-balance point;
* the multi-resource generalisation reduces to max() with a well-defined
  bottleneck.

If ``hypothesis`` is not installed the module is skipped as a whole (the
invariants are still exercised pointwise by the unit suites).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip(
    "hypothesis", reason="property-based tests need the hypothesis package")

from hypothesis import given  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.analysis.roofline import (ResourceRoofline, machine_balance,  # noqa: E402
                                     roofline_latency)

#: wide but sane physical ranges: up to exa-FLOP kernels, KB/s..PB/s links.
work = st.floats(min_value=0.0, max_value=1e18, allow_nan=False,
                 allow_infinity=False)
traffic = st.floats(min_value=0.0, max_value=1e15, allow_nan=False,
                    allow_infinity=False)
rate = st.floats(min_value=1e3, max_value=1e18, allow_nan=False,
                 allow_infinity=False)
scale_up = st.floats(min_value=1.0, max_value=1e6, allow_nan=False,
                     allow_infinity=False)


class TestRooflinePointProperties:
    @given(flops=work, nbytes=traffic, achieved=rate, bandwidth=rate)
    def test_latency_is_max_of_compute_and_memory(self, flops, nbytes,
                                                  achieved, bandwidth):
        point = roofline_latency(flops, nbytes, achieved, bandwidth)
        assert point.latency_s == max(point.compute_s, point.memory_s)
        assert point.compute_s == flops / achieved
        assert point.memory_s == nbytes / bandwidth

    @given(flops=work, nbytes=traffic, achieved=rate, bandwidth=rate,
           factor=scale_up)
    def test_latency_monotone_in_bandwidth(self, flops, nbytes, achieved,
                                           bandwidth, factor):
        base = roofline_latency(flops, nbytes, achieved, bandwidth)
        faster = roofline_latency(flops, nbytes, achieved, bandwidth * factor)
        assert faster.latency_s <= base.latency_s

    @given(flops=work, nbytes=traffic, achieved=rate, bandwidth=rate,
           factor=scale_up)
    def test_latency_monotone_in_flop_rate(self, flops, nbytes, achieved,
                                           bandwidth, factor):
        base = roofline_latency(flops, nbytes, achieved, bandwidth)
        faster = roofline_latency(flops, nbytes, achieved * factor, bandwidth)
        assert faster.latency_s <= base.latency_s

    # min 1.0: with subnormal flops/bytes both time terms underflow to 0.0
    # and boundedness degenerates -- a float artifact, not a model property.
    @given(flops=st.floats(min_value=1.0, max_value=1e18),
           nbytes=st.floats(min_value=1.0, max_value=1e15),
           achieved=rate, bandwidth=rate)
    def test_compute_bound_consistent_with_machine_balance(self, flops, nbytes,
                                                           achieved, bandwidth):
        point = roofline_latency(flops, nbytes, achieved, bandwidth)
        balance = machine_balance(achieved, bandwidth)
        intensity = point.arithmetic_intensity
        # Strictly away from the balance point, boundedness is determined by
        # which side of it the kernel sits on (a relative epsilon absorbs the
        # division round-off at the boundary itself).
        if intensity > balance * (1 + 1e-9):
            assert point.compute_bound
        elif intensity < balance * (1 - 1e-9):
            assert not point.compute_bound

    @given(nbytes=traffic.filter(lambda b: b > 0), achieved=rate,
           bandwidth=rate)
    def test_at_exact_machine_balance_both_terms_agree(self, nbytes, achieved,
                                                       bandwidth):
        # Constructing the kernel *from* the balance point must land within
        # round-off of equal compute and memory time.
        flops = machine_balance(achieved, bandwidth) * nbytes
        point = roofline_latency(flops, nbytes, achieved, bandwidth)
        assert point.compute_s == pytest.approx(point.memory_s, rel=1e-9)
        assert point.latency_s == pytest.approx(point.compute_s, rel=1e-9)


class TestResourceRooflineProperties:
    busy_maps = st.dictionaries(
        keys=st.sampled_from(["ddr", "lpddr", "mme", "memc", "mesh"]),
        values=st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                         allow_infinity=False),
        min_size=1, max_size=5)

    @given(busy=busy_maps)
    def test_latency_is_max_and_bottleneck_attains_it(self, busy):
        roofline = ResourceRoofline(busy)
        assert roofline.latency_s == max(busy.values())
        assert busy[roofline.bottleneck] == roofline.latency_s

    @given(busy=busy_maps)
    def test_utilizations_are_normalised(self, busy):
        roofline = ResourceRoofline(busy)
        utilizations = roofline.utilizations()
        assert set(utilizations) == set(busy)
        for value in utilizations.values():
            assert 0.0 <= value <= 1.0
        if roofline.latency_s > 0:
            assert utilizations[roofline.bottleneck] == 1.0

    @given(busy=busy_maps, extra=st.floats(min_value=0.0, max_value=1e6,
                                           allow_nan=False, allow_infinity=False))
    def test_adding_a_resource_never_lowers_latency(self, busy, extra):
        base = ResourceRoofline(busy)
        widened = ResourceRoofline({**busy, "extra": extra})
        assert widened.latency_s >= base.latency_s

    def test_empty_and_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceRoofline({})
        with pytest.raises(ValueError):
            ResourceRoofline({"ddr": -1.0})
