"""Unit tests for the multi-chip scale-out axis.

Covers the inter-chip link model, the contiguous FLOP-balancing
partitioner, the boundary-traffic accounting, the cost models, and the
pipeline roofline -- the backend-independent building blocks whose
determinism the ``dse_chiplet`` contracts rest on.
"""

import math

import pytest

from repro.analysis.roofline import pipeline_roofline
from repro.hardware.cost import design_area_luts, design_power_w
from repro.hardware.link import InterChipLink
from repro.workloads.bert import BERT_LARGE
from repro.xnn.partition import (
    ENCODER_SEGMENT_NAMES,
    chiplet_metrics,
    encoder_boundary_bytes,
    encoder_segment_flops,
    partition_segments,
)


class TestInterChipLink:
    def test_transfer_time_sums_hop_serialization_and_wire(self):
        link = InterChipLink(bandwidth=100e9, hop_latency_s=1e-6,
                             serialization_s=2e-6)
        assert link.transfer_time(100e9) == 1e-6 + 2e-6 + 1.0

    def test_occupancy_excludes_flight_latency(self):
        link = InterChipLink(bandwidth=100e9, hop_latency_s=1e-6,
                             serialization_s=2e-6)
        assert link.occupancy_time(100e9) == 2e-6 + 1.0
        assert link.occupancy_time(100e9) < link.transfer_time(100e9)

    def test_zero_bytes_is_free(self):
        link = InterChipLink(hop_latency_s=1e-6, serialization_s=1e-6)
        assert link.transfer_time(0) == 0.0
        assert link.occupancy_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        link = InterChipLink()
        with pytest.raises(ValueError):
            link.transfer_time(-1)
        with pytest.raises(ValueError):
            link.occupancy_time(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bandwidth": 0.0},
            {"bandwidth": -1.0},
            {"hop_latency_s": -1e-9},
            {"serialization_s": -1e-9},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            InterChipLink(**kwargs)

    def test_from_design_units(self):
        link = InterChipLink.from_design(link_gbs=64.0, link_hop_us=2.0,
                                         link_serialization_us=0.5)
        assert link.bandwidth == 64.0 * 1e9
        assert link.bandwidth_gbs == pytest.approx(64.0)
        assert link.hop_latency_s == 2.0 * 1e-6
        assert link.serialization_s == 0.5 * 1e-6


class TestPartitioner:
    def test_single_chip_has_no_cuts(self):
        assert partition_segments([1.0, 2.0, 3.0], 1) == ()

    def test_balanced_load_prefers_earliest_cut(self):
        # Both cuts give max load 2; the lexicographically smallest wins.
        assert partition_segments([1.0, 1.0, 1.0], 2) == (1,)

    def test_heavy_head_isolated(self):
        assert partition_segments([4.0, 1.0, 1.0], 2) == (1,)

    def test_heavy_tail_isolated(self):
        assert partition_segments([1.0, 1.0, 4.0], 2) == (2,)

    def test_three_chips_three_segments(self):
        assert partition_segments([1.0, 2.0, 3.0], 3) == (1, 2)

    def test_more_chips_than_segments_rejected(self):
        with pytest.raises(ValueError):
            partition_segments([1.0, 2.0, 3.0], 4)

    def test_nonpositive_chips_rejected(self):
        with pytest.raises(ValueError):
            partition_segments([1.0], 0)


class TestEncoderSegments:
    def test_boundary_bytes_hand_computed(self):
        # batch=1, seq=128, hidden=1024, fp32: activation = 524288 bytes;
        # the qkv boundary carries Q, K and V.
        assert encoder_boundary_bytes(1, 128) == (3 * 524288, 524288)

    def test_boundary_bytes_scale_with_shape(self):
        one = encoder_boundary_bytes(1, 128)
        assert encoder_boundary_bytes(2, 128) == (2 * one[0], 2 * one[1])
        assert encoder_boundary_bytes(1, 256) == (2 * one[0], 2 * one[1])

    def test_boundary_bytes_reject_bad_shape(self):
        with pytest.raises(ValueError):
            encoder_boundary_bytes(0, 128)
        with pytest.raises(ValueError):
            encoder_boundary_bytes(1, 0)

    def test_segment_flops_cover_the_layer_inventory(self):
        flops = encoder_segment_flops(1, 128)
        assert len(flops) == len(ENCODER_SEGMENT_NAMES)
        assert all(value > 0 for value in flops)
        # qkv: 3 projections of hidden x hidden over 128 tokens.
        tokens, hidden = 128, BERT_LARGE.hidden
        assert flops[0] == 3 * (2.0 * tokens * hidden * hidden)
        # ffn dominates: two hidden x ffn_hidden GEMMs.
        assert flops[2] == max(flops)


class TestChipletMetrics:
    def test_latency_is_segments_plus_transfers(self):
        link = InterChipLink(bandwidth=1e9, hop_latency_s=1e-6)
        metrics = chiplet_metrics([1e-3, 2e-3, 3e-3], (2,), (1000, 2000), link)
        transfer = link.transfer_time(2000)
        assert metrics.latency_s == pytest.approx(6e-3 + transfer)
        assert metrics.link_s == transfer
        assert metrics.link_bytes == 2000

    def test_max_stage_is_busiest_chip_or_link(self):
        link = InterChipLink(bandwidth=1e3)  # slow: 2000 B -> 2 s occupancy
        metrics = chiplet_metrics([1e-3, 2e-3, 3e-3], (2,), (1000, 2000), link)
        assert metrics.max_stage_s == pytest.approx(2.0)
        assert metrics.stage_bounds_s["link0"] == pytest.approx(2.0)
        assert metrics.stage_bounds_s["chip0"] == pytest.approx(3e-3)
        assert metrics.stage_bounds_s["chip1"] == pytest.approx(3e-3)

    def test_no_cuts_degenerates_to_serial_sum(self):
        link = InterChipLink()
        metrics = chiplet_metrics([1e-3, 2e-3, 3e-3], (), (1000, 2000), link)
        assert metrics.latency_s == pytest.approx(6e-3)
        assert metrics.link_bytes == 0
        assert metrics.link_s == 0.0
        assert metrics.max_stage_s == pytest.approx(6e-3)


class TestPipelineRoofline:
    def test_latency_is_busiest_stage(self):
        roofline = pipeline_roofline([1.0, 3.0], [2.0])
        assert roofline.latency_s == 3.0
        assert roofline.bottleneck == "chip1"

    def test_link_can_be_the_bottleneck(self):
        roofline = pipeline_roofline([1.0, 1.0], [5.0])
        assert roofline.bottleneck == "link0"
        assert roofline.latency_s == 5.0

    def test_stage_names(self):
        roofline = pipeline_roofline([1.0, 2.0, 3.0], [0.5, 0.5])
        assert set(roofline.busy_s) == {"chip0", "chip1", "chip2",
                                        "link0", "link1"}


class TestCostModels:
    def test_area_matches_published_utilization_scale(self):
        # The default RSN-XNN build reports 494,855 LUTs (Table 10); the
        # model must land in its neighbourhood.
        area = design_area_luts(6, 6)
        assert 0.95 * 494_855 <= area <= 1.05 * 494_855

    def test_area_scales_linearly_with_chips(self):
        assert design_area_luts(6, 6, num_chips=2) == 2 * design_area_luts(6, 6)

    def test_area_monotone_in_fu_counts(self):
        assert design_area_luts(6, 6) > design_area_luts(3, 6)
        assert design_area_luts(6, 6) > design_area_luts(6, 3)

    def test_area_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            design_area_luts(0, 6)
        with pytest.raises(ValueError):
            design_area_luts(6, 6, num_chips=0)

    def _default_power(self, num_chips=1, link=None):
        return design_power_w(
            num_mme=6,
            num_mem_c=6,
            peak_tflops=7.6,
            memc_tflops=0.432,
            scratchpad_mb=12.0,
            offchip_gbs=65.0,
            num_chips=num_chips,
            link=link,
        )

    def test_power_matches_published_total_scale(self):
        # Table 10 reports 98.66 W for the full design.
        power = self._default_power()
        assert 0.9 * 98.66 <= power <= 1.1 * 98.66

    def test_multi_chip_power_adds_link_cost(self):
        single = self._default_power()
        link = InterChipLink.from_design(link_gbs=64.0)
        dual = self._default_power(num_chips=2, link=link)
        assert dual > 2 * single  # two chips plus a powered link
        assert math.isfinite(dual)

    def test_more_link_bandwidth_costs_more_power(self):
        slow = self._default_power(
            num_chips=2, link=InterChipLink.from_design(link_gbs=16.0))
        fast = self._default_power(
            num_chips=2, link=InterChipLink.from_design(link_gbs=256.0))
        assert fast > slow
