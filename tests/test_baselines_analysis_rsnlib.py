"""Tests for the baselines, the analysis helpers, and the RSNlib front end."""

from __future__ import annotations

import pytest

from repro.analysis import (Table, analyze_program, format_table, format_value,
                            gpu_energy_table, machine_balance, roofline_latency,
                            vck190_energy_point)
from repro.baselines import CHARM_PUBLISHED, CharmModel, TABLE8_ACCELERATORS, VectorOverlayModel
from repro.core import MOp, RSNProgram
from repro.rsnlib import EncoderModel, Schedule, ScheduleError, compile_encoder
from repro.rsnlib.ops import Attention, FeedForward, LayerNorm, Linear
from repro.workloads import bert_large_encoder, mlp_model, ncf_model


class TestCharmModel:
    def test_gemm_throughput_increases_with_size(self):
        charm = CharmModel()
        small = charm.gemm_throughput_gflops(1024)
        large = charm.gemm_throughput_gflops(6144)
        assert large > small
        assert 500 < small < 3000
        with pytest.raises(ValueError):
            charm.gemm_throughput_gflops(0)

    def test_bert_latency_regime(self):
        charm = CharmModel()
        latency = charm.model_latency(bert_large_encoder(batch=6, seq_len=512))
        # One six-batch pass takes tens of milliseconds (paper measures 110 ms).
        assert 0.03 < latency < 0.2

    def test_latency_per_task_vs_published_order(self):
        charm = CharmModel()
        per_task = charm.latency_per_task_ms(bert_large_encoder(batch=6, seq_len=512))
        assert 0.1 * CHARM_PUBLISHED["latency_per_task_ms"]["BERT"] < per_task \
            < 2 * CHARM_PUBLISHED["latency_per_task_ms"]["BERT"]

    def test_feedforward_models(self):
        charm = CharmModel()
        assert charm.model_latency(mlp_model(batch=3072)) > charm.model_latency(
            ncf_model(batch=8192))


class TestVectorOverlay:
    def test_application1_serialises_fully(self):
        overlay = VectorOverlayModel()
        assert overlay.run(overlay.application1_program()) == 300

    def test_application2_war_hazard(self):
        overlay = VectorOverlayModel()
        # 8 dependent instructions of 100 cycles each: no overlap possible.
        assert overlay.run(overlay.application2_program()) == 800

    def test_unknown_op_rejected(self):
        overlay = VectorOverlayModel()
        with pytest.raises(ValueError):
            overlay.run([("jump", "", ())])

    def test_published_table8_rows(self):
        assert TABLE8_ACCELERATORS["DFX"]["utilization_pct"] == 15
        assert "RSN-XNN" in TABLE8_ACCELERATORS


class TestAnalysis:
    def test_roofline_bound_selection(self):
        compute_bound = roofline_latency(1e12, 1e6, achieved_flops=1e12, bandwidth=1e9)
        assert compute_bound.compute_bound
        memory_bound = roofline_latency(1e9, 1e12, achieved_flops=1e12, bandwidth=1e9)
        assert not memory_bound.compute_bound
        assert machine_balance(6.7e12, 41.5e9) == pytest.approx(161.4, rel=0.01)
        with pytest.raises(ValueError):
            roofline_latency(-1, 0, 1, 1)

    def test_instruction_analysis(self):
        program = RSNProgram("p")
        program.emit("DDR", ["DDR"], [MOp({"addr": 0}, nbytes=12)], reuse=4)
        program.emit("MemA", ["MemA0"], [MOp({"load": True}, nbytes=4)], reuse=64)
        analysis = analyze_program(program, latency_s=1e-3, flops=1e9)
        assert analysis.packet_count == 2
        assert analysis.compression_ratios()["MemA"] > analysis.compression_ratios()["DDR"]
        assert analysis.instruction_processing_rate > 0
        assert analysis.flops_per_instruction_byte > 0

    def test_energy_points(self):
        points = {p.device: p for p in gpu_energy_table(batch=8)}
        assert points["T4"].operating_efficiency_seq_per_j == pytest.approx(0.22, abs=0.02)
        vck = vck190_energy_point(latency_ms=444, batch=8, dram_traffic_gb=12)
        assert vck.operating_efficiency_seq_per_j == pytest.approx(0.40, abs=0.03)
        assert vck.dynamic_efficiency_seq_per_j == pytest.approx(0.99, abs=0.05)

    def test_table_rendering(self):
        table = Table("demo", ["a", "b"])
        table.add_row(1, 2.34567)
        table.add_note("a note")
        text = table.render()
        assert "demo" in text and "2.35" in text and "a note" in text
        with pytest.raises(ValueError):
            table.add_row(1)
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert "x" in format_table("t", ["x"], [[1]])


class TestRSNlib:
    def test_standard_model_compiles_and_runs(self):
        model = EncoderModel.standard("tiny", hidden=64, num_heads=4, intermediate=128)
        compiled = compile_encoder(model, Schedule(batch=1, sequence_length=32))
        result = compiled.run()
        assert result.latency_s > 0

    def test_parameter_count(self):
        model = EncoderModel.standard("bert", hidden=1024, num_heads=16, intermediate=4096)
        # ~12.6 M parameters per encoder block.
        assert 12e6 < model.parameter_count() < 14e6

    def test_unsupported_pattern_rejected(self):
        model = EncoderModel("weird", [Linear("fc", in_features=8, out_features=8)])
        with pytest.raises(ScheduleError):
            compile_encoder(model, Schedule(batch=1, sequence_length=32))

    def test_sequence_length_constraint(self):
        model = EncoderModel.standard("tiny", hidden=64, num_heads=4, intermediate=128)
        with pytest.raises(ScheduleError):
            compile_encoder(model, Schedule(batch=1, sequence_length=100))

    def test_operator_validation(self):
        with pytest.raises(ValueError):
            Attention("a", hidden=65, num_heads=4)
        with pytest.raises(ValueError):
            Linear("l", in_features=0, out_features=4)
        with pytest.raises(ValueError):
            FeedForward("f", hidden=0, intermediate=1)
        with pytest.raises(ValueError):
            LayerNorm("n", hidden=0)
        with pytest.raises(ValueError):
            Schedule(batch=0)
