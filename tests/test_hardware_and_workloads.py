"""Tests for the hardware platform models and the workload inventories."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (AIEArrayModel, GPU_SPECS, GPUModel, MMEGroupPlan, PowerModel,
                            VCK190, ddr_channel, lpddr_channel)
from repro.hardware.area import AreaModel
from repro.hardware.power import FUPowerInput
from repro.workloads import (MatMulLayer, bert_large_encoder,
                             bert_large_model, mlp_model, ncf_model,
                             reference, tensors, vit_model)


class TestVCK190Spec:
    def test_tile_count_and_peaks(self):
        assert VCK190.aie_tiles == 400
        assert VCK190.peak_flops_per_tile == pytest.approx(20e9)
        assert VCK190.total_offchip_bw == pytest.approx(57.6e9)

    def test_weight_reuse_for_peak_matches_paper(self):
        # Section 5.3: "each loaded weight must be reused over 661 times".
        assert VCK190.weight_reuse_for_peak() == pytest.approx(661, rel=0.01)

    def test_plio_bandwidths_positive(self):
        assert VCK190.plio_input_bw > VCK190.plio_output_bw > 0


class TestAIEModel:
    def test_default_plan_matches_fig17(self):
        plan = MMEGroupPlan()
        assert plan.tiles_used == 384
        assert plan.input_streams == 192
        assert plan.output_streams == 96
        assert plan.budget().fits

    def test_plan_validation_rejects_oversubscription(self):
        aie = AIEArrayModel()
        with pytest.raises(ValueError):
            aie.validate_plan(MMEGroupPlan(num_groups=8))  # 512 tiles > 400
        with pytest.raises(ValueError):
            aie.validate_plan(MMEGroupPlan(num_groups=6, input_share=1))  # too many streams

    def test_gemm_throughput_ordering_matches_table6a(self):
        aie = AIEArrayModel()
        best = aie.array_gemm_flops((32, 32, 32))
        mid = aie.array_gemm_flops((32, 32, 16))
        low = aie.array_gemm_flops((32, 16, 32))
        assert best > mid > low
        assert 6.0e12 < best < 7.6e12

    def test_kernel_efficiency_bounds(self):
        aie = AIEArrayModel()
        assert 0 < aie.kernel_efficiency((8, 8, 8)) < aie.kernel_efficiency((64, 64, 64)) < 1
        with pytest.raises(ValueError):
            aie.kernel_efficiency((0, 32, 32))

    @given(m=st.integers(8, 128), k=st.integers(8, 128), n=st.integers(8, 128))
    @settings(max_examples=40, deadline=None)
    def test_efficiency_always_in_unit_interval(self, m, k, n):
        aie = AIEArrayModel()
        assert 0 < aie.kernel_efficiency((m, k, n)) < 1


class TestMemoryChannels:
    def test_read_write_times(self):
        ddr = ddr_channel()
        assert ddr.read_time(21e9) == pytest.approx(1.0, rel=0.01)
        assert ddr.write_time(23.5e9) == pytest.approx(1.0, rel=0.01)
        assert ddr.read_time(0) == 0.0

    def test_strided_penalty_and_scaling(self):
        ddr = ddr_channel()
        assert ddr.read_time(1e9, strided=True) > ddr.read_time(1e9)
        scaled = ddr.scaled(2.0)
        assert scaled.read_time(1e9) < ddr.read_time(1e9)

    def test_traffic_accounting(self):
        lpddr = lpddr_channel()
        lpddr.read_time(100)
        lpddr.write_time(50)
        assert lpddr.total_bytes == 150
        lpddr.reset()
        assert lpddr.total_bytes == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ddr_channel(bandwidth_scale=0)
        with pytest.raises(ValueError):
            ddr_channel().read_time(-1)


class TestGPUModels:
    def test_table10_specs_present(self):
        assert set(GPU_SPECS) == {"T4-fp32", "V100-fp32", "A100-fp32", "A100-fp16", "L4-fp32"}
        assert GPU_SPECS["T4-fp32"].published_latency_ms[8] == 499

    def test_energy_efficiency_matches_table10(self):
        t4 = GPU_SPECS["T4-fp32"]
        assert t4.sequences_per_joule(8) == pytest.approx(0.22, abs=0.02)
        assert t4.sequences_per_joule(8, dynamic=True) == pytest.approx(0.38, abs=0.03)

    def test_roofline_model_monotonic_in_batch(self):
        model = GPUModel(GPU_SPECS["T4-fp32"])
        flops_per_seq, bytes_per_seq = 401e9, 2e9
        lat4 = model.estimate_latency(4 * flops_per_seq, 4 * bytes_per_seq, batch=4)
        lat8 = model.estimate_latency(8 * flops_per_seq, 8 * bytes_per_seq, batch=8)
        assert lat8 > lat4
        assert model.estimate_latency_ms(8 * flops_per_seq, 8 * bytes_per_seq, 8) > 100

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            GPUModel(GPU_SPECS["T4-fp32"], compute_efficiency=0)


class TestPowerAndArea:
    def test_paper_breakdown_total(self):
        report = PowerModel.paper_breakdown()
        assert report.total_w == pytest.approx(98.66)
        assert report.dominant() == "AIE"

    def test_model_estimate_shapes(self):
        model = PowerModel()
        report = model.estimate([
            FUPowerInput("AIE", count=6, compute_tflops=6.7, on_aie=True, onchip_mb=3.5),
            FUPowerInput("MemC", count=6, compute_tflops=0.4, onchip_mb=6.0),
        ])
        assert report.breakdown_w["AIE"] > report.breakdown_w["MemC"]
        assert report.fraction("Decoder") < 0.01

    def test_decoder_area_close_to_published(self):
        area = AreaModel().decoder_area(num_fu_types=7, num_fus=14)
        assert 6_000 < area.luts < 20_000
        assert area.lut_pct < 5
        with pytest.raises(ValueError):
            AreaModel().decoder_area(num_fu_types=0, num_fus=1)

    def test_utilization_helper(self):
        assert AreaModel.utilization_pct(4.7, 8.0) == pytest.approx(58.75)
        with pytest.raises(ValueError):
            AreaModel.utilization_pct(1.0, 0.0)


class TestWorkloads:
    def test_bert_large_encoder_shapes_match_table9(self):
        encoder = bert_large_encoder(batch=6, seq_len=512)
        qkv = encoder.layer("query")
        assert (qkv.m, qkv.k, qkv.n) == (3072, 1024, 1024)
        attn = encoder.layer("attention_mm1")
        assert (attn.m, attn.k, attn.n, attn.num) == (512, 64, 512, 96)
        ffn = encoder.layer("ffn_mm1")
        assert (ffn.m, ffn.k, ffn.n) == (3072, 1024, 4096)

    def test_full_model_has_24x_layers(self):
        model = bert_large_model(batch=1, seq_len=384)
        assert len(model.layers) == 24 * 8
        assert model.tasks_per_inference == 24

    def test_layer_byte_and_flop_accounting(self):
        layer = MatMulLayer("l", m=128, k=64, n=32, num=2)
        assert layer.flops == 2 * 128 * 64 * 32 * 2
        assert layer.lhs_bytes == 128 * 64 * 2 * 4
        assert layer.offchip_bytes == layer.lhs_bytes + layer.rhs_bytes + layer.out_bytes

    def test_kept_onchip_removes_traffic(self):
        layer = MatMulLayer("l", m=128, k=64, n=32)
        fused = layer.kept_onchip(out=True)
        assert fused.offchip_store_bytes == 0
        assert fused.offchip_bytes < layer.offchip_bytes

    def test_with_batch_scaling_modes(self):
        layer = MatMulLayer("l", m=128, k=64, n=32, num=4)
        assert layer.with_batch(3).m == 384
        assert layer.with_batch(3, batch_scales_m=False, batch_scales_num=True).num == 12

    def test_other_models_constructible(self):
        assert len(vit_model().layers) == 8
        assert len(ncf_model().layers) == 5
        assert len(mlp_model(depth=4).layers) == 4
        with pytest.raises(ValueError):
            mlp_model(depth=0)

    def test_invalid_layer_rejected(self):
        with pytest.raises(ValueError):
            MatMulLayer("bad", m=0, k=1, n=1)


class TestReferenceOps:
    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).standard_normal((8, 16))
        s = reference.softmax(x)
        np.testing.assert_allclose(s.sum(axis=-1), 1.0, rtol=1e-6)

    def test_layer_norm_zero_mean_unit_var(self):
        x = np.random.default_rng(1).standard_normal((4, 64)).astype(np.float32)
        out = reference.layer_norm(x, np.ones(64), np.zeros(64))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_tiled_gemm_matches_dense(self):
        rng = np.random.default_rng(2)
        lhs = rng.standard_normal((96, 70)).astype(np.float32)
        rhs = rng.standard_normal((70, 50)).astype(np.float32)
        np.testing.assert_allclose(reference.tiled_gemm(lhs, rhs, 32, 16, 24), lhs @ rhs,
                                   rtol=1e-4, atol=1e-4)

    @given(tile_m=st.integers(1, 40), tile_k=st.integers(1, 40), tile_n=st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_tiled_gemm_any_tiling_is_equivalent(self, tile_m, tile_k, tile_n):
        rng = np.random.default_rng(3)
        lhs = rng.standard_normal((37, 29)).astype(np.float32)
        rhs = rng.standard_normal((29, 23)).astype(np.float32)
        np.testing.assert_allclose(reference.tiled_gemm(lhs, rhs, tile_m, tile_k, tile_n),
                                   lhs @ rhs, rtol=1e-4, atol=1e-4)

    def test_attention_head_shapes_and_weights(self):
        rng = tensors.make_rng()
        q = tensors.activation((16, 8), rng)
        k = tensors.activation((16, 8), rng)
        v = tensors.activation((16, 8), rng)
        out = reference.attention_head(q, k, v)
        assert out.shape == (16, 8)

    def test_encoder_weights_deterministic(self):
        w1 = tensors.encoder_weights(32, 64, tensors.make_rng(5))
        w2 = tensors.encoder_weights(32, 64, tensors.make_rng(5))
        np.testing.assert_array_equal(w1["wq"], w2["wq"])
