"""Differential contract: batched analytic evaluation == scalar per point.

The batched ``dse_encoder`` evaluator shares tallies across points and
vectorizes the roofline arithmetic; this suite pins the hard contract that
none of that changes a single bit of any payload -- every float and int must
equal the scalar analytic runner's output exactly, over the full smoke space
and a broad slice of the full encoder space, at reduced fidelity, with
partially specified parameters, and on repeat calls (warm memo).
"""

from __future__ import annotations

import pytest

from repro.explore import get_space
from repro.runner import REGISTRY
from repro.xnn.analytic import EncoderBatchEvaluator


def _scalar():
    return REGISTRY.runner("dse_encoder", "analytic")


def _batched():
    fn = REGISTRY.batch_runner("dse_encoder", "analytic")
    assert fn is not None, "dse_encoder must register an analytic batch runner"
    return fn


def _space_params(space_name, fidelity=1.0, stride=1):
    space = get_space(space_name)
    return [space.point_params(assignment, fidelity)
            for assignment in space.points()[::stride]]


@pytest.mark.parametrize("space_name,fidelity,stride", [
    ("encoder-smoke", 1.0, 1),     # the whole smoke space
    ("encoder-smoke", 0.5, 1),     # reduced fidelity (halving's early rungs)
    ("encoder", 1.0, 11),          # broad slice of the full space
])
def test_batched_equals_scalar_exactly(space_name, fidelity, stride):
    params_list = _space_params(space_name, fidelity, stride)
    scalar_fn = _scalar()
    expected = [scalar_fn(**params) for params in params_list]
    actual = _batched()(params_list)
    assert actual == expected  # exact: every float bit-for-bit

    # Warm memo (same process-wide evaluator) must not drift either.
    assert _batched()(params_list) == expected


def test_batched_applies_scalar_defaults():
    # encoder-smoke points omit tile_k / super_n / mem_b_bytes / num_mme;
    # an even sparser mapping must resolve to the scalar signature defaults.
    sparse = [{"seq_len": 64}, {"seq_len": 128, "pipeline_attention": False}]
    expected = [_scalar()(**params) for params in sparse]
    assert _batched()(sparse) == expected


def test_batched_empty_generation():
    assert _batched()([]) == []


def test_batched_rejects_infeasible_designs_like_scalar():
    bad = {"num_mme": 40}  # no MME grouping fits the AIE array
    with pytest.raises(ValueError):
        _scalar()(**bad)
    evaluator = EncoderBatchEvaluator()  # fresh: nothing memoized
    with pytest.raises(ValueError):
        from repro.runner.library import _encoder_config
        evaluator.evaluate_batch([bad], _encoder_config)
    # Failures are never memoized: a second attempt fails identically.
    with pytest.raises(ValueError):
        from repro.runner.library import _encoder_config
        evaluator.evaluate_batch([bad], _encoder_config)


def _catalogue_params(kind):
    return [dict(s.params) for s in REGISTRY.select() if s.kind == kind]


@pytest.mark.parametrize("kind,extra", [
    ("xnn_encoder", [{"batch": 2, "seq_len": 256, "model": "vit_base",
                      "options": {"pipeline_attention": False},
                      "bandwidth_scale": 0.5}]),
    ("xnn_gemm", [{"m": 512, "k": 768, "n": 1024, "bandwidth_scale": 2.0,
                   "options": {"tile_m": 256}}]),
])
def test_catalogue_kind_batched_equals_scalar_exactly(kind, extra):
    """The encoder-shaped catalogue kinds' batch runners == scalar, bit for bit
    -- over every catalogue point of the kind plus off-catalogue variants."""
    params_list = _catalogue_params(kind) + extra
    assert params_list, f"catalogue has no {kind} scenarios"
    scalar_fn = REGISTRY.runner(kind, "analytic")
    batched_fn = REGISTRY.batch_runner(kind, "analytic")
    assert batched_fn is not None, f"{kind} must register an analytic batch runner"
    expected = [scalar_fn(**params) for params in params_list]
    assert batched_fn(params_list) == expected
    # Warm memo (same process-wide evaluator) must not drift either.
    assert batched_fn(params_list) == expected


@pytest.mark.parametrize("kind", ["xnn_encoder", "xnn_gemm"])
def test_catalogue_kind_batched_rejects_unknown_params_like_scalar(kind):
    good = _catalogue_params(kind)[0]
    with pytest.raises(TypeError):
        REGISTRY.runner(kind, "analytic")(**{**good, "bogus_knob": 1})
    with pytest.raises(TypeError):
        REGISTRY.batch_runner(kind, "analytic")([{**good, "bogus_knob": 1}])


def test_serial_sweep_routes_batch_kinds_and_matches_scalar():
    """A serial analytic sweep over batch-capable kinds returns exactly the
    per-scenario scalar results (the run_sweep batching is invisible)."""
    from repro.runner.sweep import run_sweep

    names = [s.name for s in REGISTRY.select()
             if s.kind in ("xnn_encoder", "xnn_gemm")]
    outcomes = run_sweep(names, backend="analytic")
    by_name = {o.scenario: o for o in outcomes}
    for name in names:
        scenario = REGISTRY.get(name)
        scalar = REGISTRY.runner(scenario.kind, "analytic")(**scenario.params)
        assert by_name[name].result == scalar
        assert not by_name[name].cached


def test_exploration_frontiers_identical_across_proxies():
    """The whole point of payload equality: sweep-proxy and batched-proxy
    explorations produce the same frontier for the same seed."""
    from repro.explore import SuccessiveHalving, run_exploration

    def explore(proxy):
        return run_exploration(get_space("encoder-smoke"), SuccessiveHalving(),
                               budget=12, verify_top=0, seed=5, proxy=proxy)

    sweep = explore("sweep")
    batched = explore("batched")
    assert batched.proxy == "batched"
    assert [point.to_dict() for point in sweep.frontier] == \
        [point.to_dict() for point in batched.frontier]
