"""Differential pin: serial == pool == workqueue(fs) == workqueue(tcp).

The executor layer's entire safety argument is that execution *policy* is
invisible in the results: scenarios are JSON-able data, runners are
deterministic, so a sweep computed in-process, on a local pool, or by
detached work-queue workers on another host -- over a shared spool
directory or a TCP job server -- must produce byte-identical
``SweepOutcome`` lists.  This suite pins that differentially over a mixed
engine/analytic scenario set, cached and uncached, and exercises the spool
protocol's recovery paths (orphaned claims, corrupted job files, killed
workers, server restarts) end to end against a live submitter on both
transports.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.runner import (REGISTRY, ProcessPoolExecutor, ResultCache,
                          WorkQueueExecutor, canonical_json, run_sweep,
                          run_worker)
from repro.runner.netqueue import NetSpool, SpoolServer


@pytest.fixture()
def spoold(tmp_path):
    """A live ``spoold`` server over a tmp spool directory."""
    server = SpoolServer(tmp_path / "served-spool", host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.close()
    thread.join(timeout=5.0)

#: cheap engine-backend scenarios (synthetic chains + closed-form kinds).
ENGINE_SET = [
    "smoke/engine-chain",
    "table6b/charm-1024",
    "fig18/charm-b1",
    "table6a/aie-32x16x32",
]

#: the acceptance sweep (fig18 + table11), run on the analytic backend where
#: it costs milliseconds; the CI ``executor-smoke`` job runs the same sweep
#: on the engine backend with external worker processes.
ANALYTIC_SET = sorted(
    s.name for s in REGISTRY.select(tags=["fig18", "table11"])
)


def _strip(outcomes):
    """The byte-comparable projection of a ``SweepOutcome`` list (elapsed
    wall time is the one legitimately machine-dependent field)."""
    return [
        canonical_json({
            "scenario": o.scenario,
            "kind": o.kind,
            "backend": o.backend,
            "cached": o.cached,
            "result": o.result,
        })
        for o in outcomes
    ]


class TestExecutorEquivalence:
    def test_serial_pool_workqueue_identical_uncached(self, tmp_path):
        assert len(ANALYTIC_SET) == 16, "fig18+table11 catalogue changed"
        serial_engine = run_sweep(ENGINE_SET, backend="engine")
        serial_analytic = run_sweep(ANALYTIC_SET, backend="analytic")
        with ProcessPoolExecutor(2) as pool:
            pool_engine = run_sweep(ENGINE_SET, backend="engine",
                                    executor=pool)
            pool_analytic = run_sweep(ANALYTIC_SET, backend="analytic",
                                      executor=pool)
        # One executor instance serves both sweeps (and both backends) --
        # exactly how an exploration reuses its executor.
        with WorkQueueExecutor(tmp_path / "spool", local_workers=2,
                               poll_s=0.02, timeout_s=600.0) as wq:
            wq_engine = run_sweep(ENGINE_SET, backend="engine", executor=wq)
            wq_analytic = run_sweep(ANALYTIC_SET, backend="analytic",
                                    executor=wq)
        assert _strip(serial_engine) == _strip(pool_engine)
        assert _strip(serial_engine) == _strip(wq_engine)
        assert _strip(serial_analytic) == _strip(pool_analytic)
        assert _strip(serial_analytic) == _strip(wq_analytic)

    def test_workqueue_populated_cache_serves_serial_identically(self,
                                                                 tmp_path):
        cache = ResultCache(tmp_path / "cache")
        names = ENGINE_SET[:2]
        with WorkQueueExecutor(tmp_path / "spool", local_workers=1,
                               poll_s=0.02, timeout_s=600.0) as wq:
            cold = run_sweep(names, backend="engine", cache=cache,
                             executor=wq)
        assert all(not o.cached for o in cold)
        warm = run_sweep(names, backend="engine", cache=cache)
        assert all(o.cached for o in warm)
        assert [canonical_json(a.result) for a in cold] == \
            [canonical_json(b.result) for b in warm]

    def test_serial_populated_cache_serves_workqueue_identically(self,
                                                                 tmp_path):
        cache = ResultCache(tmp_path / "cache")
        names = ENGINE_SET[:2]
        cold = run_sweep(names, backend="engine", cache=cache)
        # Every scenario hits the cache, so the workqueue executor must not
        # spawn a single job (a hit never reaches the executor at all).
        with WorkQueueExecutor(tmp_path / "spool", local_workers=0,
                               poll_s=0.02, timeout_s=5.0) as wq:
            warm = run_sweep(names, backend="engine", cache=cache,
                             executor=wq)
        assert all(o.cached for o in warm)
        assert [canonical_json(a.result) for a in cold] == \
            [canonical_json(b.result) for b in warm]
        assert not list(wq.spool.pending_dir.glob("*.json"))


class TestNetworkTransportEquivalence:
    """The tentpole pin: a sweep whose submitter and workers are connected
    only by a ``tcp://`` URL (no shared directory anywhere in the executor's
    view) is byte-identical to ``SerialExecutor``."""

    def test_tcp_workqueue_matches_serial_byte_for_byte(self, spoold):
        serial_engine = run_sweep(ENGINE_SET, backend="engine")
        serial_analytic = run_sweep(ANALYTIC_SET, backend="analytic")
        with WorkQueueExecutor(spoold.url, local_workers=2,
                               poll_s=0.02, timeout_s=600.0) as wq:
            tcp_engine = run_sweep(ENGINE_SET, backend="engine", executor=wq)
            tcp_analytic = run_sweep(ANALYTIC_SET, backend="analytic",
                                     executor=wq)
        assert _strip(serial_engine) == _strip(tcp_engine)
        assert _strip(serial_analytic) == _strip(tcp_analytic)
        # Nothing of the batch survives on the served spool.
        assert not list(spoold.spool.pending_dir.glob("*.json"))
        assert not list(spoold.spool.results_dir.glob("*.json"))


class TestSpoolRecovery:
    """Failure injection against a live submitter, with the worker driven
    in-process so every interleaving is deterministic."""

    def _submit_async(self, executor, names, backend="engine"):
        scenarios = [REGISTRY.get(name) for name in names]
        executor.configure(backend, None)
        box = {}

        def target():
            try:
                box["results"] = executor.submit(scenarios, run_fn=None)
            except BaseException as error:  # noqa: BLE001 - reported by test
                box["error"] = error

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        return thread, box

    def _wait_for(self, predicate, timeout_s=30.0, message="condition"):
        deadline = time.monotonic() + timeout_s
        while not predicate():
            if time.monotonic() > deadline:
                raise AssertionError(f"timed out waiting for {message}")
            time.sleep(0.01)

    def test_orphaned_claim_is_requeued_and_completes(self, tmp_path):
        name = "table6b/charm-1024"
        serial = run_sweep([name])
        executor = WorkQueueExecutor(tmp_path / "spool", local_workers=0,
                                     poll_s=0.01, orphan_timeout_s=0.5,
                                     timeout_s=120.0)
        thread, box = self._submit_async(executor, [name])
        spool = executor.spool
        self._wait_for(lambda: list(spool.pending_dir.glob("*.json")),
                       message="job publication")
        # A worker claims the job and dies without ever heartbeating:
        # backdating the claim file is the death certificate.
        claimed = spool.claim("zombie-worker")
        assert claimed is not None
        os.utime(claimed.path, (1.0, 1.0))
        # The submitter must requeue it, after which a healthy worker picks
        # it up and the sweep completes with byte-identical results.
        processed = run_worker(spool.root, poll_s=0.01, max_jobs=1,
                               idle_exit_s=60.0, worker_id="healthy-worker")
        assert processed == 1
        thread.join(timeout=60.0)
        assert not thread.is_alive() and "error" not in box
        assert [canonical_json(r[1]) for r in box["results"]] == \
            [canonical_json(o.result) for o in serial]

    def test_corrupted_job_file_is_rewritten_and_completes(self, tmp_path):
        names = ["table6b/charm-1024", "fig18/charm-b1"]
        serial = run_sweep(names)
        executor = WorkQueueExecutor(tmp_path / "spool", local_workers=0,
                                     poll_s=0.01, timeout_s=120.0)
        thread, box = self._submit_async(executor, names)
        spool = executor.spool
        self._wait_for(
            lambda: len(list(spool.pending_dir.glob("*.json"))) == len(names),
            message="job publication")
        # External corruption of one published job file (a failing disk, a
        # partial copy onto the shared filesystem, ...).
        victim = sorted(spool.pending_dir.glob("*.json"))[0]
        victim.write_text("\x00 this is not JSON")
        # The worker reports it as a corrupt-job error; the submitter
        # rewrites the pristine job from memory; the worker (still polling)
        # then executes it -- three claims for two scenarios.
        processed = run_worker(spool.root, poll_s=0.01, max_jobs=3,
                               idle_exit_s=60.0, worker_id="healthy-worker")
        assert processed == 3
        thread.join(timeout=60.0)
        assert not thread.is_alive() and "error" not in box
        assert [canonical_json(r[1]) for r in box["results"]] == \
            [canonical_json(o.result) for o in serial]

    def test_tcp_worker_kill_is_recovered_mid_sweep(self, spoold):
        # The network-transport half of the orphan story: a TCP worker
        # claims a job and is killed (its connection simply stops talking;
        # the claim and its payload live server-side).  The submitter's
        # orphan scan -- judged entirely on the server's clock -- requeues
        # it, and a healthy TCP worker completes the sweep byte-identically.
        name = "table6b/charm-1024"
        serial = run_sweep([name])
        executor = WorkQueueExecutor(spoold.url, local_workers=0,
                                     poll_s=0.01, orphan_timeout_s=0.5,
                                     timeout_s=120.0)
        thread, box = self._submit_async(executor, [name])
        self._wait_for(
            lambda: list(spoold.spool.pending_dir.glob("*.json")),
            message="job publication over tcp")
        zombie = NetSpool(spoold.url).ensure()
        claimed = zombie.claim("zombie-tcp-worker")
        assert claimed is not None
        zombie.close()  # the kill: no heartbeat will ever arrive
        # Death certificate on the *server's* clock: backdate the
        # server-side claim file.
        (claim_file,) = spoold.spool.claimed_dir.glob("*.json")
        os.utime(claim_file, (1.0, 1.0))
        processed = run_worker(spoold.url, poll_s=0.01, max_jobs=1,
                               idle_exit_s=60.0,
                               worker_id="healthy-tcp-worker")
        assert processed == 1
        thread.join(timeout=60.0)
        assert not thread.is_alive() and "error" not in box
        assert [canonical_json(r[1]) for r in box["results"]] == \
            [canonical_json(o.result) for o in serial]

    def test_server_restart_with_jobs_in_flight_completes(self, tmp_path):
        # The queue state is the server's disk, so killing spoold with jobs
        # enqueued and restarting it on the same directory + port loses
        # nothing: the blocked submitter and a late worker both reconnect
        # and the sweep finishes byte-identically.
        name = "table6b/charm-1024"
        serial = run_sweep([name])
        first = SpoolServer(tmp_path / "served-spool", host="127.0.0.1",
                            port=0)
        port = first.address[1]
        server_thread = threading.Thread(target=first.serve_forever,
                                         daemon=True)
        server_thread.start()
        executor = WorkQueueExecutor(first.url, local_workers=0,
                                     poll_s=0.01, timeout_s=120.0)
        thread, box = self._submit_async(executor, [name])
        self._wait_for(
            lambda: list(first.spool.pending_dir.glob("*.json")),
            message="job publication before the restart")
        first.shutdown()
        first.close()
        server_thread.join(timeout=5.0)
        second = SpoolServer(tmp_path / "served-spool", host="127.0.0.1",
                             port=port)
        server_thread = threading.Thread(target=second.serve_forever,
                                         daemon=True)
        server_thread.start()
        try:
            processed = run_worker(second.url, poll_s=0.01, max_jobs=1,
                                   idle_exit_s=60.0,
                                   worker_id="post-restart-worker")
            assert processed == 1
            thread.join(timeout=60.0)
            assert not thread.is_alive() and "error" not in box
            assert [canonical_json(r[1]) for r in box["results"]] == \
                [canonical_json(o.result) for o in serial]
        finally:
            second.shutdown()
            second.close()
            server_thread.join(timeout=5.0)
