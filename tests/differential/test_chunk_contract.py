"""Differential pin: chunked distributed batched == serial batched.

The sharded-evaluation tentpole rests on one claim: sharding a generation
into chunk jobs changes *where* the batch runner executes, never *what* it
returns.  This suite pins :func:`~repro.runner.sweep.evaluate_chunked` and
the chunked ``run_sweep`` path byte-identical to the classic serial batched
call across every executor -- serial, process pool, workqueue over a shared
directory, and workqueue over a TCP job server -- including uneven tail
chunks, whole-chunk worker death and requeue, and warm per-chunk cache
reruns that must not touch the executor at all.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.explore import get_space, run_exploration
from repro.explore.strategies import GridSearch
from repro.runner import (ProcessPoolExecutor, ResultCache,
                          WorkQueueExecutor, canonical_json, run_sweep,
                          run_worker)
from repro.runner.executors import SerialExecutor
from repro.runner.netqueue import NetSpool, SpoolServer
from repro.runner.sweep import evaluate_chunked


@pytest.fixture()
def spoold(tmp_path):
    """A live ``spoold`` server over a tmp spool directory."""
    server = SpoolServer(tmp_path / "served-spool", host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.close()
    thread.join(timeout=5.0)


def _generation():
    """The 16-point encoder-smoke generation as ``(kind, params_list)``."""
    space = get_space("encoder-smoke")
    params = [space.point_params(a) for a in space.points()]
    assert len(params) == 16, "encoder-smoke space changed size"
    return space.kind, params


def _strip_results(results):
    return [canonical_json(result) for result in results]


def _strip_outcomes(outcomes):
    """The byte-comparable projection of a ``SweepOutcome`` list (elapsed
    wall time is the one legitimately machine-dependent field)."""
    return [
        canonical_json({
            "scenario": o.scenario,
            "kind": o.kind,
            "backend": o.backend,
            "cached": o.cached,
            "result": o.result,
        })
        for o in outcomes
    ]


class TestChunkedEquivalence:
    def test_chunked_identical_across_all_executors(self, tmp_path, spoold):
        kind, params = _generation()
        # The reference: the classic whole-generation in-process batch call
        # (serial executor, default chunk policy).
        serial, hits = evaluate_chunked(kind, params, backend="analytic")
        assert hits == 0
        reference = _strip_results(serial)
        # chunk_size=3 over 16 points: five full chunks plus a 1-point tail,
        # so the splice covers uneven chunk boundaries on every executor.
        with ProcessPoolExecutor(2) as pool, \
                WorkQueueExecutor(tmp_path / "spool", local_workers=2,
                                  poll_s=0.02, timeout_s=600.0) as wq_fs, \
                WorkQueueExecutor(spoold.url, local_workers=2,
                                  poll_s=0.02, timeout_s=600.0) as wq_tcp:
            for executor in (SerialExecutor(), pool, wq_fs, wq_tcp):
                results, hits = evaluate_chunked(
                    kind, params, backend="analytic", executor=executor,
                    chunk_size=3)
                assert hits == 0
                assert _strip_results(results) == reference, (
                    f"chunked results drifted on {type(executor).__name__}")

    def test_chunked_sweep_matches_serial_batched_sweep(self, tmp_path):
        space = get_space("encoder-smoke")
        scenarios = [space.materialize(a).scenario for a in space.points()]
        serial = run_sweep(scenarios, backend="analytic")
        with WorkQueueExecutor(tmp_path / "spool", local_workers=2,
                               poll_s=0.02, timeout_s=600.0) as wq:
            chunked = run_sweep(scenarios, backend="analytic", executor=wq,
                                chunk_size=4)
            scalar = run_sweep(scenarios, backend="analytic", executor=wq,
                               chunk_size="off")
        assert _strip_outcomes(serial) == _strip_outcomes(chunked)
        assert _strip_outcomes(serial) == _strip_outcomes(scalar)

    def test_exploration_chunked_workqueue_matches_serial(self, tmp_path):
        space = get_space("encoder-smoke")
        kwargs = dict(budget=16, verify_top=0, proxy="batched", cache=None)
        serial = run_exploration(space, GridSearch(), **kwargs)
        with WorkQueueExecutor(tmp_path / "spool", local_workers=2,
                               poll_s=0.02, timeout_s=600.0) as wq:
            chunked = run_exploration(space, GridSearch(), executor=wq,
                                      chunk_size="auto", **kwargs)

        def strip(report):
            payload = report.to_dict()
            payload.pop("proxy_wall_s", None)
            payload.pop("verify_wall_s", None)
            return canonical_json(payload)

        assert strip(serial) == strip(chunked)


class TestChunkRecovery:
    """Whole-chunk failure injection against a live submitter, with the
    worker driven in-process so every interleaving is deterministic."""

    def _evaluate_async(self, kind, params, executor, chunk_size):
        box = {}

        def target():
            try:
                box["results"], box["hits"] = evaluate_chunked(
                    kind, params, backend="analytic", executor=executor,
                    chunk_size=chunk_size)
            except BaseException as error:  # noqa: BLE001 - reported by test
                box["error"] = error

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        return thread, box

    def _wait_for(self, predicate, timeout_s=30.0, message="condition"):
        deadline = time.monotonic() + timeout_s
        while not predicate():
            if time.monotonic() > deadline:
                raise AssertionError(f"timed out waiting for {message}")
            time.sleep(0.01)

    def test_orphaned_chunk_is_requeued_and_completes(self, tmp_path):
        kind, params = _generation()
        serial, _ = evaluate_chunked(kind, params, backend="analytic")
        executor = WorkQueueExecutor(tmp_path / "spool", local_workers=0,
                                     poll_s=0.01, orphan_timeout_s=0.5,
                                     timeout_s=120.0)
        # chunk_size=8 over 16 points: exactly two chunk jobs in flight.
        thread, box = self._evaluate_async(kind, params, executor, 8)
        spool = executor.spool
        self._wait_for(
            lambda: len(list(spool.pending_dir.glob("*.json"))) == 2,
            message="chunk-job publication")
        # A worker claims one whole chunk and dies without ever
        # heartbeating: backdating the claim file is the death certificate.
        claimed = spool.claim("zombie-worker")
        assert claimed is not None
        os.utime(claimed.path, (1.0, 1.0))
        # The submitter requeues the orphaned chunk *as a unit*; a healthy
        # worker then executes the surviving chunk and the requeued one.
        processed = run_worker(spool.root, poll_s=0.01, max_jobs=2,
                               idle_exit_s=60.0, worker_id="healthy-worker")
        assert processed == 2
        thread.join(timeout=60.0)
        assert not thread.is_alive() and "error" not in box
        assert _strip_results(box["results"]) == _strip_results(serial)

    def test_tcp_chunk_worker_kill_is_recovered(self, spoold):
        # The network-transport half: a TCP worker claims a chunk job and is
        # killed (its connection stops talking; the claim and the chunk
        # payload live server-side).  The submitter's orphan scan requeues
        # the whole chunk and a healthy TCP worker completes it.
        kind, params = _generation()
        serial, _ = evaluate_chunked(kind, params, backend="analytic")
        executor = WorkQueueExecutor(spoold.url, local_workers=0,
                                     poll_s=0.01, orphan_timeout_s=0.5,
                                     timeout_s=120.0)
        thread, box = self._evaluate_async(kind, params, executor, 8)
        self._wait_for(
            lambda: len(list(spoold.spool.pending_dir.glob("*.json"))) == 2,
            message="chunk-job publication over tcp")
        zombie = NetSpool(spoold.url).ensure()
        claimed = zombie.claim("zombie-tcp-worker")
        assert claimed is not None
        zombie.close()  # the kill: no heartbeat will ever arrive
        # Death certificate on the *server's* clock: backdate the
        # server-side claim file.
        (claim_file,) = spoold.spool.claimed_dir.glob("*.json")
        os.utime(claim_file, (1.0, 1.0))
        processed = run_worker(spoold.url, poll_s=0.01, max_jobs=2,
                               idle_exit_s=60.0,
                               worker_id="healthy-tcp-worker")
        assert processed == 2
        thread.join(timeout=60.0)
        assert not thread.is_alive() and "error" not in box
        assert _strip_results(box["results"]) == _strip_results(serial)


class TestChunkCache:
    def test_warm_rerun_serves_chunks_without_any_jobs(self, tmp_path):
        kind, params = _generation()
        cache = ResultCache(tmp_path / "cache")
        with WorkQueueExecutor(tmp_path / "spool", local_workers=1,
                               poll_s=0.02, timeout_s=600.0) as wq:
            cold, cold_hits = evaluate_chunked(
                kind, params, backend="analytic", executor=wq, cache=cache,
                chunk_size=4)
        assert cold_hits == 0
        # The warm rerun must be served entirely from the chunk cache: a
        # zero-worker executor with a short timeout would fail any sweep
        # that published even one job.
        with WorkQueueExecutor(tmp_path / "spool2", local_workers=0,
                               poll_s=0.02, timeout_s=5.0) as idle:
            warm, warm_hits = evaluate_chunked(
                kind, params, backend="analytic", executor=idle, cache=cache,
                chunk_size=4)
            assert not list(idle.spool.pending_dir.glob("*.json"))
        assert warm_hits == len(params)
        assert _strip_results(warm) == _strip_results(cold)

    def test_force_reruns_despite_warm_chunk_cache(self, tmp_path):
        kind, params = _generation()
        cache = ResultCache(tmp_path / "cache")
        cold, _ = evaluate_chunked(kind, params, backend="analytic",
                                   cache=cache, chunk_size=4)
        forced, hits = evaluate_chunked(kind, params, backend="analytic",
                                        cache=cache, chunk_size=4,
                                        force=True)
        assert hits == 0
        assert _strip_results(forced) == _strip_results(cold)
