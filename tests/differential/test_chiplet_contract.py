"""Certified contracts of the ``dse_chiplet`` kind.

Three contracts, all hard:

* ``num_chips=1`` payloads are **byte-identical** to ``dse_encoder`` on both
  backends (the chiplet kind is a strict superset axis, not a fork);
* multi-chip analytic latency remains a **lower bound** on the engine's,
  with DDR/LPDDR traffic matching byte for byte and all link terms
  (partition, boundary bytes, transfer times) backend-identical;
* the batched chiplet evaluator equals the scalar analytic runner
  **exactly**, payload for payload, over whole spaces and mixed chip counts.
"""

from __future__ import annotations

import json

import pytest

from repro.explore import get_space
from repro.runner import REGISTRY
from repro.xnn.analytic import EncoderBatchEvaluator

#: float-noise slack on the lower-bound direction (same as the sibling
#: backend-contract suite).
FP_SLACK = 1e-9

BASE = {"batch": 1, "seq_len": 64, "num_mme": 6}

MULTI_CHIP_POINTS = [
    dict(BASE, num_chips=2, link_gbs=64.0),
    dict(BASE, num_chips=2, link_gbs=16.0, link_hop_us=2.0),
    dict(BASE, num_chips=3, link_gbs=16.0),
    dict(BASE, num_chips=3, link_gbs=256.0, link_serialization_us=0.5),
]


def _runner(kind, backend):
    fn = REGISTRY.runner(kind, backend)
    assert fn is not None
    return fn


def _batched():
    fn = REGISTRY.batch_runner("dse_chiplet", "analytic")
    assert fn is not None, "dse_chiplet must register an analytic batch runner"
    return fn


def _canon(payload):
    return json.dumps(payload, sort_keys=True)


class TestSingleChipIdentity:
    @pytest.mark.parametrize("backend", ["engine", "analytic"])
    def test_payload_byte_identical_to_dse_encoder(self, backend):
        chiplet = _runner("dse_chiplet", backend)(**BASE, num_chips=1)
        encoder = _runner("dse_encoder", backend)(**BASE)
        assert _canon(chiplet) == _canon(encoder)

    def test_chiplet_axes_are_inert_on_one_chip(self):
        # Link parameters must not leak into a single-chip evaluation.
        run = _runner("dse_chiplet", "analytic")
        default = run(**BASE, num_chips=1)
        tuned = run(**BASE, num_chips=1, link_gbs=1.0, link_hop_us=100.0,
                    link_serialization_us=100.0)
        assert _canon(default) == _canon(tuned)


class TestMultiChipContract:
    @pytest.mark.parametrize("params", MULTI_CHIP_POINTS,
                             ids=lambda p: f"chips{p['num_chips']}-"
                                           f"{p['link_gbs']:g}gbs")
    def test_lower_bound_and_exact_traffic(self, params):
        engine = _runner("dse_chiplet", "engine")(**params)
        analytic = _runner("dse_chiplet", "analytic")(**params)
        assert analytic["latency_s"] <= engine["latency_s"] * (1 + FP_SLACK)
        assert analytic["ddr_bytes"] == engine["ddr_bytes"]
        assert analytic["lpddr_bytes"] == engine["lpddr_bytes"]
        assert analytic["offchip_bytes"] == engine["offchip_bytes"]
        # The partition and link accounting are backend-independent by
        # construction -- equality must be exact, not approximate.
        assert analytic["cuts"] == engine["cuts"]
        assert analytic["link_bytes"] == engine["link_bytes"]
        assert analytic["link_s"] == engine["link_s"]
        assert analytic["num_chips"] == engine["num_chips"]

    @pytest.mark.parametrize("backend", ["engine", "analytic"])
    def test_multi_chip_latency_decomposes(self, backend):
        """End-to-end latency == single-chip latency + link transfer time:
        partitioning reorders no work, it only adds boundary crossings."""
        run = _runner("dse_chiplet", backend)
        single = run(**BASE, num_chips=1)
        multi = run(**BASE, num_chips=2, link_gbs=64.0)
        assert multi["latency_s"] == pytest.approx(
            single["latency_s"] + multi["link_s"], rel=1e-12)
        assert multi["link_s"] > 0.0
        assert multi["offchip_bytes"] == single["offchip_bytes"]

    def test_pipeline_beats_serial_when_link_is_fast(self):
        run = _runner("dse_chiplet", "analytic")
        multi = run(**BASE, num_chips=2, link_gbs=256.0)
        # The steady-state initiation interval must beat per-task latency
        # (otherwise scaling out buys nothing on any objective).
        assert multi["max_stage_s"] < multi["latency_s"]
        assert multi["pipeline_tasks_per_s"] > 1.0 / multi["latency_s"]

    def test_multi_chip_area_scales(self):
        run = _runner("dse_chiplet", "analytic")
        single = run(**BASE, num_chips=1)
        multi = run(**BASE, num_chips=3, link_gbs=64.0)
        assert multi["area_luts"] == 3 * single["area_luts"]
        assert multi["power_w"] > single["power_w"]


class TestBatchedChiplet:
    @pytest.mark.parametrize("space_name,fidelity", [
        ("chiplet-smoke", 1.0),
        ("chiplet-smoke", 0.5),
    ])
    def test_batched_equals_scalar_exactly(self, space_name, fidelity):
        space = get_space(space_name)
        params_list = [space.point_params(assignment, fidelity)
                       for assignment in space.points()]
        scalar_fn = _runner("dse_chiplet", "analytic")
        expected = [scalar_fn(**params) for params in params_list]
        actual = _batched()(params_list)
        assert actual == expected  # exact: every float bit-for-bit
        # Warm memo (same process-wide evaluator) must not drift either.
        assert _batched()(params_list) == expected

    def test_batched_mixes_chip_counts_and_defaults(self):
        mixed = [
            {"seq_len": 64},  # all chiplet axes defaulted -> single chip
            dict(BASE),
            dict(BASE, num_chips=2, link_gbs=64.0),
            dict(BASE, num_chips=3, link_gbs=16.0, link_hop_us=0.5),
        ]
        scalar_fn = _runner("dse_chiplet", "analytic")
        expected = [scalar_fn(**params) for params in mixed]
        assert _batched()(mixed) == expected

    def test_batched_empty_generation(self):
        assert _batched()([]) == []

    def test_batched_rejects_infeasible_designs_like_scalar(self):
        from repro.runner.library import _encoder_config

        bad = {"num_mme": 40, "num_chips": 2}
        with pytest.raises(ValueError):
            _runner("dse_chiplet", "analytic")(**bad)
        evaluator = EncoderBatchEvaluator()  # fresh: nothing memoized
        with pytest.raises(ValueError):
            evaluator.evaluate_chiplet_batch([bad], _encoder_config)

    def test_exploration_frontiers_identical_across_proxies(self):
        from repro.explore import (SuccessiveHalving, objectives_for,
                                   run_exploration)

        space = get_space("chiplet-smoke")
        objectives = objectives_for(space)
        obj_pairs = tuple((o.key, o.sense) for o in objectives)

        def explore(proxy):
            return run_exploration(space, SuccessiveHalving(objectives=obj_pairs),
                                   budget=12, verify_top=0, seed=5,
                                   objectives=objectives, proxy=proxy)

        sweep = explore("sweep")
        batched = explore("batched")
        assert batched.proxy == "batched"
        assert [point.to_dict() for point in sweep.frontier] == \
            [point.to_dict() for point in batched.frontier]
