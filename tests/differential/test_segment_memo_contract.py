"""Differential contract: memoized segment results == fresh simulation.

Part of the byte-identical-results contract of the PR 4 throughput overhaul:
serving a segment from the :class:`~repro.runner.cache.SegmentMemo` must be
observationally indistinguishable from running the event loop -- latency,
DDR/LPDDR traffic, and uOP counts all exactly equal, per segment, including
after a JSON round-trip through the on-disk layer.

Extended for the program-level (upstream workload key) memo layer and for
cross-host memo sharing through the spool: warm segments must skip codegen
entirely (zero ``ProgramBuilder`` constructions) and memo entries synced
between work-queue workers must neither change a byte of any result nor let
a stale peer poison a sweep.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
import repro.xnn.executor as executor_module
from repro.runner import WorkQueueExecutor, canonical_json, run_sweep
from repro.runner.cache import SegmentMemo, code_version
from repro.runner.executors import Spool, scenario_to_payload
from repro.runner.netqueue import SpoolServer
from repro.runner.scenarios import Scenario
from repro.xnn import CodegenOptions, XNNConfig, XNNExecutor

_TIMING = XNNConfig(carry_data=False)


def _segment_tuples(result):
    return [(s.name, s.latency_s, s.ddr_bytes, s.lpddr_bytes, s.uops)
            for s in result.segments]


def test_memoized_encoder_equals_fresh_per_segment(tmp_path):
    fresh = XNNExecutor(config=_TIMING, segment_memo=None)
    expected = fresh.run_encoder(batch=1, seq_len=64)

    # Cold pass populates the memo (both layers), warm pass is served from
    # the in-memory layer, reload pass from the on-disk layer.
    memo = SegmentMemo(root=tmp_path)
    executor = XNNExecutor(config=_TIMING, segment_memo=memo)
    cold = executor.run_encoder(batch=1, seq_len=64)
    warm = executor.run_encoder(batch=1, seq_len=64)
    assert memo.hits == len(expected.segments)

    reloaded_memo = SegmentMemo(root=tmp_path)
    reloaded = XNNExecutor(config=_TIMING,
                           segment_memo=reloaded_memo).run_encoder(batch=1,
                                                                   seq_len=64)
    assert reloaded_memo.hits == len(expected.segments)

    for result in (cold, warm, reloaded):
        assert _segment_tuples(result) == _segment_tuples(expected)


def test_memoized_ablation_variants_stay_distinct(tmp_path):
    """Table 9-style option ablation through one shared memo: every variant
    must keep its own numbers (no cross-variant contamination)."""
    variants = {
        "baseline": CodegenOptions.baseline(),
        "all": CodegenOptions.all_optimizations(),
    }
    fresh = {
        name: _segment_tuples(
            XNNExecutor(config=_TIMING, options=options,
                        segment_memo=None).run_encoder(batch=1, seq_len=64))
        for name, options in variants.items()
    }
    assert fresh["baseline"] != fresh["all"]  # the ablation is real

    memo = SegmentMemo(root=tmp_path)
    for _ in range(2):  # second round is all memo hits
        for name, options in variants.items():
            memoized = XNNExecutor(config=_TIMING, options=options,
                                   segment_memo=memo).run_encoder(batch=1,
                                                                  seq_len=64)
            assert _segment_tuples(memoized) == fresh[name]


# --------------------------------------------- upstream (workload-level) key


def _run_suite(executor):
    """One cheap workload per encoder-shaped kind, as segment tuples."""
    from repro.workloads import ncf_model
    from repro.workloads.vit import VIT_BASE

    gemm, _ = executor.run_gemm(256, 256, 256)
    return {
        "gemm": [(gemm.name, gemm.latency_s, gemm.ddr_bytes,
                  gemm.lpddr_bytes, gemm.uops)],
        "bert": _segment_tuples(executor.run_encoder(batch=1, seq_len=64)),
        "vit": _segment_tuples(
            executor.run_encoder(batch=1, seq_len=64, config=VIT_BASE)),
        "ncf": _segment_tuples(
            executor.run_feedforward_model(ncf_model(batch=256))),
    }


def test_upstream_warm_path_skips_codegen_and_equals_fresh(tmp_path,
                                                           monkeypatch):
    """Across every encoder-shaped kind: a warm repeated segment is served
    from the upstream workload key without constructing a single
    ``ProgramBuilder`` -- and the served results equal fresh simulation
    exactly (the satellite regression for the load-before-memo-check bug)."""
    fresh = _run_suite(XNNExecutor(config=_TIMING, segment_memo=None))

    memo = SegmentMemo(root=tmp_path)
    cold = _run_suite(XNNExecutor(config=_TIMING, segment_memo=memo))
    total_segments = sum(len(tuples) for tuples in fresh.values())
    assert memo.hits == 0 and memo.misses == 2 * total_segments

    constructions = []
    real_builder = executor_module.ProgramBuilder

    class CountingBuilder(real_builder):
        def __init__(self, *args, **kwargs):
            constructions.append(1)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(executor_module, "ProgramBuilder", CountingBuilder)
    warm = _run_suite(XNNExecutor(config=_TIMING, segment_memo=memo))
    assert constructions == []  # zero codegen on the whole warm suite
    assert memo.hits == total_segments

    assert cold == fresh
    assert warm == fresh


def test_downstream_fallback_backfills_the_upstream_key(tmp_path, monkeypatch):
    """A memo populated by a downstream-only (PR-8-era) run still serves the
    upstream path -- one fingerprint pass, no simulation, both keys stored."""
    fresh = XNNExecutor(config=_TIMING, segment_memo=None)
    expected = fresh.run_encoder(batch=1, seq_len=64)

    memo = SegmentMemo(root=tmp_path)
    XNNExecutor(config=_TIMING, segment_memo=memo,
                workload_memo=False).run_encoder(batch=1, seq_len=64)
    downstream_only_keys = len(memo.keys())

    # First upstream-enabled pass: misses the workload key, hits the program
    # fingerprint, back-fills the workload key (no simulator run).
    from repro.core.network import Datapath

    def no_simulate(self, *args, **kwargs):
        raise AssertionError("warm segment must not reach the simulator")

    monkeypatch.setattr(Datapath, "build_simulator", no_simulate)
    backfill = XNNExecutor(config=_TIMING,
                           segment_memo=memo).run_encoder(batch=1, seq_len=64)
    assert _segment_tuples(backfill) == _segment_tuples(expected)
    assert len(memo.keys()) == downstream_only_keys + len(expected.segments)

    # Second pass: pure upstream hits, zero ProgramBuilder constructions.
    constructions = []
    real_builder = executor_module.ProgramBuilder

    class CountingBuilder(real_builder):
        def __init__(self, *args, **kwargs):
            constructions.append(1)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(executor_module, "ProgramBuilder", CountingBuilder)
    warm = XNNExecutor(config=_TIMING,
                       segment_memo=memo).run_encoder(batch=1, seq_len=64)
    assert constructions == []
    assert _segment_tuples(warm) == _segment_tuples(expected)


# ------------------------------------------------- cross-host sharing (spool)


@pytest.fixture()
def spoold(tmp_path):
    """A live ``spoold`` server over a tmp spool directory."""
    server = SpoolServer(tmp_path / "served-spool", host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.close()
    thread.join(timeout=5.0)


#: a sweep with repeated segments: two scenario pairs sharing workloads, so
#: memo sync between workers has something to share.
_MEMO_SWEEP = [
    Scenario(name="memo/x1", kind="xnn_encoder",
             params={"batch": 1, "seq_len": 64}),
    Scenario(name="memo/x2", kind="xnn_encoder",
             params={"batch": 1, "seq_len": 64}),
    Scenario(name="memo/g1", kind="xnn_gemm",
             params={"m": 256, "k": 256, "n": 256}),
    Scenario(name="memo/g2", kind="xnn_gemm",
             params={"m": 256, "k": 256, "n": 256}),
]


def _strip(outcomes):
    return [canonical_json({"scenario": o.scenario, "kind": o.kind,
                            "result": o.result}) for o in outcomes]


def test_memo_synced_workqueue_sweep_equals_serial_fs(tmp_path):
    serial = run_sweep(_MEMO_SWEEP, backend="engine")
    with WorkQueueExecutor(tmp_path / "spool", local_workers=2,
                           poll_s=0.02, timeout_s=600.0) as wq:
        queued = run_sweep(_MEMO_SWEEP, backend="engine", executor=wq)
    assert _strip(queued) == _strip(serial)
    # The workers' fresh entries were published into the spool memo layer.
    assert list((tmp_path / "spool" / "memo").glob("*.json"))


def test_memo_synced_workqueue_sweep_equals_serial_tcp(spoold):
    serial = run_sweep(_MEMO_SWEEP, backend="engine")
    with WorkQueueExecutor(spoold.url, local_workers=2,
                           poll_s=0.02, timeout_s=600.0) as wq:
        queued = run_sweep(_MEMO_SWEEP, backend="engine", executor=wq)
    assert _strip(queued) == _strip(serial)
    assert list(spoold.spool.memo_dir.glob("*.json"))


def _run_worker_subprocess(target, worker_id, max_jobs):
    env = os.environ.copy()
    package_parent = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = package_parent + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    subprocess.run(
        [sys.executable, "-m", "repro.runner", "worker", "--spool",
         str(target), "--poll", "0.02", "--idle-exit", "1.0",
         "--max-jobs", str(max_jobs), "--worker-id", worker_id],
        check=True, timeout=600, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)


def _enqueue(spool, job_id, scenario):
    spool.enqueue(job_id, {
        "job": job_id,
        "scenario": scenario_to_payload(scenario),
        "backend": "engine",
        "segment_memo_dir": None,
        "code_version": code_version(),
    })


@pytest.mark.parametrize("transport", ["fs", "tcp"])
def test_second_hosts_shared_segment_is_served_from_synced_memo(
        transport, tmp_path, request):
    """The cross-host headline: host B's second job, on a segment host A
    already simulated, is served from memo-sync'd entries without simulating
    -- observable as a result with no fresh ``segment_memo`` payload -- and
    is byte-identical to host A's simulated result."""
    if transport == "fs":
        spool = Spool(tmp_path / "spool").ensure()
        target = spool.root
    else:
        server = request.getfixturevalue("spoold")
        spool = server.spool
        target = server.url

    shared = _MEMO_SWEEP[0]  # the workload both hosts meet
    other = _MEMO_SWEEP[2]   # host B's warm-up job (different workload)

    # Host A simulates the shared workload; its fresh entries ride the
    # result file and are published into the spool memo layer.
    _enqueue(spool, "000001", shared)
    _run_worker_subprocess(target, "host-a", max_jobs=1)
    result_a = json.loads(spool.take_results("000001")["000001"])
    assert result_a["segment_memo"], "host A must piggyback fresh entries"
    assert list(spool.memo_dir.glob("*.json"))

    # Host B: the first job pulls host A's entries after finishing; the
    # second job (the shared workload) is then pure upstream-key hits.
    _enqueue(spool, "000002", other)
    _enqueue(spool, "000003", shared)
    _run_worker_subprocess(target, "host-b", max_jobs=2)
    results_b = spool.take_results("0000")
    result_other = json.loads(results_b["000002"])
    result_shared = json.loads(results_b["000003"])
    assert result_other["segment_memo"], "host B's own workload is fresh"
    assert "segment_memo" not in result_shared, \
        "host B's shared-segment job must be served from synced memo"
    assert canonical_json(result_shared["result"]) == \
        canonical_json(result_a["result"])


def test_code_version_mismatched_synced_entries_are_rejected(tmp_path):
    """A stale peer cannot poison a sweep: its synced entries are published
    by the spool (which stores them opaquely) but rejected at absorb time,
    and the local run still simulates to the fresh numbers."""
    spool = Spool(tmp_path / "spool").ensure()

    donor = SegmentMemo(root=tmp_path / "donor")
    expected = XNNExecutor(config=_TIMING,
                           segment_memo=donor).run_encoder(batch=1, seq_len=64)
    entries = donor.take_new()
    assert entries
    poisoned = [{**entry, "code_version": "0" * 16,
                 "result": {**entry["result"], "latency_s": 0.0}}
                for entry in entries]
    assert len(spool.memo_sync(poisoned)) == len(poisoned)

    victim = SegmentMemo(root=tmp_path / "victim")
    fetched = spool.memo_sync([], known=victim.keys())
    assert len(fetched) == len(poisoned)  # the spool serves them opaquely
    assert victim.absorb(fetched) == 0    # ...and absorb rejects every one
    assert victim.keys() == []

    result = XNNExecutor(config=_TIMING,
                         segment_memo=victim).run_encoder(batch=1, seq_len=64)
    assert victim.hits == 0  # nothing served from the poisoned entries
    assert _segment_tuples(result) == _segment_tuples(expected)
