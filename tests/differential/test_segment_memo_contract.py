"""Differential contract: memoized segment results == fresh simulation.

Part of the byte-identical-results contract of the PR 4 throughput overhaul:
serving a segment from the :class:`~repro.runner.cache.SegmentMemo` must be
observationally indistinguishable from running the event loop -- latency,
DDR/LPDDR traffic, and uOP counts all exactly equal, per segment, including
after a JSON round-trip through the on-disk layer.
"""

from __future__ import annotations

from repro.runner.cache import SegmentMemo
from repro.xnn import CodegenOptions, XNNConfig, XNNExecutor

_TIMING = XNNConfig(carry_data=False)


def _segment_tuples(result):
    return [(s.name, s.latency_s, s.ddr_bytes, s.lpddr_bytes, s.uops)
            for s in result.segments]


def test_memoized_encoder_equals_fresh_per_segment(tmp_path):
    fresh = XNNExecutor(config=_TIMING, segment_memo=None)
    expected = fresh.run_encoder(batch=1, seq_len=64)

    # Cold pass populates the memo (both layers), warm pass is served from
    # the in-memory layer, reload pass from the on-disk layer.
    memo = SegmentMemo(root=tmp_path)
    executor = XNNExecutor(config=_TIMING, segment_memo=memo)
    cold = executor.run_encoder(batch=1, seq_len=64)
    warm = executor.run_encoder(batch=1, seq_len=64)
    assert memo.hits == len(expected.segments)

    reloaded_memo = SegmentMemo(root=tmp_path)
    reloaded = XNNExecutor(config=_TIMING,
                           segment_memo=reloaded_memo).run_encoder(batch=1,
                                                                   seq_len=64)
    assert reloaded_memo.hits == len(expected.segments)

    for result in (cold, warm, reloaded):
        assert _segment_tuples(result) == _segment_tuples(expected)


def test_memoized_ablation_variants_stay_distinct(tmp_path):
    """Table 9-style option ablation through one shared memo: every variant
    must keep its own numbers (no cross-variant contamination)."""
    variants = {
        "baseline": CodegenOptions.baseline(),
        "all": CodegenOptions.all_optimizations(),
    }
    fresh = {
        name: _segment_tuples(
            XNNExecutor(config=_TIMING, options=options,
                        segment_memo=None).run_encoder(batch=1, seq_len=64))
        for name, options in variants.items()
    }
    assert fresh["baseline"] != fresh["all"]  # the ablation is real

    memo = SegmentMemo(root=tmp_path)
    for _ in range(2):  # second round is all memo hits
        for name, options in variants.items():
            memoized = XNNExecutor(config=_TIMING, options=options,
                                   segment_memo=memo).run_encoder(batch=1,
                                                                  seq_len=64)
            assert _segment_tuples(memoized) == fresh[name]
