"""Differential validation: the analytic backend vs the event-driven engine.

The analytic fast model promises two things, per scenario, over the *entire*
catalogue:

1. **Certified lower bound** -- its latency estimate never exceeds the
   engine's cycle-level result (every tallied resource time is a true lower
   bound on that FU's serial occupancy in the simulation), and its off-chip
   traffic counts are byte-identical to the engine's channel counters.
2. **Declared tightness** -- the estimate is within a per-scenario relative
   tolerance of the engine result.  The tolerances below are the executable
   form of the paper's own roofline sanity-check reasoning: scenarios the
   engine runs close to its roofline (large GEMMs, bandwidth-starved sweeps)
   are pinned tightly; scenarios whose codegen deliberately forgoes overlap
   (the Table 9 ablation baselines) are pinned loosely, because their gap to
   the roofline *is* the measured benefit of the optimisations.

Every scenario must resolve to a declared tolerance -- adding a scenario or a
kind without declaring one fails loudly, which keeps the contract honest as
the catalogue grows.
"""

from __future__ import annotations

import json

import pytest

from repro.runner import BACKENDS, REGISTRY, run_sweep

#: floating-point slack on the lower-bound direction: the analytic tallies
#: sum the same terms the engine sums, but in a different association order.
FP_SLACK = 1e-9

#: default relative tolerance per scenario kind (None = payloads must be
#: exactly identical: the kind is backend-independent by construction).
KIND_TOLERANCE = {
    "aie_gemm": None,
    "charm_gemm": None,
    "charm_encoder": None,
    "mapping_types": None,
    "fu_properties": None,
    "gpu_roofline": None,
    # The serving simulator always prices dispatches with the analytic cost
    # model (its engine involvement is the explicit re-certification pass),
    # so the kind is backend-independent by construction.
    "serve_sim": None,
    "xnn_gemm": 0.15,
    "xnn_encoder": 0.30,
    "xnn_feedforward": 0.15,
    "engine_chain": 0.01,
    # The DSE payload kinds (the optimised whole-encoder configuration): the
    # analytic bound sits ~5% under the engine there, and the chiplet kind
    # adds only backend-identical link terms on top, so its gap is the same.
    "dse_encoder": 0.10,
    "dse_chiplet": 0.10,
}

#: per-scenario overrides.  The Table 9 ablation deliberately disables the
#: overlap optimisations, so the engine sits far above the roofline there --
#: that distance is the paper's measured optimisation benefit, and the pin
#: documents it: if codegen ever gets faster than these bounds allow, the
#: lower-bound assertion trips; if it gets slower, the tightness assertion
#: trips.
SCENARIO_TOLERANCE = {
    "table9/no-optimize": 0.48,
    "table9/pipeline-attention": 0.40,
    "table9/bw-optimized": 0.33,
}

#: maximum relative gap allowed on *per-segment* latencies for the scenarios
#: that report segments (looser than the end-to-end tolerance: segment-level
#: pipeline effects do not average out).
SEGMENT_TOLERANCE = 0.70

ALL_SCENARIOS = [s.name for s in REGISTRY.select()]


def tolerance_for(name: str):
    scenario = REGISTRY.get(name)
    if name in SCENARIO_TOLERANCE:
        return SCENARIO_TOLERANCE[name]
    assert scenario.kind in KIND_TOLERANCE, (
        f"scenario {name!r} has kind {scenario.kind!r} with no declared "
        "differential tolerance; add it to KIND_TOLERANCE (or the scenario "
        "to SCENARIO_TOLERANCE) in tests/differential/test_backend_contract.py")
    return KIND_TOLERANCE[scenario.kind]


def _latency(result: dict):
    for key in ("latency_s", "end_time"):
        if key in result and result[key] is not None:
            return result[key]
    return None


@pytest.fixture(scope="session")
def results():
    """Both backends over the full catalogue, computed once per session."""
    engine = {o.scenario: o.result
              for o in run_sweep(ALL_SCENARIOS, backend="engine")}
    analytic = {o.scenario: o.result
                for o in run_sweep(ALL_SCENARIOS, backend="analytic")}
    return engine, analytic


class TestCatalogueContract:
    def test_every_kind_supports_both_backends(self):
        for name in ALL_SCENARIOS:
            scenario = REGISTRY.get(name)
            assert REGISTRY.backends(scenario.kind) == BACKENDS, (
                f"kind {scenario.kind!r} (scenario {name!r}) does not "
                "implement both backends")

    def test_every_scenario_declares_a_tolerance(self):
        for name in ALL_SCENARIOS:
            tolerance_for(name)  # raises with a pointed message if missing

    def test_tolerance_table_has_no_stale_entries(self):
        names = set(ALL_SCENARIOS)
        stale = [name for name in SCENARIO_TOLERANCE if name not in names]
        assert not stale, f"SCENARIO_TOLERANCE pins unknown scenarios: {stale}"


@pytest.mark.parametrize("name", ALL_SCENARIOS)
class TestDifferential:
    def test_analytic_is_bounded_and_tight(self, results, name):
        engine, analytic = results
        tolerance = tolerance_for(name)
        e, a = engine[name], analytic[name]

        if tolerance is None:
            # Backend-independent kind: one function, identical payloads.
            assert json.dumps(e, sort_keys=True) == json.dumps(a, sort_keys=True)
            return

        latency_e, latency_a = _latency(e), _latency(a)
        assert latency_e is not None and latency_a is not None, (
            f"{name}: no comparable latency field in results")
        assert latency_e > 0 and latency_a > 0
        # 1) true lower bound ...
        assert latency_a <= latency_e * (1 + FP_SLACK), (
            f"{name}: analytic latency {latency_a} exceeds engine {latency_e}; "
            "the fast model is no longer a lower bound")
        # 2) ... within the declared tightness.
        assert latency_a >= latency_e * (1 - tolerance), (
            f"{name}: analytic latency {latency_a} is below "
            f"{1 - tolerance:.0%} of engine {latency_e} "
            f"(ratio {latency_a / latency_e:.4f}); either the engine got "
            "slower or the estimate got looser -- investigate, then re-pin")

    def test_offchip_traffic_is_byte_identical(self, results, name):
        engine, analytic = results
        if tolerance_for(name) is None:
            return
        e, a = engine[name], analytic[name]
        for key in ("ddr_bytes", "lpddr_bytes"):
            if key in e:
                assert a[key] == e[key], (
                    f"{name}: analytic {key} {a[key]} != engine {e[key]}; the "
                    "fast model no longer replays the codegen's transfers")
        assert len(e.get("segments", ())) == len(a.get("segments", ()))
        for seg_e, seg_a in zip(e.get("segments", ()), a.get("segments", ())):
            assert seg_a["name"] == seg_e["name"]
            assert seg_a["ddr_bytes"] == seg_e["ddr_bytes"], seg_e["name"]
            assert seg_a["lpddr_bytes"] == seg_e["lpddr_bytes"], seg_e["name"]

    def test_per_segment_latencies_are_lower_bounds(self, results, name):
        engine, analytic = results
        if tolerance_for(name) is None:
            return
        e, a = engine[name], analytic[name]
        segments_e = e.get("segments", ())
        segments_a = a.get("segments", ())
        assert len(segments_e) == len(segments_a)
        for seg_e, seg_a in zip(segments_e, segments_a):
            assert seg_a["latency_s"] <= seg_e["latency_s"] * (1 + FP_SLACK), (
                f"{name}/{seg_e['name']}: analytic segment latency exceeds "
                "the engine's")
            assert seg_a["latency_s"] >= seg_e["latency_s"] * (1 - SEGMENT_TOLERANCE)


class TestAnalyticDiagnostics:
    """The extra fields only the fast model can report."""

    def test_bottleneck_and_utilization_reported(self, results):
        _, analytic = results
        encoder = analytic["table9/all-optimizations"]
        for segment in encoder["segments"]:
            assert segment["bottleneck"] in segment["bounds_s"]
            assert segment["utilization"][segment["bottleneck"]] == pytest.approx(1.0)
            for busy in segment["bounds_s"].values():
                assert busy <= segment["latency_s"] * (1 + FP_SLACK)

    def test_attention_mapping_labels_follow_options(self, results):
        _, analytic = results
        pipelined = analytic["table9/all-optimizations"]
        serial = analytic["table9/no-optimize"]
        attention = {s["name"]: s for s in pipelined["segments"]}["attention+dense"]
        assert attention["mapping"] == "D"          # Fig. 3 pipeline mapping
        attention = {s["name"]: s for s in serial["segments"]}["attention+dense"]
        assert attention["mapping"] == "B"          # task-by-task round trip

    def test_bandwidth_starved_sweep_is_ddr_bound(self, results):
        _, analytic = results
        halved = analytic["table11/bw-0.5x"]
        bottlenecks = {s["bottleneck"] for s in halved["segments"]}
        assert bottlenecks <= {"ddr", "lpddr"}, (
            "at half bandwidth every segment must be bound by an off-chip "
            f"channel, got {bottlenecks}")
