"""Differential pin: serving sweeps are executor-independent, byte for byte.

The serving simulator is registered as an ordinary scenario kind, so it
inherits the repo-wide determinism contract: a load sweep must produce
byte-identical results whether it runs in-process, fans out over a process
pool, or round-trips through the detached work-queue spool.  This is what
makes a million-request serving sweep safely distributable.
"""

from __future__ import annotations

import pytest

from repro.runner import (ProcessPoolExecutor, WorkQueueExecutor,
                          canonical_json)
from repro.serve.driver import run_load_sweep, throughput_latency_curve

#: a deliberately awkward configuration: bursty arrivals, a tight queue,
#: timeouts firing, two load points -- every accounting path exercised.
PARAMS = {
    "workload": "encoder-mix",
    "arrival": "bursty",
    "policy": "dynamic",
    "requests": 4000,
    "batch_max": 8,
    "window_s": 0.02,
    "queue_depth": 256,
    "timeout_s": 0.1,
    "seed": 5,
}
LOADS = [200.0, 2000.0]


def _strip(outcomes):
    return [
        canonical_json({
            "scenario": o.scenario,
            "kind": o.kind,
            "backend": o.backend,
            "cached": o.cached,
            "result": o.result,
        })
        for o in outcomes
    ]


@pytest.fixture(scope="module")
def serial_outcomes():
    return run_load_sweep(PARAMS, LOADS)


class TestExecutorIndependence:
    def test_pool_matches_serial(self, serial_outcomes):
        with ProcessPoolExecutor(2) as pool:
            pooled = run_load_sweep(PARAMS, LOADS, executor=pool)
        assert _strip(pooled) == _strip(serial_outcomes)

    def test_workqueue_matches_serial(self, serial_outcomes, tmp_path):
        with WorkQueueExecutor(tmp_path / "spool", local_workers=2,
                               poll_s=0.02, timeout_s=600.0) as wq:
            queued = run_load_sweep(PARAMS, LOADS, executor=wq)
        assert _strip(queued) == _strip(serial_outcomes)

    def test_sweep_exercises_every_accounting_path(self, serial_outcomes):
        # The pin above is only meaningful if the configuration actually
        # drives the interesting code paths: the overloaded point must
        # drop and time out while the light one stays clean.
        light, heavy = (o.result for o in serial_outcomes)
        assert light["completed"] == light["requests"]
        assert heavy["dropped"] > 0 and heavy["timed_out"] > 0

    def test_curve_projects_the_sweep(self, serial_outcomes):
        curve = throughput_latency_curve(serial_outcomes)
        assert [row["offered_load_rps"] for row in curve] == LOADS
        for row, outcome in zip(curve, serial_outcomes):
            assert row["goodput_rps"] == outcome.result["goodput_rps"]
            assert row["p999_exact"] in (True, False)
