"""Network spool round-trip throughput over a loopback ``spoold``.

The tcp transport exists so sweeps can fan out across hosts with no shared
filesystem, which only pays off if the per-job protocol overhead (enqueue,
claim, result publish, result collection -- four round-trips plus payload
bytes) stays far below the cost of even the cheapest analytic scenario.
This benchmark drives a full job lifecycle for ``JOBS`` jobs through a real
``SpoolServer`` on the loopback interface via ``NetSpool`` and holds a
generous floor on lifecycles/second: the intent is to catch an
accidentally-quadratic server op or a lost-Nagle regression, not to race
the kernel's TCP stack.
"""

from __future__ import annotations

import threading
import time

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.runner.netqueue import NetSpool, SpoolServer

JOBS = 500

#: floor on complete enqueue->claim->result->collect lifecycles per second
#: over loopback.  Measured throughput is two orders of magnitude above
#: this; the floor only trips on a complexity-class regression.
LIFECYCLES_PER_S_FLOOR = 100.0


def _measure(tmp_root):
    server = SpoolServer(tmp_root / "bench-spool")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    submitter = NetSpool(server.url)
    worker = NetSpool(server.url)
    try:
        submitter.ensure()
        jobs = [
            (f"bench.{index:08d}", {"scenario": "bench", "index": index})
            for index in range(JOBS)
        ]
        start = time.perf_counter()
        submitter.enqueue_many(jobs)
        done = 0
        while done < JOBS:
            claimed = worker.claim("bench-worker")
            if claimed is None:
                break
            worker.finish(claimed, {"ok": True, "job": claimed.job_id})
            done += 1
        results = submitter.take_results("bench.")
        wall_s = time.perf_counter() - start
        return done, len(results), wall_s
    finally:
        submitter.close()
        worker.close()
        server.shutdown()
        server.close()
        thread.join(timeout=10.0)


def test_netqueue_lifecycle_throughput(benchmark, tmp_path):
    done, collected, wall_s = run_once(benchmark, lambda: _measure(tmp_path))
    rate = JOBS / wall_s

    table = Table(
        f"Network spool: {JOBS} job lifecycles over loopback tcp",
        ["metric", "value"],
    )
    table.add_row("wall (s)", wall_s)
    table.add_row("lifecycles/s", rate)
    table.add_row("round-trips", JOBS * 3 + 1)
    table.add_note(f"acceptance floor: {LIFECYCLES_PER_S_FLOOR:g} lifecycles/s")
    table.print()

    assert done == JOBS, f"worker drained only {done}/{JOBS} jobs"
    assert collected == JOBS, f"collected only {collected}/{JOBS} results"
    assert rate > LIFECYCLES_PER_S_FLOOR, (
        f"{rate:.0f} lifecycles/s over loopback is below the "
        f"{LIFECYCLES_PER_S_FLOOR:g}/s floor; the protocol has regressed"
    )
