"""Backend speed: the analytic fast model vs the event-driven engine.

Two measurements:

1. A shared multi-point sweep (the Fig. 18 batch sweep plus the Table 11
   bandwidth sweep, both uncached) run on both backends.  The acceptance
   floor is a 10x speedup for the analytic backend; in practice it is
   hundreds to thousands of times faster, because it replaces millions of
   simulated events per scenario with closed-form arithmetic.
2. A 1000-point analytic-only design-space sweep (bandwidth scale x batch
   grid of ad-hoc scenarios) that must finish in seconds -- the sweep breadth
   the fast model exists to unlock.  The engine cost for the same grid is
   extrapolated from measurement 1 rather than paid.
"""

from __future__ import annotations

import time

from _helpers import run_once
from repro.analysis.reporting import backend_comparison_table
from repro.runner import REGISTRY, Scenario, run_sweep

#: the shared comparison sweep: every scenario here runs a real simulation on
#: the engine backend (the analytic-only kinds would compare 1x trivially).
SWEEP_TAGS = ("fig18", "table11")

SPEEDUP_FLOOR = 10.0
GRID_POINTS = 1000
GRID_BUDGET_S = 30.0


def _sim_scenarios():
    return [s.name for s in REGISTRY.select(tags=list(SWEEP_TAGS)) if "sim" in s.tags]


def _grid_scenarios(points: int):
    """Ad-hoc encoder scenarios over a bandwidth-scale x batch grid."""
    batches = (1, 2, 3, 4, 6, 8, 12, 16)
    per_batch = points // len(batches)
    scenarios = []
    for batch in batches:
        for index in range(per_batch):
            scale = 0.25 + 3.75 * index / max(1, per_batch - 1)
            scenarios.append(
                Scenario(
                    name=f"grid/b{batch}-bw{index}",
                    kind="xnn_encoder",
                    params={
                        "batch": batch,
                        "seq_len": 384,
                        "bandwidth_scale": round(scale, 6),
                    },
                )
            )
    return scenarios


def test_backend_speedup(benchmark):
    names = _sim_scenarios()
    assert len(names) >= 10, "the comparison sweep should be multi-point"

    def _measure():
        start = time.perf_counter()
        engine = run_sweep(names, backend="engine", cache=None)
        engine_wall = time.perf_counter() - start
        start = time.perf_counter()
        analytic = run_sweep(names, backend="analytic", cache=None)
        analytic_wall = time.perf_counter() - start
        return engine, analytic, engine_wall, analytic_wall

    engine, analytic, engine_wall, analytic_wall = run_once(benchmark, _measure)
    speedup = engine_wall / analytic_wall

    table = backend_comparison_table(
        engine,
        analytic,
        title=f"Backend speed: {len(names)}-point sweep "
        f"({engine_wall:.2f}s engine vs {analytic_wall:.3f}s analytic, "
        f"{speedup:.0f}x)",
    )
    table.add_note(f"acceptance floor: {SPEEDUP_FLOOR:g}x")
    table.print()

    assert speedup >= SPEEDUP_FLOOR, (
        f"analytic backend is only {speedup:.1f}x faster than the engine "
        f"({analytic_wall:.3f}s vs {engine_wall:.3f}s) -- below the "
        f"{SPEEDUP_FLOOR:g}x acceptance floor"
    )
    # The estimates the speed buys must still honour the differential
    # contract: lower bound, byte-identical traffic.
    by_name = {o.scenario: o for o in analytic}
    for outcome in engine:
        fast = by_name[outcome.scenario]
        assert fast.result["latency_s"] <= outcome.result["latency_s"] * (1 + 1e-9)
        assert fast.result["ddr_bytes"] == outcome.result["ddr_bytes"]


def test_thousand_point_analytic_sweep(benchmark):
    scenarios = _grid_scenarios(GRID_POINTS)
    assert len(scenarios) >= GRID_POINTS * 0.9

    def _measure():
        start = time.perf_counter()
        outcomes = run_sweep(scenarios, backend="analytic", cache=None)
        return outcomes, time.perf_counter() - start

    outcomes, wall = run_once(benchmark, _measure)
    per_point_ms = wall / len(outcomes) * 1e3
    print(
        f"\n{len(outcomes)}-point analytic design-space sweep: "
        f"{wall:.2f}s wall ({per_point_ms:.2f} ms/point)"
    )

    assert wall < GRID_BUDGET_S, (
        f"{len(outcomes)}-point analytic sweep took {wall:.1f}s; "
        "the fast model is supposed to make these interactive"
    )
    # Sanity: more bandwidth never hurts within a batch row.
    by_name = {o.scenario: o.result["latency_s"] for o in outcomes}
    row = [by_name[f"grid/b8-bw{i}"] for i in range(60)]
    assert all(earlier >= later * (1 - 1e-9) for earlier, later in zip(row, row[1:]))
