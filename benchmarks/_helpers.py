"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation:
it runs the relevant simulation/model once inside pytest-benchmark (single
round -- these are end-to-end simulations, not micro-benchmarks) and prints
the regenerated rows next to the paper's published values so the shape can be
compared directly.  EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

from typing import Any, Callable


def run_once(benchmark, function: Callable[[], Any]) -> Any:
    """Run ``function`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, rounds=1, iterations=1, warmup_rounds=0)
