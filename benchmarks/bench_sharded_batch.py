"""Sharded batched evaluation across the distributed executor.

Two measurements of the chunk-job machinery
(:meth:`~repro.runner.executors.Executor.submit_chunks`):

* **Chunk speedup** -- the same ~1000-point slice of the ``chiplet-encoder``
  space swept through one warmed work-queue executor twice: once sharded
  into chunk jobs (one contiguous slice of the generation per job, executed
  worker-side through the registered batch runner) and once as classic
  per-scenario scalar jobs (``chunk_size="off"``, the pre-chunk distributed
  path).  The scalar pass runs *second*, so the workers' memoized tallies
  are already warm for it -- the measured speedup is a conservative floor.
  Results must be byte-identical before the speed counts.
* **Bigsweep** -- the end-to-end scale demo: a grid exploration of every
  feasible point of the fidelity-expanded chiplet space (>= 10^5 points)
  through ``--executor workqueue --proxy batched``, generator-enumerated
  (the space is never materialised as a list inside the explorer's sizing
  path) and auto-sharded into alignment-sized chunk jobs.

``record.py`` folds both into ``BENCH_pr10.json``; the acceptance floor is
``SPEEDUP_FLOOR`` on the chunk speedup and >= ``BIGSWEEP_MIN_POINTS``
evaluated points on the bigsweep.
"""

from __future__ import annotations

import tempfile
import time

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.explore import get_space, run_exploration
from repro.explore.space import Axis, Constraint, DesignSpace
from repro.explore.spaces import (
    _KIB,
    _chips_cover_segments,
    _mme_plan_fits,
    _rhs_tile_fits_memb,
)
from repro.explore.strategies import GridSearch
from repro.runner import run_sweep
from repro.runner.executors import WorkQueueExecutor

#: every STRIDE-th feasible point of the standard chiplet-encoder space
#: (~1000 points) -- large enough that per-job overhead dominates the scalar
#: path, small enough that the whole comparison runs in seconds.
STRIDE = 8

#: local worker processes behind the work-queue executor.  Two is the CI
#: runner's core budget; the chunk pass shards into one chunk per worker.
WORKERS = 2

#: acceptance floor on chunked-vs-per-scenario distributed evaluation.
SPEEDUP_FLOOR = 5.0

#: the bigsweep must evaluate at least this many design points end-to-end.
BIGSWEEP_MIN_POINTS = 100_000


def bigsweep_space() -> DesignSpace:
    """The fidelity-expanded ``chiplet-encoder`` space (120,960 feasible).

    Same axes, kind, and constraints as the shipped space, with the
    workload/bandwidth/link axes widened to intermediate values (batch 2,
    seq_len 192, bandwidth 1.5x/3x, five link bandwidths, four hop
    latencies) -- a 15x denser sampling of the identical design manifold,
    built here rather than in :mod:`repro.explore.spaces` because only the
    scale benchmark wants to pay for it.
    """
    return DesignSpace(
        name="chiplet-encoder-big",
        kind="dse_chiplet",
        description="Fidelity-expanded multi-chip RSN-XNN encoder space",
        base_params={"model": "bert_large"},
        axes=(
            Axis("batch", (1, 2, 4), "workload batch size"),
            Axis("seq_len", (128, 192, 256), "workload sequence length"),
            Axis(
                "pipeline_attention",
                (False, True),
                "attention mapping: Fig. 3 type B vs type D",
            ),
            Axis("tile_m", (384, 768), "LHS/output row-tile extent"),
            Axis("tile_k", (64, 128), "accumulation tile extent"),
            Axis("super_n", (512, 1024), "output super-column extent"),
            Axis(
                "bandwidth_scale",
                (1.0, 1.5, 2.0, 3.0),
                "DDR+LPDDR bandwidth scaling",
            ),
            Axis(
                "mem_b_bytes",
                (256 * _KIB, 1024 * _KIB),
                "per-chip MemB weight-scratchpad depth",
            ),
            Axis("num_mme", (3, 6), "per-chip MME FU count (AIE groups)"),
            Axis("num_chips", (1, 2, 3), "chips in the segment pipeline"),
            Axis(
                "link_gbs",
                (16.0, 32.0, 64.0, 128.0, 256.0),
                "inter-chip link bandwidth (GB/s)",
            ),
            Axis(
                "link_hop_us",
                (0.5, 1.0, 2.0, 4.0),
                "per-hop link latency (us)",
            ),
        ),
        constraints=(
            Constraint(
                "rhs_tile_fits_memb",
                _rhs_tile_fits_memb,
                "tile_k * super_n * 4B <= mem_b_bytes",
            ),
            Constraint(
                "mme_plan_fits",
                _mme_plan_fits,
                "MME grouping fits the AIE tile/stream budget",
            ),
            Constraint(
                "chips_cover_segments",
                _chips_cover_segments,
                "num_chips <= encoder simulation-group count",
            ),
        ),
    )


def _measure():
    """Chunked vs per-scenario distributed sweep on one warmed executor."""
    space = get_space("chiplet-encoder")
    assignments = space.points()[::STRIDE]
    scenarios = [space.materialize(a).scenario for a in assignments]
    chunk_size = max(1, len(scenarios) // WORKERS)

    with tempfile.TemporaryDirectory() as spool_dir:
        with WorkQueueExecutor(spool_dir, local_workers=WORKERS) as executor:
            # Warm-up: spawn the workers and fault in their imports, so
            # neither measured pass pays Python start-up.
            run_sweep(
                scenarios[:2],
                executor=executor,
                cache=None,
                backend="analytic",
                chunk_size="off",
            )

            start = time.perf_counter()
            chunked = run_sweep(
                scenarios,
                executor=executor,
                cache=None,
                backend="analytic",
                chunk_size=chunk_size,
            )
            chunked_s = time.perf_counter() - start

            # The scalar baseline runs second: the chunk pass above has
            # already warmed the workers' memoized tallies, so any memo
            # advantage favours the *baseline* and the measured speedup is
            # a floor.
            start = time.perf_counter()
            scalar = run_sweep(
                scenarios,
                executor=executor,
                cache=None,
                backend="analytic",
                chunk_size="off",
            )
            scalar_s = time.perf_counter() - start

    chunked_results = [outcome.result for outcome in chunked]
    scalar_results = [outcome.result for outcome in scalar]
    return chunked_results, scalar_results, chunked_s, scalar_s


def _bigsweep():
    """>= 10^5-point exploration through the chunked work-queue path."""
    space = bigsweep_space()
    feasible = space.feasible_count()
    with tempfile.TemporaryDirectory() as spool_dir:
        with WorkQueueExecutor(spool_dir, local_workers=WORKERS) as executor:
            start = time.perf_counter()
            report = run_exploration(
                space,
                GridSearch(),
                budget=feasible,
                verify_top=0,
                proxy="batched",
                executor=executor,
                cache=None,
            )
            wall_s = time.perf_counter() - start
    return report, wall_s


def test_sharded_chunk_speedup(benchmark):
    (chunked, scalar, chunked_s, scalar_s) = run_once(benchmark, _measure)
    points = len(chunked)

    table = Table(
        f"Distributed sweep of {points} chiplet points "
        f"(workqueue, {WORKERS} workers)",
        ["path", "wall (s)", "ms/point"],
    )
    table.add_row("per-scenario jobs", scalar_s, scalar_s / points * 1e3)
    table.add_row("chunk jobs", chunked_s, chunked_s / points * 1e3)
    table.add_note(
        f"chunk-job speedup: {scalar_s / chunked_s:.1f}x "
        f"(floor {SPEEDUP_FLOOR:g}x)"
    )
    table.print()

    # The contract before the speed: splice order and payloads must be
    # byte-identical to the per-scenario path.
    assert chunked == scalar
    assert points >= 1000
    assert scalar_s > SPEEDUP_FLOOR * chunked_s, (
        f"chunk jobs only {scalar_s / chunked_s:.1f}x faster than "
        f"per-scenario jobs over {points} points"
    )


def test_bigsweep_end_to_end(benchmark):
    report, wall_s = run_once(benchmark, _bigsweep)

    table = Table(
        f"Bigsweep: {report.evaluations} points of "
        f"'{report.space}' (workqueue, {WORKERS} workers)",
        ["metric", "value"],
    )
    table.add_row("feasible points", report.feasible_points)
    table.add_row("evaluations", report.evaluations)
    table.add_row("frontier points", len(report.frontier))
    table.add_row("wall (s)", wall_s)
    table.add_row("points/s", report.evaluations / wall_s)
    table.print()

    assert report.proxy == "batched"
    assert report.evaluations >= BIGSWEEP_MIN_POINTS
    assert report.evaluations == report.feasible_points
    assert report.frontier, "bigsweep produced an empty frontier"
    # The dense space genuinely trades off: the frontier must span several
    # workload shapes, not collapse onto one corner of the grid.
    shapes = {
        (point.assignment["batch"], point.assignment["seq_len"])
        for point in report.frontier
    }
    assert len(shapes) > 1, f"frontier collapsed onto one workload: {shapes}"
