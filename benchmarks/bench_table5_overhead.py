"""Table 5: decoder area overhead and computation-resource utilisation.

(a) the RSN decoder's area is small in absolute terms and comparable to other
overlays' control units; (b) RSN-XNN converts ~59% of its 8 TFLOPS peak into
achieved throughput on BERT-Large, against 16% for the DFX overlay.
"""

from __future__ import annotations

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.hardware.area import (
    AreaModel,
    DECODER_AREA_COMPARISON,
    UTILIZATION_COMPARISON,
)
from repro.runner import REGISTRY
from repro.xnn import XNNConfig


def _run():
    result = REGISTRY.run("table8/encoder-peak")
    config = XNNConfig(carry_data=False)
    # PL-side decoder structure: every FU type except the AIE-resident MMEs.
    num_fu_types = 7
    num_fus = 1 + 1 + 2 + config.num_mem_a + config.num_mem_b + config.num_mem_c
    area = AreaModel().decoder_area(num_fu_types=num_fu_types, num_fus=num_fus)
    return result, area


def test_table5_overhead_and_utilization(benchmark):
    result, area = run_once(benchmark, _run)

    table_a = Table(
        "Table 5a: instruction-decoder area overhead",
        ["design", "device", "LUTs", "FFs", "DSPs", "BRAMs", "LUT %"],
    )
    table_a.add_row(
        "RSN-XNN (this model)",
        "VCK190",
        area.luts,
        area.ffs,
        area.dsps,
        area.brams,
        round(area.lut_pct, 2),
    )
    published = DECODER_AREA_COMPARISON["RSN-XNN"]
    table_a.add_row(
        "RSN-XNN (paper)",
        "VCK190",
        published["luts"],
        published["ffs"],
        published["dsps"],
        published["brams"],
        published["lut_pct"],
    )
    dfx = DECODER_AREA_COMPARISON["DFX"]
    table_a.add_row(
        "DFX (paper)",
        dfx["device"],
        dfx["luts"],
        dfx["ffs"],
        dfx["dsps"],
        dfx["brams"],
        dfx["lut_pct"],
    )
    table_a.print()

    achieved_tflops = result["achieved_tflops"]
    util = AreaModel.utilization_pct(achieved_tflops, 8.0)
    table_b = Table(
        "Table 5b: computation resource utilisation",
        [
            "design",
            "precision",
            "peak TFLOPS",
            "off-chip GB/s",
            "achieved TFLOPS",
            "utilisation %",
        ],
    )
    table_b.add_row("RSN-XNN (simulated)", "FP32", 8.0, 57.6, achieved_tflops, util)
    for name, row in UTILIZATION_COMPARISON.items():
        table_b.add_row(
            f"{name} (paper)",
            f"{row['precision_bits']}-bit",
            row["peak_tflops"],
            row["offchip_gbs"],
            row["achieved_tflops"],
            row["utilization_pct"],
        )
    table_b.print()

    # Shape: the modelled decoder area is within ~2x of the published counts
    # and tiny relative to the device; utilisation is far above DFX's 16%.
    assert 0.5 * published["luts"] < area.luts < 2.0 * published["luts"]
    assert area.lut_pct < 5.0
    assert util > 2 * UTILIZATION_COMPARISON["DFX"]["utilization_pct"]
