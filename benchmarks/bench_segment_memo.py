"""Segment-memo effectiveness: warm vs cold on a repeated-segment set.

The scenario set deliberately repeats work the way real sweeps do: the same
encoder workload appears twice (two scenario names over identical parameters,
like ``table10/l384-b8`` vs ``table11/bw-1x`` in the catalogue) next to a
second workload sharing the hardware configuration.  A cold pass simulates
every distinct segment once (the intra-set repeat already hits); the warm
pass -- a re-run against the same memo, i.e. the second sweep of a session or
the ``explore --verify-top`` re-certification of points an earlier run
simulated -- must be at least 3x faster end to end, while returning results
byte-identical to the cold pass (which the differential suite separately
pins against memo-less simulation).
"""

from __future__ import annotations

import time

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.runner.cache import SegmentMemo
from repro.xnn import XNNConfig, XNNExecutor

#: (batch, seq_len) triplet with one exact repeat -- the repeated-segment set.
WORKLOADS = ((2, 384), (1, 384), (2, 384))

SPEEDUP_FLOOR = 3.0


def _run_set(memo: SegmentMemo):
    outputs = []
    for batch, seq_len in WORKLOADS:
        executor = XNNExecutor(config=XNNConfig(carry_data=False), segment_memo=memo)
        result = executor.run_encoder(batch=batch, seq_len=seq_len)
        outputs.append(
            [
                (s.name, s.latency_s, s.ddr_bytes, s.lpddr_bytes, s.uops)
                for s in result.segments
            ]
        )
    return outputs


def _measure():
    """Warm-up round, then two timed cold/warm rounds (best of two).

    The warm pass of a round is tens of milliseconds, so an untimed first
    round (paging, allocator growth) plus best-of-two timing and a paused
    collector keep the measured ratio representative of steady state.
    """
    import gc

    cold_s = warm_s = float("inf")
    cold = warm = None
    cold_hits = cold_misses = warm_hits = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for round_index in range(3):
            memo = SegmentMemo()
            start = time.perf_counter()
            round_cold = _run_set(memo)
            elapsed = time.perf_counter() - start
            round_cold_hits, round_cold_misses = memo.hits, memo.misses
            start = time.perf_counter()
            round_warm = _run_set(memo)
            warm_elapsed = time.perf_counter() - start
            if round_index == 0:
                # Untimed warm-up round; keep the results as the reference.
                cold, warm = round_cold, round_warm
                cold_hits, cold_misses = round_cold_hits, round_cold_misses
                warm_hits = memo.hits - round_cold_hits
                continue
            cold_s = min(cold_s, elapsed)
            warm_s = min(warm_s, warm_elapsed)
            # Rounds are independent simulations of the same set: results
            # must agree exactly or the determinism story is broken.
            assert round_cold == cold and round_warm == warm
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return cold, warm, cold_s, warm_s, cold_hits, cold_misses, warm_hits


def test_segment_memo_warm_speedup(benchmark):
    (cold, warm, cold_s, warm_s, cold_hits, cold_misses, warm_hits) = run_once(
        benchmark, _measure
    )

    table = Table(
        "Segment memo: repeated-segment encoder set, warm vs cold",
        ["pass", "wall (s)", "memo hits", "memo misses"],
    )
    table.add_row("cold (fresh memo)", cold_s, cold_hits, cold_misses)
    table.add_row("warm (re-run)", warm_s, warm_hits, 0)
    table.add_note(
        f"warm/cold speedup: {cold_s / warm_s:.1f}x " f"(floor {SPEEDUP_FLOOR:g}x)"
    )
    table.print()

    # Correctness first: warm results must equal the cold pass exactly, and
    # the intra-set repeat must already have hit the memo on the cold pass.
    assert warm == cold
    assert cold[2] == cold[0]
    assert cold_hits == 3  # the repeated workload's three segments
    assert warm_hits == 9  # every segment of the warm pass
    assert cold_s > SPEEDUP_FLOOR * warm_s, (
        f"warm pass only {cold_s / warm_s:.1f}x faster than cold"
    )
