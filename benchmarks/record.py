"""Record the headline performance numbers into a ``BENCH_*.json`` artifact.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/record.py [--output BENCH_pr10.json]
                                               [--check]

Measures the headline numbers of the performance roadmap -- raw engine
events/second, warm-vs-cold segment-memoized sweep time, the
upstream-vs-downstream warm-hit cost of the program-level memo,
batched-vs-per-point analytic generation evaluation on the single-chip and
chiplet spaces, chunked-vs-per-scenario *distributed* evaluation, and the
>= 10^5-point bigsweep through the work queue -- and writes them as one
JSON document.  CI runs this with ``--check`` (loose floors, tolerant of
noisy shared runners) and uploads the file as the perf-trajectory artifact;
future PRs append their own ``BENCH_prN.json`` next to it so regressions are
visible as a series, not an anecdote.

Sections are measured independently: a section that raises records its
error in the artifact instead of aborting the run, so one broken benchmark
never masks the others' numbers -- and ``--check`` therefore reports *every*
floor violation of a run in one pass, not just the first.

The numbers are wall-clock and therefore machine-dependent: compare ratios
(speedups) across recordings, not absolute seconds.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))  # _helpers
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def measure_engine() -> dict:
    """Events/second of the raw engine on the chain microbenchmark."""
    from repro.runner import REGISTRY

    runner = REGISTRY.runner("engine_chain")
    n_msgs = 20_000
    runner(n_msgs=n_msgs, stages=2)  # warm-up
    best = float("inf")
    result = None
    for _ in range(3):
        start = time.perf_counter()
        result = runner(n_msgs=n_msgs, stages=2)
        best = min(best, time.perf_counter() - start)
    return {
        "scenario": f"engine_chain n_msgs={n_msgs} stages=2",
        "events": result["events"],
        "best_wall_s": best,
        "events_per_s": result["events"] / best,
        #: the PR 3 engine measured 286,652 events/s on the PR 4 development
        #: container (same scenario, byte-identical results) -- the reference
        #: for the >=1.5x acceptance ratio; absolute numbers differ per host.
        "pr3_reference_events_per_s": 286_652.0,
    }


def measure_segment_memo() -> dict:
    """Warm-vs-cold wall time of the repeated-segment encoder set."""
    from bench_segment_memo import WORKLOADS, _measure

    cold, warm, cold_s, warm_s, _, _, _ = _measure()
    assert warm == cold, "memoized results drifted from the cold pass"
    return {
        "workloads": [list(w) for w in WORKLOADS],
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
    }


def measure_program_memo() -> dict:
    """Upstream vs downstream warm-hit cost on the repeated-segment set."""
    from bench_program_memo import WORKLOADS, _measure

    (cold, downstream, upstream, downstream_s, upstream_s, _, _) = _measure()
    assert downstream == cold and upstream == cold, (
        "warm results drifted from the cold pass"
    )
    return {
        "workloads": [list(w) for w in WORKLOADS],
        "downstream_warm_s": downstream_s,
        "upstream_warm_s": upstream_s,
        "speedup": downstream_s / upstream_s,
    }


def measure_analytic_batch() -> dict:
    """Per-point vs batched analytic evaluation on the encoder space."""
    from bench_analytic_batch import _measure

    per_point, batched, warm, per_point_s, batched_s, warm_s = _measure()
    assert batched == per_point, "batched payloads drifted from per-point"
    return {
        "points": len(per_point),
        "per_point_s": per_point_s,
        "batched_cold_s": batched_s,
        "batched_warm_s": warm_s,
        "speedup_cold": per_point_s / batched_s,
        "speedup_warm": per_point_s / warm_s,
    }


def measure_chiplet_batch() -> dict:
    """Per-point vs batched chiplet evaluation on the chiplet-encoder space."""
    from bench_chiplet_batch import _measure

    per_point, batched, warm, per_point_s, batched_s, warm_s = _measure()
    assert batched == per_point, "batched chiplet payloads drifted"
    return {
        "points": len(per_point),
        "per_point_s": per_point_s,
        "batched_cold_s": batched_s,
        "batched_warm_s": warm_s,
        "speedup_cold": per_point_s / batched_s,
        "speedup_warm": per_point_s / warm_s,
    }


def measure_sharded_batch() -> dict:
    """Chunk jobs vs per-scenario jobs through one work-queue executor."""
    from bench_sharded_batch import WORKERS, _measure

    chunked, scalar, chunked_s, scalar_s = _measure()
    assert chunked == scalar, "chunked results drifted from per-scenario"
    return {
        "points": len(chunked),
        "workers": WORKERS,
        "chunked_s": chunked_s,
        "per_scenario_s": scalar_s,
        "speedup": scalar_s / chunked_s,
    }


def measure_bigsweep() -> dict:
    """The >= 10^5-point chunked work-queue exploration, end to end."""
    from bench_sharded_batch import WORKERS, _bigsweep

    report, wall_s = _bigsweep()
    assert report.evaluations == report.feasible_points
    assert report.frontier, "bigsweep produced an empty frontier"
    return {
        "space": report.space,
        "executor": "workqueue",
        "workers": WORKERS,
        "proxy": report.proxy,
        "points": report.evaluations,
        "frontier_points": len(report.frontier),
        "wall_s": wall_s,
        "proxy_wall_s": report.proxy_wall_s,
        "points_per_s": report.evaluations / wall_s,
    }


#: measurement sections, recorded in order under their payload key.  Each is
#: fault-isolated: a raising section records ``{"error": ...}`` and the
#: remaining sections still run.
SECTIONS = (
    ("engine_throughput", measure_engine),
    ("segment_memo", measure_segment_memo),
    ("program_memo", measure_program_memo),
    ("analytic_batch", measure_analytic_batch),
    ("chiplet_batch", measure_chiplet_batch),
    ("sharded_batch", measure_sharded_batch),
    ("bigsweep", measure_bigsweep),
)

#: loose acceptance floors for ``--check``: name -> (section, key, floor),
#: deliberately below the locally measured numbers (engine ~2.3x PR 3, memo
#: ~4.5x, batch ~3x cold, chiplet ~7.7x, sharded ~8x) so only a real
#: regression trips them on a noisy CI runner.  ``bigsweep_points`` is the
#: one deterministic floor: the end-to-end demo must actually evaluate
#: >= 10^5 design points.  ``--check`` reports every violated floor, not
#: just the first.
FLOORS = {
    "engine_events_per_s": ("engine_throughput", "events_per_s", 100_000.0),
    "segment_memo_speedup": ("segment_memo", "speedup", 2.5),
    # Upstream workload-key warm hits vs downstream program-fingerprint warm
    # hits (which still run codegen); measured ~4x on the PR 9 development
    # container.
    "program_memo_speedup": ("program_memo", "speedup", 2.0),
    "analytic_batch_speedup": ("analytic_batch", "speedup_cold", 2.0),
    # The chiplet generation shares one tally across 9 link variants of each
    # base design, so its batched floor sits above the single-chip bench's
    # (measured ~7.7x cold on the PR 8 development container).  Loosened
    # 5.0 -> 3.5 in PR 10: the same unchanged code measured 4.0x on a
    # 1-core container (6.5x/5.9x on the 2-core PR 8/9 recordings) -- the
    # ratio compresses when the vectorized pass cannot overlap anything.
    "chiplet_batch_speedup": ("chiplet_batch", "speedup_cold", 3.5),
    # Chunk jobs vs per-scenario jobs on the same warmed workqueue executor
    # (measured ~8x on the PR 10 development container, with the memo warmth
    # biased toward the per-scenario baseline).
    "sharded_batch_speedup": ("sharded_batch", "speedup", 5.0),
    "bigsweep_points": ("bigsweep", "points", 100_000.0),
}


def record() -> dict:
    from repro.runner.cache import code_version

    payload = {
        "bench": "pr10-sharded-batch",
        "code_version": code_version(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or "unknown",
        },
    }
    for section, measure in SECTIONS:
        try:
            payload[section] = measure()
        except Exception as error:  # fault isolation between sections
            payload[section] = {"error": f"{type(error).__name__}: {error}"}
            print(
                f"SECTION FAILED: {section}: {payload[section]['error']}",
                file=sys.stderr,
            )
    return payload


def check(payload: dict) -> list:
    """Every violated floor of ``payload``, as human-readable strings.

    A section that failed to measure (or lost its floor key) violates each
    of its floors -- silence would read as a pass.
    """
    failures = []
    for name, (section, key, floor) in FLOORS.items():
        data = payload.get(section)
        if not isinstance(data, dict) or "error" in data:
            error = (data or {}).get("error", "section missing")
            failures.append(f"{name}: section {section!r} failed: {error}")
            continue
        value = data.get(key)
        if not isinstance(value, (int, float)):
            failures.append(f"{name}: {section}.{key} missing from recording")
        elif value < floor:
            failures.append(f"{name}: {value:.1f} < floor {floor:g}")
    return failures


def summarize(payload: dict) -> None:
    """One line per healthy section (failed sections were reported live)."""
    lines = {
        "engine_throughput": lambda d: (
            f"engine: {d['events_per_s']:,.0f} events/s "
            f"({d['events']} events in {d['best_wall_s']:.3f}s)"
        ),
        "segment_memo": lambda d: (
            f"segment memo: warm {d['speedup']:.1f}x faster than cold "
            f"({d['cold_s']:.2f}s -> {d['warm_s']:.2f}s)"
        ),
        "program_memo": lambda d: (
            f"program memo: upstream warm {d['speedup']:.1f}x faster than "
            f"downstream warm ({d['downstream_warm_s']:.3f}s -> "
            f"{d['upstream_warm_s']:.3f}s)"
        ),
        "analytic_batch": lambda d: (
            f"analytic batch: cold {d['speedup_cold']:.1f}x / warm "
            f"{d['speedup_warm']:.0f}x faster than per-point over "
            f"{d['points']} points"
        ),
        "chiplet_batch": lambda d: (
            f"chiplet batch: cold {d['speedup_cold']:.1f}x / warm "
            f"{d['speedup_warm']:.0f}x faster than per-point over "
            f"{d['points']} points"
        ),
        "sharded_batch": lambda d: (
            f"sharded batch: chunk jobs {d['speedup']:.1f}x faster than "
            f"per-scenario jobs over {d['points']} points "
            f"({d['workers']} workers)"
        ),
        "bigsweep": lambda d: (
            f"bigsweep: {d['points']} points through the chunked workqueue "
            f"in {d['wall_s']:.0f}s ({d['points_per_s']:,.0f} points/s, "
            f"{d['frontier_points']} frontier points)"
        ),
    }
    for section, _measure in SECTIONS:
        data = payload.get(section)
        if isinstance(data, dict) and "error" not in data:
            print(lines[section](data))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_pr10.json",
        help="output path (default: BENCH_pr10.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when any measurement is below "
        "its loose floor; every violation is reported",
    )
    args = parser.parse_args(argv)

    payload = record()
    Path(args.output).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    summarize(payload)
    print(f"wrote {args.output}")

    if args.check:
        failures = check(payload)
        for failure in failures:
            print(f"FLOOR VIOLATION: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
