"""Record the headline performance numbers into a ``BENCH_*.json`` artifact.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/record.py [--output BENCH_pr9.json]
                                               [--check]

Measures the headline numbers of the simulation-throughput overhaul --
raw engine events/second, warm-vs-cold segment-memoized sweep time, the
upstream-vs-downstream warm-hit cost of the program-level memo, and
batched-vs-per-point analytic generation evaluation on both the single-chip
and the multi-chip chiplet space -- and writes them as one
JSON document.  CI runs this with ``--check`` (loose floors, tolerant of
noisy shared runners) and uploads the file as the perf-trajectory artifact;
future PRs append their own ``BENCH_prN.json`` next to it so regressions are
visible as a series, not an anecdote.

The numbers are wall-clock and therefore machine-dependent: compare ratios
(speedups) across recordings, not absolute seconds.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))          # _helpers
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: loose acceptance floors for ``--check`` -- deliberately below the locally
#: measured numbers (engine ~2.3x PR 3, memo ~4.5x, batch ~3x cold) so only
#: a real regression trips them on a noisy CI runner.  The batch floor
#: dropped from 5 in PR 5: the per-point baseline it is measured against
#: lost its quadratic duplicate-resolution scan and is now ~5x faster
#: itself (compare ``per_point_s`` in BENCH_pr4.json vs BENCH_pr5.json).
FLOORS = {
    "engine_events_per_s": 100_000.0,
    "segment_memo_speedup": 2.5,
    # Upstream workload-key warm hits vs downstream program-fingerprint warm
    # hits (which still run codegen); measured ~4x on the PR 9 development
    # container.
    "program_memo_speedup": 2.0,
    "analytic_batch_speedup": 2.0,
    # The chiplet generation shares one tally across 9 link variants of each
    # base design, so its batched floor sits above the single-chip bench's
    # (measured ~7.7x cold on the PR 8 development container).
    "chiplet_batch_speedup": 5.0,
}


def measure_engine() -> dict:
    """Events/second of the raw engine on the chain microbenchmark."""
    from repro.runner import REGISTRY

    runner = REGISTRY.runner("engine_chain")
    n_msgs = 20_000
    runner(n_msgs=n_msgs, stages=2)  # warm-up
    best = float("inf")
    result = None
    for _ in range(3):
        start = time.perf_counter()
        result = runner(n_msgs=n_msgs, stages=2)
        best = min(best, time.perf_counter() - start)
    return {
        "scenario": f"engine_chain n_msgs={n_msgs} stages=2",
        "events": result["events"],
        "best_wall_s": best,
        "events_per_s": result["events"] / best,
        #: the PR 3 engine measured 286,652 events/s on the PR 4 development
        #: container (same scenario, byte-identical results) -- the reference
        #: for the >=1.5x acceptance ratio; absolute numbers differ per host.
        "pr3_reference_events_per_s": 286_652.0,
    }


def measure_segment_memo() -> dict:
    """Warm-vs-cold wall time of the repeated-segment encoder set."""
    from bench_segment_memo import WORKLOADS, _measure

    cold, warm, cold_s, warm_s, _, _, _ = _measure()
    assert warm == cold, "memoized results drifted from the cold pass"
    return {
        "workloads": [list(w) for w in WORKLOADS],
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
    }


def measure_program_memo() -> dict:
    """Upstream vs downstream warm-hit cost on the repeated-segment set."""
    from bench_program_memo import WORKLOADS, _measure

    (cold, downstream, upstream, downstream_s, upstream_s,
     _, _) = _measure()
    assert downstream == cold and upstream == cold, (
        "warm results drifted from the cold pass")
    return {
        "workloads": [list(w) for w in WORKLOADS],
        "downstream_warm_s": downstream_s,
        "upstream_warm_s": upstream_s,
        "speedup": downstream_s / upstream_s,
    }


def measure_analytic_batch() -> dict:
    """Per-point vs batched analytic evaluation on the encoder space."""
    from bench_analytic_batch import _measure

    per_point, batched, warm, per_point_s, batched_s, warm_s = _measure()
    assert batched == per_point, "batched payloads drifted from per-point"
    return {
        "points": len(per_point),
        "per_point_s": per_point_s,
        "batched_cold_s": batched_s,
        "batched_warm_s": warm_s,
        "speedup_cold": per_point_s / batched_s,
        "speedup_warm": per_point_s / warm_s,
    }


def measure_chiplet_batch() -> dict:
    """Per-point vs batched chiplet evaluation on the chiplet-encoder space."""
    from bench_chiplet_batch import _measure

    per_point, batched, warm, per_point_s, batched_s, warm_s = _measure()
    assert batched == per_point, "batched chiplet payloads drifted"
    return {
        "points": len(per_point),
        "per_point_s": per_point_s,
        "batched_cold_s": batched_s,
        "batched_warm_s": warm_s,
        "speedup_cold": per_point_s / batched_s,
        "speedup_warm": per_point_s / warm_s,
    }


def record() -> dict:
    from repro.runner.cache import code_version

    engine = measure_engine()
    memo = measure_segment_memo()
    program = measure_program_memo()
    batch = measure_analytic_batch()
    chiplet = measure_chiplet_batch()
    return {
        "bench": "pr9-program-memo",
        "code_version": code_version(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or "unknown",
        },
        "engine_throughput": engine,
        "segment_memo": memo,
        "program_memo": program,
        "analytic_batch": batch,
        "chiplet_batch": chiplet,
    }


def check(payload: dict) -> list:
    failures = []
    measured = {
        "engine_events_per_s": payload["engine_throughput"]["events_per_s"],
        "segment_memo_speedup": payload["segment_memo"]["speedup"],
        "program_memo_speedup": payload["program_memo"]["speedup"],
        "analytic_batch_speedup": payload["analytic_batch"]["speedup_cold"],
        "chiplet_batch_speedup": payload["chiplet_batch"]["speedup_cold"],
    }
    for name, floor in FLOORS.items():
        if measured[name] < floor:
            failures.append(f"{name}: {measured[name]:.1f} < floor {floor:g}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pr9.json",
                        help="output path (default: BENCH_pr9.json)")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) when a measurement is below its "
                             "loose floor")
    args = parser.parse_args(argv)

    payload = record()
    Path(args.output).write_text(json.dumps(payload, indent=1, sort_keys=True)
                                 + "\n")
    engine = payload["engine_throughput"]
    memo = payload["segment_memo"]
    batch = payload["analytic_batch"]
    print(f"engine: {engine['events_per_s']:,.0f} events/s "
          f"({engine['events']} events in {engine['best_wall_s']:.3f}s)")
    print(f"segment memo: warm {memo['speedup']:.1f}x faster than cold "
          f"({memo['cold_s']:.2f}s -> {memo['warm_s']:.2f}s)")
    program = payload["program_memo"]
    print(f"program memo: upstream warm {program['speedup']:.1f}x faster "
          f"than downstream warm ({program['downstream_warm_s']:.3f}s -> "
          f"{program['upstream_warm_s']:.3f}s)")
    print(f"analytic batch: cold {batch['speedup_cold']:.1f}x / warm "
          f"{batch['speedup_warm']:.0f}x faster than per-point over "
          f"{batch['points']} points")
    chiplet = payload["chiplet_batch"]
    print(f"chiplet batch: cold {chiplet['speedup_cold']:.1f}x / warm "
          f"{chiplet['speedup_warm']:.0f}x faster than per-point over "
          f"{chiplet['points']} points")
    print(f"wrote {args.output}")

    if args.check:
        failures = check(payload)
        for failure in failures:
            print(f"FLOOR VIOLATION: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
