"""Serving-layer throughput: one million requests through dynamic batching.

The north star is a serving fleet under heavy live traffic, so the
simulator itself must be cheap enough to sweep: this benchmark pushes
>=1M open-loop requests through the dynamic batching policy -- cost table,
event loop, honest-tail metrics, report assembly, everything the ``serve``
CLI does for one load point -- and holds the interactive acceptance floor
of 60 seconds wall (in practice it is single-digit seconds).
"""

from __future__ import annotations

import time

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.serve.simulate import run_serve_sim

REQUESTS = 1_000_000

#: the ISSUE acceptance bar: a million-request serving simulation must
#: stay interactive.
WALL_FLOOR_S = 60.0


def _measure():
    start = time.perf_counter()
    result = run_serve_sim(
        workload="encoder-mix",
        arrival="exponential",
        policy="dynamic",
        rate=1000.0,
        requests=REQUESTS,
        batch_max=8,
        window_s=0.02,
        queue_depth=4096,
        timeout_s=1.0,
        seed=0,
    )
    wall_s = time.perf_counter() - start
    return result, wall_s


def test_million_request_serving_throughput(benchmark):
    result, wall_s = run_once(benchmark, _measure)
    latency = result["latency"]

    table = Table(
        f"Serving simulator: {REQUESTS:,} requests, dynamic batching",
        ["metric", "value"],
    )
    table.add_row("wall (s)", wall_s)
    table.add_row("simulated req/s of wall", REQUESTS / wall_s)
    table.add_row("goodput (req/s simulated)", result["goodput_rps"])
    table.add_row("p50 (ms)", latency["p50_s"] * 1e3)
    table.add_row("p99 (ms)", latency["p99_s"] * 1e3)
    table.add_row("p999 (ms)", latency["p999_s"] * 1e3)
    table.add_row("mean batch size", result["batches"]["mean_size"])
    table.add_note(f"acceptance floor: {WALL_FLOOR_S:g}s wall")
    table.print()

    assert result["requests"] == REQUESTS
    assert (
        result["completed"] + result["dropped"] + result["timed_out"]
        == REQUESTS
    )
    # A million completions resolve every reported tail exactly.
    assert latency["p50_exact"] and latency["p99_exact"] and latency["p999_exact"]
    assert wall_s < WALL_FLOOR_S, (
        f"million-request simulation took {wall_s:.1f}s; the serving layer "
        "is no longer interactive"
    )
