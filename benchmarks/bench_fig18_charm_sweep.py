"""Fig. 18: BERT-Large 1st-encoder latency and throughput vs CHARM over batch size.

Shape to reproduce: RSN-XNN's latency grows roughly linearly with batch and is
several times lower than CHARM's at the same batch; RSN-XNN's throughput
saturates at a small batch (the paper reports 97% of peak at B=3), whereas
CHARM needs very large batches to approach its peak.
"""

from __future__ import annotations

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.baselines import CHARM_PUBLISHED
from repro.runner import REGISTRY

BATCHES = (1, 2, 3, 6, 12, 24)


def _sweep():
    points = {}
    for batch in BATCHES:
        result = REGISTRY.run(f"fig18/rsn-b{batch}")
        points[batch] = (result["latency_ms"], result["throughput_tasks_per_s"])
    return points


def test_fig18_latency_throughput_vs_charm(benchmark):
    rsn = run_once(benchmark, _sweep)

    table = Table(
        "Fig. 18: BERT-Large 1st encoder vs CHARM across batch sizes",
        [
            "batch",
            "RSN latency (ms)",
            "RSN tasks/s",
            "CHARM latency (ms)",
            "CHARM tasks/s",
        ],
    )
    charm_points = {}
    for batch in BATCHES:
        # CHARM schedules at a six-batch granularity: smaller requests still
        # execute a full six-batch pass (modelled by the charm_encoder kind).
        point = REGISTRY.run(f"fig18/charm-b{batch}")
        charm_points[batch] = (point["latency_ms"], point["throughput_tasks_per_s"])
        table.add_row(
            batch,
            rsn[batch][0],
            rsn[batch][1],
            point["latency_ms"],
            point["throughput_tasks_per_s"],
        )
    table.add_note(
        "paper: RSN best latency 5 ms at B=1 (22x better than CHARM's best), "
        "6.1x faster at B=6, 3.25x higher peak throughput; CHARM published "
        f"best latency {CHARM_PUBLISHED['bert_best_latency_ms']} ms, best "
        f"throughput {CHARM_PUBLISHED['bert_best_throughput_tasks_per_s']} tasks/s"
    )
    table.print()

    # Shape checks.
    for batch in BATCHES:
        assert rsn[batch][0] < charm_points[batch][0], (
            "RSN must beat CHARM at every batch"
        )
    # RSN latency at B=6 is several times lower than CHARM's.
    assert charm_points[6][0] / rsn[6][0] > 1.5
    # RSN throughput saturates early: B=3 reaches most of the B=24 throughput.
    assert rsn[3][1] > 0.75 * rsn[24][1]
    # Peak RSN throughput clearly beats CHARM's best.
    assert max(t for _, t in rsn.values()) > 1.5 * max(
        t for _, t in charm_points.values()
    )
