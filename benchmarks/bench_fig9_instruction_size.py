"""Fig. 9 + Section 5.1: RSN instruction size vs translated uOP size per FU type.

Paper observations to reproduce in shape: off-chip FUs (DDR, LPDDR) need the
most uOP bytes and compress the worst (2-4.2x), the on-chip stream FUs
compress much better (6.8-22.7x), the whole encoder needs on the order of a
couple of thousand RSN instructions, and the compute-to-instruction ratio is
on the order of GFLOPs per instruction byte.
"""

from __future__ import annotations

from _helpers import run_once
from repro.analysis import analyze_program
from repro.analysis.reporting import Table
from repro.workloads import bert_large_encoder
from repro.xnn import CodegenOptions, ProgramBuilder, XNNConfig, XNNDatapath
from repro.xnn.executor import XNNExecutor


def _generate_program():
    """Generate the full encoder instruction stream (timing-only tensors)."""
    executor = XNNExecutor(config=XNNConfig(carry_data=False), options=CodegenOptions())
    result = executor.run_encoder(batch=6, seq_len=512)

    # Re-generate the instruction stream standalone for packet analysis: one
    # builder covering all encoder layers on a fresh datapath.
    xnn = XNNDatapath(XNNConfig(carry_data=False))
    memory = xnn.memory
    spec = bert_large_encoder(batch=6, seq_len=512)
    tokens = 6 * 512
    hidden, ffn = 1024, 4096
    for name, shape in (
        ("input", (tokens, hidden)),
        ("wq", (hidden, hidden)),
        ("wk", (hidden, hidden)),
        ("wv", (hidden, hidden)),
        ("wo", (hidden, hidden)),
        ("w1", (hidden, ffn)),
        ("w2", (ffn, hidden)),
        ("query", (tokens, hidden)),
        ("key", (tokens, hidden)),
        ("value", (tokens, hidden)),
        ("attn_context", (tokens, hidden)),
        ("attn_out", (tokens, hidden)),
        ("attn_norm", (tokens, hidden)),
        ("ffn_inter", (tokens, ffn)),
        ("ffn_out", (tokens, hidden)),
    ):
        memory.add(name, shape)
    layers = {lyr.name: lyr for lyr in spec.layers}
    builder = ProgramBuilder(xnn, CodegenOptions())
    builder.add_gemm_layer(layers["query"], lhs="input", rhs="wq", out="query")
    builder.add_gemm_layer(layers["key"], lhs="input", rhs="wk", out="key")
    builder.add_gemm_layer(layers["value"], lhs="input", rhs="wv", out="value")
    builder.add_attention(
        seq_len=512,
        head_dim=64,
        num_heads=96,
        heads_per_sample=16,
        query="query",
        key="key",
        value="value",
        out="attn_context",
    )
    builder.add_gemm_layer(
        layers["dense"], lhs="attn_context", rhs="wo", out="attn_out", residual="input"
    )
    builder.add_gemm_layer(
        layers["ffn_mm1"], lhs="attn_norm", rhs="w1", out="ffn_inter"
    )
    builder.add_gemm_layer(
        layers["ffn_mm2"],
        lhs="ffn_inter",
        rhs="w2",
        out="ffn_out",
        residual="attn_norm",
    )
    program = builder.build_rsn_program()
    analysis = analyze_program(
        program,
        latency_s=result.latency_s,
        flops=result.flops,
        aie_uop_bytes=builder.mme_uop_bytes(),
    )
    return analysis


def test_fig9_instruction_vs_uop_size(benchmark):
    analysis = run_once(benchmark, _generate_program)

    table = Table(
        "Fig. 9: RSN instruction bytes vs translated uOP bytes per FU type",
        ["FU type", "RSN bytes", "uOP bytes", "compression", "packets"],
    )
    for fu_type in analysis.size_report.fu_types():
        table.add_row(
            fu_type,
            analysis.size_report.instruction_bytes.get(fu_type, 0),
            analysis.size_report.uop_bytes.get(fu_type, 0),
            analysis.size_report.compression_ratio(fu_type),
            analysis.size_report.instruction_counts.get(fu_type, 0),
        )
    table.add_note(
        f"total packets {analysis.packet_count}, "
        f"instruction bytes {analysis.instruction_bytes}, "
        f"instruction rate {analysis.instruction_processing_rate or 0:.3g} B/s "
        f"({100 * (analysis.bandwidth_fraction or 0):.4f}% of off-chip BW), "
        f"{(analysis.flops_per_instruction_byte or 0) / 1e6:.2f} MFLOPs per "
        "instruction byte on average"
    )
    table.print()

    ratios = analysis.compression_ratios()
    stream_types = [
        t for t in ("MemA", "MemB", "MemC", "MeshA", "MeshB") if t in ratios
    ]
    offchip_types = [t for t in ("DDR", "LPDDR") if t in ratios]
    # Off-chip control dominates the uOP bytes and compresses worse than the
    # on-chip stream FUs.
    offchip_uop_bytes = max(analysis.size_report.uop_bytes[t] for t in offchip_types)
    stream_uop_bytes = max(analysis.size_report.uop_bytes[t] for t in stream_types)
    assert offchip_uop_bytes > stream_uop_bytes
    assert max(ratios[t] for t in stream_types) > max(ratios[t] for t in offchip_types)
    # The instruction stream is tiny relative to the data it moves: well under
    # 0.1% of the off-chip bandwidth, and millions of FLOPs per instruction
    # byte on average (the paper's "up to 1.6 GFLOPs" is the best case for a
    # single locally stored AIE control word).
    assert (analysis.bandwidth_fraction or 1) < 1e-3
    assert (analysis.flops_per_instruction_byte or 0) > 1e6
