"""Pytest configuration for the benchmark harness."""

import sys
from pathlib import Path

# Make the sibling `_helpers` module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).resolve().parent))
