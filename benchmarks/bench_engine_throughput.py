"""Engine events-per-second microbenchmark.

Measures the raw event-processing rate of :class:`repro.core.Simulator` on a
synthetic producer -> relay -> consumer pipeline (the ``engine_chain``
scenario kind), comparing the zero-delay fast path (read/write completions go
through a FIFO deque) against the compatibility mode where every event takes
the full heap round-trip.

The two modes must produce *identical* simulation results -- the fast path
only changes how same-time events are queued, not their order.  Against the
pre-optimization engine (per-event lambdas, no ``__slots__``, heap-only
scheduling) the PR 1 fast path measured ~1.3x higher events/sec; the PR 4
hot-path overhaul (inlined state accounting and channel resolution, lazy
``waiting_on`` formatting, tracing guarded by one boolean, deque waiter
queues, interned request objects) measured a further ~2.3x over the PR 3
engine on this scenario -- ``benchmarks/record.py`` records the current
number in ``BENCH_pr4.json``.  The in-repo compat mode shares those gains,
so the in-test fast/compat ratio is smaller and only sanity-checked here.
"""

from __future__ import annotations

import time

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.runner import REGISTRY

N_MSGS = 20_000
STAGES = 2


def _timed_run(fast_zero_delay: bool):
    runner = REGISTRY.runner("engine_chain")
    start = time.perf_counter()
    result = runner(n_msgs=N_MSGS, stages=STAGES, fast_zero_delay=fast_zero_delay)
    wall = time.perf_counter() - start
    return result, wall


def _measure():
    # Warm-up, then best-of-two to damp scheduler noise.
    _timed_run(True)
    fast_result, fast_wall = _timed_run(True)
    _, fast_wall2 = _timed_run(True)
    compat_result, compat_wall = _timed_run(False)
    _, compat_wall2 = _timed_run(False)
    return (
        fast_result,
        min(fast_wall, fast_wall2),
        compat_result,
        min(compat_wall, compat_wall2),
    )


def test_engine_event_throughput(benchmark):
    fast_result, fast_wall, compat_result, compat_wall = run_once(benchmark, _measure)
    fast_eps = fast_result["events"] / fast_wall
    compat_eps = compat_result["events"] / compat_wall

    table = Table(
        "Engine event throughput (producer -> 2 relays -> consumer)",
        ["mode", "events", "wall (s)", "events/s"],
    )
    table.add_row("fast zero-delay path", fast_result["events"], fast_wall, fast_eps)
    table.add_row(
        "heap-only (compat)", compat_result["events"], compat_wall, compat_eps
    )
    table.add_note(
        f"fast/compat ratio: {fast_eps / compat_eps:.2f}x "
        "(vs the pre-optimization engine the fast path measured ~1.3x)"
    )
    table.print()

    # Correctness first: both modes produce the exact same simulation.
    assert fast_result == compat_result
    assert fast_result["events"] > 4 * N_MSGS  # reads+writes+delays per message
    # Perf assertions are deliberately loose: wall-clock on a loaded or
    # single-core CI box is noisy, and the authoritative speedup comparison
    # (~1.3x vs the pre-optimization engine) was measured offline.
    assert fast_eps > 10_000
    # The fast path must never be meaningfully slower than the heap path.
    assert fast_eps > 0.6 * compat_eps
