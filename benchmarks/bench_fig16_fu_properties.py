"""Fig. 16: per-FU compute, memory, and aggregate bandwidth properties.

Shape to reproduce: the MME FUs carry all the compute (~1.1 TFLOPS each) and
sizeable local memory; MeshA/B are pure routers (no compute, no memory); MemC
FUs have the largest PL memories plus a modest non-MM compute rate; DDR/LPDDR
only have bandwidth.
"""

from __future__ import annotations

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.runner import REGISTRY


def _properties():
    return REGISTRY.run("fig16/fu-properties")["rows"]


def test_fig16_fu_properties(benchmark):
    properties = run_once(benchmark, _properties)
    table = Table(
        "Fig. 16: FU compute / memory / bandwidth properties",
        ["FU", "TFLOPS", "memory (MB)", "bandwidth (GB/s)"],
    )
    for row in properties:
        table.add_row(
            row["fu"],
            round(row["tflops"], 3),
            round(row["memory_mb"], 2),
            round(row["bandwidth_gbs"], 1),
        )
    table.print()

    by_name = {row["fu"]: row for row in properties}
    # MMEs provide ~1.1 TFLOPS each (6.7 TFLOPS aggregate).
    assert 0.9 < by_name["MME0"]["tflops"] < 1.3
    # Mesh FUs are pure routers.
    assert by_name["MeshA"]["tflops"] == 0 and by_name["MeshA"]["memory_mb"] == 0
    assert by_name["MeshB"]["bandwidth_gbs"] > 100
    # MemC has on-chip memory and a small non-MM compute rate; MemA/B have none.
    assert by_name["MemC0"]["tflops"] > 0
    assert by_name["MemA0"]["tflops"] == 0
    # Off-chip FUs expose only bandwidth.
    assert by_name["DDR"]["memory_mb"] == 0
    assert 30 < by_name["DDR"]["bandwidth_gbs"] < 60
    assert 15 < by_name["LPDDR"]["bandwidth_gbs"] < 35
