"""Table 7: latency per task at maximum throughput for BERT, ViT, NCF and MLP.

Shape to reproduce: RSN-XNN improves throughput (equivalently, reduces latency
per task) over CHARM by roughly 2.4x-3.2x on all four models, using a single
datapath/bitstream for all of them.
"""

from __future__ import annotations

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.baselines import CHARM_PUBLISHED, CharmModel
from repro.runner import REGISTRY
from repro.workloads import bert_large_encoder, mlp_model, ncf_model, vit_model


def _run_models():
    bert = REGISTRY.run("table7/bert")
    vit = REGISTRY.run("table7/vit")
    return {
        "BERT": bert["latency_ms"] / bert["batch"],
        "VIT": vit["latency_ms"] / vit["batch"],
        "NCF": REGISTRY.run("table7/ncf")["latency_ms"],
        "MLP": REGISTRY.run("table7/mlp")["latency_ms"],
    }


def test_table7_latency_per_task(benchmark):
    rsn = run_once(benchmark, _run_models)
    charm = CharmModel()
    charm_models = {
        "BERT": charm.latency_per_task_ms(bert_large_encoder(batch=6, seq_len=512)),
        "VIT": charm.latency_per_task_ms(vit_model(batch=6, seq_len=208)),
        "NCF": charm.model_latency(ncf_model(batch=16384)) * 1e3,
        "MLP": charm.model_latency(mlp_model(batch=3072)) * 1e3,
    }
    published = CHARM_PUBLISHED["latency_per_task_ms"]

    table = Table(
        "Table 7: latency per task at maximum throughput (ms)",
        [
            "model",
            "CHARM (model)",
            "CHARM (paper)",
            "RSN-XNN (simulated)",
            "RSN speedup vs CHARM model",
        ],
    )
    for name in ("BERT", "VIT", "NCF", "MLP"):
        table.add_row(
            name,
            charm_models[name],
            published[name],
            rsn[name],
            charm_models[name] / rsn[name],
        )
    table.add_note(
        "paper speedups: 3.2x (BERT), 2.4x (VIT), 2.5x (NCF), 2.8x (MLP); "
        "RSN-XNN uses the same datapath for all four models"
    )
    table.print()

    for name in rsn:
        assert rsn[name] < charm_models[name], f"RSN must beat CHARM on {name}"
    speedups = [charm_models[n] / rsn[n] for n in rsn]
    assert max(speedups) / min(speedups) < 10  # same order of improvement across models
