"""Fig. 6: RSN datapath vs a RISC-like vector-overlay baseline on two toy apps.

The point of the figure: the baseline overlay serialises on the WAR hazard of
its single load register, while the RSN datapath streams the same work through
FU1 -> FU2 -> FU3 without intermediate registers, so application 2 (three
100-element phases) overlaps its phases.
"""

from __future__ import annotations

import numpy as np

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.baselines import VectorOverlayModel
from repro.core import (
    Datapath,
    ExitUOp,
    FunctionalUnit,
    Read,
    TileMessage,
    UOp,
    Write,
)


class LoadFU(FunctionalUnit):
    """FU1 of Fig. 6: reads N elements and forwards them to FU2 or FU3."""

    def __init__(self, name, source, element_time):
        super().__init__(name, fu_type="FU1")
        self.source = source
        self.element_time = element_time
        self.add_output("to_fu2")
        self.add_output("to_fu3")

    def kernel(self, uop):
        dest = uop["dest"]
        count, addr = uop["count"], uop["addr"]
        port = self.port("to_fu2" if dest == "FU2" else "to_fu3")
        from repro.core import Delay
        yield Delay(count * self.element_time)
        tile = TileMessage.from_array(self.source[addr : addr + count])
        yield Write(port, tile)


class AddFU(FunctionalUnit):
    """FU2 of Fig. 6: increments a stream by one."""

    def __init__(self, name, element_time):
        super().__init__(name, fu_type="FU2", compute_throughput=1.0 / element_time)
        self.add_input("in")
        self.add_output("out")

    def kernel(self, uop):
        tile = yield Read(self.port("in"))
        yield self.charge_compute(tile.element_count)
        yield Write(self.port("out"), tile.map(lambda x: x + 1))


class StoreFU(FunctionalUnit):
    """FU3 of Fig. 6: stores N elements from FU1 or FU2 into the sink."""

    def __init__(self, name, sink, element_time):
        super().__init__(name, fu_type="FU3")
        self.sink = sink
        self.element_time = element_time
        self.add_input("from_fu1")
        self.add_input("from_fu2")

    def kernel(self, uop):
        src, count, addr = uop["src"], uop["count"], uop["addr"]
        tile = yield Read(self.port("from_fu1" if src == "FU1" else "from_fu2"))
        from repro.core import Delay
        yield Delay(count * self.element_time)
        self.sink[addr : addr + count] = tile.data[:count]


def _build_rsn(source, sink, element_time=1.0):
    dp = Datapath("fig6")
    fu1 = LoadFU("FU1", source, element_time)
    fu2 = AddFU("FU2", element_time)
    fu3 = StoreFU("FU3", sink, element_time)
    dp.add_fus([fu1, fu2, fu3])
    dp.connect(fu1, "to_fu2", fu2, "in")
    dp.connect(fu1, "to_fu3", fu3, "from_fu1")
    dp.connect(fu2, "out", fu3, "from_fu2")
    return dp, fu1, fu2, fu3


def _run_rsn_app2():
    """Application 2: out[0:100]=in+1, out[100:200]=in, out[200:300]=in+1."""
    source = np.arange(300, dtype=np.float32)
    sink = np.zeros(300, dtype=np.float32)
    dp, fu1, fu2, fu3 = _build_rsn(source, sink)
    fu1.load_program(
        [
            UOp("FU1", {"dest": "FU2", "count": 100, "addr": 0}),
            UOp("FU1", {"dest": "FU3", "count": 100, "addr": 100}),
            UOp("FU1", {"dest": "FU2", "count": 100, "addr": 200}),
            ExitUOp(),
        ]
    )
    fu2.load_program([UOp("FU2", {}), UOp("FU2", {}), ExitUOp()])
    fu3.load_program(
        [
            UOp("FU3", {"src": "FU2", "count": 100, "addr": 0}),
            UOp("FU3", {"src": "FU1", "count": 100, "addr": 100}),
            UOp("FU3", {"src": "FU2", "count": 100, "addr": 200}),
            ExitUOp(),
        ]
    )
    stats = dp.build_simulator().run()
    return stats.end_time, source, sink


def test_fig6_rsn_vs_baseline_overlay(benchmark):
    rsn_cycles, source, sink = run_once(benchmark, _run_rsn_app2)

    expected = source.copy()
    expected[0:100] += 1
    expected[200:300] += 1
    assert np.allclose(sink, expected)

    overlay = VectorOverlayModel()
    baseline_app1 = overlay.run(overlay.application1_program())
    baseline_app2 = overlay.run(overlay.application2_program())

    table = Table(
        "Fig. 6: execution time of the toy applications (cycles / time units)",
        ["implementation", "application 1", "application 2"],
    )
    table.add_row(
        "baseline vector overlay (WAR serialised)", baseline_app1, baseline_app2
    )
    table.add_row("RSN stream datapath", 300.0, rsn_cycles)
    table.add_note(
        "RSN pipelines the three 100-element phases; the baseline's "
        "single load register forces them to serialise."
    )
    table.print()

    # The RSN datapath overlaps the phases of application 2: it finishes well
    # before the fully serialised baseline.
    assert baseline_app2 == 800
    assert rsn_cycles < baseline_app2
