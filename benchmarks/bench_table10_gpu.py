"""Table 10: comparison with T4 / V100 / A100 / L4 GPUs (BERT-Large, L=384).

Shape to reproduce: with only ~18% of the T4's memory bandwidth, RSN-XNN's
latency is in the same range as the T4 at the larger batch sizes (and worse at
B=1); the A100 is much faster but RSN-XNN is ~2x more energy efficient in
FP32; RSN-XNN moves several times less DRAM traffic than the FP32 GPUs.
"""

from __future__ import annotations

from _helpers import run_once
from repro.analysis.energy import gpu_energy_table, vck190_energy_point
from repro.analysis.reporting import Table
from repro.hardware.gpu import GPU_SPECS
from repro.hardware.vck190 import VCK190
from repro.runner import REGISTRY

BATCHES = (1, 2, 4, 8)
ENCODER_LAYERS = 24


def _run_vck190():
    points = {}
    for batch in BATCHES:
        result = REGISTRY.run(f"table10/l384-b{batch}")
        latency_ms = result["latency_ms"] * ENCODER_LAYERS
        traffic_gb = result["offchip_bytes"] * ENCODER_LAYERS / 1e9
        points[batch] = (latency_ms, traffic_gb)
    return points


def test_table10_gpu_comparison(benchmark):
    vck = run_once(benchmark, _run_vck190)

    table = Table(
        "Table 10: BERT-Large latency (ms), L=384, FP32 unless noted",
        ["device", "peak TFLOPS", "BW (GB/s)", "B=1", "B=2", "B=4", "B=8"],
    )
    for spec in GPU_SPECS.values():
        table.add_row(
            f"{spec.name} ({spec.precision})",
            spec.peak_tflops,
            spec.mem_bw_gbs,
            *(spec.published_latency_ms.get(b) for b in BATCHES),
        )
    table.add_row(
        "VCK190 RSN-XNN (simulated)",
        8.0,
        VCK190.observed_offchip_bw / 1e9,
        *(vck[b][0] for b in BATCHES),
    )
    table.print()

    energy = Table(
        "Table 10 (cont.): energy efficiency at batch 8",
        [
            "device",
            "latency (ms)",
            "operating W",
            "seq/J (operating)",
            "seq/J (dynamic)",
            "DRAM traffic (GB)",
        ],
    )
    gpu_points = {f"{p.device}-{p.precision}": p for p in gpu_energy_table(batch=8)}
    vck_point = vck190_energy_point(vck[8][0], batch=8, dram_traffic_gb=vck[8][1])
    for key, point in gpu_points.items():
        energy.add_row(
            key,
            point.latency_ms,
            point.operating_power_w,
            point.operating_efficiency_seq_per_j,
            point.dynamic_efficiency_seq_per_j,
            point.dram_traffic_gb,
        )
    energy.add_row(
        "VCK190-fp32 (simulated)",
        vck_point.latency_ms,
        vck_point.operating_power_w,
        vck_point.operating_efficiency_seq_per_j,
        vck_point.dynamic_efficiency_seq_per_j,
        vck_point.dram_traffic_gb,
    )
    energy.print()

    t4 = gpu_points["T4-fp32"]
    a100 = gpu_points["A100-fp32"]
    # Latency comparable to the T4 at batch 8 despite ~18% of its bandwidth.
    assert vck[8][0] < 1.5 * t4.latency_ms
    bandwidth_ratio = (
        VCK190.observed_offchip_bw / 1e9
    ) / GPU_SPECS["T4-fp32"].mem_bw_gbs
    assert bandwidth_ratio < 0.25
    # Better FP32 energy efficiency than the A100 (paper: 2.1x operating).
    a100_eff = a100.operating_efficiency_seq_per_j
    assert vck_point.operating_efficiency_seq_per_j > 1.3 * a100_eff
    # Far less DRAM traffic than the FP32 GPUs (paper: 2.6x/2.8x less).
    assert vck[8][1] < 0.6 * gpu_points["T4-fp32"].dram_traffic_gb
