"""Table 3: latency estimation for the four mapping types (BERT attention).

Paper values (BERT-Large attention, B=6, L=512): final latency A=2.43 ms,
B=10.9 ms, C=10.9 ms, D=2.24 ms -- the pipeline mapping (D) wins, the
off-chip-intermediate mappings (B, C) lose by ~4-5x.
"""

from __future__ import annotations

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.runner import REGISTRY

PAPER_FINAL_MS = {"A": 2.43, "B": 10.9, "C": 10.9, "D": 2.24}


def _estimate():
    return REGISTRY.run("table3/mapping-types")


def test_table3_mapping_types(benchmark):
    estimates = run_once(benchmark, _estimate)
    table = Table(
        "Table 3: mapping-type latency estimates (BERT attention, B=6, L=512)",
        [
            "mapping",
            "BW bound (ms)",
            "compute bound (ms)",
            "AIE used",
            "final (ms)",
            "paper final (ms)",
        ],
    )
    for mapping, estimate in estimates.items():
        table.add_row(
            mapping,
            estimate["bandwidth_bound_s"] * 1e3,
            estimate["compute_bound_s"] * 1e3,
            f"{estimate['used_aie_fraction']:.0%}",
            estimate["final_latency_ms"],
            PAPER_FINAL_MS[mapping],
        )
    table.print()

    final = {m: e["final_latency_ms"] for m, e in estimates.items()}
    # Shape checks: D is the best mapping, the off-chip mappings are several
    # times worse, and A sits close to D (compute-bound, not traffic-bound).
    assert final["D"] <= min(final.values()) + 1e-9
    assert final["B"] > 3 * final["D"]
    assert final["C"] > 3 * final["D"]
    assert final["A"] < 0.5 * final["B"]
