"""Table 8: maximum-throughput comparison of FPGA-based transformer accelerators.

Every row except RSN-XNN is a literature value; the RSN-XNN row's achieved
TOPS and utilisation are regenerated from the simulator.  Shape to reproduce:
RSN-XNN has by far the highest utilisation of its peak (≈2x or more above the
other designs) and, thanks to the AIEs, far more absolute FP32 throughput than
the pure-FPGA designs.
"""

from __future__ import annotations

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.baselines import TABLE8_ACCELERATORS
from repro.runner import REGISTRY


def _run():
    return REGISTRY.run("table8/encoder-peak")["achieved_tflops"]


def test_table8_accelerator_comparison(benchmark):
    achieved = run_once(benchmark, _run)
    utilization = 100.0 * achieved / 8.0

    table = Table(
        "Table 8: maximum throughput of FPGA-based transformer accelerators",
        [
            "design",
            "board",
            "precision",
            "peak TOPS",
            "achieved TOPS",
            "utilisation %",
            "model",
        ],
    )
    table.add_row(
        "RSN-XNN (simulated)", "VCK190", "FP32", 8.0, achieved, utilization, "BERT-L"
    )
    for name, row in TABLE8_ACCELERATORS.items():
        table.add_row(
            f"{name} (paper)",
            row["board"],
            row["precision"],
            row["peak_tops"],
            row["achieved_tops"],
            row["utilization_pct"],
            row["model"],
        )
    table.print()

    other_utilizations = [
        row["utilization_pct"]
        for name, row in TABLE8_ACCELERATORS.items()
        if name != "RSN-XNN"
    ]
    assert utilization > 1.3 * max(other_utilizations)
    pure_fpga_achieved = [
        row["achieved_tops"]
        for name, row in TABLE8_ACCELERATORS.items()
        if row["board"] != "VCK190"
    ]
    assert achieved > max(pure_fpga_achieved)
