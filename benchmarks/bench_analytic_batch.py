"""Batched analytic evaluation vs the per-point proxy path.

The per-point path is exactly what ``explore``'s default ``sweep`` proxy
does for every strategy generation: materialise each design point into an
ad-hoc scenario and fan the batch through ``run_sweep`` on the analytic
backend.  The batched path hands the same generation to the registered
``dse_encoder`` batch runner (shared memoized tallies + vectorized NumPy
rooflines).  Acceptance floor: >=5x on a broad slice of the full ``encoder``
space with a *cold* evaluator, with every payload exactly equal to the
per-point result; in practice the speedup is tens of times (and another
order of magnitude once the evaluator is warm).
"""

from __future__ import annotations

import time

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.explore import get_space
from repro.runner import run_sweep
from repro.runner.library import _encoder_config
from repro.xnn.analytic import EncoderBatchEvaluator

#: every STRIDE-th feasible point of the full encoder space (~750 points).
STRIDE = 2

#: PR 4 measured ~15x cold against a per-point path whose resolution scan
#: was quadratic in the sweep size; PR 5's seen-keys dedup fix made the
#: per-point baseline itself ~5x faster on this generation, so the honest
#: remaining batched advantage is ~3x cold (and still >20x warm).  The
#: floor guards that advantage without re-penalising the sweep speedup.
SPEEDUP_FLOOR = 2.0


def _measure():
    space = get_space("encoder")
    assignments = space.points()[::STRIDE]

    start = time.perf_counter()
    scenarios = [space.materialize(a).scenario for a in assignments]
    outcomes = run_sweep(scenarios, cache=None, backend="analytic")
    per_point_s = time.perf_counter() - start
    per_point = [dict(o.result) for o in outcomes]

    params_list = [space.point_params(a) for a in assignments]
    evaluator = EncoderBatchEvaluator()  # cold: no memoized tallies yet
    start = time.perf_counter()
    batched = evaluator.evaluate_batch(params_list, _encoder_config)
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = evaluator.evaluate_batch(params_list, _encoder_config)
    warm_s = time.perf_counter() - start
    return per_point, batched, warm, per_point_s, batched_s, warm_s


def test_batched_generation_speedup(benchmark):
    (per_point, batched, warm,
     per_point_s, batched_s, warm_s) = run_once(benchmark, _measure)
    points = len(per_point)

    table = Table(f"Analytic proxy: {points}-point generation of the "
                  "'encoder' space",
                  ["path", "wall (s)", "ms/point"])
    table.add_row("per-point (scenario sweep)", per_point_s,
                  per_point_s / points * 1e3)
    table.add_row("batched (cold evaluator)", batched_s,
                  batched_s / points * 1e3)
    table.add_row("batched (warm evaluator)", warm_s, warm_s / points * 1e3)
    table.add_note(f"cold speedup: {per_point_s / batched_s:.1f}x "
                   f"(floor {SPEEDUP_FLOOR:g}x); warm: "
                   f"{per_point_s / warm_s:.0f}x")
    table.print()

    # The contract before the speed: payloads must be exactly equal.
    assert batched == per_point
    assert warm == per_point
    assert points >= 200
    assert per_point_s > SPEEDUP_FLOOR * batched_s, (
        f"batched path only {per_point_s / batched_s:.1f}x faster"
    )
