"""Batched analytic evaluation vs the per-point proxy path.

The per-point path runs one scalar-runner call per materialised scenario --
what every distributed executor does per job, and what serial sweeps did
before ``run_sweep`` learned to route batch-capable kinds through their
batch runner (so the baseline is constructed explicitly here rather than
through ``run_sweep``, which would now itself take the batched path).  The
batched path hands the same generation to the registered ``dse_encoder``
batch runner (shared memoized tallies + vectorized NumPy rooflines), with
every payload exactly equal to the per-point result; in practice the
speedup is several times cold and another order of magnitude warm.
"""

from __future__ import annotations

import time

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.explore import get_space
from repro.runner import REGISTRY
from repro.runner.library import _encoder_config
from repro.xnn.analytic import EncoderBatchEvaluator

#: every STRIDE-th feasible point of the full encoder space (~750 points).
STRIDE = 2

#: PR 4 measured ~15x cold against a per-point path whose resolution scan
#: was quadratic in the sweep size; PR 5's seen-keys dedup fix made the
#: per-point baseline itself ~5x faster on this generation, so the honest
#: remaining batched advantage is ~3x cold (and still >20x warm).  The
#: floor guards that advantage without re-penalising the sweep speedup.
SPEEDUP_FLOOR = 2.0


def _measure():
    space = get_space("encoder")
    assignments = space.points()[::STRIDE]

    start = time.perf_counter()
    scenarios = [space.materialize(a).scenario for a in assignments]
    per_point = [REGISTRY.run(s, backend="analytic") for s in scenarios]
    per_point_s = time.perf_counter() - start

    params_list = [space.point_params(a) for a in assignments]
    evaluator = EncoderBatchEvaluator()  # cold: no memoized tallies yet
    start = time.perf_counter()
    batched = evaluator.evaluate_batch(params_list, _encoder_config)
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = evaluator.evaluate_batch(params_list, _encoder_config)
    warm_s = time.perf_counter() - start
    return per_point, batched, warm, per_point_s, batched_s, warm_s


def test_batched_generation_speedup(benchmark):
    (per_point, batched, warm, per_point_s, batched_s, warm_s) = run_once(
        benchmark, _measure
    )
    points = len(per_point)

    table = Table(
        f"Analytic proxy: {points}-point generation of the " "'encoder' space",
        ["path", "wall (s)", "ms/point"],
    )
    table.add_row("per-point (scalar runner)", per_point_s, per_point_s / points * 1e3)
    table.add_row("batched (cold evaluator)", batched_s, batched_s / points * 1e3)
    table.add_row("batched (warm evaluator)", warm_s, warm_s / points * 1e3)
    table.add_note(
        f"cold speedup: {per_point_s / batched_s:.1f}x "
        f"(floor {SPEEDUP_FLOOR:g}x); warm: "
        f"{per_point_s / warm_s:.0f}x"
    )
    table.print()

    # The contract before the speed: payloads must be exactly equal.
    assert batched == per_point
    assert warm == per_point
    assert points >= 200
    assert per_point_s > SPEEDUP_FLOOR * batched_s, (
        f"batched path only {per_point_s / batched_s:.1f}x faster"
    )
