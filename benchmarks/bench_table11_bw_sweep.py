"""Table 11: BERT-Large latency sensitivity to off-chip bandwidth (L=384, B=8).

Shape to reproduce: halving the bandwidth hurts a lot (paper: 0.63x), while
doubling or tripling it helps only modestly (1.15x / 1.19x) because the
1x-bandwidth execution already uses the channels efficiently (the paper quotes
78.6% of peak); the infinite-bandwidth and infinite-compute bounds bracket the
measured point.
"""

from __future__ import annotations

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.runner import REGISTRY
from repro.workloads import bert_large_encoder
from repro.xnn.bandwidth import infinite_bandwidth_bound, infinite_compute_bound

PAPER_SPEEDUPS = {0.5: 0.63, 1.0: 1.0, 2.0: 1.15, 3.0: 1.19}
SCALES = (0.5, 1.0, 2.0, 3.0)


def _sweep():
    return {
        scale: REGISTRY.run(f"table11/bw-{scale:g}x")["latency_s"] for scale in SCALES
    }


def test_table11_bandwidth_sweep(benchmark):
    by_scale = run_once(benchmark, _sweep)
    base = by_scale[1.0]

    model = bert_large_encoder(batch=8, seq_len=384)
    inf_bw = infinite_bandwidth_bound(model, achieved_flops=6.7e12)
    inf_compute = infinite_compute_bound(model)

    table = Table(
        "Table 11: bandwidth sweep, BERT-Large encoder, L=384, B=8",
        ["scenario", "latency (ms)", "speedup vs 1x", "paper speedup"],
    )
    table.add_row("infinite BW & no setup", inf_bw * 1e3, base / inf_bw, 1.43)
    table.add_row("infinite compute", inf_compute * 1e3, base / inf_compute, 1.27)
    for scale in SCALES:
        table.add_row(
            f"{scale:g}X BW",
            by_scale[scale] * 1e3,
            base / by_scale[scale],
            PAPER_SPEEDUPS[scale],
        )
    table.print()

    # Shape checks: latency decreases monotonically with bandwidth, halving
    # hurts far more than tripling helps, and extra bandwidth saturates.
    assert by_scale[0.5] > by_scale[1.0] > by_scale[2.0] >= by_scale[3.0]
    loss_at_half = by_scale[0.5] / base
    gain_at_triple = base / by_scale[3.0]
    assert loss_at_half > 1.2
    assert gain_at_triple < 1.5
    assert gain_at_triple < loss_at_half
    # The idealised bounds bracket the 1x point.
    assert inf_bw < base and inf_compute < base
