"""Batched chiplet evaluation vs the per-point proxy path.

Same shape as ``bench_analytic_batch.py``, over the multi-chip
``chiplet-encoder`` space: the per-point path materialises each design
point into an ad-hoc ``dse_chiplet`` scenario and runs the scalar analytic
runner once per scenario (the distributed executors' per-job path -- serial
``run_sweep`` would now route through the batch runner itself); the batched
path hands the same generation to the registered chiplet batch runner.  The chiplet axes
(``num_chips``, link bandwidth/latency) change no instruction tally, so
many points share one memoized simulation -- which is why the acceptance
floor here is *higher* than the single-chip bench's: >=5x cold, with every
payload exactly equal to the per-point result.
"""

from __future__ import annotations

import time

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.explore import get_space
from repro.runner import REGISTRY
from repro.runner.library import _encoder_config
from repro.xnn.analytic import EncoderBatchEvaluator

#: every STRIDE-th feasible point of the chiplet-encoder space (~4000
#: points).  The chiplet axes iterate innermost, so stride 2 keeps 9 of the
#: 18 link variants of every base design in the slice -- the tally-sharing
#: regime the batched evaluator is built for (a coarse stride would instead
#: pick ~1 variant per base and measure only the vectorization win).
STRIDE = 2

#: the chiplet-only axes multiply each base design into 18 link variants, so
#: even a cold batched evaluator simulates only a fraction of the generation
#: and the honest advantage is far above the single-chip bench's 2x.
SPEEDUP_FLOOR = 5.0


def _measure():
    space = get_space("chiplet-encoder")
    assignments = space.points()[::STRIDE]

    start = time.perf_counter()
    scenarios = [space.materialize(a).scenario for a in assignments]
    per_point = [REGISTRY.run(s, backend="analytic") for s in scenarios]
    per_point_s = time.perf_counter() - start

    params_list = [space.point_params(a) for a in assignments]
    evaluator = EncoderBatchEvaluator()  # cold: no memoized tallies yet
    start = time.perf_counter()
    batched = evaluator.evaluate_chiplet_batch(params_list, _encoder_config)
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = evaluator.evaluate_chiplet_batch(params_list, _encoder_config)
    warm_s = time.perf_counter() - start
    return per_point, batched, warm, per_point_s, batched_s, warm_s


def test_batched_chiplet_speedup(benchmark):
    (per_point, batched, warm, per_point_s, batched_s, warm_s) = run_once(
        benchmark, _measure
    )
    points = len(per_point)

    table = Table(
        f"Chiplet proxy: {points}-point generation of the " "'chiplet-encoder' space",
        ["path", "wall (s)", "ms/point"],
    )
    table.add_row("per-point (scalar runner)", per_point_s, per_point_s / points * 1e3)
    table.add_row("batched (cold evaluator)", batched_s, batched_s / points * 1e3)
    table.add_row("batched (warm evaluator)", warm_s, warm_s / points * 1e3)
    table.add_note(
        f"cold speedup: {per_point_s / batched_s:.1f}x "
        f"(floor {SPEEDUP_FLOOR:g}x); warm: "
        f"{per_point_s / warm_s:.0f}x"
    )
    table.print()

    # The contract before the speed: payloads must be exactly equal, and the
    # generation must actually exercise the multi-chip path.
    assert batched == per_point
    assert warm == per_point
    assert points >= 200
    # (single-chip payloads deliberately omit the chiplet keys -- they are
    # byte-identical to dse_encoder's -- so presence marks a multi-chip run).
    assert any(payload.get("num_chips", 1) > 1 for payload in batched)
    assert per_point_s > SPEEDUP_FLOOR * batched_s, (
        f"batched chiplet path only {per_point_s / batched_s:.1f}x faster"
    )
