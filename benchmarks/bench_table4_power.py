"""Table 4 / Fig. 15: power breakdown per component class.

The paper's numbers come from Vivado power analysis; this repository estimates
the breakdown with the coefficient model of :mod:`repro.hardware.power` fed by
the Fig. 16 FU inventory and prints both side by side.  Shape to reproduce:
the AIE array dominates (~60%), MemC is the largest PL consumer (~20-25%), the
decoder is negligible (<0.1%).
"""

from __future__ import annotations

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.hardware.power import FUPowerInput, PAPER_POWER_BREAKDOWN, PowerModel
from repro.runner import REGISTRY


def _estimate():
    properties = {p["fu"]: p for p in REGISTRY.run("fig16/fu-properties")["rows"]}
    mme = [p for name, p in properties.items() if name.startswith("MME")]
    memc = [p for name, p in properties.items() if name.startswith("MemC")]
    mema = [p for name, p in properties.items() if name.startswith("MemA")]
    memb = [p for name, p in properties.items() if name.startswith("MemB")]
    inventory = [
        FUPowerInput(
            "AIE",
            count=len(mme),
            on_aie=True,
            compute_tflops=sum(p["tflops"] for p in mme),
            onchip_mb=sum(p["memory_mb"] for p in mme),
            bandwidth_gbs=sum(p["bandwidth_gbs"] for p in mme),
        ),
        FUPowerInput(
            "MemC",
            count=len(memc),
            compute_tflops=sum(p["tflops"] for p in memc),
            onchip_mb=sum(p["memory_mb"] for p in memc),
            bandwidth_gbs=sum(p["bandwidth_gbs"] for p in memc),
        ),
        FUPowerInput(
            "MemA",
            count=len(mema),
            onchip_mb=sum(p["memory_mb"] for p in mema),
            bandwidth_gbs=sum(p["bandwidth_gbs"] for p in mema),
        ),
        FUPowerInput(
            "MemB",
            count=len(memb),
            onchip_mb=sum(p["memory_mb"] for p in memb),
            bandwidth_gbs=sum(p["bandwidth_gbs"] for p in memb),
        ),
        FUPowerInput("DDR", count=1, bandwidth_gbs=properties["DDR"]["bandwidth_gbs"]),
        FUPowerInput(
            "LPDDR", count=1, bandwidth_gbs=properties["LPDDR"]["bandwidth_gbs"]
        ),
        FUPowerInput(
            "MeshA", count=1, bandwidth_gbs=properties["MeshA"]["bandwidth_gbs"]
        ),
        FUPowerInput(
            "MeshB", count=1, bandwidth_gbs=properties["MeshB"]["bandwidth_gbs"]
        ),
    ]
    return PowerModel().estimate(inventory)


def test_table4_power_breakdown(benchmark):
    report = run_once(benchmark, _estimate)
    paper = PowerModel.paper_breakdown()

    table = Table(
        "Table 4 / Fig. 15: estimated power breakdown (W)",
        ["component", "model (W)", "model share", "paper (W)", "paper share"],
    )
    for name in PAPER_POWER_BREAKDOWN:
        table.add_row(
            name,
            report.breakdown_w.get(name, 0.0),
            f"{report.fraction(name):.1%}",
            paper.breakdown_w[name],
            f"{paper.fraction(name):.1%}",
        )
    table.add_row("total (with infrastructure)", report.total_w, "", 98.66, "")
    table.print()

    # Shape checks: AIE dominates, MemC is the biggest PL consumer, decoder is
    # negligible, and the total lands in the right ballpark.
    assert report.dominant() == "AIE"
    assert report.fraction("AIE") > 0.5
    pl_components = [n for n in report.breakdown_w if n not in ("AIE", "Decoder")]
    assert max(pl_components, key=lambda n: report.breakdown_w[n]) == "MemC"
    assert report.fraction("Decoder") < 0.002
    assert 60 < report.total_w < 140
