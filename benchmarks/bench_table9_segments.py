"""Table 9: segment-by-segment latency of the BERT-Large encoder and the effect
of each optimisation (B=6, L=512).

Shape to reproduce:

* fine-grained load/store interleaving speeds up the large MMs by ~1.2-1.6x;
* pipelining the attention MMs plus overlapping prolog/epilog across heads
  speeds the attention segment up several-fold (8.5x in the paper);
* all optimisations together give ~2-2.5x over the layer-serial overlay style
  (2.47x in the paper), landing near the paper's 17.98 ms.
"""

from __future__ import annotations

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.runner import REGISTRY

PAPER = {
    "no_optimize_total_ms": 44.8,
    "final_total_ms": 17.98,
    "speedup": 2.47,
    "attention_speedup": 8.52,
}

#: display name -> registered Table 9 scenario.
VARIANTS = {
    "no optimize": "table9/no-optimize",
    "bw optimized": "table9/bw-optimized",
    "pipeline attention": "table9/pipeline-attention",
    "all optimizations": "table9/all-optimizations",
}


def _run_all_variants():
    return {name: REGISTRY.run(scenario) for name, scenario in VARIANTS.items()}


def _segment(result, name):
    for segment in result["segments"]:
        if segment["name"] == name:
            return segment
    raise KeyError(name)


def test_table9_segment_latency(benchmark):
    results = run_once(benchmark, _run_all_variants)
    baseline = results["no optimize"]
    final = results["all optimizations"]

    table = Table(
        "Table 9: BERT-Large 1st encoder latency by segment (ms), B=6, L=512",
        ["variant", "QKV", "attention+dense", "FFN", "total", "speedup"],
    )
    for name, result in results.items():
        segments = {s["name"]: s["latency_s"] * 1e3 for s in result["segments"]}
        table.add_row(
            name,
            segments.get("qkv"),
            segments.get("attention+dense"),
            segments.get("ffn"),
            result["latency_ms"],
            baseline["latency_s"] / result["latency_s"],
        )
    table.add_note(
        f"paper: no-optimize ≈ {PAPER['no_optimize_total_ms']} ms, final "
        f"{PAPER['final_total_ms']} ms (2.47x); attention pipelining alone "
        f"is worth {PAPER['attention_speedup']}x on the attention MMs"
    )
    table.print()

    # Interleaving alone helps the GEMM-heavy segments.
    bw = results["bw optimized"]
    assert _segment(bw, "qkv")["latency_s"] < _segment(baseline, "qkv")["latency_s"]
    assert _segment(bw, "ffn")["latency_s"] < _segment(baseline, "ffn")["latency_s"]
    # Attention pipelining is the big win on the attention segment.
    attention_speedup = (
        _segment(baseline, "attention+dense")["latency_s"]
        / _segment(results["pipeline attention"], "attention+dense")["latency_s"]
    )
    assert attention_speedup > 2.5
    # Everything together: a ~2x or better end-to-end speedup, in the same
    # latency regime as the paper's measurement.
    total_speedup = baseline["latency_s"] / final["latency_s"]
    assert total_speedup > 1.8
    assert 12 < final["latency_ms"] < 30
    assert 35 < baseline["latency_ms"] < 60
