"""Table 6: GEMM throughput -- AIE-only kernels and end-to-end with DRAM.

(a) single-kernel AIE throughput for different tile shapes vs the published
CHARM / MaxEVA / AMA numbers (RSN's 32x32x32 kernel is the best, and within
the RSN kernels 32x32x32 > 32x32x16 > 32x16x32);
(b) end-to-end square-MM throughput with DRAM vs CHARM (RSN wins by ~2-2.7x,
with the gap largest for the smallest matrix).
"""

from __future__ import annotations

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.baselines import CHARM_PUBLISHED, CharmModel
from repro.hardware.aie import PUBLISHED_AIE_GEMM
from repro.runner import REGISTRY


def _run_end_to_end():
    return {
        size: REGISTRY.run(f"table6b/gemm-{size}")["gflops"]
        for size in (1024, 3072, 6144)
    }


def test_table6a_aie_gemm_throughput(benchmark):
    shapes = [(32, 16, 32), (32, 32, 16), (32, 32, 32)]
    measured = run_once(
        benchmark,
        lambda: {
            s: REGISTRY.run(f"table6a/aie-{'x'.join(map(str, s))}")["gflops"]
            for s in shapes
        },
    )

    table = Table(
        "Table 6a: AIE-only GEMM throughput (PL-fed, no DRAM)",
        ["method", "tile (MxKxN)", "AIE tiles", "GFLOPS"],
    )
    for name, (shape, tiles, gflops) in PUBLISHED_AIE_GEMM.items():
        table.add_row(f"{name} (paper)", "x".join(map(str, shape)), tiles, gflops)
    for shape in shapes:
        table.add_row(
            "RSN-XNN (model)", "x".join(map(str, shape)), 384, measured[shape]
        )
    table.print()

    # Shape: the 32x32x32 kernel is the best RSN point and beats every
    # published baseline kernel; the RSN ordering matches the paper.
    assert measured[(32, 32, 32)] > measured[(32, 32, 16)] > measured[(32, 16, 32)]
    assert measured[(32, 32, 32)] > max(v[2] for v in PUBLISHED_AIE_GEMM.values())
    assert 6000 < measured[(32, 32, 32)] < 7600


def test_table6b_end_to_end_gemm_throughput(benchmark):
    rsn = run_once(benchmark, _run_end_to_end)
    charm = CharmModel()

    table = Table(
        "Table 6b: end-to-end square MM throughput with DRAM (GFLOPS)",
        [
            "size",
            "CHARM (model)",
            "CHARM (paper)",
            "RSN-XNN (simulated)",
            "RSN-XNN gain",
        ],
    )
    published = CHARM_PUBLISHED["end_to_end_gemm_gflops"]
    for size in (1024, 3072, 6144):
        charm_gflops = charm.gemm_throughput_gflops(size)
        gain = rsn[size] / charm_gflops - 1
        table.add_row(size, charm_gflops, published[size], rsn[size], f"+{gain:.0%}")
    table.print()

    # Shape: RSN-XNN beats the CHARM model at every size, by the largest
    # factor on the smallest (most bandwidth-sensitive) matrix.
    gains = {size: rsn[size] / charm.gemm_throughput_gflops(size) for size in rsn}
    assert all(g > 1.3 for g in gains.values())
    assert gains[1024] >= gains[6144]
    # Large GEMMs approach the achieved-kernel peak.
    assert rsn[6144] > 4000
