"""Program-level memoization: upstream workload key vs downstream fallback.

The segment memo carries two keys per simulated segment: the *upstream*
workload fingerprint (hashed from the workload descriptor + configuration +
codegen options, before any codegen runs) and the *downstream* program
fingerprint (hashed from the built uOP streams).  Both serve byte-identical
results; the difference is what a warm hit costs.  A downstream hit -- the
only warm path PR 8 had -- still constructs the ``ProgramBuilder`` and runs
full codegen just to learn the fingerprint it is about to hit on.  An
upstream hit skips the builder entirely.

This benchmark pins that difference: on a warm memo over a repeated-segment
encoder set, the upstream path (``workload_memo=True``, the default) must be
at least 2x faster than the downstream-only path (``workload_memo=False``,
the PR 8 behaviour), with byte-identical outputs.  The codegen-count
contract (zero ``ProgramBuilder`` constructions on the upstream warm path)
is pinned separately in ``tests/differential/test_segment_memo_contract.py``.
"""

from __future__ import annotations

import time

from _helpers import run_once
from repro.analysis.reporting import Table
from repro.runner.cache import SegmentMemo
from repro.xnn import XNNConfig, XNNExecutor

#: (batch, seq_len) triplet with one exact repeat -- the same repeated-segment
#: set bench_segment_memo uses, so the two benchmarks compose: that one prices
#: warm-vs-cold, this one prices *which* warm path served the hit.
WORKLOADS = ((2, 384), (1, 384), (2, 384))

SPEEDUP_FLOOR = 2.0


def _run_set(memo: SegmentMemo, workload_memo: bool):
    outputs = []
    for batch, seq_len in WORKLOADS:
        executor = XNNExecutor(
            config=XNNConfig(carry_data=False),
            segment_memo=memo,
            workload_memo=workload_memo,
        )
        result = executor.run_encoder(batch=batch, seq_len=seq_len)
        outputs.append(
            [
                (s.name, s.latency_s, s.ddr_bytes, s.lpddr_bytes, s.uops)
                for s in result.segments
            ]
        )
    return outputs


def _measure():
    """Warm-up round, then two timed rounds (best of two), collector paused.

    Each round populates a fresh memo cold (storing both keys for every
    distinct segment), then times the two warm paths against it: the
    downstream-only path first, the upstream path second.
    """
    import gc

    upstream_s = downstream_s = float("inf")
    reference = None
    upstream_hits = downstream_hits = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for round_index in range(3):
            memo = SegmentMemo()
            cold = _run_set(memo, workload_memo=True)

            hits_before = memo.hits
            start = time.perf_counter()
            downstream = _run_set(memo, workload_memo=False)
            downstream_elapsed = time.perf_counter() - start
            round_downstream_hits = memo.hits - hits_before

            hits_before = memo.hits
            start = time.perf_counter()
            upstream = _run_set(memo, workload_memo=True)
            upstream_elapsed = time.perf_counter() - start
            round_upstream_hits = memo.hits - hits_before

            if round_index == 0:
                # Untimed warm-up round; keep the results as the reference.
                reference = (cold, downstream, upstream)
                downstream_hits = round_downstream_hits
                upstream_hits = round_upstream_hits
                continue
            downstream_s = min(downstream_s, downstream_elapsed)
            upstream_s = min(upstream_s, upstream_elapsed)
            # Rounds are independent simulations of the same set: results
            # must agree exactly or the determinism story is broken.
            assert (cold, downstream, upstream) == reference
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    cold, downstream, upstream = reference
    return (
        cold,
        downstream,
        upstream,
        downstream_s,
        upstream_s,
        downstream_hits,
        upstream_hits,
    )


def test_program_memo_upstream_vs_downstream_warm(benchmark):
    (
        cold,
        downstream,
        upstream,
        downstream_s,
        upstream_s,
        downstream_hits,
        upstream_hits,
    ) = run_once(benchmark, _measure)

    table = Table(
        "Program memo: warm hit cost by key, repeated-segment set",
        ["warm path", "wall (s)", "memo hits", "codegen runs"],
    )
    table.add_row(
        "downstream (program fingerprint)",
        downstream_s,
        downstream_hits,
        downstream_hits,
    )
    table.add_row("upstream (workload fingerprint)", upstream_s, upstream_hits, 0)
    table.add_note(
        f"upstream/downstream speedup: "
        f"{downstream_s / upstream_s:.1f}x "
        f"(floor {SPEEDUP_FLOOR:g}x)"
    )
    table.print()

    # Correctness first: both warm paths must reproduce the cold pass
    # exactly, and every segment of each warm pass must have been a hit.
    assert downstream == cold and upstream == cold
    assert downstream_hits == 9 and upstream_hits == 9
    assert downstream_s > SPEEDUP_FLOOR * upstream_s, (
        f"upstream warm path only {downstream_s / upstream_s:.1f}x faster "
        f"than the downstream-only warm path"
    )
