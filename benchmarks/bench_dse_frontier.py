"""DSE throughput: a >=200-point exploration must be interactive.

The design-space explorer exists because the analytic proxy made single
points ~100x cheaper than the engine; this benchmark pins that the *search
loop built on top of it* keeps that speed.  A 200-point exploration of the
full ``encoder`` space (grid strategy, no verification phase, cache
disabled so every point is a real evaluation) must finish within seconds
and produce a non-empty Pareto frontier; a successive-halving run with the
same budget must do the same while funnelling most of its evaluations
through reduced-fidelity rungs.
"""

from __future__ import annotations

import time

from _helpers import run_once
from repro.analysis.reporting import dse_frontier_table
from repro.explore import get_space, get_strategy, run_exploration

BUDGET = 200
WALL_BUDGET_S = 20.0


def _explore(strategy_name: str):
    start = time.perf_counter()
    report = run_exploration(
        get_space("encoder"),
        get_strategy(strategy_name),
        budget=BUDGET,
        verify_top=0,
        seed=0,
        cache=None,
    )
    return report, time.perf_counter() - start


def test_grid_exploration_is_interactive(benchmark):
    report, wall = run_once(benchmark, lambda: _explore("grid"))
    table = dse_frontier_table(report)
    table.add_note(
        f"{report.evaluations} evaluations in {wall:.2f}s "
        f"({wall / report.evaluations * 1e3:.2f} ms/point)"
    )
    table.print()

    assert report.evaluations >= BUDGET, (
        f"grid exploration evaluated only {report.evaluations} of the "
        f"{BUDGET}-point budget"
    )
    assert report.frontier, "a 200-point exploration must find a frontier"
    assert wall < WALL_BUDGET_S, (
        f"{report.evaluations}-point exploration took {wall:.1f}s; the "
        "analytic proxy is supposed to make design-space search interactive"
    )


def test_halving_exploration_is_interactive(benchmark):
    report, wall = run_once(benchmark, lambda: _explore("halving"))
    print(
        f"\nhalving: {report.evaluations} evaluations "
        f"({report.proxy_cache_hits} repeat-rung hits), "
        f"{report.candidates} full-fidelity candidates, "
        f"{len(report.frontier)} frontier point(s), {wall:.2f}s wall"
    )

    assert report.evaluations <= BUDGET, "halving must respect its budget"
    assert report.candidates < report.evaluations, (
        "halving should spend most of its budget on reduced-fidelity rungs"
    )
    assert report.frontier, "halving must still produce a frontier"
    assert wall < WALL_BUDGET_S
