"""Batching policies: when the server dispatches, and how much.

The simulator keeps one FIFO admission queue (internally per-class deques;
the *head class* is the class of the oldest queued request) and asks the
policy one question per dispatch decision: *given the head class's queue,
at what time is a batch ready?*  The batch itself is always the up-to-
``batch_max`` oldest requests of the head class -- batches are homogeneous
because the accelerator cost function is one ``dse_encoder`` evaluation at
``batch=len(batch)``.

``cond_time(queue, starved)`` returns the earliest time the policy's
dispatch condition holds for the current queue contents:

* **static** (size-K): when the K-th head-class request has arrived --
  ``inf`` until then, so the simulator keeps admitting arrivals.  When the
  source is *starved* (open loop: trace exhausted; closed loop: every
  client is waiting on an in-flight request) the partial batch is flushed
  immediately, otherwise a tail of fewer than K requests would wait
  forever.
* **dynamic** (size-K or time-window): the K-th arrival, or the oldest
  request's arrival plus ``window_s``, whichever is earlier.
* **continuous**: the oldest request's arrival -- whenever the server goes
  idle it immediately takes whatever is queued (up to ``batch_max``).

The simulator then dispatches at ``max(server_free, cond_time)``, admitting
every arrival up to that instant first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = [
    "POLICY_NAMES",
    "ContinuousBatcher",
    "DynamicBatcher",
    "StaticBatcher",
    "make_policy",
]

POLICY_NAMES: Tuple[str, ...] = ("static", "dynamic", "continuous")


@dataclass(frozen=True)
class StaticBatcher:
    """Dispatch only full size-K batches (flush partials when starved)."""

    batch_max: int
    name: str = "static"

    def cond_time(self, queue: Sequence, starved: bool) -> float:
        if len(queue) >= self.batch_max:
            return queue[self.batch_max - 1][0]
        return queue[0][0] if starved else math.inf


@dataclass(frozen=True)
class DynamicBatcher:
    """Dispatch at size K or when the oldest request has waited window_s."""

    batch_max: int
    window_s: float
    name: str = "dynamic"

    def cond_time(self, queue: Sequence, starved: bool) -> float:
        if len(queue) >= self.batch_max:
            return queue[self.batch_max - 1][0]
        return queue[0][0] + self.window_s


@dataclass(frozen=True)
class ContinuousBatcher:
    """Dispatch whatever is queued the moment the server is free."""

    batch_max: int
    name: str = "continuous"

    def cond_time(self, queue: Sequence, starved: bool) -> float:
        return queue[0][0]


def make_policy(name: str, batch_max: int, window_s: Optional[float] = None):
    """Construct the named policy; ``window_s`` is required by ``dynamic``."""
    if batch_max < 1:
        raise ValueError(f"batch_max must be >= 1, got {batch_max}")
    if name == "static":
        return StaticBatcher(batch_max)
    if name == "dynamic":
        if window_s is None or not window_s > 0:
            raise ValueError(f"policy 'dynamic' needs a window_s > 0, got {window_s}")
        return DynamicBatcher(batch_max, window_s)
    if name == "continuous":
        return ContinuousBatcher(batch_max)
    raise ValueError(f"unknown policy {name!r}; known: {list(POLICY_NAMES)}")
