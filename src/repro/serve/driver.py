"""Load sweeps and engine re-certification for serving runs.

This is the coordination layer the ``serve`` CLI subcommand drives.  A
throughput-latency curve is a sweep of ``serve_sim`` scenarios over
offered load -- ordinary :func:`~repro.runner.sweep.run_sweep` data, so it
fans out over any executor and caches like everything else.

Re-certification mirrors the DSE verify-top contract: the analytic cost
the simulator charged for a (class, batch size) dispatch must be a true
lower bound on the cycle-level engine's latency for the identical
``dse_encoder`` scenario (relative tolerance ``CONTRACT_RTOL``), with
byte-identical DDR and LPDDR traffic.  The *sampled subset* is the most
frequent (class, batch) pairs across the run's batch mix -- the dispatches
that dominate the tail.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..runner.cache import ResultCache
from ..runner.executors import Executor
from ..runner.scenarios import Scenario
from ..runner.sweep import SweepOutcome, run_sweep
from .cost import engine_params
from .traffic import get_workload

__all__ = [
    "CONTRACT_RTOL",
    "recertify_batch_mix",
    "run_load_sweep",
    "throughput_latency_curve",
]

#: same float-equality allowance as the DSE verify-top contract: latency
#: sums accumulate in different order engine-side, nothing more.
CONTRACT_RTOL = 1e-9


def serve_scenarios(params: Dict[str, Any], loads: Sequence[float]) -> List[Scenario]:
    """Ad-hoc ``serve_sim`` scenarios, one per offered load.

    ``params`` is a full ``serve_sim`` parameter set; each scenario
    overrides ``rate``.  For closed-loop traffic pass a single-element
    ``loads`` (the rate is ignored by the runner but still names the
    scenario).
    """
    workload = params.get("workload", "encoder-mix")
    policy = params.get("policy", "dynamic")
    return [
        Scenario(
            name=f"serve/{workload}-{policy}-load{load:g}",
            kind="serve_sim",
            params={**params, "rate": load},
        )
        for load in loads
    ]


def run_load_sweep(
    params: Dict[str, Any],
    loads: Sequence[float],
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
    force: bool = False,
) -> List[SweepOutcome]:
    """Run one ``serve_sim`` configuration across ``loads`` offered loads."""
    if not loads:
        raise ValueError("at least one offered load is required")
    return run_sweep(
        serve_scenarios(params, loads),
        backend="analytic",
        executor=executor,
        cache=cache,
        force=force,
    )


def throughput_latency_curve(outcomes: Sequence[SweepOutcome]) -> List[Dict[str, Any]]:
    """The curve rows: offered load vs goodput and tail latency."""
    rows = []
    for outcome in outcomes:
        result = outcome.result
        latency = result["latency"]
        rows.append(
            {
                "offered_load_rps": result["offered_load_rps"],
                "goodput_rps": result["goodput_rps"],
                "completed": result["completed"],
                "dropped": result["dropped"],
                "timed_out": result["timed_out"],
                "p50_s": latency["p50_s"],
                "p99_s": latency["p99_s"],
                "p999_s": latency["p999_s"],
                "p999_exact": latency["p999_exact"],
                "utilization": result["utilization"],
            }
        )
    return rows


def _merge_batch_mixes(results: Sequence[dict]) -> List[dict]:
    """Sum batch-mix counts across runs (payloads per key are identical)."""
    merged: Dict[tuple, dict] = {}
    for result in results:
        for entry in result["batch_mix"]:
            key = (entry["class"], entry["batch"])
            if key in merged:
                merged[key]["count"] += entry["count"]
            else:
                merged[key] = dict(entry)
    return sorted(merged.values(), key=lambda e: (-e["count"], e["class"], e["batch"]))


def recertify_batch_mix(
    results: Sequence[dict],
    top: int = 2,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
    force: bool = False,
) -> List[Dict[str, Any]]:
    """Engine-verify the ``top`` most frequent (class, batch) dispatches.

    ``results`` are ``serve_sim`` result dicts (typically one load sweep).
    Returns one record per verified pair with the two contract checks:
    ``bound_ok`` (analytic <= engine, rtol ``CONTRACT_RTOL``) and
    ``traffic_ok`` (byte-identical DDR + LPDDR traffic).
    """
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    merged = _merge_batch_mixes(results)[:top]
    if not merged:
        return []
    workload = get_workload(results[0]["workload"])
    class_index = {cls.name: i for i, cls in enumerate(workload.classes)}
    scenarios = [
        Scenario(
            name=f"serve-cert/{entry['class']}-b{entry['batch']}",
            kind="dse_encoder",
            params=engine_params(workload, class_index[entry["class"]], entry["batch"]),
        )
        for entry in merged
    ]
    outcomes = run_sweep(
        scenarios,
        backend="engine",
        executor=executor,
        cache=cache,
        force=force,
    )
    records = []
    for entry, outcome in zip(merged, outcomes):
        engine = outcome.result
        bound_ok = entry["latency_s"] <= engine["latency_s"] * (1.0 + CONTRACT_RTOL)
        traffic_ok = (
            entry["ddr_bytes"] == engine["ddr_bytes"]
            and entry["lpddr_bytes"] == engine["lpddr_bytes"]
        )
        records.append(
            {
                "class": entry["class"],
                "batch": entry["batch"],
                "count": entry["count"],
                "proxy_latency_s": entry["latency_s"],
                "engine_latency_s": engine["latency_s"],
                "bound_ok": bound_ok,
                "traffic_ok": traffic_ok,
            }
        )
    return records
