"""The serving simulator: one server, one admission queue, one policy.

Registered as the ``serve_sim`` scenario kind (analytic backend), so a
serving run is ordinary sweep data: it fans out over every executor
(serial / pool / workqueue) with byte-identical results, caches under the
standard result cache, and a throughput-latency curve is just a sweep over
``rate``.

Model
-----
A single batched server (the accelerator) behind a bounded FIFO admission
queue.  Requests arrive from an open-loop trace
(:func:`repro.serve.traffic.generate_trace`) or a closed loop of ``clients``
think-time clients.  The batching policy (:mod:`repro.serve.policies`)
decides dispatch instants; a dispatch takes the up-to-``batch_max`` oldest
requests of the *head class* (the class of the oldest queued request) and
occupies the server for the analytic batch cost
(:mod:`repro.serve.cost`).  Admission control: a request arriving to a
full queue (``queue_depth`` waiting) is dropped; with ``timeout_s`` set,
requests that have waited longer than that at a dispatch instant are timed
out instead of served.  Dropped and timed-out requests count against
goodput but never against latency percentiles.

Everything -- arrivals, per-user class draws, think times -- comes from one
seeded ``random.Random`` in a fixed draw order, and the event loop is pure
deterministic arithmetic, so a run is exactly replayable from its
parameters (the differential suite pins serial == pool == workqueue).
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from ..runner.scenarios import REGISTRY
from .cost import build_cost_table
from .metrics import downsample_timeline, latency_summary
from .policies import make_policy
from .traffic import class_mixes, generate_trace, get_workload

__all__ = ["run_serve_sim"]


class _OpenSource:
    """Arrivals from a precomputed open-loop trace."""

    def __init__(self, times: List[float], classes: List[int]):
        self._times = times
        self._classes = classes
        self._next = 0

    def peek(self) -> Optional[float]:
        if self._next >= len(self._times):
            return None
        return self._times[self._next]

    def pop(self) -> Tuple[float, int, Optional[int]]:
        index = self._next
        self._next += 1
        return self._times[index], self._classes[index], None

    def on_done(self, now: float, client: Optional[int]) -> None:
        pass


class _ClosedSource:
    """N clients issuing one request at a time, thinking in between.

    A client becomes ready after an exponential think time; its next
    request's class comes from its per-user mix.  ``on_done`` (response,
    drop, or timeout alike) schedules the next think.  ``budget`` bounds
    the total requests issued.
    """

    def __init__(
        self,
        clients: int,
        think_s: float,
        budget: int,
        mixes: List[List[float]],
        rng: random.Random,
    ):
        self._think_rate = 1.0 / think_s
        self._budget = budget
        self._issued = 0
        self._mixes = mixes
        self._rng = rng
        self._ready = [(rng.expovariate(self._think_rate), c) for c in range(clients)]
        heapq.heapify(self._ready)

    def peek(self) -> Optional[float]:
        if self._issued >= self._budget or not self._ready:
            return None
        return self._ready[0][0]

    def pop(self) -> Tuple[float, int, Optional[int]]:
        now, client = heapq.heappop(self._ready)
        self._issued += 1
        mix = self._mixes[client % len(self._mixes)]
        draw = self._rng.random()
        class_index = next(i for i, edge in enumerate(mix) if draw <= edge)
        return now, class_index, client

    def on_done(self, now: float, client: Optional[int]) -> None:
        if client is None or self._issued >= self._budget:
            return
        heapq.heappush(
            self._ready, (now + self._rng.expovariate(self._think_rate), client)
        )


def _simulate(
    source,
    class_count: int,
    policy,
    service_s: List[List[float]],
    queue_depth: int,
    timeout_s: Optional[float],
) -> Dict[str, Any]:
    """Drive the queue/server event loop to completion; returns raw stats."""
    queues: List[deque] = [deque() for _ in range(class_count)]
    queued = 0
    seq = 0
    server_free = 0.0
    busy_s = 0.0
    latencies: List[float] = []
    dropped = 0
    timed_out = 0
    batch_count = 0
    batch_size_sum = 0
    batch_size_max = 0
    mix_counts: Dict[Tuple[int, int], int] = {}
    depth_integral = 0.0
    last_t = 0.0
    max_depth = 0
    timeline: List[Tuple[float, int]] = []
    horizon = 0.0

    def account(now: float) -> None:
        nonlocal depth_integral, last_t
        if now > last_t:
            depth_integral += queued * (now - last_t)
            last_t = now

    def admit() -> None:
        nonlocal queued, seq, dropped, max_depth, horizon
        now, class_index, client = source.pop()
        account(now)
        horizon = max(horizon, now)
        if queued >= queue_depth:
            dropped += 1
            source.on_done(now, client)
        else:
            queues[class_index].append((now, seq, client))
            queued += 1
            max_depth = max(max_depth, queued)
        seq += 1

    while True:
        if queued == 0:
            if source.peek() is None:
                break
            admit()
            continue
        # The head class: owner of the oldest queued request (seq breaks
        # simultaneous-arrival ties first-admitted-first).
        _, _, head_class = min(
            (q[0][0], q[0][1], index) for index, q in enumerate(queues) if q
        )
        head_queue = queues[head_class]
        # Admit every arrival up to the policy's dispatch instant; each
        # admission can only move the instant *earlier* (more head-class
        # requests), never later, so this converges.
        while True:
            starved = source.peek() is None
            dispatch_t = max(server_free, policy.cond_time(head_queue, starved))
            next_arrival = source.peek()
            if next_arrival is not None and next_arrival <= dispatch_t:
                admit()
                continue
            break
        if timeout_s is not None:
            account(dispatch_t)
            expired = False
            for q in queues:
                while q and dispatch_t - q[0][0] > timeout_s:
                    _, _, client = q.popleft()
                    queued -= 1
                    timed_out += 1
                    source.on_done(dispatch_t, client)
                    expired = True
            if expired:
                continue  # head class/dispatch time may have changed
        account(dispatch_t)
        size = min(policy.batch_max, len(head_queue))
        batch = [head_queue.popleft() for _ in range(size)]
        queued -= size
        service = service_s[head_class][size]
        done_t = dispatch_t + service
        server_free = done_t
        busy_s += service
        horizon = max(horizon, done_t)
        batch_count += 1
        batch_size_sum += size
        batch_size_max = max(batch_size_max, size)
        key = (head_class, size)
        mix_counts[key] = mix_counts.get(key, 0) + 1
        for arrived_t, _, client in batch:
            latencies.append(done_t - arrived_t)
            source.on_done(done_t, client)
        timeline.append((dispatch_t, queued))

    return {
        "latencies": latencies,
        "dropped": dropped,
        "timed_out": timed_out,
        "batch_count": batch_count,
        "batch_size_sum": batch_size_sum,
        "batch_size_max": batch_size_max,
        "mix_counts": mix_counts,
        "depth_integral": depth_integral,
        "max_depth": max_depth,
        "busy_s": busy_s,
        "horizon_s": horizon,
        "timeline": timeline,
        "issued": seq,
    }


@REGISTRY.kind("serve_sim", backend=("engine", "analytic"))
def run_serve_sim(
    workload: str = "encoder-mix",
    arrival: str = "exponential",
    policy: str = "dynamic",
    rate: float = 100.0,
    requests: int = 10000,
    batch_max: int = 8,
    window_s: float = 0.02,
    queue_depth: int = 1024,
    timeout_s: Optional[float] = None,
    users: int = 1000,
    clients: int = 64,
    think_s: float = 0.1,
    burstiness: float = 0.6,
    period_s: float = 60.0,
    seed: int = 0,
) -> dict:
    """Simulate ``requests`` requests through one server configuration.

    ``arrival`` is one of the open-loop processes (``exponential``,
    ``bursty``, ``diurnal`` at offered load ``rate`` req/s) or ``closed``
    (``clients`` clients with mean think time ``think_s``; ``rate`` is
    ignored).  Returns the JSON-able serving report: request accounting,
    latency percentiles (honest tails, see :mod:`repro.serve.metrics`),
    queue-depth stats and timeline, batch statistics, and the dispatch
    *batch mix* -- every distinct (class, batch size) with its count and
    analytic cost payload, which is what the engine re-certification pass
    consumes.

    The kind is registered backend-independent: the serving cost function
    is always the certified analytic model (cycle-level simulation of a
    million requests would defeat the point), and the engine's role is the
    explicit sampled re-certification in :mod:`repro.serve.driver`.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if queue_depth < 1:
        raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
    if timeout_s is not None and not timeout_s > 0:
        raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
    load = get_workload(workload)
    batcher = make_policy(policy, batch_max, window_s)
    table = build_cost_table(load, batch_max)

    if arrival == "closed":
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        if not think_s > 0:
            raise ValueError(f"think_s must be > 0, got {think_s}")
        rng = random.Random(seed)
        source = _ClosedSource(clients, think_s, requests, class_mixes(load), rng)
    else:
        times, classes = generate_trace(
            load,
            arrival,
            rate,
            requests,
            users,
            seed,
            burstiness=burstiness,
            period_s=period_s,
        )
        source = _OpenSource(times, classes)

    stats = _simulate(
        source, len(load.classes), batcher, table.latency_s, queue_depth, timeout_s
    )

    horizon = stats["horizon_s"]
    completed = len(stats["latencies"])
    batch_mix = [
        {
            "class": load.classes[class_index].name,
            "batch": size,
            "count": count,
            "latency_s": table.payload(class_index, size)["latency_s"],
            "ddr_bytes": table.payload(class_index, size)["ddr_bytes"],
            "lpddr_bytes": table.payload(class_index, size)["lpddr_bytes"],
        }
        for (class_index, size), count in sorted(
            stats["mix_counts"].items(),
            key=lambda item: (-item[1], item[0]),
        )
    ]
    return {
        "workload": workload,
        "arrival": arrival,
        "policy": policy,
        "seed": seed,
        "offered_load_rps": None if arrival == "closed" else rate,
        "clients": clients if arrival == "closed" else None,
        "requests": stats["issued"],
        "completed": completed,
        "dropped": stats["dropped"],
        "timed_out": stats["timed_out"],
        "horizon_s": horizon,
        "goodput_rps": (completed / horizon) if horizon > 0 else 0.0,
        "utilization": (stats["busy_s"] / horizon) if horizon > 0 else 0.0,
        "latency": latency_summary(stats["latencies"]),
        "queue": {
            "depth_limit": queue_depth,
            "max_depth": stats["max_depth"],
            "mean_depth": (stats["depth_integral"] / horizon) if horizon > 0 else 0.0,
            "timeline": downsample_timeline(stats["timeline"]),
        },
        "batches": {
            "count": stats["batch_count"],
            "mean_size": (
                stats["batch_size_sum"] / stats["batch_count"]
                if stats["batch_count"]
                else 0.0
            ),
            "max_size": stats["batch_size_max"],
        },
        "batch_mix": batch_mix,
    }


# Named catalogue entries (registered here, after the kind, so importing
# either the serve package or the runner library yields both).
REGISTRY.add(
    "serve/smoke-closed",
    "serve_sim",
    {
        "workload": "encoder-mix",
        "arrival": "closed",
        "policy": "continuous",
        "requests": 500,
        "clients": 16,
        "think_s": 0.05,
        "batch_max": 4,
        "seed": 7,
    },
    tags=("serve", "smoke"),
    description="Short closed-loop serving run (CI smoke / determinism)",
)
REGISTRY.add(
    "serve/encoder-mix-dynamic",
    "serve_sim",
    {
        "workload": "encoder-mix",
        "arrival": "exponential",
        "policy": "dynamic",
        "rate": 200.0,
        "requests": 20000,
        "batch_max": 8,
        "window_s": 0.02,
        "seed": 0,
    },
    tags=("serve",),
    description="Open-loop encoder mix under dynamic batching",
)
