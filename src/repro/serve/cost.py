"""The serving cost function: analytic batch costs per (class, batch size).

A dispatch of ``b`` requests of one class is priced as a single
``dse_encoder`` evaluation of that class's design point at ``batch=b`` --
the same certified analytic lower bound the DSE proxy uses, so every
latency the serving simulator reports inherits the lower-bound +
byte-identical-traffic contract (and can be re-certified on the engine
backend, see :mod:`repro.serve.driver`).

The whole table -- ``C`` classes x ``batch_max`` sizes -- is evaluated in
one :meth:`~repro.xnn.analytic.EncoderBatchEvaluator.batch_size_costs` pass
per class (shared memoized tallies, vectorized rooflines), then memoized
per process, so a million-request simulation pays for its cost model once,
in milliseconds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from .traffic import Workload

__all__ = ["CostTable", "build_cost_table", "engine_params"]


class CostTable:
    """Per-class, per-batch-size analytic service costs for one workload.

    ``latency_s[class_index][size]`` is the service time of a size-``size``
    batch (index 0 is unused padding so sizes index directly);
    ``payload(class_index, size)`` returns the full analytic payload --
    byte-exactly what the scalar ``dse_encoder`` analytic runner returns.
    """

    def __init__(
        self, workload: Workload, batch_max: int, payloads: List[Dict[int, dict]]
    ):
        self.workload = workload
        self.batch_max = batch_max
        self._payloads = payloads
        self.latency_s: List[List[float]] = [
            [0.0] + [by_size[size]["latency_s"] for size in range(1, batch_max + 1)]
            for by_size in payloads
        ]

    def payload(self, class_index: int, size: int) -> dict:
        return self._payloads[class_index][size]


#: (workload name, batch_max) -> CostTable; the evaluator already memoizes
#: tallies, this additionally skips the roofline pass on repeat runs.
_TABLES: Dict[Tuple[str, int], CostTable] = {}


def build_cost_table(workload: Workload, batch_max: int) -> CostTable:
    """The (memoized) cost table for ``workload`` at sizes ``1..batch_max``."""
    if batch_max < 1:
        raise ValueError(f"batch_max must be >= 1, got {batch_max}")
    key = (workload.name, batch_max)
    cached = _TABLES.get(key)
    if cached is not None and cached.workload == workload:
        return cached
    # Lazy: repro.runner.library imports this package (to register the
    # serve_sim kind), so the reverse import must happen at call time.
    from ..runner.library import _encoder_config
    from ..xnn.analytic import encoder_batch_evaluator

    evaluator = encoder_batch_evaluator()
    sizes = range(1, batch_max + 1)
    payloads = [
        evaluator.batch_size_costs(cls.params, sizes, _encoder_config)
        for cls in workload.classes
    ]
    table = CostTable(workload, batch_max, payloads)
    _TABLES[key] = table
    return table


def engine_params(workload: Workload, class_index: int, size: int) -> Dict[str, Any]:
    """The ``dse_encoder`` parameter set pricing one dispatch -- the exact
    scenario the engine backend re-certifies."""
    return {**dict(workload.classes[class_index].params), "batch": size}
