"""Serving-layer simulation: live traffic in front of the accelerator model.

The ROADMAP north star is a system that serves heavy traffic, not one that
reproduces tables; this package puts a request generator, an admission
queue, and a batching policy in front of the certified analytic cost model
so serving questions -- tail latency vs offered load, batching-policy
trade-offs, queue sizing -- become cheap, deterministic simulations.

* :mod:`repro.serve.traffic` -- workload catalogue, open-loop arrival
  processes (exponential / bursty / diurnal), per-user request mixes;
* :mod:`repro.serve.policies` -- static size-K, dynamic time-window, and
  continuous batching;
* :mod:`repro.serve.cost` -- the per-(class, batch size) analytic cost
  table (one vectorized evaluator pass, memoized);
* :mod:`repro.serve.metrics` -- honest tail percentiles and queue metrics;
* :mod:`repro.serve.simulate` -- the event loop, registered as the
  ``serve_sim`` scenario kind so runs sweep/cache/fan out like any other
  scenario;
* :mod:`repro.serve.driver` -- load sweeps, throughput-latency curves, and
  the sampled engine re-certification contract.

CLI: ``python -m repro.runner serve --workload encoder-mix --arrival
exponential --policy dynamic --load 100,200,400``.
"""

from .cost import CostTable, build_cost_table
from .driver import (
    CONTRACT_RTOL,
    recertify_batch_mix,
    run_load_sweep,
    throughput_latency_curve,
)
from .metrics import downsample_timeline, latency_summary, percentile
from .policies import POLICY_NAMES, make_policy
from .simulate import run_serve_sim
from .traffic import (
    ARRIVAL_NAMES,
    WORKLOADS,
    RequestClass,
    Workload,
    generate_trace,
    get_workload,
    workload_names,
)

__all__ = [
    "ARRIVAL_NAMES",
    "CONTRACT_RTOL",
    "CostTable",
    "POLICY_NAMES",
    "RequestClass",
    "WORKLOADS",
    "Workload",
    "build_cost_table",
    "downsample_timeline",
    "generate_trace",
    "get_workload",
    "latency_summary",
    "make_policy",
    "percentile",
    "recertify_batch_mix",
    "run_load_sweep",
    "run_serve_sim",
    "throughput_latency_curve",
    "workload_names",
]
