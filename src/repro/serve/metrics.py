"""Latency/queue metrics for serving runs, with honest tail percentiles.

Percentiles are nearest-rank (index ``ceil(q*n) - 1`` of the sorted
sample): every reported value is an actually observed latency, never an
interpolation.  A tail percentile is only *meaningful* when the sample can
resolve it -- p999 of 200 requests would just be the max wearing a costume.
The rule here: ``pX`` is exact iff ``n * (1 - q) >= 1`` (at least one
sample sits at or beyond the quantile).  Below that the estimate *widens to
the sample maximum* and is flagged ``<name>_exact: false``; with
``strict=True`` it raises instead.  Nothing silently extrapolates.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["latency_summary", "percentile", "downsample_timeline"]


def percentile(
    sorted_values: Sequence[float], q: float, strict: bool = False
) -> Tuple[Optional[float], bool]:
    """Nearest-rank percentile of an ascending sample: ``(value, exact)``.

    ``exact`` is False when the sample is too small to resolve ``q`` (fewer
    than ``1/(1-q)`` values); the value then widens to the sample maximum.
    ``strict=True`` raises ``ValueError`` in both degenerate cases (empty
    sample, unresolvable tail) instead of widening.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q}")
    count = len(sorted_values)
    if count == 0:
        if strict:
            raise ValueError(f"p{q * 100:g} of an empty sample")
        return None, False
    # The epsilon absorbs binary-representation error in q (0.9 * 10 is
    # 9.000000000000002 in floats, which would push p90 of exactly ten
    # samples off its true rank and spuriously widen it).
    if count * (1.0 - q) < 1.0 - 1e-9:
        if strict:
            raise ValueError(
                f"p{q * 100:g} needs >= {math.ceil(1.0 / (1.0 - q))} "
                f"samples to resolve, got {count}; refusing to extrapolate"
            )
        return sorted_values[-1], False
    return sorted_values[max(0, math.ceil(q * count - 1e-9) - 1)], True


def latency_summary(latencies: Sequence[float], strict: bool = False) -> Dict[str, Any]:
    """The serving report's latency block: mean/p50/p99/p999/max + flags."""
    ordered = sorted(latencies)
    count = len(ordered)
    p50, p50_exact = percentile(ordered, 0.50, strict) if count else (None, False)
    p99, p99_exact = percentile(ordered, 0.99, strict) if count else (None, False)
    p999, p999_exact = percentile(ordered, 0.999, strict) if count else (None, False)
    return {
        "count": count,
        "mean_s": (sum(ordered) / count) if count else None,
        "p50_s": p50,
        "p50_exact": p50_exact,
        "p99_s": p99,
        "p99_exact": p99_exact,
        "p999_s": p999,
        "p999_exact": p999_exact,
        "max_s": ordered[-1] if count else None,
    }


def downsample_timeline(
    timeline: Sequence[Tuple[float, int]], limit: int = 512
) -> List[List[float]]:
    """Every k-th ``(time, depth)`` point so the JSON stays bounded.

    The stride is chosen deterministically from the length alone, so two
    identical runs downsample identically; the final point is always kept
    (it carries the drained-queue end state).
    """
    if limit < 2:
        raise ValueError(f"limit must be >= 2, got {limit}")
    points = [[float(t), int(depth)] for t, depth in timeline]
    if len(points) <= limit:
        return points
    stride = math.ceil(len(points) / (limit - 1))
    sampled = points[::stride]
    if sampled[-1] != points[-1]:
        sampled.append(points[-1])
    return sampled
