"""Bandwidth orchestration: load/store orderings and the bandwidth sweep.

Two pieces of the paper live here:

* Fig. 12's three ways of mapping loads and stores onto the single DDR
  channel, as an analytical model of the resulting channel idle time (the
  event-driven simulation reproduces the same effect through the DDR FU's uOP
  ordering; the analytical model is used by tests and by the ablation bench to
  reason about the expected direction).
* The Table 11 bandwidth-sensitivity sweep: re-run the BERT-Large encoder with
  the off-chip bandwidth scaled by 0.5x-3x, plus the two idealised bounds
  (infinite bandwidth and infinite compute).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

from ..hardware.vck190 import VCK190, VCK190Spec
from ..workloads.layers import ModelSpec
from .codegen import CodegenOptions
from .datapath import XNNConfig

__all__ = [
    "LoadStoreOrdering",
    "ddr_busy_estimate",
    "bandwidth_sweep_latency",
    "analytic_bandwidth_sweep",
    "infinite_bandwidth_bound",
    "infinite_compute_bound",
    "BandwidthSweepPoint",
]


class LoadStoreOrdering(str, Enum):
    """The three DDR orderings of Fig. 12."""

    #: strict load -> compute -> store per output tile: the channel idles while
    #: computing and the computation stalls while storing.
    STRICT = "strict"
    #: the hardware memory controller arbitrates outstanding loads and stores
    #: non-deterministically (no application knowledge).
    HARDWARE_ARBITRATED = "hardware"
    #: RSN instructions explicitly drain stores during the next tile's load
    #: gaps (the ordering RSN-XNN uses).
    INSTRUCTION_INTERLEAVED = "interleaved"


def ddr_busy_estimate(
    load_s: float,
    store_s: float,
    compute_s: float,
    ordering: LoadStoreOrdering,
    tiles: int = 1,
) -> float:
    """Estimated time to process ``tiles`` output tiles on one DDR channel.

    ``load_s``/``store_s``/``compute_s`` are the per-tile load, store, and
    compute times.  The model captures the qualitative behaviour of Fig. 12:

    * strict ordering serialises the store with the next tile's load;
    * hardware arbitration overlaps them but with imperfect scheduling
      (modelled as recovering half of the overlap);
    * instruction-controlled interleaving hides the store entirely inside the
      next tile's load/compute window whenever it fits.
    """
    if min(load_s, store_s, compute_s) < 0:
        raise ValueError("per-tile times must be non-negative")
    # Strict ordering exposes the store after each tile; perfect instruction
    # interleaving reduces the steady state to the channel/compute floor; the
    # hardware arbiter lands in between because it lacks application knowledge.
    strict_steady = max(load_s, compute_s) + store_s
    interleaved_steady = max(load_s + store_s, compute_s)
    if ordering is LoadStoreOrdering.STRICT:
        steady = strict_steady
    elif ordering is LoadStoreOrdering.HARDWARE_ARBITRATED:
        steady = 0.5 * (strict_steady + interleaved_steady)
    else:
        steady = interleaved_steady
    # first tile has no preceding store; last store is exposed.
    return load_s + (tiles - 1) * steady + max(compute_s, store_s)


@dataclass(frozen=True)
class BandwidthSweepPoint:
    """One row of the Table 11 sweep."""

    label: str
    bandwidth_scale: Optional[float]
    latency_s: float

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3


def infinite_bandwidth_bound(model: ModelSpec, achieved_flops: float) -> float:
    """Latency if off-chip bandwidth were infinite and there were no setup."""
    return model.total_flops / achieved_flops


def infinite_compute_bound(model: ModelSpec, spec: VCK190Spec = VCK190) -> float:
    """Latency if compute were infinite: pure off-chip transfer time.

    The DDR channel carries activations (loads and stores) and the LPDDR
    channel carries weights; the bound is the slower of the two.
    """
    ddr_bytes = 0.0
    lpddr_bytes = 0.0
    for layer in model.layers:
        if layer.lhs_offchip:
            ddr_bytes += layer.lhs_bytes
        if layer.rhs_offchip:
            if layer.rhs_is_weight:
                lpddr_bytes += layer.rhs_bytes
            else:
                ddr_bytes += layer.rhs_bytes
        if layer.out_offchip:
            ddr_bytes += layer.out_bytes
    ddr_time = ddr_bytes / ((spec.ddr_read_bw + spec.ddr_write_bw) / 2)
    lpddr_time = lpddr_bytes / spec.lpddr_read_bw
    return max(ddr_time, lpddr_time)


def bandwidth_sweep_latency(
    scales: Sequence[float] = (0.5, 1.0, 2.0, 3.0),
    batch: int = 8,
    seq_len: int = 384,
    options: Optional[CodegenOptions] = None,
    base_config: Optional[XNNConfig] = None,
) -> List[BandwidthSweepPoint]:
    """Re-run the encoder with scaled off-chip bandwidth (Table 11).

    Each scale point builds a fresh timing-only datapath whose DDR and LPDDR
    channels are scaled by the factor, mirroring how the paper emulates higher
    bandwidth by moving proportionally less data.
    """
    from .executor import XNNExecutor  # local import to avoid a module cycle

    options = options or CodegenOptions()
    base_config = base_config or XNNConfig(carry_data=False)
    points: List[BandwidthSweepPoint] = []
    for scale in scales:
        config = XNNConfig(
            num_mme=base_config.num_mme,
            num_mem_a=base_config.num_mem_a,
            num_mem_b=base_config.num_mem_b,
            num_mem_c=base_config.num_mem_c,
            mem_a_bytes=base_config.mem_a_bytes,
            mem_b_bytes=base_config.mem_b_bytes,
            mem_c_bytes=base_config.mem_c_bytes,
            mme_tile_shape=base_config.mme_tile_shape,
            carry_data=False,
            bandwidth_scale=scale,
            pl_stream_bw=base_config.pl_stream_bw,
            channel_capacity=base_config.channel_capacity,
            spec=base_config.spec,
        )
        executor = XNNExecutor(config=config, options=options)
        result = executor.run_encoder(batch=batch, seq_len=seq_len)
        points.append(
            BandwidthSweepPoint(
                label=f"{scale:g}X BW",
                bandwidth_scale=scale,
                latency_s=result.latency_s,
            )
        )
    return points


def analytic_bandwidth_sweep(
    scales: Sequence[float] = (0.5, 1.0, 2.0, 3.0),
    batch: int = 8,
    seq_len: int = 384,
    options: Optional[CodegenOptions] = None,
    base_config: Optional[XNNConfig] = None,
) -> List[BandwidthSweepPoint]:
    """The Table 11 sweep on the analytic fast-model backend.

    Same sweep shape as :func:`bandwidth_sweep_latency` but each point is a
    closed-form roofline lower bound instead of an event-driven simulation --
    cheap enough to sweep hundreds of bandwidth scales interactively when
    exploring beyond the paper's four points.
    """
    from .analytic import AnalyticXNN  # local import to avoid a module cycle
    from dataclasses import replace

    options = options or CodegenOptions()
    base_config = base_config or XNNConfig(carry_data=False)
    points: List[BandwidthSweepPoint] = []
    for scale in scales:
        config = replace(base_config, carry_data=False, bandwidth_scale=scale)
        result = AnalyticXNN(config=config, options=options).run_encoder(
            batch=batch, seq_len=seq_len
        )
        points.append(
            BandwidthSweepPoint(
                label=f"{scale:g}X BW",
                bandwidth_scale=scale,
                latency_s=result.latency_s,
            )
        )
    return points
