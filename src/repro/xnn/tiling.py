"""Output-stationary GEMM tiling for RSN-XNN (Section 5.3).

The paper's tiling keeps the output stationary on chip and accumulates
completely along K before storing: the LHS tile is 768x128, the RHS tile is
128x1024, and the output super-tile is 768x1024, "enabling 768x reuse of RHS,
1024x reuse of LHS, and an efficient output accumulation".  The 1024-wide
output super-tile is split column-wise across the MME FUs, each of which
accumulates its own slice and drains it to its MemC.

:func:`plan_gemm_tiling` computes the concrete block boundaries for an
arbitrary ``M x K x N`` layer, shrinking the tile sizes when the layer is
smaller than the defaults and handling non-divisible edges explicitly, so the
code generator can walk the plan without any further arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "Block",
    "GemmTiling",
    "plan_gemm_tiling",
    "DEFAULT_TILE_M",
    "DEFAULT_TILE_K",
    "DEFAULT_SUPER_N",
]


DEFAULT_TILE_M = 768
DEFAULT_TILE_K = 128
DEFAULT_SUPER_N = 1024


@dataclass(frozen=True)
class Block:
    """A half-open index range ``[start, start + size)`` along one dimension."""

    start: int
    size: int

    @property
    def stop(self) -> int:
        return self.start + self.size


def _split(extent: int, tile: int) -> List[Block]:
    """Split ``extent`` into blocks of at most ``tile`` elements."""
    blocks = []
    start = 0
    while start < extent:
        size = min(tile, extent - start)
        blocks.append(Block(start, size))
        start += size
    return blocks


def _split_even(extent: int, parts: int) -> List[Block]:
    """Split ``extent`` into up to ``parts`` contiguous, near-equal blocks."""
    parts = min(parts, extent)
    base = extent // parts
    remainder = extent % parts
    blocks = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < remainder else 0)
        blocks.append(Block(start, size))
        start += size
    return blocks


@dataclass(frozen=True)
class GemmTiling:
    """The complete tiling of one ``M x K x N`` GEMM across the MME FUs.

    Attributes
    ----------
    m_blocks / k_blocks / n_super_blocks:
        Row blocks of the LHS/output, K accumulation steps, and output
        super-column blocks.
    mme_columns:
        For each super-column block, the per-MME column sub-blocks (relative
        to the super-block start they are absolute coordinates into N).
    """

    m: int
    k: int
    n: int
    tile_m: int
    tile_k: int
    super_n: int
    num_mme: int
    m_blocks: Tuple[Block, ...]
    k_blocks: Tuple[Block, ...]
    n_super_blocks: Tuple[Block, ...]
    mme_columns: Tuple[Tuple[Block, ...], ...]

    # ------------------------------------------------------------- queries

    @property
    def k_steps(self) -> int:
        return len(self.k_blocks)

    @property
    def supertile_count(self) -> int:
        return len(self.m_blocks) * len(self.n_super_blocks)

    def active_mmes(self, n_super_index: int) -> int:
        """Number of MMEs that have columns to work on in one super-block."""
        return len(self.mme_columns[n_super_index])

    @property
    def lhs_load_bytes(self) -> int:
        """Total LHS bytes loaded from off-chip (reloaded per super-column)."""
        return self.m * self.k * 4 * len(self.n_super_blocks)

    @property
    def rhs_load_bytes(self) -> int:
        """Total RHS bytes loaded from off-chip (reloaded per row block)."""
        return self.k * self.n * 4 * len(self.m_blocks)

    @property
    def out_store_bytes(self) -> int:
        return self.m * self.n * 4

    def lhs_reuse(self) -> float:
        """How many times each loaded LHS element is used (paper: 1024x)."""
        return self.n / len(self.n_super_blocks)

    def rhs_reuse(self) -> float:
        """How many times each loaded RHS element is used (paper: 768x)."""
        return self.m / len(self.m_blocks)


def plan_gemm_tiling(
    m: int,
    k: int,
    n: int,
    num_mme: int = 6,
    tile_m: int = DEFAULT_TILE_M,
    tile_k: int = DEFAULT_TILE_K,
    super_n: int = DEFAULT_SUPER_N,
) -> GemmTiling:
    """Plan the output-stationary tiling of an ``m x k x n`` GEMM.

    Tile sizes are clipped to the layer dimensions; the per-MME column split
    uses as many MMEs as there are columns (small layers simply leave some
    MMEs idle, which is exactly the under-utilisation the mapping analysis of
    Table 3 talks about).
    """
    if min(m, k, n) <= 0:
        raise ValueError(f"GEMM dimensions must be positive, got {(m, k, n)}")
    if num_mme < 1:
        raise ValueError("num_mme must be >= 1")
    tile_m = min(tile_m, m)
    tile_k = min(tile_k, k)
    super_n = min(super_n, n)

    m_blocks = tuple(_split(m, tile_m))
    k_blocks = tuple(_split(k, tile_k))
    n_super_blocks = tuple(_split(n, super_n))
    mme_columns = tuple(
        tuple(
            Block(super_block.start + sub.start, sub.size)
            for sub in _split_even(super_block.size, num_mme)
        )
        for super_block in n_super_blocks
    )
    return GemmTiling(
        m=m,
        k=k,
        n=n,
        tile_m=tile_m,
        tile_k=tile_k,
        super_n=super_n,
        num_mme=num_mme,
        m_blocks=m_blocks,
        k_blocks=k_blocks,
        n_super_blocks=n_super_blocks,
        mme_columns=mme_columns,
    )
