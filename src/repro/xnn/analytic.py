"""The analytic fast-model backend: roofline estimates, no event loop.

:class:`AnalyticXNN` mirrors :class:`~repro.xnn.executor.XNNExecutor`'s API
(``run_gemm`` / ``run_encoder`` / ``run_feedforward_model``) but evaluates a
closed-form *multi-resource roofline* instead of simulating the datapath:

* It replays the code generator's tiling decisions
  (:func:`~repro.xnn.tiling.plan_gemm_tiling`) and attention mapping
  (:func:`~repro.xnn.mapping.attention_mapping_type`) purely arithmetically,
  tallying exactly the off-chip transfers, MME tile products, and MemC fused
  operators the generated program would issue -- the DDR/LPDDR byte counts it
  reports are *identical* to the event-driven engine's channel counters.
* Each tallied resource (the DDR channel, the LPDDR channel, the busiest MME,
  the busiest MemC) is converted to serial busy time with the same platform
  models the engine charges time with
  (:class:`~repro.hardware.memory.MemoryChannelModel` including the
  per-request latency, :meth:`~repro.hardware.aie.AIEArrayModel.mme_flops`),
  and the segment latency is the maximum over resources
  (:class:`~repro.analysis.roofline.ResourceRoofline`).

Because every FU in the event-driven engine executes its uOPs serially, the
engine's end time can never be smaller than any single FU's total charged
time; the analytic latency is therefore a **certified lower bound** on the
cycle-level result.  What it deliberately omits -- pipeline fill/drain,
channel back-pressure, load/store ordering stalls -- is exactly the gap the
differential-validation suite (``tests/differential/``) measures and pins per
scenario.  In exchange, a full scenario evaluation costs microseconds instead
of seconds, which is what makes 1000-point design-space sweeps interactive
(``benchmarks/bench_backend_speed.py`` quantifies the speedup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..analysis.roofline import ResourceRoofline
from ..hardware.aie import AIEArrayModel, MMEGroupPlan
from ..hardware.link import InterChipLink
from ..hardware.memory import MemoryChannelModel, ddr_channel, lpddr_channel
from ..workloads.bert import BERT_LARGE, BertConfig, bert_large_encoder
from ..workloads.layers import FusedOp, MatMulLayer, ModelSpec
from .codegen import _FUSED_TO_MEMC, CodegenOptions
from .datapath import XNNConfig
from .executor import EncoderResult, SegmentResult
from .fus.scratchpad import MEMC_COMPUTE_THROUGHPUT, NONMM_FLOPS_PER_ELEMENT
from .mapping import MappingType, attention_mapping_type
from .partition import chiplet_payload, design_cost
from .segmentation import SegmentKind, segment_model
from .tiling import plan_gemm_tiling

__all__ = [
    "AnalyticSegment",
    "AnalyticXNN",
    "EncoderBatchEvaluator",
    "encoder_batch_evaluator",
]

_ELEMENT_BYTES = 4  # fp32 everywhere, matching TileMessage's default dtype


@dataclass
class AnalyticSegment(SegmentResult):
    """A :class:`SegmentResult` plus the roofline diagnostics behind it.

    ``uops`` is always 0: the fast model does not build instruction streams
    (that is precisely the work it skips).  The extra fields expose what the
    engine cannot cheaply report -- which resource bounds the segment and how
    busy each one is relative to the estimated span.
    """

    bottleneck: str = ""
    bounds_s: Dict[str, float] = field(default_factory=dict)
    utilization: Dict[str, float] = field(default_factory=dict)
    mapping: str = ""


class _SegmentTally:
    """Accumulates one simulation group's transfers and per-FU work."""

    def __init__(self, config: XNNConfig):
        self.config = config
        self.ddr: MemoryChannelModel = ddr_channel(
            config.spec, bandwidth_scale=config.bandwidth_scale
        )
        self.lpddr: MemoryChannelModel = lpddr_channel(
            config.spec, bandwidth_scale=config.bandwidth_scale
        )
        self.ddr_read_bytes = 0
        self.ddr_read_requests = 0
        self.ddr_write_bytes = 0
        self.ddr_write_requests = 0
        self.lpddr_bytes = 0
        self.lpddr_requests = 0
        self.mme_flops = [0.0] * config.num_mme
        self.memc_flops = [0.0] * config.num_mem_c

    # ------------------------------------------------------------- recording

    def ddr_load(self, nbytes: int, requests: int) -> None:
        self.ddr_read_bytes += nbytes
        self.ddr_read_requests += requests

    def ddr_store(self, nbytes: int, requests: int) -> None:
        self.ddr_write_bytes += nbytes
        self.ddr_write_requests += requests

    def lpddr_load(self, nbytes: int, requests: int) -> None:
        self.lpddr_bytes += nbytes
        self.lpddr_requests += requests

    # ------------------------------------------------------------- resolving

    def roofline(self, mme_rate: float, memc_rate: float) -> ResourceRoofline:
        """Convert the tallies into per-resource busy times.

        Each bound is the exact serial occupancy the event-driven engine
        charges the corresponding FU: the channels' transfer times (including
        the fixed per-request latency), the busiest MME's accumulated tile
        products, and the busiest MemC's fused-operator arithmetic.
        """
        ddr_busy = (
            self.ddr.bulk_read_time(self.ddr_read_bytes, self.ddr_read_requests)
            + self.ddr.bulk_write_time(self.ddr_write_bytes, self.ddr_write_requests)
        )
        lpddr_busy = self.lpddr.bulk_read_time(self.lpddr_bytes, self.lpddr_requests)
        return ResourceRoofline(
            {
                "ddr": ddr_busy,
                "lpddr": lpddr_busy,
                "mme": max(self.mme_flops) / mme_rate,
                "memc": max(self.memc_flops) / memc_rate,
            }
        )

    @property
    def ddr_bytes(self) -> int:
        return self.ddr_read_bytes + self.ddr_write_bytes

    @property
    def lpddr_total_bytes(self) -> int:
        return self.lpddr_bytes


def _memc_flops_per_element(fused_ops: Tuple[FusedOp, ...], residual: bool) -> float:
    """FLOPs/element MemC charges for a GEMM layer's fused operators.

    Mirrors the code generator (softmax is excluded from GEMM layers -- it
    only occurs inside attention) and the MemC kernel's residual add.
    """
    ops = tuple(
        _FUSED_TO_MEMC[op]
        for op in fused_ops
        if op in _FUSED_TO_MEMC and op != FusedOp.SOFTMAX
    )
    per_element = sum(NONMM_FLOPS_PER_ELEMENT.get(op, 1.0) for op in ops)
    if residual:
        per_element += 1.0
    return per_element


class AnalyticXNN:
    """Closed-form latency/traffic/utilisation model of the RSN-XNN overlay.

    Drop-in analytic counterpart of :class:`~repro.xnn.executor.XNNExecutor`:
    same configuration objects, same result dataclasses, no event loop.
    """

    def __init__(
        self,
        config: Optional[XNNConfig] = None,
        options: Optional[CodegenOptions] = None,
    ):
        self.config = config or XNNConfig(carry_data=False)
        self.options = options or CodegenOptions()
        self.aie = AIEArrayModel(
            self.config.spec, MMEGroupPlan(num_groups=self.config.num_mme)
        )
        # Mirror XNNDatapath's feasibility check: the fast model must reject
        # exactly the configurations the engine cannot build, or a design-space
        # search on the analytic proxy could "find" un-buildable winners.
        self.aie.validate_plan()
        #: achieved FLOP/s of one MME FU -- identical to the rate the engine's
        #: MME kernels charge compute with.
        self.mme_rate = self.aie.mme_flops(self.config.mme_tile_shape)

    # -------------------------------------------------------------- tallying

    def _tally_gemm(
        self, tally: _SegmentTally, layer: MatMulLayer, residual: bool = False
    ) -> None:
        """Replay ``ProgramBuilder.add_gemm_layer``'s transfer inventory."""
        if layer.num != 1:
            raise ValueError(
                f"layer {layer.name!r} has num={layer.num}; "
                "multi-instance layers are attention-style"
            )
        options = self.options
        m, k, n = layer.m, layer.k, layer.n
        tiling = plan_gemm_tiling(
            m,
            k,
            n,
            num_mme=self.config.num_mme,
            tile_m=options.tile_m,
            tile_k=options.tile_k,
            super_n=options.super_n,
        )
        n_m = len(tiling.m_blocks)
        n_k = len(tiling.k_blocks)
        n_j = len(tiling.n_super_blocks)
        active_total = sum(len(columns) for columns in tiling.mme_columns)

        # LHS tiles: reloaded once per output super-column, one transfer per
        # (row block, super-column, K step).
        tally.ddr_load(m * k * _ELEMENT_BYTES * n_j, n_m * n_j * n_k)
        if residual:
            # One residual tile per (row block, super-column, active MME).
            tally.ddr_load(m * n * _ELEMENT_BYTES, n_m * active_total)
        # Output stores: one per (row block, super-column, active MME).
        tally.ddr_store(m * n * _ELEMENT_BYTES, n_m * active_total)
        # RHS weights from LPDDR: reloaded once per row block, one transfer
        # per (row block, super-column, K step, active MME).
        tally.lpddr_load(k * n * _ELEMENT_BYTES * n_m, n_m * n_k * active_total)

        memc_per_element = _memc_flops_per_element(layer.fused_ops, residual)
        for columns in tiling.mme_columns:
            for g, column in enumerate(columns):
                # Accumulated over all row blocks: 2*m*k FLOPs per output
                # column element; MemC g post-processes MME g's columns.
                tally.mme_flops[g] += 2.0 * m * k * column.size
                tally.memc_flops[g] += memc_per_element * m * column.size

    def _tally_attention(
        self, tally: _SegmentTally, seq_len: int, head_dim: int, num_heads: int
    ) -> None:
        """Replay ``ProgramBuilder.add_attention``'s transfer inventory."""
        head_tile = seq_len * head_dim * _ELEMENT_BYTES
        score_tile = seq_len * seq_len * _ELEMENT_BYTES
        mm_flops = 2.0 * seq_len * head_dim * seq_len   # MM1 == MM2 FLOPs
        softmax_flops = (
            (NONMM_FLOPS_PER_ELEMENT["scale"] + NONMM_FLOPS_PER_ELEMENT["softmax"])
            * seq_len
            * seq_len
        )
        num_mme = self.config.num_mme

        if self.options.pipeline_attention:
            # Heads run in groups of num_mme//2: head slot i computes MM1 on
            # MME i and MM2 on MME half+i; scores never leave the chip.
            half = max(1, num_mme // 2)
            mm2_base = half if num_mme >= 2 * half else 0
            tally.ddr_load(3 * num_heads * head_tile, 3 * num_heads)  # Q, K, V
            tally.ddr_store(num_heads * head_tile, num_heads)
            for head in range(num_heads):
                slot = head % half
                tally.mme_flops[slot] += mm_flops
                tally.mme_flops[mm2_base + slot] += mm_flops
                tally.memc_flops[slot] += softmax_flops
        else:
            # Task-by-task: every head's scores round-trip through DDR.
            tally.ddr_load(2 * num_heads * head_tile, 2 * num_heads)  # Q, K
            tally.ddr_store(num_heads * score_tile, num_heads)
            tally.ddr_load(num_heads * (score_tile + head_tile), 2 * num_heads)
            tally.ddr_store(num_heads * head_tile, num_heads)
            for head in range(num_heads):
                g = head % num_mme
                tally.mme_flops[g] += 2.0 * mm_flops
                tally.memc_flops[g] += softmax_flops

    # ------------------------------------------------------------- resolving

    def _close_segment(
        self, tally: _SegmentTally, name: str, flops: float, mapping: str = ""
    ) -> AnalyticSegment:
        roofline = tally.roofline(self.mme_rate, MEMC_COMPUTE_THROUGHPUT)
        return AnalyticSegment(
            name=name,
            latency_s=roofline.latency_s,
            flops=flops,
            ddr_bytes=tally.ddr_bytes,
            lpddr_bytes=tally.lpddr_total_bytes,
            uops=0,
            bottleneck=roofline.bottleneck,
            bounds_s=dict(roofline.busy_s),
            utilization=roofline.utilizations(),
            mapping=mapping,
        )

    def _fresh_tally(self) -> _SegmentTally:
        return _SegmentTally(self.config)

    # ------------------------------------------------------------ single GEMM

    def run_gemm(
        self, m: int, k: int, n: int, fused_ops: Tuple[FusedOp, ...] = ()
    ) -> AnalyticSegment:
        """Estimate one GEMM layer end to end (the Table 6b path)."""
        layer = MatMulLayer("gemm", m=m, k=k, n=n, fused_ops=fused_ops)
        tally = self._fresh_tally()
        self._tally_gemm(tally, layer)
        return self._close_segment(
            tally, "gemm", layer.flops, mapping=MappingType.TASK_PARALLEL.value
        )

    # --------------------------------------------------------------- encoder

    def encoder_segments(
        self, batch: int = 6, seq_len: int = 512, config: BertConfig = BERT_LARGE
    ) -> Tuple[str, List[Tuple[str, "_SegmentTally", float, str]]]:
        """Tally the encoder's three simulation groups without resolving them.

        Returns ``(model name, [(segment name, tally, flops, mapping), ...])``.
        This is the bandwidth-independent half of :meth:`run_encoder`: the
        tallies depend on the workload shape, the tiling/mapping options, and
        the FU counts, but *not* on channel bandwidths -- which is what lets
        :class:`EncoderBatchEvaluator` share them across design points that
        differ only in bandwidth or scratchpad depth.
        """
        spec = bert_large_encoder(batch=batch, seq_len=seq_len, config=config)
        layer = {lyr.name: lyr for lyr in spec.layers}

        pipelined_pairs = {
            tuple(lyr.name for lyr in segment.layers)
            for segment in segment_model(spec, self.config.spec)
            if segment.kind is SegmentKind.PIPELINED
        }
        attention_pipelined = (
            self.options.pipeline_attention
            and ("attention_mm1", "attention_mm2") in pipelined_pairs
        )
        mapping = attention_mapping_type(attention_pipelined).value
        segments: List[Tuple[str, _SegmentTally, float, str]] = []

        # ---- group 1: Key / Query / Value projections --------------------
        tally = self._fresh_tally()
        for name in ("query", "key", "value"):
            self._tally_gemm(tally, layer[name])
        qkv_flops = sum(layer[n].flops for n in ("query", "key", "value"))
        segments.append(("qkv", tally, qkv_flops, ""))

        # ---- group 2: attention heads + dense projection ------------------
        tally = self._fresh_tally()
        self._tally_attention(
            tally,
            seq_len=seq_len,
            head_dim=config.head_dim,
            num_heads=batch * config.heads,
        )
        self._tally_gemm(tally, layer["dense"], residual=True)
        attention_flops = (
            layer["attention_mm1"].flops
            + layer["attention_mm2"].flops
            + layer["dense"].flops
        )
        segments.append(("attention+dense", tally, attention_flops, mapping))

        # ---- group 3: feed-forward network --------------------------------
        tally = self._fresh_tally()
        self._tally_gemm(tally, layer["ffn_mm1"])
        self._tally_gemm(tally, layer["ffn_mm2"], residual=True)
        ffn_flops = layer["ffn_mm1"].flops + layer["ffn_mm2"].flops
        segments.append(("ffn", tally, ffn_flops, ""))
        return spec.name, segments

    def run_encoder(
        self, batch: int = 6, seq_len: int = 512, config: BertConfig = BERT_LARGE
    ) -> EncoderResult:
        """Estimate one transformer encoder layer, segment by segment.

        The three simulation groups mirror the engine executor exactly (QKV
        projections, attention + dense, feed-forward), so per-segment traffic
        is comparable byte for byte.  The attention segment is labelled with
        the Fig. 3 mapping type the codegen options select, cross-checked
        against the model-segmentation decision (the pipelined mapping is only
        meaningful when the segmenter would pipeline the attention pair).
        """
        name, segments = self.encoder_segments(
            batch=batch, seq_len=seq_len, config=config
        )
        result = EncoderResult(name=name, batch=batch)
        for segment_name, tally, flops, mapping in segments:
            result.segments.append(
                self._close_segment(tally, segment_name, flops, mapping=mapping)
            )
        return result

    # ----------------------------------------------------------- plain models

    def run_feedforward_model(self, model: ModelSpec) -> EncoderResult:
        """Estimate a pure-GEMM model (NCF, MLP): layers chained through DDR."""
        tally = self._fresh_tally()
        total_flops = 0.0
        for model_layer in model.layers:
            self._tally_gemm(tally, model_layer)
            total_flops += model_layer.flops
        result = EncoderResult(name=model.name, batch=model.batch)
        result.segments.append(self._close_segment(tally, model.name, total_flops))
        return result


# ------------------------------------------------------------ batch evaluation


@dataclass(frozen=True)
class _FrozenTally:
    """The numbers of one :class:`_SegmentTally`, detached for safe sharing."""

    ddr_read_bytes: int
    ddr_read_requests: int
    ddr_write_bytes: int
    ddr_write_requests: int
    lpddr_bytes: int
    lpddr_requests: int
    mme_flops_max: float
    memc_flops_max: float

    @classmethod
    def freeze(cls, tally: _SegmentTally) -> "_FrozenTally":
        return cls(
            ddr_read_bytes=tally.ddr_read_bytes,
            ddr_read_requests=tally.ddr_read_requests,
            ddr_write_bytes=tally.ddr_write_bytes,
            ddr_write_requests=tally.ddr_write_requests,
            lpddr_bytes=tally.lpddr_bytes,
            lpddr_requests=tally.lpddr_requests,
            mme_flops_max=max(tally.mme_flops),
            memc_flops_max=max(tally.memc_flops),
        )


@dataclass(frozen=True)
class _SegmentSet:
    """One memoized encoder evaluation's bandwidth-independent half.

    Everything :meth:`AnalyticXNN.run_encoder` derives per segment except the
    roofline resolution: the frozen tallies, the segment names and mapping
    labels, the per-segment FLOP counts, and their list-order fold into the
    encoder total.
    """

    model_name: str
    names: Tuple[str, ...]
    mappings: Tuple[str, ...]
    tallies: Tuple[_FrozenTally, ...]
    flops: Tuple[float, ...]
    total_flops: float


def _busy_grids(
    tallies_per_point: Sequence[Sequence[_FrozenTally]],
    ddr_models: Sequence[MemoryChannelModel],
    lpddr_models: Sequence[MemoryChannelModel],
    mme_rate_column: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized per-(point, segment) resource busy times.

    Exactly :meth:`_SegmentTally.roofline`'s expressions evaluated
    elementwise over a whole generation: the channels' bulk transfer times
    (including the per-request latency and the empty-transfer zero), the
    busiest MME's accumulated FLOPs over its rate, and the busiest MemC's
    arithmetic over the MemC throughput.  Elementwise IEEE-754 float64 ops
    are bit-exact either way, so each cell equals the scalar busy time.
    """
    count = len(tallies_per_point)
    segments = len(tallies_per_point[0])
    shape = (count, segments)

    def grid(attr: str) -> np.ndarray:
        return np.array(
            [
                [getattr(tally, attr) for tally in tallies]
                for tallies in tallies_per_point
            ],
            dtype=np.float64,
        )

    def column(attr: str, models: Sequence[MemoryChannelModel]) -> np.ndarray:
        return np.array(
            [getattr(model, attr) for model in models], dtype=np.float64
        ).reshape(count, 1)

    read_bytes = grid("ddr_read_bytes")
    read_requests = grid("ddr_read_requests")
    write_bytes = grid("ddr_write_bytes")
    write_requests = grid("ddr_write_requests")
    lpddr_bytes = grid("lpddr_bytes")
    lpddr_requests = grid("lpddr_requests")
    mme_max = grid("mme_flops_max")
    memc_max = grid("memc_flops_max")

    ddr_read_bw = column("effective_read_bw", ddr_models)
    ddr_write_bw = column("effective_write_bw", ddr_models)
    ddr_latency = column("request_latency", ddr_models)
    lpddr_bw = column("effective_read_bw", lpddr_models)
    lpddr_latency = column("request_latency", lpddr_models)

    def bulk_time(
        nbytes: np.ndarray,
        requests: np.ndarray,
        bandwidth: np.ndarray,
        latency: np.ndarray,
    ) -> np.ndarray:
        # MemoryChannelModel._bulk_time, elementwise: latency + nbytes/bw
        # + (requests-1)*latency, and exactly 0.0 for empty transfers.
        busy = latency + nbytes / bandwidth + (requests - 1.0) * latency
        return np.where((nbytes == 0.0) | (requests == 0.0), np.zeros(shape), busy)

    ddr_busy = (
        bulk_time(read_bytes, read_requests, ddr_read_bw, ddr_latency)
        + bulk_time(write_bytes, write_requests, ddr_write_bw, ddr_latency)
    )
    lpddr_busy = bulk_time(lpddr_bytes, lpddr_requests, lpddr_bw, lpddr_latency)
    mme_busy = mme_max / mme_rate_column
    memc_busy = memc_max / MEMC_COMPUTE_THROUGHPUT
    return ddr_busy, lpddr_busy, mme_busy, memc_busy


#: the ``dse_encoder`` runner defaults, mirrored so the batch path resolves
#: partially specified design points exactly like the scalar runner signature.
_DSE_DEFAULTS: Dict[str, Any] = {
    "batch": 1,
    "seq_len": 128,
    "model": "bert_large",
    "num_mme": 6,
    "mem_b_bytes": 1024 * 1024,
    "bandwidth_scale": 1.0,
    "pipeline_attention": True,
    "tile_m": 768,
    "tile_k": 128,
    "super_n": 1024,
}

#: the ``dse_chiplet`` runner defaults: everything ``dse_encoder`` takes,
#: plus the scale-out axes (chip count and inter-chip link parameters).
_CHIPLET_DEFAULTS: Dict[str, Any] = dict(_DSE_DEFAULTS)
_CHIPLET_DEFAULTS.update(
    {
        "num_chips": 1,
        "link_gbs": 64.0,
        "link_hop_us": 1.0,
        "link_serialization_us": 0.0,
    }
)

#: the chiplet-only keys, stripped before the shared single-chip evaluation
#: (none of them changes a tally or a per-segment roofline).
_CHIPLET_ONLY = ("num_chips", "link_gbs", "link_hop_us", "link_serialization_us")


@dataclass
class _BatchRows:
    """The shared per-generation state behind one batched evaluation.

    Everything the payload constructors need, per point: the resolved
    parameters, the (feasible) probe config, the frozen tallies, and the
    vectorized roofline results.
    """

    params: List[Dict[str, Any]]
    probes: List[XNNConfig]
    tallies_per_point: List[List[_FrozenTally]]
    total_flops: np.ndarray
    peak_flops: np.ndarray
    num_mme_column: List[int]
    segment_latency: np.ndarray
    latency: np.ndarray
    achieved: np.ndarray
    utilization: np.ndarray


class EncoderBatchEvaluator:
    """Vectorized evaluation of whole generations of encoder design points.

    The scalar proxy path costs milliseconds per point: every evaluation
    materialises an ad-hoc scenario, re-validates the MME plan, re-builds the
    workload, and re-walks the tiling loops -- even though a search generation
    contains many points that differ only in bandwidth scale or scratchpad
    depth, neither of which changes a single tally.  This evaluator splits
    the work accordingly:

    1. **Memoized tallies** -- :meth:`AnalyticXNN.encoder_segments` runs once
       per unique (workload shape, tiling/mapping options, MME count) and is
       shared by every point of the generation (and of later generations:
       the evaluator is long-lived).  Because the memo stores the *result* of
       the exact scalar code path, accumulation order -- and therefore every
       floating-point bit -- matches the scalar evaluation.
    2. **Vectorized rooflines** -- the per-point, bandwidth-dependent half
       (channel busy times, resource maxima, latency/utilisation payload
       arithmetic) is evaluated as NumPy float64 arrays over the whole
       generation, expression-for-expression identical to the scalar
       formulas (elementwise IEEE-754 ops are bit-exact either way).

    The contract -- every payload equals the scalar path's payload exactly --
    is pinned by ``tests/differential/test_batched_analytic.py``.
    """

    def __init__(self):
        #: (spec, num_mme, num_mem_c, tile_shape, options) -> AnalyticXNN
        self._models: Dict[Tuple[Any, ...], AnalyticXNN] = {}
        #: (model key, batch, seq_len, bert config) -> frozen segment data
        self._segments: Dict[Tuple[Any, ...], _SegmentSet] = {}
        #: (model key, m, k, n) -> frozen single-GEMM tally + FLOPs
        self._gemm_tallies: Dict[Tuple[Any, ...], Tuple[_FrozenTally, float]] = {}
        #: hits/misses of the segment-tally memo, for benchmarks and tests.
        self.tally_hits = 0
        self.tally_misses = 0

    # ------------------------------------------------------------ resolution

    def _model_for(
        self,
        spec,
        num_mme: int,
        num_mem_c: int,
        mme_tile_shape: Tuple[int, int, int],
        options: CodegenOptions,
    ) -> AnalyticXNN:
        key = (spec, num_mme, num_mem_c, mme_tile_shape, options)
        model = self._models.get(key)
        if model is None:
            config = XNNConfig(
                num_mme=num_mme,
                num_mem_c=num_mem_c,
                mme_tile_shape=mme_tile_shape,
                carry_data=False,
                spec=spec,
            )
            # AnalyticXNN.__init__ validates the MME plan; only *feasible*
            # models are memoized, so infeasible points raise identically
            # to the scalar path on every evaluation.
            model = AnalyticXNN(config=config, options=options)
            self._models[key] = model
        return model

    def _segments_for(
        self, model: AnalyticXNN, batch: int, seq_len: int, config: BertConfig
    ) -> _SegmentSet:
        key = (
            model.config.spec,
            model.config.num_mme,
            model.config.num_mem_c,
            model.config.mme_tile_shape,
            model.options,
            batch,
            seq_len,
            config,
        )
        cached = self._segments.get(key)
        if cached is not None:
            self.tally_hits += 1
            return cached
        self.tally_misses += 1
        model_name, segments = model.encoder_segments(
            batch=batch, seq_len=seq_len, config=config
        )
        flops = tuple(segment_flops for _, _, segment_flops, _ in segments)
        # result.flops is sum(segment.flops) -- fold in list order so the
        # scalar EncoderResult sum is reproduced bit for bit.
        total_flops = 0.0
        for segment_flops in flops:
            total_flops += segment_flops
        cached = _SegmentSet(
            model_name=model_name,
            names=tuple(name for name, _, _, _ in segments),
            mappings=tuple(mapping for _, _, _, mapping in segments),
            tallies=tuple(_FrozenTally.freeze(tally) for _, tally, _, _ in segments),
            flops=flops,
            total_flops=total_flops,
        )
        self._segments[key] = cached
        return cached

    def _gemm_tally_for(
        self, model: AnalyticXNN, m: int, k: int, n: int
    ) -> Tuple[_FrozenTally, float]:
        """The frozen tally and FLOP count of one bare GEMM, memoized."""
        key = (
            model.config.spec,
            model.config.num_mme,
            model.config.num_mem_c,
            model.config.mme_tile_shape,
            model.options,
            m,
            k,
            n,
        )
        cached = self._gemm_tallies.get(key)
        if cached is not None:
            self.tally_hits += 1
            return cached
        self.tally_misses += 1
        # The exact layer AnalyticXNN.run_gemm builds (the runner layer never
        # passes fused ops), tallied through the same code path.
        layer = MatMulLayer("gemm", m=m, k=k, n=n)
        tally = model._fresh_tally()
        model._tally_gemm(tally, layer)
        cached = (_FrozenTally.freeze(tally), layer.flops)
        self._gemm_tallies[key] = cached
        return cached

    # ------------------------------------------------------------ evaluation

    def _rows(
        self, param_sets: Sequence[Mapping[str, Any]], encoder_config
    ) -> _BatchRows:
        """Resolve parameters and run the vectorized rooflines for one batch.

        The shared core of :meth:`evaluate_batch` and
        :meth:`evaluate_chiplet_batch`: every array it fills is computed with
        exactly the expressions the scalar path uses (see the class
        docstring for why that makes the results bit-identical).
        """
        count = len(param_sets)
        resolved: List[Dict[str, Any]] = []
        probes: List[XNNConfig] = []
        tallies_per_point: List[List[_FrozenTally]] = []
        total_flops = np.empty(count)
        mme_rate = np.empty(count)
        peak_flops = np.empty(count)
        num_mme_column = []
        ddr_models: List[MemoryChannelModel] = []
        lpddr_models: List[MemoryChannelModel] = []
        for index, raw in enumerate(param_sets):
            params = dict(_DSE_DEFAULTS)
            params.update(raw)
            # Same validated construction hooks as the scalar _dse_design:
            # with_overrides rejects unknown knobs, XNNConfig.__post_init__
            # rejects bad counts/depths, AnalyticXNN validates the MME plan.
            options = CodegenOptions.with_overrides(
                pipeline_attention=params["pipeline_attention"],
                tile_m=params["tile_m"],
                tile_k=params["tile_k"],
                super_n=params["super_n"],
            )
            num_mme = params["num_mme"]
            probe = XNNConfig(
                num_mme=num_mme,
                num_mem_c=num_mme,
                mem_b_bytes=params["mem_b_bytes"],
                bandwidth_scale=params["bandwidth_scale"],
                carry_data=False,
            )
            model = self._model_for(
                probe.spec, num_mme, num_mme, probe.mme_tile_shape, options
            )
            segment_set = self._segments_for(
                model,
                params["batch"],
                params["seq_len"],
                encoder_config(params["model"]),
            )
            resolved.append(params)
            probes.append(probe)
            tallies_per_point.append(list(segment_set.tallies))
            total_flops[index] = segment_set.total_flops
            mme_rate[index] = model.mme_rate
            peak_flops[index] = num_mme * model.mme_rate
            num_mme_column.append(num_mme)
            ddr_models.append(
                ddr_channel(probe.spec, bandwidth_scale=probe.bandwidth_scale)
            )
            lpddr_models.append(
                lpddr_channel(probe.spec, bandwidth_scale=probe.bandwidth_scale)
            )

        segments = len(tallies_per_point[0])
        ddr_busy, lpddr_busy, mme_busy, memc_busy = _busy_grids(
            tallies_per_point, ddr_models, lpddr_models, mme_rate.reshape(count, 1)
        )

        # ResourceRoofline.latency_s: the max over resources (order-free).
        segment_latency = np.maximum(
            np.maximum(ddr_busy, lpddr_busy), np.maximum(mme_busy, memc_busy)
        )
        # EncoderResult.latency_s: sum over segments in list order; float
        # addition starting from 0.0 folds identically to a left-to-right
        # pairwise chain, so cumulative add matches sum() exactly.
        latency = np.zeros(count)
        for segment_index in range(segments):
            latency = latency + segment_latency[:, segment_index]

        with np.errstate(divide="ignore", invalid="ignore"):
            achieved = np.where(latency > 0.0, total_flops / latency / 1e12, 0.0)
            utilization = np.where(
                latency > 0.0, total_flops / latency / peak_flops, 0.0
            )

        return _BatchRows(
            params=resolved,
            probes=probes,
            tallies_per_point=tallies_per_point,
            total_flops=total_flops,
            peak_flops=peak_flops,
            num_mme_column=num_mme_column,
            segment_latency=segment_latency,
            latency=latency,
            achieved=achieved,
            utilization=utilization,
        )

    @staticmethod
    def _traffic(rows: _BatchRows, index: int) -> Tuple[int, int]:
        """(ddr, lpddr) byte totals of one point, summed like the scalar path."""
        ddr_bytes_total = 0
        lpddr_bytes_total = 0
        for tally in rows.tallies_per_point[index]:
            ddr_bytes_total += tally.ddr_read_bytes + tally.ddr_write_bytes
            lpddr_bytes_total += tally.lpddr_bytes
        return ddr_bytes_total, lpddr_bytes_total

    def _encoder_payload(self, rows: _BatchRows, index: int) -> Dict[str, Any]:
        """One point's ``dse_encoder`` payload from the shared batch rows."""
        ddr_bytes_total, lpddr_bytes_total = self._traffic(rows, index)
        latency_s = float(rows.latency[index])
        per_chip_peak = float(rows.peak_flops[index])
        power_w, area_luts = design_cost(rows.probes[index], per_chip_peak)
        batch = rows.params[index]["batch"]
        return {
            "latency_s": latency_s,
            "latency_ms": float(rows.latency[index] * 1e3),
            "flops": float(rows.total_flops[index]),
            "ddr_bytes": ddr_bytes_total,
            "lpddr_bytes": lpddr_bytes_total,
            "offchip_bytes": ddr_bytes_total + lpddr_bytes_total,
            "achieved_tflops": float(rows.achieved[index]),
            "utilization": float(rows.utilization[index]),
            "num_mme": rows.num_mme_column[index],
            "pipeline_tasks_per_s": (batch / latency_s) if latency_s else 0.0,
            "power_w": power_w,
            "area_luts": area_luts,
            "energy_j": power_w * latency_s,
        }

    def evaluate_batch(
        self, param_sets: Sequence[Mapping[str, Any]], encoder_config
    ) -> List[Dict[str, Any]]:
        """Evaluate many ``dse_encoder`` parameter sets in one pass.

        ``encoder_config`` maps a model name to its :class:`BertConfig`
        (injected by the runner layer so the supported-model catalogue cannot
        diverge between the scalar and batched paths).  Returns one payload
        dict per parameter set, in order, each exactly equal to what the
        scalar ``dse_encoder`` analytic runner returns for the same params.
        """
        if not param_sets:
            return []
        rows = self._rows(param_sets, encoder_config)
        return [
            self._encoder_payload(rows, index) for index in range(len(rows.params))
        ]

    def evaluate_chiplet_batch(
        self, param_sets: Sequence[Mapping[str, Any]], encoder_config
    ) -> List[Dict[str, Any]]:
        """Evaluate many ``dse_chiplet`` parameter sets in one pass.

        The chiplet-only axes (chip count, link parameters) change no tally
        and no per-segment roofline, so all points share the single-chip
        vectorized evaluation; the multi-chip combination on top is the same
        pure-float :func:`~repro.xnn.partition.chiplet_payload` call the
        scalar runners make.  ``num_chips=1`` rows take the exact
        ``dse_encoder`` payload path, preserving the single-chip
        byte-identity contract through the batched proxy as well.
        """
        if not param_sets:
            return []
        resolved: List[Dict[str, Any]] = []
        base_sets: List[Dict[str, Any]] = []
        for raw in param_sets:
            params = dict(_CHIPLET_DEFAULTS)
            params.update(raw)
            resolved.append(params)
            base_sets.append(
                {
                    key: value
                    for key, value in params.items()
                    if key not in _CHIPLET_ONLY
                }
            )
        rows = self._rows(base_sets, encoder_config)
        payloads: List[Dict[str, Any]] = []
        for index, params in enumerate(resolved):
            num_chips = params["num_chips"]
            if num_chips == 1:
                payloads.append(self._encoder_payload(rows, index))
                continue
            link = InterChipLink.from_design(
                params["link_gbs"],
                params["link_hop_us"],
                params["link_serialization_us"],
            )
            segment_latency = [
                float(rows.segment_latency[index, position])
                for position in range(rows.segment_latency.shape[1])
            ]
            ddr_bytes_total, lpddr_bytes_total = self._traffic(rows, index)
            payloads.append(
                chiplet_payload(
                    segment_latency_s=segment_latency,
                    flops=float(rows.total_flops[index]),
                    ddr_bytes=ddr_bytes_total,
                    lpddr_bytes=lpddr_bytes_total,
                    batch=params["batch"],
                    seq_len=params["seq_len"],
                    encoder=encoder_config(params["model"]),
                    config=rows.probes[index],
                    per_chip_peak_flops=float(rows.peak_flops[index]),
                    num_chips=num_chips,
                    link=link,
                )
            )
        return payloads

    def batch_size_costs(
        self, base_params: Mapping[str, Any], batch_sizes: Sequence[int], encoder_config
    ) -> Dict[int, Dict[str, Any]]:
        """Cost one design point across a range of serving batch sizes.

        The serving simulator's per-dispatch cost function: every batch a
        batching policy forms is priced as one ``dse_encoder`` evaluation of
        ``base_params`` with ``batch`` overridden.  All sizes are evaluated
        in a single :meth:`evaluate_batch` pass (shared tallies, one
        vectorized roofline), so a whole cost table for a serving run is a
        handful of milliseconds warm.  Returns ``{batch_size: payload}`` with
        payloads exactly equal to the scalar ``dse_encoder`` runner's.
        """
        sizes = sorted(set(int(size) for size in batch_sizes))
        if any(size < 1 for size in sizes):
            raise ValueError(f"batch sizes must be >= 1, got {sizes}")
        param_sets = [{**dict(base_params), "batch": size} for size in sizes]
        payloads = self.evaluate_batch(param_sets, encoder_config)
        return dict(zip(sizes, payloads))

    # --------------------------------------------- catalogue-kind evaluation

    def _roofline_at(
        self,
        busy: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        index: int,
        position: int,
    ) -> ResourceRoofline:
        """One (point, segment) cell resolved through the scalar roofline.

        Constructing the same ``{ddr, lpddr, mme, memc}`` mapping the scalar
        :meth:`_SegmentTally.roofline` builds -- from bit-identical busy
        times -- reproduces not just the latency but the *bottleneck
        tie-break* (first maximum in mapping order) and the utilization dict
        exactly.
        """
        ddr_busy, lpddr_busy, mme_busy, memc_busy = busy
        return ResourceRoofline(
            {
                "ddr": float(ddr_busy[index, position]),
                "lpddr": float(lpddr_busy[index, position]),
                "mme": float(mme_busy[index, position]),
                "memc": float(memc_busy[index, position]),
            }
        )

    def encoder_results(
        self,
        points: Sequence[Tuple[XNNConfig, CodegenOptions, int, int, BertConfig]],
    ) -> List[EncoderResult]:
        """Batched ``xnn_encoder`` evaluation, one :class:`EncoderResult` each.

        ``points`` holds ``(config, options, batch, seq_len, bert_config)``
        tuples -- exactly the objects the scalar analytic runner constructs.
        The bandwidth-independent tallies are memoized across points and
        calls; the busy times are vectorized; each segment is then resolved
        through the scalar :class:`ResourceRoofline`, so every
        :class:`AnalyticSegment` (names, mappings, diagnostics included)
        equals :meth:`AnalyticXNN.run_encoder`'s float for float.
        """
        if not points:
            return []
        count = len(points)
        segment_sets: List[_SegmentSet] = []
        ddr_models: List[MemoryChannelModel] = []
        lpddr_models: List[MemoryChannelModel] = []
        mme_rate_column = np.empty((count, 1))
        for index, (config, options, batch, seq_len, bert_config) in enumerate(
            points
        ):
            model = self._model_for(
                config.spec,
                config.num_mme,
                config.num_mem_c,
                config.mme_tile_shape,
                options,
            )
            segment_sets.append(
                self._segments_for(model, batch, seq_len, bert_config)
            )
            mme_rate_column[index, 0] = model.mme_rate
            ddr_models.append(
                ddr_channel(config.spec, bandwidth_scale=config.bandwidth_scale)
            )
            lpddr_models.append(
                lpddr_channel(config.spec, bandwidth_scale=config.bandwidth_scale)
            )
        busy = _busy_grids(
            [list(segment_set.tallies) for segment_set in segment_sets],
            ddr_models,
            lpddr_models,
            mme_rate_column,
        )
        results: List[EncoderResult] = []
        for index, (config, options, batch, seq_len, bert_config) in enumerate(
            points
        ):
            segment_set = segment_sets[index]
            result = EncoderResult(name=segment_set.model_name, batch=batch)
            for position, segment_name in enumerate(segment_set.names):
                roofline = self._roofline_at(busy, index, position)
                tally = segment_set.tallies[position]
                result.segments.append(
                    AnalyticSegment(
                        name=segment_name,
                        latency_s=roofline.latency_s,
                        flops=segment_set.flops[position],
                        ddr_bytes=tally.ddr_read_bytes + tally.ddr_write_bytes,
                        lpddr_bytes=tally.lpddr_bytes,
                        uops=0,
                        bottleneck=roofline.bottleneck,
                        bounds_s=dict(roofline.busy_s),
                        utilization=roofline.utilizations(),
                        mapping=segment_set.mappings[position],
                    )
                )
            results.append(result)
        return results

    def gemm_results(
        self,
        points: Sequence[Tuple[XNNConfig, CodegenOptions, int, int, int]],
    ) -> List[AnalyticSegment]:
        """Batched ``xnn_gemm`` evaluation, one :class:`AnalyticSegment` each.

        ``points`` holds ``(config, options, m, k, n)`` tuples.  Same split
        as :meth:`encoder_results`: memoized tallies, vectorized busy times,
        scalar roofline resolution -- every segment equals
        :meth:`AnalyticXNN.run_gemm`'s exactly.
        """
        if not points:
            return []
        count = len(points)
        frozen: List[_FrozenTally] = []
        flops: List[float] = []
        ddr_models: List[MemoryChannelModel] = []
        lpddr_models: List[MemoryChannelModel] = []
        mme_rate_column = np.empty((count, 1))
        for index, (config, options, m, k, n) in enumerate(points):
            model = self._model_for(
                config.spec,
                config.num_mme,
                config.num_mem_c,
                config.mme_tile_shape,
                options,
            )
            tally, layer_flops = self._gemm_tally_for(model, m, k, n)
            frozen.append(tally)
            flops.append(layer_flops)
            mme_rate_column[index, 0] = model.mme_rate
            ddr_models.append(
                ddr_channel(config.spec, bandwidth_scale=config.bandwidth_scale)
            )
            lpddr_models.append(
                lpddr_channel(config.spec, bandwidth_scale=config.bandwidth_scale)
            )
        busy = _busy_grids(
            [[tally] for tally in frozen], ddr_models, lpddr_models, mme_rate_column
        )
        segments: List[AnalyticSegment] = []
        for index, tally in enumerate(frozen):
            roofline = self._roofline_at(busy, index, 0)
            segments.append(
                AnalyticSegment(
                    name="gemm",
                    latency_s=roofline.latency_s,
                    flops=flops[index],
                    ddr_bytes=tally.ddr_read_bytes + tally.ddr_write_bytes,
                    lpddr_bytes=tally.lpddr_bytes,
                    uops=0,
                    bottleneck=roofline.bottleneck,
                    bounds_s=dict(roofline.busy_s),
                    utilization=roofline.utilizations(),
                    mapping=MappingType.TASK_PARALLEL.value,
                )
            )
        return segments


#: the process-wide batch evaluator (its memo is the whole point: later
#: generations and later explorations reuse earlier tallies -- including
#: successive chunk jobs executed by one long-lived work-queue worker,
#: which all funnel through this singleton and so share tallies across
#: chunks exactly as the serial batched path shares them across points).
_BATCH_EVALUATOR: Optional[EncoderBatchEvaluator] = None


def encoder_batch_evaluator() -> EncoderBatchEvaluator:
    """The process-wide :class:`EncoderBatchEvaluator` singleton."""
    global _BATCH_EVALUATOR
    if _BATCH_EVALUATOR is None:
        _BATCH_EVALUATOR = EncoderBatchEvaluator()
    return _BATCH_EVALUATOR
