"""Inter-layer mapping types and their first-order latency estimates.

Fig. 3 of the paper defines four ways to map two dependent layers (repeated
over many independent tasks, e.g. attention heads) onto the accelerator:

* **A -- layer-by-layer**: one task at a time, one layer at a time; the
  intermediate tensor of the current task stays on chip, but each small layer
  under-utilises the compute array.
* **B -- task-by-task**: all tasks' first layers, then all second layers; the
  switching frequency drops (longer steady state) but every intermediate must
  round-trip through off-chip memory.
* **C -- task-parallel**: independent tasks mapped spatially; intermediates
  still go off-chip, utilisation is high.
* **D -- pipeline**: the two dependent layers are mapped spatially and the
  intermediate streams directly from the first to the second; utilisation is
  high and the intermediate never leaves the chip, at the cost of a pipeline
  setup phase.

Table 3 estimates these with a roofline formula for BERT-Large's attention
pair under the VCK190 budget; :func:`estimate_mapping_latency` reproduces that
calculation.  The achievable AIE utilisation per mapping style (64% for a lone
small MM, 96% when both MMs are co-mapped) is a measured property of the
design that the paper feeds into its own estimate; it is exposed here as a
parameter with those defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

from ..hardware.vck190 import VCK190, VCK190Spec
from ..workloads.layers import MatMulLayer

__all__ = [
    "MappingType",
    "MappingEstimate",
    "estimate_mapping_latency",
    "compare_mapping_types",
    "attention_mapping_type",
]


class MappingType(str, Enum):
    """The four inter-layer mapping types of Fig. 3."""

    LAYER_BY_LAYER = "A"
    TASK_BY_TASK = "B"
    TASK_PARALLEL = "C"
    PIPELINE = "D"


#: Does the mapping type keep the intermediate tensor between the two
#: dependent layers on chip?
_INTERMEDIATE_ON_CHIP = {
    MappingType.LAYER_BY_LAYER: True,
    MappingType.TASK_BY_TASK: False,
    MappingType.TASK_PARALLEL: False,
    MappingType.PIPELINE: True,
}

#: Does the mapping type co-map both layers spatially (high utilisation)?
_CO_MAPPED = {
    MappingType.LAYER_BY_LAYER: False,
    MappingType.TASK_BY_TASK: False,
    MappingType.TASK_PARALLEL: True,
    MappingType.PIPELINE: True,
}


@dataclass(frozen=True)
class MappingEstimate:
    """Roofline estimate of one mapping type (one row of Table 3)."""

    mapping: MappingType
    bandwidth_bound_s: float
    compute_bound_s: float
    used_aie_fraction: float
    pipeline_setup_s: float

    @property
    def final_latency_s(self) -> float:
        """max(bandwidth bound, compute bound) plus any pipeline setup."""
        return (
            max(self.bandwidth_bound_s, self.compute_bound_s) + self.pipeline_setup_s
        )

    @property
    def final_latency_ms(self) -> float:
        return self.final_latency_s * 1e3


def attention_mapping_type(pipeline_attention: bool) -> MappingType:
    """The Fig. 3 mapping type the codegen realises for the attention pair.

    With ``pipeline_attention`` the generated program chains MM1 -> softmax ->
    MM2 through two MME groups with the score matrix held on chip -- mapping
    type **D** (pipeline).  Without it, the program runs all heads' MM1s, then
    all MM2s, round-tripping the scores through DDR -- mapping type **B**
    (task-by-task).  The analytic fast-model backend uses this to label its
    attention segments with the mapping the engine would execute.
    """
    return MappingType.PIPELINE if pipeline_attention else MappingType.TASK_BY_TASK


def _pair_traffic_bytes(
    mm1: MatMulLayer, mm2: MatMulLayer, intermediate_on_chip: bool
) -> float:
    """Off-chip bytes moved for the dependent pair under a mapping style."""
    traffic = mm1.lhs_bytes + mm1.rhs_bytes  # inputs of the first MM
    traffic += mm2.rhs_bytes  # second operand of the second MM
    traffic += mm2.out_bytes  # final outputs
    if not intermediate_on_chip:
        traffic += mm1.out_bytes * 2  # store then reload the intermediate
    return float(traffic)


def estimate_mapping_latency(
    mm1: MatMulLayer,
    mm2: MatMulLayer,
    mapping: MappingType,
    spec: VCK190Spec = VCK190,
    single_mm_utilization: float = 0.64,
    co_mapped_utilization: float = 0.96,
    achieved_peak_fraction: float = 0.85,
    pipeline_setup_s: float = 2e-6,
    offchip_bw: Optional[float] = None,
) -> MappingEstimate:
    """Roofline latency estimate for two dependent layers under one mapping.

    Parameters mirror the quantities Table 3 is built from: the fraction of
    the AIE array a lone small MM can keep busy versus two co-mapped MMs, the
    fraction of peak the GEMM kernel achieves, and the aggregate off-chip
    bandwidth.
    """
    if offchip_bw is None:
        offchip_bw = spec.ddr_read_bw + spec.lpddr_read_bw
    on_chip = _INTERMEDIATE_ON_CHIP[mapping]
    co_mapped = _CO_MAPPED[mapping]
    utilization = co_mapped_utilization if co_mapped else single_mm_utilization

    traffic = _pair_traffic_bytes(mm1, mm2, on_chip)
    bandwidth_bound = traffic / offchip_bw

    flops = mm1.flops + mm2.flops
    effective_flops = spec.peak_fp32_flops * utilization * achieved_peak_fraction
    compute_bound = flops / effective_flops

    setup = pipeline_setup_s * (mm1.num if mapping == MappingType.PIPELINE else 0)
    return MappingEstimate(
        mapping=mapping,
        bandwidth_bound_s=bandwidth_bound,
        compute_bound_s=compute_bound,
        used_aie_fraction=utilization,
        pipeline_setup_s=setup,
    )


def compare_mapping_types(
    mm1: MatMulLayer, mm2: MatMulLayer, spec: VCK190Spec = VCK190, **kwargs
) -> Dict[MappingType, MappingEstimate]:
    """Estimate all four mapping types for a dependent layer pair (Table 3)."""
    return {
        mapping: estimate_mapping_latency(mm1, mm2, mapping, spec=spec, **kwargs)
        for mapping in MappingType
    }
