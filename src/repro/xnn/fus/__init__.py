"""Functional units of the RSN-XNN datapath (Fig. 10, Table 2)."""

from .offchip import DDRFU, LPDDRFU, HostMemory
from .scratchpad import MemAFU, MemBFU, MemCFU
from .mesh import MeshFU
from .mme import MMEFU

__all__ = [
    "DDRFU",
    "HostMemory",
    "LPDDRFU",
    "MMEFU",
    "MemAFU",
    "MemBFU",
    "MemCFU",
    "MeshFU",
]
