"""On-chip scratchpad FUs: MemA (LHS), MemB (RHS), MemC (outputs + non-MMs).

Table 2 control planes:

* ``MemA``: matrix size, tile size, srcFU, load data yes/no, send to MME yes/no.
* ``MemB``: matrix size, tile size, load data yes/no, send to MME yes/no,
  transpose input yes/no, load bias yes/no.
* ``MemC``: matrix sizes/tile sizes in both directions, receive from MME
  yes/no, send to MME yes/no, softmax yes/no, gelu yes/no,
  mean/variance/normalization yes/no.

All three are double buffered ("they are double buffered to allow the
overlapping of computation and data movement", Section 4.1): a kernel launch
can *load* into one buffer and *send* the other buffer in parallel, which is
the ping-pong idiom of Fig. 7b and Fig. 11.

One deliberate functional simplification, documented in DESIGN.md: the small
per-layer parameter vectors (bias, LayerNorm gamma/beta) are fetched directly
from host memory inside MemC instead of being streamed through LPDDR/MemB.
Their traffic (a few KB per layer) is negligible next to the feature maps, and
Table 9's latency structure does not depend on it.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ...core import (
    ConfigurationError,
    FunctionalUnit,
    Parallel,
    TileMessage,
    UOp,
    Write,
)
from .offchip import HostMemory

__all__ = [
    "MemAFU",
    "MemBFU",
    "MemCFU",
    "MEMC_COMPUTE_THROUGHPUT",
    "NONMM_FLOPS_PER_ELEMENT",
]

#: sustained FLOP/s of one MemC's non-MM operator pipeline.  Shared with the
#: analytic fast-model backend so both backends charge fused operators at the
#: same rate.
MEMC_COMPUTE_THROUGHPUT = 0.072e12


class _PingPongScratchpad(FunctionalUnit):
    """Shared double-buffered load/send behaviour of MemA and MemB."""

    def __init__(self, name: str, fu_type: str, capacity_bytes: int):
        super().__init__(name, fu_type=fu_type)
        self.capacity_bytes = capacity_bytes
        #: the two buffers; ``None`` until first filled.
        self._ping: Optional[TileMessage] = None
        self._pong: Optional[TileMessage] = None
        #: when True the next load lands in the ping buffer.
        self._recv_to_ping = True

    # -- buffer handling -------------------------------------------------------

    def _store_slot(self, slot: str, tile: TileMessage) -> None:
        if tile.nbytes > self.capacity_bytes:
            raise ConfigurationError(
                f"{self.name}: tile of {tile.nbytes} B exceeds scratchpad capacity "
                f"{self.capacity_bytes} B"
            )
        if slot == "ping":
            self._ping = tile
        else:
            self._pong = tile

    def _read_slot(self, slot: str) -> Optional[TileMessage]:
        return self._ping if slot == "ping" else self._pong

    # -- kernel branches -------------------------------------------------------

    def _load_branch(self, source_port_name: str, slot: str) -> Generator:
        tile = yield self.read_request(source_port_name)
        self._store_slot(slot, tile)
        self.stats.bytes_in += tile.nbytes

    def _send_branch(
        self, dest_port_name: str, slot: str, repeat: int, transform=None
    ) -> Generator:
        tile = self._read_slot(slot)
        if tile is None:
            raise ConfigurationError(
                f"{self.name}: send requested but the send buffer is empty; the uOP "
                "sequence must load a tile before sending it"
            )
        if transform is not None:
            tile = transform(tile)
        for _ in range(repeat):
            yield Write(self.port(dest_port_name), tile)
            self.stats.bytes_out += tile.nbytes

    def _run_load_send(
        self,
        load: bool,
        send: bool,
        source_port: str,
        dest_port: str,
        repeat: int,
        transform=None,
    ) -> Generator:
        """One ping-pong kernel launch (the Fig. 7b idiom).

        The buffers are selected with the *current* flag -- receive into one,
        send from the other -- and the flag flips only when a load happens, so
        the tile loaded by this kernel becomes the send buffer of the next.
        """
        if not load and not send:
            return
        recv_slot = "ping" if self._recv_to_ping else "pong"
        send_slot = "pong" if self._recv_to_ping else "ping"
        if load:
            self._recv_to_ping = not self._recv_to_ping
        branches = []
        if load:
            branches.append(self._load_branch(source_port, recv_slot))
        if send:
            branches.append(self._send_branch(dest_port, send_slot, repeat, transform))
        if len(branches) == 1:
            yield from branches[0]
        else:
            yield Parallel(branches)


class MemAFU(_PingPongScratchpad):
    """LHS scratchpad: buffers activation tiles from DDR and feeds MeshA.

    uOP fields: ``load`` (bool), ``send`` (bool), ``repeat`` (how many times
    the buffered tile is re-sent, for LHS reuse across MME column groups).
    """

    def __init__(self, name: str, capacity_bytes: int = 512 * 1024):
        super().__init__(name, fu_type="MemA", capacity_bytes=capacity_bytes)
        self.add_input("from_ddr")
        self.add_output("to_mesh")

    def kernel(self, uop: UOp) -> Generator:
        yield from self._run_load_send(
            load=bool(uop.get("load", False)),
            send=bool(uop.get("send", False)),
            source_port="from_ddr",
            dest_port="to_mesh",
            repeat=int(uop.get("repeat", 1)),
        )


def _transpose_tile(tile: TileMessage) -> TileMessage:
    """Transpose a tile, preserving only the shape metadata in timing-only mode."""
    if tile.data is not None:
        return tile.map(np.transpose, tag=f"{tile.tag}^T")
    rows, cols = tile.shape
    return TileMessage.placeholder(
        (cols, rows), dtype=tile.dtype, tag=f"{tile.tag}^T", coords=tile.coords
    )


class MemBFU(_PingPongScratchpad):
    """RHS scratchpad: buffers weight tiles from LPDDR (or feature maps from
    DDR) and feeds MeshB; optionally transposes the tile on the way out.

    uOP fields: ``load`` (bool), ``source`` ("lpddr" or "ddr"), ``send``
    (bool), ``transpose`` (bool), ``repeat``.
    """

    def __init__(self, name: str, capacity_bytes: int = 512 * 1024):
        super().__init__(name, fu_type="MemB", capacity_bytes=capacity_bytes)
        self.add_input("from_lpddr")
        self.add_input("from_ddr")
        self.add_output("to_mesh")

    def kernel(self, uop: UOp) -> Generator:
        source = uop.get("source", "lpddr")
        if source not in ("lpddr", "ddr"):
            raise ConfigurationError(f"{self.name}: unknown source {source!r}")
        transform = _transpose_tile if uop.get("transpose", False) else None
        yield from self._run_load_send(
            load=bool(uop.get("load", False)),
            send=bool(uop.get("send", False)),
            source_port=f"from_{source}",
            dest_port="to_mesh",
            repeat=int(uop.get("repeat", 1)),
            transform=transform,
        )


#: approximate FLOPs per element of each non-MM operator, used for timing
#: (by the MemC kernel here and by the analytic backend's MemC tally).
NONMM_FLOPS_PER_ELEMENT = {
    "bias": 1.0,
    "scale": 1.0,
    "layer_add": 1.0,
    "scale_shift": 2.0,
    "softmax": 5.0,
    "gelu": 8.0,
    "mean_var_norm": 8.0,
    "transpose": 0.0,
}


class MemCFU(FunctionalUnit):
    """Output scratchpad: receives MME results, applies fused non-MM operators,
    and forwards the tile off-chip or back into the network for layer chaining.

    uOP fields
    ----------
    ``recv``:
        Read one tile from the attached MME.
    ``ops``:
        Tuple of non-MM operator names applied in order (subset of
        ``bias, layer_add, scale_shift, softmax, gelu, mean_var_norm,
        transpose``).
    ``residual``:
        When true, read a residual tile from the ``from_ddr`` port and add it
        (the "add previous layer" control of Table 2).
    ``bias_tensor`` / ``col0``:
        Host-memory name and column offset of the bias vector for ``bias``.
    ``send_to``:
        ``"ddr"``, ``"mesh_a"``, ``"mesh_b"``, or ``None`` to keep the tile
        buffered for a later uOP.
    """

    def __init__(
        self,
        name: str,
        memory: HostMemory,
        capacity_bytes: int = 1024 * 1024,
        compute_throughput: float = MEMC_COMPUTE_THROUGHPUT,
    ):
        super().__init__(name, fu_type="MemC", compute_throughput=compute_throughput)
        self.memory = memory
        self.capacity_bytes = capacity_bytes
        self.add_input("from_mme")
        self.add_input("from_ddr")
        self.add_output("to_ddr")
        self.add_output("to_mesh_a")
        self.add_output("to_mesh_b")
        #: tile held across kernel launches (state holder).
        self._buffer: Optional[TileMessage] = None

    # ------------------------------------------------------------- operators

    def _apply_ops(self, tile: TileMessage, uop: UOp) -> Generator:
        ops = tuple(uop.get("ops", ()))
        flops = (
            sum(NONMM_FLOPS_PER_ELEMENT.get(op, 1.0) for op in ops)
            * tile.element_count
        )
        if uop.get("residual", False):
            residual = yield self.read_request("from_ddr")
            flops += tile.element_count
            if tile.data is not None and residual.data is not None:
                tile = TileMessage.from_array(
                    tile.data + residual.data,
                    dtype=tile.dtype,
                    tag=tile.tag,
                    coords=tile.coords,
                )
        if flops:
            yield self.charge_compute(flops)
        if tile.data is None:
            self._buffer = tile
            return
        data = tile.data
        for op in ops:
            if op == "bias":
                bias_name = uop.get("bias_tensor")
                if bias_name is not None and self.memory.carry_data:
                    col0 = int(uop.get("col0", 0))
                    bias_vector = self.memory.array(bias_name).reshape(-1)
                    data = data + bias_vector[col0 : col0 + data.shape[1]]
            elif op == "scale":
                data = data * float(uop.get("scale_factor", 1.0))
            elif op == "softmax":
                shifted = data - np.max(data, axis=-1, keepdims=True)
                exp = np.exp(shifted)
                data = exp / np.sum(exp, axis=-1, keepdims=True)
            elif op == "gelu":
                data = (
                    0.5
                    * data
                    * (
                        1.0
                        + np.tanh(np.sqrt(2.0 / np.pi) * (data + 0.044715 * data**3))
                    )
                )
            elif op == "transpose":
                data = data.T
            elif op in ("layer_add", "scale_shift", "mean_var_norm"):
                # LayerNorm spans the full hidden dimension, which is wider than
                # one MemC tile; the executor applies it on the assembled
                # off-chip tensor.  Timing was charged above.
                continue
            else:
                raise ConfigurationError(f"{self.name}: unknown non-MM op {op!r}")
        self._buffer = TileMessage.from_array(
            data, dtype=tile.dtype, tag=tile.tag, coords=tile.coords
        )

    # ----------------------------------------------------------------- kernel

    def kernel(self, uop: UOp) -> Generator:
        if uop.get("recv", False):
            tile = yield self.read_request("from_mme")
            self.stats.bytes_in += tile.nbytes
            if tile.nbytes > self.capacity_bytes:
                raise ConfigurationError(
                    f"{self.name}: tile of {tile.nbytes} B exceeds capacity "
                    f"{self.capacity_bytes} B"
                )
            yield from self._apply_ops(tile, uop)
        send_to = uop.get("send_to")
        if send_to:
            if self._buffer is None:
                raise ConfigurationError(
                    f"{self.name}: send requested but no tile is buffered"
                )
            port = {"ddr": "to_ddr", "mesh_a": "to_mesh_a", "mesh_b": "to_mesh_b"}.get(
                send_to
            )
            if port is None:
                raise ConfigurationError(
                    f"{self.name}: unknown send_to target {send_to!r}"
                )
            yield Write(self.port(port), self._buffer)
            self.stats.bytes_out += self._buffer.nbytes
