"""Mesh FUs: the pure routing nodes of the RSN-XNN network.

MeshA and MeshB "serve purely as communication routers without memory or
computation" (Fig. 16): they fan data in from the scratchpads (or from MemC
FUs when layers are chained) and fan it out to the MME FUs.  Their control
plane is just the routing table for the current dataflow (Table 2: size,
srcFUs, destFUs), which is why "their actions are only set once" in the
Fig. 10 example -- one uOP covers an entire steady state.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, List, Sequence, Tuple

from ...core import ConfigurationError, FunctionalUnit, Parallel, UOp, Write

__all__ = ["MeshFU"]


class MeshFU(FunctionalUnit):
    """A configurable fan-in/fan-out router.

    Two routing modes, selected by the uOP:

    * **broadcast** -- fields ``src`` (input port suffix), ``dests`` (tuple of
      output port suffixes), ``count``: read one message from ``src`` and copy
      it to every destination, ``count`` times.  Used for sharing an LHS tile
      across the MMEs working on different output columns.
    * **scatter** -- field ``routes``: a tuple of ``(src, dest)`` pairs; each
      round reads one message per route and forwards it, ``count`` times.
      Used for giving each MME its own RHS tile (MeshB in Fig. 10).
    """

    def __init__(self, name: str, fu_type: str = "Mesh"):
        super().__init__(name, fu_type=fu_type)

    # Ports are added by the datapath builder (one per connected FU).

    def _in(self, suffix: str):
        return self.port(f"from_{suffix}")

    def _out(self, suffix: str):
        return self.port(f"to_{suffix}")

    def kernel(self, uop: UOp) -> Generator:
        count = int(uop.get("count", 1))
        routes: Sequence[Tuple[str, str]] = tuple(uop.get("routes", ()))
        if routes:
            # Routes with distinct sources use distinct physical streams and
            # proceed in parallel; routes sharing a source stream are served in
            # the order listed (the source can only produce one tile at a time).
            per_source: "OrderedDict[str, List[str]]" = OrderedDict()
            for src, dest in routes:
                per_source.setdefault(src, []).append(dest)
            for _ in range(count):
                yield Parallel([self._route_chain(src, dests)
                                for src, dests in per_source.items()])
            return
        src = uop.get("src")
        dests = tuple(uop.get("dests", ()))
        if not src or not dests:
            raise ConfigurationError(
                f"{self.name}: uOP must provide either routes or src+dests, got {uop!r}"
            )
        read_src = self.read_request(f"from_{src}")
        for _ in range(count):
            message = yield read_src
            self.stats.bytes_in += message.nbytes
            self.stats.bytes_out += message.nbytes * len(dests)
            # A broadcast copies the tile onto every destination's physical
            # stream at the same time.
            yield Parallel([self._forward(dest, message) for dest in dests])

    def _forward(self, dest: str, message) -> Generator:
        yield Write(self._out(dest), message)

    def _route_chain(self, src: str, dests: Sequence[str]) -> Generator:
        """Serve one source stream: forward one tile to each listed destination."""
        read_src = self.read_request(f"from_{src}")
        for dest in dests:
            message = yield read_src
            self.stats.bytes_in += message.nbytes
            self.stats.bytes_out += message.nbytes
            yield Write(self._out(dest), message)
