"""MME FUs: the AI-engine matrix multiplication engines virtualised as FUs.

Each MME FU stands for one group of 64 AIE tiles (Fig. 17).  Its kernel is the
tile-granular analogue of the Compute FU in Fig. 7b: read ``k_steps`` pairs of
LHS/RHS tiles from its input streams, accumulate their products, and write the
completed output tile to its MemC.  The uOPs that drive it are the 4-byte
control words the paper pre-stores in the AIE tiles' local memories; they are
therefore *not* part of the PL-side RSN instruction stream (Section 5.1), and
the executor loads them as local programs.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ...core import ConfigurationError, FunctionalUnit, TileMessage, UOp, Write

__all__ = ["MMEFU"]


class MMEFU(FunctionalUnit):
    """One matrix multiplication engine (a 4x4x4 group of AIE tiles).

    uOP fields
    ----------
    ``k_steps``:
        Number of LHS/RHS tile pairs to read and accumulate before emitting
        the output tile.
    ``emit``:
        Whether to send the accumulated tile to MemC after the last step
        (``True`` for a completed output tile; ``False`` keeps the accumulator
        for the "accumulate along k" control of Table 2).
    ``tag``:
        Label attached to the produced tile (used by traces and stores).
    """

    def __init__(self, name: str, compute_throughput: float, uop_nbytes: int = 4):
        super().__init__(name, fu_type="MME", compute_throughput=compute_throughput)
        self.uop_nbytes = uop_nbytes
        self.add_input("lhs")
        self.add_input("rhs")
        self.add_output("out")
        #: running accumulator preserved across kernels when ``emit`` is False.
        self._accumulator: Optional[np.ndarray] = None
        self._accumulator_shape: Optional[tuple] = None

    def kernel(self, uop: UOp) -> Generator:
        k_steps = int(uop.get("k_steps", 1))
        if k_steps < 1:
            raise ConfigurationError(f"{self.name}: k_steps must be >= 1")
        emit = bool(uop.get("emit", True))
        tag = uop.get("tag", "")

        read_lhs = self.read_request("lhs")
        read_rhs = self.read_request("rhs")
        for _ in range(k_steps):
            lhs = yield read_lhs
            rhs = yield read_rhs
            self.stats.bytes_in += lhs.nbytes + rhs.nbytes
            lhs_rows = lhs.shape[0]
            inner = lhs.shape[1]
            rhs_cols = rhs.shape[1]
            if rhs.shape[0] != inner:
                raise ConfigurationError(
                    f"{self.name}: incompatible tile shapes {lhs.shape} x {rhs.shape}"
                )
            yield self.charge_compute(2.0 * lhs_rows * inner * rhs_cols)
            if lhs.data is not None and rhs.data is not None:
                partial = lhs.data @ rhs.data
                if self._accumulator is None:
                    self._accumulator = partial.astype(np.float32)
                else:
                    self._accumulator = self._accumulator + partial
            self._accumulator_shape = (lhs_rows, rhs_cols)

        if emit:
            if self._accumulator is not None:
                tile = TileMessage.from_array(self._accumulator, tag=tag)
            else:
                tile = TileMessage.placeholder(
                    self._accumulator_shape or (0, 0), tag=tag
                )
            self._accumulator = None
            self._accumulator_shape = None
            yield Write(self.port("out"), tile)
            self.stats.bytes_out += tile.nbytes
