"""Off-chip interface FUs: DDR (feature maps) and LPDDR (weights and biases).

Table 2 gives their control planes:

* ``DDR``: addr, stride size, stride offset, stride count, load yes/no,
  destFU, store yes/no, srcFU.
* ``LPDDR``: addr, stride size, stride offset, stride count, destFU,
  load bias yes/no.

In this simulator an "address" is a named tensor plus a 2-D slice, which keeps
instruction generation readable while still letting the functional mode move
real NumPy data.  The uOP ordering of the DDR FU is exactly what Section 4.4
exposes to software: because the FU executes its uOPs strictly in program
order, the *sequence* of load and store uOPs the code generator emits is the
load/store interleaving on the single DDR channel.
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple

import numpy as np

from ...core import ConfigurationError, Delay, FunctionalUnit, TileMessage, UOp, Write
from ...hardware.memory import MemoryChannelModel

__all__ = ["HostMemory", "DDRFU", "LPDDRFU"]


class HostMemory:
    """Named tensors living in (simulated) off-chip memory.

    ``carry_data=True`` stores real NumPy arrays so the functional outputs can
    be validated; ``carry_data=False`` stores only shapes, which makes long
    timing-only runs cheap while keeping byte accounting identical.
    """

    def __init__(self, carry_data: bool = True, dtype: str = "fp32"):
        self.carry_data = carry_data
        self.dtype = dtype
        self._arrays: Dict[str, np.ndarray] = {}
        self._shapes: Dict[str, Tuple[int, int]] = {}

    # ------------------------------------------------------------ management

    def add(self, name: str, array_or_shape) -> None:
        """Register a tensor, either a real array or a (rows, cols) shape."""
        if isinstance(array_or_shape, np.ndarray):
            self._shapes[name] = tuple(array_or_shape.shape)
            if self.carry_data:
                self._arrays[name] = np.array(
                    array_or_shape, dtype=np.float32, copy=True
                )
        else:
            shape = tuple(int(s) for s in array_or_shape)
            self._shapes[name] = shape
            if self.carry_data:
                self._arrays[name] = np.zeros(shape, dtype=np.float32)

    def allocate(self, name: str, shape: Tuple[int, int]) -> None:
        """Allocate an output/intermediate tensor filled with zeros."""
        self.add(name, shape)

    def __contains__(self, name: str) -> bool:
        return name in self._shapes

    def shape(self, name: str) -> Tuple[int, int]:
        try:
            return self._shapes[name]
        except KeyError:
            raise ConfigurationError(f"host memory has no tensor {name!r}") from None

    def array(self, name: str) -> np.ndarray:
        if not self.carry_data:
            raise ConfigurationError("host memory was created with carry_data=False")
        return self._arrays[name]

    def tensor_names(self):
        return sorted(self._shapes)

    # ---------------------------------------------------------------- slices

    def read_tile(
        self, name: str, row0: int, col0: int, rows: int, cols: int, tag: str = ""
    ) -> TileMessage:
        """Read a 2-D slice as a tile message (placeholder in timing-only mode)."""
        shape = self.shape(name)
        if row0 < 0 or col0 < 0 or row0 + rows > shape[0] or col0 + cols > shape[1]:
            raise ConfigurationError(
                f"read of {name}[{row0}:{row0+rows}, {col0}:{col0+cols}] outside shape {shape}"
            )
        if self.carry_data:
            data = self._arrays[name][row0 : row0 + rows, col0 : col0 + cols]
            return TileMessage.from_array(
                data, dtype=self.dtype, tag=tag, coords=(row0, col0)
            )
        return TileMessage.placeholder(
            (rows, cols), dtype=self.dtype, tag=tag, coords=(row0, col0)
        )

    def write_tile(self, name: str, row0: int, col0: int, message: TileMessage) -> None:
        """Write a tile message back into a tensor (no-op payload when timing-only)."""
        rows, cols = message.shape
        shape = self.shape(name)
        if row0 + rows > shape[0] or col0 + cols > shape[1]:
            raise ConfigurationError(
                f"write of {name}[{row0}:{row0+rows}, {col0}:{col0+cols}] outside shape {shape}"
            )
        if self.carry_data and message.data is not None:
            self._arrays[name][row0 : row0 + rows, col0 : col0 + cols] = message.data


class _OffchipFU(FunctionalUnit):
    """Shared behaviour of the DDR and LPDDR FUs."""

    def __init__(
        self, name: str, fu_type: str, channel: MemoryChannelModel, memory: HostMemory
    ):
        super().__init__(name, fu_type=fu_type)
        self.channel = channel
        self.memory = memory

    # Helpers used by the kernels -------------------------------------------------

    def _load(self, uop: UOp) -> Generator:
        tensor = uop["tensor"]
        row0, col0 = int(uop.get("row0", 0)), int(uop.get("col0", 0))
        rows, cols = int(uop["rows"]), int(uop["cols"])
        strided = bool(uop.get("strided", False))
        tag = uop.get("tag", f"{tensor}[{row0},{col0}]")
        tile = self.memory.read_tile(tensor, row0, col0, rows, cols, tag=tag)
        yield Delay(self.channel.read_time(tile.nbytes, strided=strided))
        self.stats.bytes_in += tile.nbytes
        dest_port = self.port(f"to_{uop['dest']}")
        yield Write(dest_port, tile)

    def _store(self, uop: UOp) -> Generator:
        tile = yield self.read_request(f"from_{uop['src']}")
        strided = bool(uop.get("strided", False))
        yield Delay(self.channel.write_time(tile.nbytes, strided=strided))
        self.stats.bytes_out += tile.nbytes
        tensor = uop.get("tensor")
        if tensor is not None:
            row0, col0 = int(uop.get("row0", 0)), int(uop.get("col0", 0))
            self.memory.write_tile(tensor, row0, col0, tile)


class DDRFU(_OffchipFU):
    """The DDR channel FU: loads and stores feature maps (Fig. 10, Table 2).

    uOP fields
    ----------
    ``load`` / ``store``:
        Exactly one must be true per uOP (a uOP is one transfer direction).
    ``tensor``, ``row0``, ``col0``, ``rows``, ``cols``:
        The off-chip "address": a named tensor and a 2-D slice.
    ``dest`` / ``src``:
        Name of the on-chip FU the data goes to / comes from; the DDR FU has
        one port per connected FU named ``to_<FU>`` / ``from_<FU>``.
    ``strided``:
        Charge the strided-access bandwidth penalty for this transfer.
    """

    def __init__(self, name: str, channel: MemoryChannelModel, memory: HostMemory):
        super().__init__(name, fu_type="DDR", channel=channel, memory=memory)

    def kernel(self, uop: UOp) -> Generator:
        load = bool(uop.get("load", False))
        store = bool(uop.get("store", False))
        if load == store:
            raise ConfigurationError(
                f"{self.name}: uOP must set exactly one of load/store, got {uop!r}"
            )
        if load:
            yield from self._load(uop)
        else:
            yield from self._store(uop)


class LPDDRFU(_OffchipFU):
    """The LPDDR channel FU: loads read-only weights and biases."""

    def __init__(self, name: str, channel: MemoryChannelModel, memory: HostMemory):
        super().__init__(name, fu_type="LPDDR", channel=channel, memory=memory)

    def kernel(self, uop: UOp) -> Generator:
        if not uop.get("load", True):
            raise ConfigurationError(
                f"{self.name}: LPDDR only supports loads, got {uop!r}"
            )
        yield from self._load(uop)
