"""Model segmentation: deciding how layers are grouped onto the datapath.

Section 4.2 describes a three-stage decision process whose first stage is
model segmentation: "Compute-bound layers are segmented individually, whereas
multiple memory-bound layers are grouped together and executed in a pipelined
manner to reduce on-chip data accesses", and additionally layers are grouped
to overlap prolog and epilog phases.

:func:`segment_model` applies those rules to a :class:`ModelSpec`:

* a chain of dependent, memory-bound layers whose intermediate tensor fits in
  the on-chip budget becomes one *pipelined* segment (mapping type D) --
  BERT's attention MM1/MM2 pair is the canonical case;
* every other layer becomes its own *single* segment (all MMEs work on that
  one layer at a time), with prolog/epilog overlap applied between consecutive
  segments by the code generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..hardware.vck190 import VCK190, VCK190Spec
from ..workloads.layers import MatMulLayer, ModelSpec

__all__ = ["SegmentKind", "Segment", "segment_model", "is_memory_bound"]


class SegmentKind(str, Enum):
    SINGLE = "single"          # one layer at a time, all MMEs on it
    PIPELINED = "pipelined"    # dependent layers chained through the network


@dataclass(frozen=True)
class Segment:
    """A group of layers executed as one scheduling unit."""

    name: str
    kind: SegmentKind
    layers: Tuple[MatMulLayer, ...]

    @property
    def flops(self) -> float:
        return sum(layer.flops for layer in self.layers)

    @property
    def intermediate_bytes(self) -> int:
        """Bytes of intermediates kept on chip when the segment is pipelined."""
        if self.kind is not SegmentKind.PIPELINED or len(self.layers) < 2:
            return 0
        return sum(layer.out_bytes // max(layer.num, 1) for layer in self.layers[:-1])


def is_memory_bound(layer: MatMulLayer, spec: VCK190Spec = VCK190,
                    achieved_flops: float = 6.7e12) -> bool:
    """Is the layer limited by off-chip bandwidth rather than compute?

    Compares the layer's arithmetic intensity against the machine balance
    (achieved FLOP/s divided by aggregate off-chip bandwidth), using the same
    formula the roofline analyses and the analytic backend share.
    """
    from ..analysis.roofline import machine_balance
    balance = machine_balance(achieved_flops, spec.observed_offchip_bw)
    return layer.arithmetic_intensity < balance


def _per_instance_intermediate(layer: MatMulLayer) -> int:
    """On-chip bytes needed to hold one instance's output of ``layer``."""
    return layer.m * layer.n * layer.element_bytes


def segment_model(
    model: ModelSpec,
    spec: VCK190Spec = VCK190,
    onchip_budget_bytes: Optional[int] = None,
    achieved_flops: float = 6.7e12,
) -> List[Segment]:
    """Group a model's layers into single and pipelined segments.

    A dependent pair (producer, consumer) is pipelined when both are
    memory-bound and one instance of the producer's output fits in the on-chip
    budget; otherwise layers run as single segments.  This reproduces the
    paper's decisions for BERT-Large: the attention MM1/MM2 pair is pipelined
    (1 MB per head fits), while the feed-forward pair is not (over 25 MB of
    intermediates would be needed).
    """
    if onchip_budget_bytes is None:
        onchip_budget_bytes = spec.onchip_memory_bytes
    by_name: Dict[str, MatMulLayer] = {layer.name: layer for layer in model.layers}
    consumed: set = set()
    segments: List[Segment] = []

    layers = list(model.layers)
    for index, layer in enumerate(layers):
        if layer.name in consumed:
            continue
        # look for a direct consumer that could be pipelined with this layer.
        consumer = None
        for candidate in layers[index + 1:]:
            if layer.name in candidate.depends_on:
                consumer = candidate
                break
        can_pipeline = (
            consumer is not None
            and consumer.name not in consumed
            and is_memory_bound(layer, spec, achieved_flops)
            and is_memory_bound(consumer, spec, achieved_flops)
            and _per_instance_intermediate(layer) <= onchip_budget_bytes
        )
        if can_pipeline:
            pipelined_producer = layer.kept_onchip(out=True)
            pipelined_consumer = consumer.kept_onchip(lhs=True)
            segments.append(Segment(
                name=f"{layer.name}+{consumer.name}",
                kind=SegmentKind.PIPELINED,
                layers=(pipelined_producer, pipelined_consumer),
            ))
            consumed.add(layer.name)
            consumed.add(consumer.name)
        else:
            segments.append(Segment(name=layer.name, kind=SegmentKind.SINGLE,
                                    layers=(layer,)))
            consumed.add(layer.name)
    return segments
