"""RSN-XNN: the transformer-encoder overlay case study (Section 4).

The package mirrors the structure of the paper's Section 4:

* :mod:`repro.xnn.fus` -- the functional units of Fig. 10 / Table 2 (MME,
  MemA/B/C, MeshA/B, DDR, LPDDR) implemented as kernel generators over the
  core engine;
* :mod:`repro.xnn.datapath` -- construction of the RSN-XNN datapath on a
  modelled VCK190 (Section 4.1 / 4.2);
* :mod:`repro.xnn.tiling` -- the output-stationary GEMM tiling of Section 5.3;
* :mod:`repro.xnn.codegen` -- instruction generation for GEMM and attention
  segments with the optimisation knobs of Table 9 (fine-grained load/store
  interleaving, attention pipelining, prolog/epilog overlap);
* :mod:`repro.xnn.mapping` -- the mapping-type analysis of Fig. 3 / Table 3;
* :mod:`repro.xnn.bandwidth` -- the Fig. 12 load/store orderings and the
  Table 11 bandwidth sweep helpers;
* :mod:`repro.xnn.segmentation` -- the model-segmentation decision process of
  Section 4.2;
* :mod:`repro.xnn.partition` -- the multi-chip scale-out axis: contiguous
  partitioning of the encoder's simulation groups over chips, the inter-chip
  link accounting, and the shared ``dse_chiplet`` payload constructor;
* :mod:`repro.xnn.executor` -- the end-to-end runner that turns a
  :class:`~repro.workloads.layers.ModelSpec` into simulated latency,
  utilisation, and (optionally) validated numerics.
"""

from .datapath import XNNConfig, XNNDatapath, build_xnn_datapath
from .tiling import GemmTiling, plan_gemm_tiling
from .codegen import CodegenOptions, ProgramBuilder
from .executor import SegmentResult, EncoderResult, XNNExecutor
from .analytic import AnalyticSegment, AnalyticXNN
from .mapping import (
    MappingType,
    MappingEstimate,
    attention_mapping_type,
    estimate_mapping_latency,
    compare_mapping_types,
)
from .bandwidth import (
    LoadStoreOrdering,
    analytic_bandwidth_sweep,
    bandwidth_sweep_latency,
)
from .segmentation import Segment, SegmentKind, segment_model
from .partition import (
    ChipletMetrics,
    chiplet_metrics,
    chiplet_payload,
    design_cost,
    encoder_boundary_bytes,
    encoder_segment_flops,
    partition_segments,
)

__all__ = [
    "AnalyticSegment",
    "AnalyticXNN",
    "ChipletMetrics",
    "CodegenOptions",
    "EncoderResult",
    "GemmTiling",
    "LoadStoreOrdering",
    "MappingEstimate",
    "MappingType",
    "ProgramBuilder",
    "Segment",
    "SegmentKind",
    "SegmentResult",
    "XNNConfig",
    "XNNDatapath",
    "XNNExecutor",
    "analytic_bandwidth_sweep",
    "attention_mapping_type",
    "bandwidth_sweep_latency",
    "build_xnn_datapath",
    "chiplet_metrics",
    "chiplet_payload",
    "compare_mapping_types",
    "design_cost",
    "encoder_boundary_bytes",
    "encoder_segment_flops",
    "partition_segments",
    "plan_gemm_tiling",
    "segment_model",
]
