"""Multi-chip partitioning of encoder segments and the chiplet payload.

The scale-out axis runs one encoder layer as a *pipeline over chips*: the
three simulation groups (``qkv``, ``attention+dense``, ``ffn``) are split
contiguously across ``num_chips`` devices, and the boundary activations
cross an :class:`~repro.hardware.link.InterChipLink` between consecutive
chips.  This module holds everything both backends and the batched analytic
evaluator share, so that the certified contracts hold *by construction*:

* ``num_chips=1`` points never enter this module -- the runners delegate to
  the single-chip ``dse_encoder`` path verbatim, which is what makes their
  payloads byte-identical.
* For ``num_chips>1``, the partition is chosen from backend-independent
  segment FLOP counts (:func:`encoder_segment_flops`), the link terms are
  identical pure-float arithmetic on both backends, and the only
  backend-dependent inputs are the per-segment latencies -- each of which is
  already a certified lower bound analytic-vs-engine.  Sums and maxima of
  lower bounds are lower bounds, so the chiplet analytic latency inherits
  the contract.  Off-chip traffic is untouched by partitioning (every chip
  keeps its segments' DDR/LPDDR transfers), so byte-identity also carries
  over unchanged.
* :func:`chiplet_payload` is the single payload constructor used by the
  engine scalar runner, the analytic scalar runner, *and* the batched
  evaluator, so the batched path is expression-identical to the scalar one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.roofline import pipeline_roofline
from ..hardware.cost import design_area_luts, design_power_w
from ..hardware.link import InterChipLink
from ..workloads.bert import BERT_LARGE, BertConfig, bert_large_encoder
from .datapath import XNNConfig
from .fus.scratchpad import MEMC_COMPUTE_THROUGHPUT

__all__ = [
    "ENCODER_SEGMENT_NAMES",
    "ChipletMetrics",
    "chiplet_metrics",
    "chiplet_payload",
    "design_cost",
    "encoder_boundary_bytes",
    "encoder_segment_flops",
    "partition_segments",
]

_ELEMENT_BYTES = 4  # fp32 activations, matching the rest of the stack

#: the encoder's simulation groups, in execution order (the unit of
#: partitioning: chips own contiguous runs of these).
ENCODER_SEGMENT_NAMES = ("qkv", "attention+dense", "ffn")


def encoder_boundary_bytes(
    batch: int, seq_len: int, config: BertConfig = BERT_LARGE
) -> Tuple[int, ...]:
    """Activation bytes crossing each segment boundary, in execution order.

    Backend-independent by construction: the tensors that cross a boundary
    are fixed by the workload shape, not by tiling or simulation.  Boundary
    0 (``qkv`` -> ``attention+dense``) carries the Q, K and V projections;
    boundary 1 (``attention+dense`` -> ``ffn``) carries one hidden-state
    tensor.
    """
    if batch <= 0 or seq_len <= 0:
        raise ValueError("batch and seq_len must be positive")
    activation = batch * seq_len * config.hidden * _ELEMENT_BYTES
    return (3 * activation, activation)


def encoder_segment_flops(
    batch: int, seq_len: int, config: BertConfig = BERT_LARGE
) -> Tuple[float, ...]:
    """FLOPs of each simulation group, grouped exactly like the executors.

    Used to *choose* the partition, so it must be identical for both
    backends -- it therefore derives from the workload's layer inventory
    alone, never from a simulation result.
    """
    spec = bert_large_encoder(batch=batch, seq_len=seq_len, config=config)
    layer = {lyr.name: lyr for lyr in spec.layers}
    qkv = sum(layer[name].flops for name in ("query", "key", "value"))
    attention = (
        layer["attention_mm1"].flops
        + layer["attention_mm2"].flops
        + layer["dense"].flops
    )
    ffn = layer["ffn_mm1"].flops + layer["ffn_mm2"].flops
    return (qkv, attention, ffn)


def partition_segments(
    segment_flops: Sequence[float], num_chips: int
) -> Tuple[int, ...]:
    """Contiguous partition of segments over chips, balancing FLOPs.

    Returns the cut positions: a strictly increasing tuple of indices in
    ``1..len(segment_flops)-1``, where cut ``c`` means "chip boundary before
    segment ``c``".  ``num_chips=1`` returns ``()``.  The partition minimises
    the maximum per-chip FLOP load; ties resolve to the lexicographically
    smallest cut tuple, so the choice is deterministic and shared by every
    evaluation path.
    """
    count = len(segment_flops)
    if num_chips < 1:
        raise ValueError("num_chips must be >= 1")
    if num_chips > count:
        raise ValueError(
            f"cannot split {count} segments across {num_chips} chips; "
            "every chip needs at least one segment"
        )
    best_cuts: Tuple[int, ...] = ()
    best_load = float("inf")
    for cuts in itertools.combinations(range(1, count), num_chips - 1):
        edges = (0,) + cuts + (count,)
        load = max(
            sum(segment_flops[start:end]) for start, end in zip(edges, edges[1:])
        )
        if load < best_load:
            best_load = load
            best_cuts = cuts
    return best_cuts


@dataclass(frozen=True)
class ChipletMetrics:
    """The latency-side numbers of one partitioned multi-chip evaluation."""

    #: end-to-end latency of one task: all segments serial + link transfers.
    latency_s: float
    #: total bytes crossing inter-chip links per task.
    link_bytes: int
    #: total link transfer time per task (latency + serialization + wire).
    link_s: float
    #: steady-state initiation interval: busiest pipeline stage (chip or link).
    max_stage_s: float
    #: per-stage busy times (``chip0``, ``link0``, ``chip1``, ...).
    stage_bounds_s: Dict[str, float]


def chiplet_metrics(
    segment_latency_s: Sequence[float],
    cuts: Sequence[int],
    boundary_bytes: Sequence[int],
    link: InterChipLink,
) -> ChipletMetrics:
    """Combine per-segment latencies and link costs into chiplet metrics.

    Pure float arithmetic over the inputs -- no simulation, no NumPy -- so
    every evaluation path that feeds it equal inputs gets bit-equal outputs.
    The end-to-end latency folds segments left to right from ``0.0`` (the
    same fold as ``EncoderResult.latency_s``) and adds each cut's full
    transfer time; the steady-state bound treats each chip *and each link*
    as one contended pipeline resource.
    """
    count = len(segment_latency_s)
    link_bytes = 0
    link_s = 0.0
    link_busy: List[float] = []
    for cut in cuts:
        nbytes = boundary_bytes[cut - 1]
        link_bytes += nbytes
        link_s += link.transfer_time(nbytes)
        link_busy.append(link.occupancy_time(nbytes))
    latency_s = 0.0
    for segment_latency in segment_latency_s:
        latency_s += segment_latency
    latency_s += link_s
    edges = (0,) + tuple(cuts) + (count,)
    chip_busy: List[float] = []
    for start, end in zip(edges, edges[1:]):
        busy = 0.0
        for segment_latency in segment_latency_s[start:end]:
            busy += segment_latency
        chip_busy.append(busy)
    roofline = pipeline_roofline(chip_busy, link_busy)
    return ChipletMetrics(
        latency_s=latency_s,
        link_bytes=link_bytes,
        link_s=link_s,
        max_stage_s=roofline.latency_s,
        stage_bounds_s=dict(roofline.busy_s),
    )


def design_cost(
    config: XNNConfig,
    per_chip_peak_flops: float,
    num_chips: int = 1,
    link: Optional[InterChipLink] = None,
) -> Tuple[float, float]:
    """``(power_w, area_luts)`` of one design point.

    The single adapter from an :class:`XNNConfig` to the scalar cost models
    in :mod:`repro.hardware.cost`, shared by the scalar runner payloads and
    the batched evaluator so the cost keys cannot drift between paths.
    """
    scratchpad_mb = (
        config.num_mem_a * config.mem_a_bytes
        + config.num_mem_b * config.mem_b_bytes
        + config.num_mem_c * config.mem_c_bytes
    ) / float(1 << 20)
    offchip_gbs = (
        (
            config.spec.ddr_read_bw
            + config.spec.ddr_write_bw
            + config.spec.lpddr_read_bw
        )
        * config.bandwidth_scale
        / 1e9
    )
    power_w = design_power_w(
        num_mme=config.num_mme,
        num_mem_c=config.num_mem_c,
        peak_tflops=per_chip_peak_flops / 1e12,
        memc_tflops=config.num_mem_c * (MEMC_COMPUTE_THROUGHPUT / 1e12),
        scratchpad_mb=scratchpad_mb,
        offchip_gbs=offchip_gbs,
        num_chips=num_chips,
        link=link,
    )
    area_luts = design_area_luts(config.num_mme, config.num_mem_c, num_chips=num_chips)
    return power_w, area_luts


def chiplet_payload(
    *,
    segment_latency_s: Sequence[float],
    flops: float,
    ddr_bytes: int,
    lpddr_bytes: int,
    batch: int,
    seq_len: int,
    encoder: BertConfig,
    config: XNNConfig,
    per_chip_peak_flops: float,
    num_chips: int,
    link: InterChipLink,
) -> Dict[str, Any]:
    """The ``dse_chiplet`` payload for a ``num_chips>1`` design point.

    Single payload constructor for all three evaluation paths (engine
    scalar, analytic scalar, batched analytic): they differ only in where
    ``segment_latency_s`` / ``flops`` / traffic come from.  The payload is a
    superset of the ``dse_encoder`` payload -- same thirteen keys computed
    the same way (with the chiplet end-to-end latency substituted), plus the
    multi-chip diagnostics.
    """
    segment_flops = encoder_segment_flops(batch=batch, seq_len=seq_len, config=encoder)
    if len(segment_flops) != len(segment_latency_s):
        raise ValueError(
            f"{len(segment_latency_s)} segment latencies for "
            f"{len(segment_flops)} encoder segments"
        )
    cuts = partition_segments(segment_flops, num_chips)
    boundaries = encoder_boundary_bytes(batch=batch, seq_len=seq_len, config=encoder)
    metrics = chiplet_metrics(segment_latency_s, cuts, boundaries, link)
    latency_s = metrics.latency_s
    peak_flops = num_chips * per_chip_peak_flops
    achieved = (flops / latency_s / 1e12) if latency_s else 0.0
    utilization = (flops / latency_s / peak_flops) if latency_s else 0.0
    pipeline_tasks = (batch / metrics.max_stage_s) if metrics.max_stage_s else 0.0
    power_w, area_luts = design_cost(
        config, per_chip_peak_flops, num_chips=num_chips, link=link
    )
    return {
        "latency_s": latency_s,
        "latency_ms": latency_s * 1e3,
        "flops": flops,
        "ddr_bytes": ddr_bytes,
        "lpddr_bytes": lpddr_bytes,
        "offchip_bytes": ddr_bytes + lpddr_bytes,
        "achieved_tflops": achieved,
        "utilization": utilization,
        "num_mme": config.num_mme,
        "pipeline_tasks_per_s": pipeline_tasks,
        "power_w": power_w,
        "area_luts": area_luts,
        "energy_j": power_w * latency_s,
        "num_chips": num_chips,
        "cuts": list(cuts),
        "link_bytes": metrics.link_bytes,
        "link_s": metrics.link_s,
        "max_stage_s": metrics.max_stage_s,
        "stage_bounds_s": dict(metrics.stage_bounds_s),
    }
