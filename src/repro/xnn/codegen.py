"""Instruction generation for RSN-XNN (Section 4.1, 4.3, 4.4).

:class:`ProgramBuilder` turns layers (GEMMs with fused non-MM operators, and
attention blocks) into the per-FU uOP sequences that drive the simulated
datapath, and into RSN instruction packets for the code-size analysis of
Fig. 9.  The three optimisation knobs of Table 9 are explicit options:

* ``interleave_load_store`` -- the fine-grained DDR load/store ordering of
  Fig. 12: output stores of one output tile are drained during the load gaps
  of the next tile instead of strictly after it ("BW Optimized").
* ``pipeline_attention`` -- execute the two attention MMs of each head as a
  chained path through two MME groups with the softmax fused in MemC, instead
  of storing the score matrix off-chip between them ("Multi MMs together").
* ``overlap_prolog_epilog`` -- hold back the stores of a layer's last output
  tile and drain them during the first loads of the *next* layer.

The builder is the software side of the RSN contract: it is responsible for
making every producer's send count match the consumers' receive counts
(Section 3.1); the FU kernels simply obey their uOPs.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import ExitUOp, InstructionPacket, MOp, RSNProgram, UOp
from ..workloads.layers import FusedOp, MatMulLayer
from .datapath import XNNDatapath
from .tiling import GemmTiling, plan_gemm_tiling

__all__ = ["CodegenOptions", "ProgramBuilder"]


#: encoded uOP sizes per FU type, in bytes.  Off-chip FUs need full addressing
#: information; on-chip stream FUs need only a few flags and counts (this is
#: the asymmetry behind Fig. 9).
UOP_NBYTES = {
    "DDR": 12,
    "LPDDR": 10,
    "MemA": 4,
    "MemB": 5,
    "MemC": 6,
    "MeshA": 6,
    "MeshB": 6,
    "MME": 4,
}

#: mapping from workload-level fused ops to the MemC operator names.
_FUSED_TO_MEMC = {
    FusedOp.BIAS: "bias",
    FusedOp.SOFTMAX: "softmax",
    FusedOp.GELU: "gelu",
    FusedOp.TRANSPOSE: "transpose",
    FusedOp.LAYER_ADD: "layer_add",
    FusedOp.SCALE_SHIFT: "scale_shift",
    FusedOp.MEAN_VAR_NORM: "mean_var_norm",
}


@dataclass(frozen=True)
class CodegenOptions:
    """Optimisation and tiling knobs for instruction generation.

    These are exactly the software-side axes a design-space exploration can
    mutate (:mod:`repro.explore`), so construction validates the tiling knobs
    up front: a non-positive tile extent would otherwise send the tiler into
    an infinite split loop long after the bad value was introduced.
    """

    interleave_load_store: bool = True
    pipeline_attention: bool = True
    overlap_prolog_epilog: bool = True
    tile_m: int = 768
    tile_k: int = 128
    super_n: int = 1024

    def __post_init__(self) -> None:
        for knob in ("tile_m", "tile_k", "super_n"):
            value = getattr(self, knob)
            if not isinstance(value, int) or value < 1:
                raise ValueError(
                    f"CodegenOptions.{knob} must be a positive integer, got {value!r}"
                )

    @classmethod
    def baseline(cls) -> "CodegenOptions":
        """The layer-serial overlay style of Table 9's "No Optimize" column."""
        return cls(
            interleave_load_store=False,
            pipeline_attention=False,
            overlap_prolog_epilog=False,
        )

    @classmethod
    def all_optimizations(cls) -> "CodegenOptions":
        return cls()

    @classmethod
    def with_overrides(cls, **overrides) -> "CodegenOptions":
        """Build options from keyword overrides, rejecting unknown knobs.

        The design-space explorer feeds axis assignments through this hook;
        a typo'd axis name must fail loudly here rather than silently leave
        the default in place.
        """
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ValueError(
                f"unknown codegen option(s) {unknown}; valid: {sorted(valid)}"
            )
        return cls(**overrides)


class ProgramBuilder:
    """Generates per-FU uOP sequences and RSN packets for one program.

    Typical use::

        builder = ProgramBuilder(xnn, options)
        builder.add_gemm_layer(layer, lhs="input", rhs="wq", out="query", ...)
        builder.add_attention(...)
        builder.finalize()
        builder.load_programs()          # pre-store uOPs into the datapath
        program = builder.build_rsn_program()   # packets, for Fig. 9
    """

    def __init__(self, xnn: XNNDatapath, options: Optional[CodegenOptions] = None):
        self.xnn = xnn
        self.options = options or CodegenOptions()
        self._uops: "OrderedDict[str, List[UOp]]" = OrderedDict(
            (name, []) for name in xnn.datapath.fus)
        #: DDR transfer groups awaiting scheduling: each entry is
        #: ``{"loads": [...], "stores": [...]}`` for one output tile / head.
        self._ddr_groups: List[Dict[str, List[UOp]]] = []
        #: stores of the previous layer's last group, held back for
        #: prolog/epilog overlap across layers.
        self._held_stores: List[UOp] = []
        self._finalized = False
        self._mem_a_cursor = 0
        self._mem_b_cursor = 0

    # ------------------------------------------------------------ primitives

    def _uop(self, fu_type: str, **fields) -> UOp:
        return UOp(opcode=fu_type, fields=fields, nbytes=UOP_NBYTES.get(fu_type, 4))

    def _emit(self, fu_name: str, uop: UOp) -> None:
        if fu_name not in self._uops:
            raise KeyError(f"unknown FU {fu_name!r} in datapath")
        self._uops[fu_name].append(uop)

    def _next_mem_a(self) -> str:
        name = self.xnn.mem_a_names[self._mem_a_cursor % len(self.xnn.mem_a_names)]
        self._mem_a_cursor += 1
        return name

    def _ddr_load(
        self,
        tensor: str,
        row0: int,
        col0: int,
        rows: int,
        cols: int,
        dest: str,
        strided: bool = False,
    ) -> UOp:
        return self._uop(
            "DDR",
            load=True,
            tensor=tensor,
            row0=row0,
            col0=col0,
            rows=rows,
            cols=cols,
            dest=dest,
            strided=strided,
        )

    def _ddr_store(
        self,
        tensor: str,
        row0: int,
        col0: int,
        rows: int,
        cols: int,
        src: str,
        strided: bool = False,
    ) -> UOp:
        return self._uop(
            "DDR",
            store=True,
            tensor=tensor,
            row0=row0,
            col0=col0,
            rows=rows,
            cols=cols,
            src=src,
            strided=strided,
        )

    # ---------------------------------------------------- DDR order scheduling

    def _push_group(self, loads: List[UOp], stores: List[UOp]) -> None:
        self._ddr_groups.append({"loads": loads, "stores": stores})

    @staticmethod
    def _interleave(primary: List[UOp], secondary: List[UOp]) -> List[UOp]:
        """Spread ``secondary`` uOPs evenly between ``primary`` uOPs."""
        if not primary:
            return list(secondary)
        if not secondary:
            return list(primary)
        merged: List[UOp] = []
        ratio = len(primary) / (len(secondary) + 1)
        next_insert = ratio
        pending = list(secondary)
        taken = 0
        for index, uop in enumerate(primary, start=1):
            merged.append(uop)
            while taken < len(pending) and index >= next_insert:
                merged.append(pending[taken])
                taken += 1
                next_insert += ratio
        merged.extend(pending[taken:])
        return merged

    @staticmethod
    def _transfers_conflict(store: UOp, load: UOp) -> bool:
        """True when a pending store writes a region a later load reads.

        This is the compile-time dependence check that lets the code generator
        reorder loads ahead of stores safely (Section 3.2: the order of
        execution and data dependencies is known at compile time).
        """
        if store.get("tensor") != load.get("tensor"):
            return False
        store_r0, store_c0 = int(store.get("row0", 0)), int(store.get("col0", 0))
        store_r1 = store_r0 + int(store.get("rows", 0))
        store_c1 = store_c0 + int(store.get("cols", 0))
        load_r0, load_c0 = int(load.get("row0", 0)), int(load.get("col0", 0))
        load_r1 = load_r0 + int(load.get("rows", 0))
        load_c1 = load_c0 + int(load.get("cols", 0))
        return not (store_r1 <= load_r0 or load_r1 <= store_r0
                    or store_c1 <= load_c0 or load_c1 <= store_c0)

    def _flush_ddr_groups(self) -> None:
        """Lower the collected transfer groups into the DDR FU's uOP sequence."""
        groups = self._ddr_groups
        self._ddr_groups = []
        if not groups:
            return
        interleave = self.options.interleave_load_store
        overlap = self.options.overlap_prolog_epilog and interleave
        sequence: List[UOp] = []
        previous_stores: List[UOp] = list(self._held_stores)
        self._held_stores = []
        for group in groups:
            loads = group["loads"]
            if interleave:
                # Stores whose data a load in this group depends on must retire
                # before those loads; the rest drain inside the load gaps.
                conflicting = [
                    s
                    for s in previous_stores
                    if any(self._transfers_conflict(s, load) for load in loads)
                ]
                safe = [s for s in previous_stores if s not in conflicting]
                sequence.extend(conflicting)
                sequence.extend(self._interleave(loads, safe))
            else:
                sequence.extend(previous_stores)
                sequence.extend(loads)
            previous_stores = group["stores"]
        if overlap:
            # Hold the final stores back so the next layer's loads can hide them.
            self._held_stores = previous_stores
        else:
            sequence.extend(previous_stores)
        for uop in sequence:
            self._emit("DDR", uop)

    # ----------------------------------------------------------- GEMM layers

    def add_gemm_layer(
        self,
        layer: MatMulLayer,
        lhs: str,
        rhs: str,
        out: str,
        bias: Optional[str] = None,
        residual: Optional[str] = None,
        label: Optional[str] = None,
    ) -> GemmTiling:
        """Emit instructions for one weight-stationary-off-chip GEMM layer.

        ``lhs``/``rhs``/``out`` are host-memory tensor names; the RHS is loaded
        from LPDDR (it is a weight matrix -- feature-map RHS operands are the
        attention case, handled by :meth:`add_attention`).
        """
        if layer.num != 1:
            raise ValueError(
                f"layer {layer.name!r} has num={layer.num}; multi-instance layers are "
                "attention-style and must use add_attention()"
            )
        label = label or layer.name
        options = self.options
        tiling = plan_gemm_tiling(
            layer.m,
            layer.k,
            layer.n,
            num_mme=self.xnn.config.num_mme,
            tile_m=options.tile_m,
            tile_k=options.tile_k,
            super_n=options.super_n,
        )
        ops_out = tuple(
            _FUSED_TO_MEMC[op]
            for op in layer.fused_ops
            if op in _FUSED_TO_MEMC and op != FusedOp.SOFTMAX
        )
        mem_a = self._next_mem_a()
        mem_b_names = self.xnn.mem_b_names
        mme_names = self.xnn.mme_names

        for m_block in tiling.m_blocks:
            for n_index, n_super in enumerate(tiling.n_super_blocks):
                columns = tiling.mme_columns[n_index]
                active = [(g, columns[g]) for g in range(len(columns))]
                k_steps = tiling.k_steps

                # -- DDR loads (LHS + residual) and stores for this output tile.
                loads = [
                    self._ddr_load(
                        lhs, m_block.start, kb.start, m_block.size, kb.size, dest=mem_a
                    )
                    for kb in tiling.k_blocks
                ]
                if residual is not None:
                    loads.extend(
                        self._ddr_load(
                            residual,
                            m_block.start,
                            col.start,
                            m_block.size,
                            col.size,
                            dest=self.xnn.mem_c_names[g],
                        )
                        for g, col in active
                    )
                stores = [
                    self._ddr_store(
                        out,
                        m_block.start,
                        col.start,
                        m_block.size,
                        col.size,
                        src=self.xnn.mem_c_names[g],
                    )
                    for g, col in active
                ]
                self._push_group(loads, stores)

                # -- LPDDR weight loads, one chunk per (k step, active MME).
                for kb in tiling.k_blocks:
                    for g, col in active:
                        dest = mem_b_names[g % len(mem_b_names)]
                        self._emit(
                            "LPDDR",
                            self._uop(
                                "LPDDR",
                                load=True,
                                tensor=rhs,
                                row0=kb.start,
                                col0=col.start,
                                rows=kb.size,
                                cols=col.size,
                                dest=dest,
                            ),
                        )

                # -- MemA ping-pong: prolog load, steady load+send, epilog send.
                self._emit(mem_a, self._uop("MemA", load=True, send=False))
                for _ in range(k_steps - 1):
                    self._emit(mem_a, self._uop("MemA", load=True, send=True))
                self._emit(mem_a, self._uop("MemA", load=False, send=True))

                # -- MemB ping-pong per scratchpad (serves its share of chunks).
                for b_index, mem_b in enumerate(mem_b_names):
                    owned = [g for g, _ in active if g % len(mem_b_names) == b_index]
                    chunk_count = k_steps * len(owned)
                    if not chunk_count:
                        continue
                    self._emit(
                        mem_b, self._uop("MemB", load=True, send=False, source="lpddr")
                    )
                    for _ in range(chunk_count - 1):
                        self._emit(
                            mem_b,
                            self._uop("MemB", load=True, send=True, source="lpddr"),
                        )
                    self._emit(
                        mem_b, self._uop("MemB", load=False, send=True, source="lpddr")
                    )

                # -- Mesh routing for the whole output tile.
                self._emit(
                    "MeshA",
                    self._uop(
                        "MeshA",
                        src=mem_a,
                        dests=tuple(mme_names[g] for g, _ in active),
                        count=k_steps,
                    ),
                )
                self._emit(
                    "MeshB",
                    self._uop(
                        "MeshB",
                        routes=tuple(
                            (mem_b_names[g % len(mem_b_names)], mme_names[g])
                            for g, _ in active
                        ),
                        count=k_steps,
                    ),
                )

                # -- Compute and post-processing.
                for g, col in active:
                    self._emit(
                        mme_names[g],
                        self._uop(
                            "MME",
                            k_steps=k_steps,
                            emit=True,
                            tag=f"{label}[{m_block.start},{col.start}]",
                        ),
                    )
                    self._emit(
                        self.xnn.mem_c_names[g],
                        self._uop(
                            "MemC",
                            recv=True,
                            ops=ops_out,
                            residual=residual is not None,
                            bias_tensor=bias,
                            col0=col.start,
                            send_to="ddr",
                        ),
                    )
        self._flush_ddr_groups()
        return tiling

    # ------------------------------------------------------------- attention

    def add_attention(
        self,
        seq_len: int,
        head_dim: int,
        num_heads: int,
        heads_per_sample: int,
        query: str,
        key: str,
        value: str,
        out: str,
        scores_scratch: str = "attention_scores",
        label: str = "attention",
    ) -> None:
        """Emit instructions for the attention MM1 -> softmax -> MM2 chain.

        With ``pipeline_attention`` the score matrix of each head stays on
        chip: MM1 runs on one MME group, MemC applies scale+softmax and feeds
        the result straight back through MeshA as the LHS of MM2 on a second
        MME group.  Without it, the scores are stored to (and re-loaded from)
        the ``scores_scratch`` DDR tensor, which is the layer-serial behaviour
        the paper measures an 8.5x penalty for.
        """
        if self.options.pipeline_attention:
            self._add_attention_pipelined(
                seq_len,
                head_dim,
                num_heads,
                heads_per_sample,
                query,
                key,
                value,
                out,
                label,
            )
        else:
            self._add_attention_serial(
                seq_len,
                head_dim,
                num_heads,
                heads_per_sample,
                query,
                key,
                value,
                out,
                scores_scratch,
                label,
            )

    def _head_slices(
        self, head: int, heads_per_sample: int, seq_len: int, head_dim: int
    ) -> Tuple[int, int]:
        sample = head // heads_per_sample
        head_in_sample = head % heads_per_sample
        return sample * seq_len, head_in_sample * head_dim

    def _add_attention_pipelined(
        self,
        seq_len,
        head_dim,
        num_heads,
        heads_per_sample,
        query,
        key,
        value,
        out,
        label,
    ) -> None:
        """Heads are processed in groups of ``num_mme // 2``.

        Within one group, head ``i`` runs its score MM on MM1 engine ``i`` and
        its context MM on MM2 engine ``i``; the Mesh FUs carry all of a
        group's transfers as parallel routes, so the heads of a group proceed
        concurrently and only groups are ordered.
        """
        num_mme = self.xnn.config.num_mme
        half = max(1, num_mme // 2)
        mm1_engines = list(range(half))
        mm2_engines = list(range(half, min(num_mme, 2 * half))) or mm1_engines
        mem_a_names = self.xnn.mem_a_names
        mem_b_names = self.xnn.mem_b_names
        scale = 1.0 / float(head_dim) ** 0.5

        for group_start in range(0, num_heads, half):
            heads = list(range(group_start, min(group_start + half, num_heads)))
            placements = []
            for slot, head in enumerate(heads):
                row0, col0 = self._head_slices(
                    head, heads_per_sample, seq_len, head_dim
                )
                placements.append(
                    {
                        "head": head,
                        "row0": row0,
                        "col0": col0,
                        "mme1": self.xnn.mme_names[
                            mm1_engines[slot % len(mm1_engines)]
                        ],
                        "mme2": self.xnn.mme_names[
                            mm2_engines[slot % len(mm2_engines)]
                        ],
                        "memc1": self.xnn.mem_c_names[
                            mm1_engines[slot % len(mm1_engines)]
                        ],
                        "memc2": self.xnn.mem_c_names[
                            mm2_engines[slot % len(mm2_engines)]
                        ],
                        "mem_a": mem_a_names[slot % len(mem_a_names)],
                        "mem_b": mem_b_names[slot % len(mem_b_names)],
                    }
                )

            # Off-chip traffic: one transfer group per head *group*, because the
            # group's Mesh routes need every head's operands before any of the
            # group's results exist -- interleaving a store of this group into
            # its own loads would create a circular wait.  The scheduler still
            # drains the previous group's stores inside this group's load gaps.
            group_loads: List[UOp] = []
            group_stores: List[UOp] = []
            for tensor, dest_key in (
                (query, "mem_a"),
                (key, "mem_b"),
                (value, "mem_b"),
            ):
                for p in placements:
                    group_loads.append(
                        self._ddr_load(
                            tensor,
                            p["row0"],
                            p["col0"],
                            seq_len,
                            head_dim,
                            dest=p[dest_key],
                        )
                    )
            for p in placements:
                group_stores.append(
                    self._ddr_store(
                        out, p["row0"], p["col0"], seq_len, head_dim, src=p["memc2"]
                    )
                )
            self._push_group(group_loads, group_stores)

            # Scratchpad traffic, in the same order the DDR delivers the tiles:
            # every MemB first buffers and sends its head's K tile (transposed),
            # then its head's V tile.
            for p in placements:
                self._emit(p["mem_a"], self._uop("MemA", load=True, send=False))
                self._emit(p["mem_a"], self._uop("MemA", load=False, send=True))
            for p in placements:
                self._emit(
                    p["mem_b"], self._uop("MemB", load=True, send=False, source="ddr")
                )
                self._emit(
                    p["mem_b"],
                    self._uop(
                        "MemB", load=False, send=True, source="ddr", transpose=True
                    ),
                )
            for p in placements:
                self._emit(
                    p["mem_b"], self._uop("MemB", load=True, send=False, source="ddr")
                )
                self._emit(
                    p["mem_b"], self._uop("MemB", load=False, send=True, source="ddr")
                )

            # Mesh routing: one parallel-route uOP per stage for the whole group.
            self._emit(
                "MeshA",
                self._uop(
                    "MeshA",
                    routes=tuple((p["mem_a"], p["mme1"]) for p in placements),
                    count=1,
                ),
            )
            self._emit(
                "MeshB",
                self._uop(
                    "MeshB",
                    routes=tuple((p["mem_b"], p["mme1"]) for p in placements),
                    count=1,
                ),
            )
            self._emit(
                "MeshA",
                self._uop(
                    "MeshA",
                    routes=tuple((p["memc1"], p["mme2"]) for p in placements),
                    count=1,
                ),
            )
            self._emit(
                "MeshB",
                self._uop(
                    "MeshB",
                    routes=tuple((p["mem_b"], p["mme2"]) for p in placements),
                    count=1,
                ),
            )

            # Compute and post-processing per head.
            for p in placements:
                self._emit(
                    p["mme1"],
                    self._uop(
                        "MME", k_steps=1, emit=True, tag=f"{label}-scores[{p['head']}]"
                    ),
                )
                self._emit(
                    p["memc1"],
                    self._uop(
                        "MemC",
                        recv=True,
                        ops=("scale", "softmax"),
                        scale_factor=scale,
                        send_to="mesh_a",
                    ),
                )
                self._emit(
                    p["mme2"],
                    self._uop(
                        "MME", k_steps=1, emit=True, tag=f"{label}-context[{p['head']}]"
                    ),
                )
                self._emit(
                    p["memc2"], self._uop("MemC", recv=True, ops=(), send_to="ddr")
                )
        self._flush_ddr_groups()

    def _add_attention_serial(
        self,
        seq_len,
        head_dim,
        num_heads,
        heads_per_sample,
        query,
        key,
        value,
        out,
        scores_scratch,
        label,
    ) -> None:
        """Layer-serial attention: score matrices round-trip through DDR."""
        if scores_scratch not in self.xnn.memory:
            self.xnn.memory.allocate(scores_scratch, (num_heads * seq_len, seq_len))
        num_mme = self.xnn.config.num_mme
        mem_b_names = self.xnn.mem_b_names
        scale = 1.0 / float(head_dim) ** 0.5

        # Phase 1: all heads' score matrices (MM1 + softmax), stored off-chip.
        for head in range(num_heads):
            row0, col0 = self._head_slices(head, heads_per_sample, seq_len, head_dim)
            g = head % num_mme
            mme, memc = self.xnn.mme_names[g], self.xnn.mem_c_names[g]
            mem_a = self.xnn.mem_a_names[head % len(self.xnn.mem_a_names)]
            mem_b = mem_b_names[head % len(mem_b_names)]
            loads = [
                self._ddr_load(query, row0, col0, seq_len, head_dim, dest=mem_a),
                self._ddr_load(key, row0, col0, seq_len, head_dim, dest=mem_b),
            ]
            stores = [
                self._ddr_store(
                    scores_scratch, head * seq_len, 0, seq_len, seq_len, src=memc
                )
            ]
            self._push_group(loads, stores)
            self._emit(mem_a, self._uop("MemA", load=True, send=False))
            self._emit(mem_a, self._uop("MemA", load=False, send=True))
            self._emit(mem_b, self._uop("MemB", load=True, send=False, source="ddr"))
            self._emit(
                mem_b,
                self._uop("MemB", load=False, send=True, source="ddr", transpose=True),
            )
            self._emit("MeshA", self._uop("MeshA", src=mem_a, dests=(mme,), count=1))
            self._emit("MeshB", self._uop("MeshB", routes=((mem_b, mme),), count=1))
            self._emit(
                mme,
                self._uop("MME", k_steps=1, emit=True, tag=f"{label}-scores[{head}]"),
            )
            self._emit(
                memc,
                self._uop(
                    "MemC",
                    recv=True,
                    ops=("scale", "softmax"),
                    scale_factor=scale,
                    send_to="ddr",
                ),
            )
        # Phase 2: reload the scores, multiply by V, store the context.
        for head in range(num_heads):
            row0, col0 = self._head_slices(head, heads_per_sample, seq_len, head_dim)
            g = head % num_mme
            mme, memc = self.xnn.mme_names[g], self.xnn.mem_c_names[g]
            mem_a = self.xnn.mem_a_names[head % len(self.xnn.mem_a_names)]
            mem_b = mem_b_names[head % len(mem_b_names)]
            loads = [
                self._ddr_load(
                    scores_scratch, head * seq_len, 0, seq_len, seq_len, dest=mem_a
                ),
                self._ddr_load(value, row0, col0, seq_len, head_dim, dest=mem_b),
            ]
            stores = [self._ddr_store(out, row0, col0, seq_len, head_dim, src=memc)]
            self._push_group(loads, stores)
            self._emit(mem_a, self._uop("MemA", load=True, send=False))
            self._emit(mem_a, self._uop("MemA", load=False, send=True))
            self._emit(mem_b, self._uop("MemB", load=True, send=False, source="ddr"))
            self._emit(mem_b, self._uop("MemB", load=False, send=True, source="ddr"))
            self._emit("MeshA", self._uop("MeshA", src=mem_a, dests=(mme,), count=1))
            self._emit("MeshB", self._uop("MeshB", routes=((mem_b, mme),), count=1))
            self._emit(
                mme,
                self._uop("MME", k_steps=1, emit=True, tag=f"{label}-context[{head}]"),
            )
            self._emit(memc, self._uop("MemC", recv=True, ops=(), send_to="ddr"))
        self._flush_ddr_groups()

    # -------------------------------------------------------------- finalise

    def finalize(self) -> None:
        """Flush held-back stores and append exit uOPs to every FU."""
        if self._finalized:
            return
        self._flush_ddr_groups()
        for uop in self._held_stores:
            self._emit("DDR", uop)
        self._held_stores = []
        for name in self._uops:
            self._uops[name].append(ExitUOp())
        self._finalized = True

    def per_fu_uops(self) -> Dict[str, List[UOp]]:
        return {name: list(uops) for name, uops in self._uops.items()}

    def load_programs(self) -> None:
        """Pre-store the generated uOP sequences into the datapath's FUs."""
        if not self._finalized:
            self.finalize()
        for name, uops in self._uops.items():
            self.xnn.datapath.fu(name).load_program(uops)

    def uop_count(self, fu_name: Optional[str] = None) -> int:
        if fu_name is not None:
            return len(self._uops.get(fu_name, []))
        return sum(len(uops) for uops in self._uops.values())

    def fingerprint(self) -> str:
        """Stable identity of this program on this datapath configuration.

        SHA-256 over (a) every FU's finalized uOP stream, (b) the
        :class:`~repro.xnn.datapath.XNNConfig` (a timing-only simulation is a
        pure function of uOPs + hardware configuration -- tensor *data* never
        influences latency or traffic), (c) the :class:`CodegenOptions`
        (redundant with the uOPs they shaped, but cheap insurance against a
        future option that affects execution without changing the streams),
        and (d) the code version, so editing any source file invalidates
        every memoized segment exactly like the scenario cache.

        This is the key of the :class:`~repro.runner.cache.SegmentMemo`
        layer: equal fingerprints guarantee byte-identical simulations.
        """
        if not self._finalized:
            self.finalize()
        from ..runner.cache import code_version  # runtime import: no cycle
        payload = {
            "code_version": code_version(),
            "config": asdict(self.xnn.config),
            "options": asdict(self.options),
            "uops": {
                name: [(uop.opcode, dict(uop.fields), uop.nbytes) for uop in uops]
                for name, uops in self._uops.items()
            },
        }
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode()).hexdigest()

    # ------------------------------------------------------------ packetising

    def build_rsn_program(self, name: str = "rsn-xnn") -> RSNProgram:
        """Compress the per-FU uOP streams into an RSN instruction program.

        The packetiser exploits the two kinds of regularity the second-level
        decoders exploit in hardware: identical uOPs repeated back to back
        (window 1, reuse N) and constant-stride off-chip address sequences
        (one packet with stride fields standing for the whole walk).  AIE-side
        MME uOPs are pre-stored locally (Section 4.1) and therefore do not
        appear in the PL instruction stream.
        """
        if not self._finalized:
            self.finalize()
        program = RSNProgram(name)
        for fu_name, uops in self._uops.items():
            fu_type = self.xnn.datapath.fu(fu_name).fu_type
            if fu_type == "MME":
                continue
            body = [u for u in uops if not isinstance(u, ExitUOp)]
            for packet in _packetize(fu_type, fu_name, body):
                program.append(packet)
        program.finalize(
            {
                fu_type: names
                for fu_type, names in self.xnn.fu_names_by_type.items()
                if fu_type != "MME"
            }
        )
        return program

    def mme_uop_bytes(self) -> int:
        """Bytes of locally pre-stored AIE control words (reported separately)."""
        total = 0
        for name in self.xnn.mme_names:
            total += sum(
                u.nbytes for u in self._uops[name] if not isinstance(u, ExitUOp)
            )
        return total


# ---------------------------------------------------------------- packetiser


def _uops_equal(first: UOp, second: UOp) -> bool:
    return dict(first.fields) == dict(second.fields)


def _strideable(first: UOp, second: UOp) -> Optional[Tuple[int, int]]:
    """Return the (row, col) stride if ``second`` continues an address walk."""
    keys_first = dict(first.fields)
    keys_second = dict(second.fields)
    for key in ("row0", "col0"):
        keys_first.pop(key, None)
        keys_second.pop(key, None)
    if keys_first != keys_second:
        return None
    return (
        int(second.get("row0", 0)) - int(first.get("row0", 0)),
        int(second.get("col0", 0)) - int(first.get("col0", 0)),
    )


def _packetize(
    fu_type: str, fu_name: str, uops: Sequence[UOp]
) -> List[InstructionPacket]:
    packets: List[InstructionPacket] = []
    index = 0
    mop_bytes = UOP_NBYTES.get(fu_type, 4)
    while index < len(uops):
        current = uops[index]
        # 1) run of identical uOPs -> window 1, reuse N.
        run = 1
        while index + run < len(uops) and _uops_equal(current, uops[index + run]):
            run += 1
        if run > 1:
            packets.append(
                InstructionPacket(
                    opcode=fu_type,
                    targets=[fu_name],
                    mops=[MOp(dict(current.fields), nbytes=mop_bytes)],
                    reuse=run,
                    label=f"{fu_name}-repeat",
                )
            )
            index += run
            continue
        # 2) constant-stride address walk (off-chip FUs) -> one strided packet.
        if fu_type in ("DDR", "LPDDR"):
            stride = None
            length = 1
            while index + length < len(uops):
                step = _strideable(uops[index + length - 1], uops[index + length])
                if step is None or (stride is not None and step != stride):
                    break
                stride = step if stride is None else stride
                length += 1
            if length > 2:
                fields = dict(current.fields)
                fields["stride_rows"], fields["stride_cols"] = stride
                fields["stride_count"] = length
                packets.append(
                    InstructionPacket(
                        opcode=fu_type,
                        targets=[fu_name],
                        mops=[MOp(fields, nbytes=mop_bytes)],
                        reuse=length,
                        label=f"{fu_name}-strided",
                    )
                )
                index += length
                continue
        # 3) fallback: a single-uOP packet.
        packets.append(
            InstructionPacket(
                opcode=fu_type,
                targets=[fu_name],
                mops=[MOp(dict(current.fields), nbytes=mop_bytes)],
                reuse=1,
                label=f"{fu_name}-single",
            )
        )
        index += 1
    return packets
