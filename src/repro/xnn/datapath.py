"""Construction of the RSN-XNN datapath (Fig. 10) on a modelled VCK190.

The datapath has, by default, the FU counts of the paper's design
(``i = 6`` MMEs, ``j = 3`` MemB, ``k = 3`` MemA, ``m = 6`` MemC, one MeshA,
one MeshB, one DDR FU and one LPDDR FU) and the edge set of the block diagram:

* DDR feeds the MemA and MemB scratchpads (feature maps) and the MemC FUs
  (residual inputs), and drains MemC outputs;
* LPDDR feeds the MemB scratchpads (weights and biases);
* MeshA fans LHS tiles from MemA -- or, for chained layers, from MemC -- out
  to the MMEs; MeshB does the same for RHS tiles;
* each MME streams its results to its own MemC ("each MME consistently
  communicates with the same MemC", Section 4.2, which is why no Mesh FU
  exists on the return path).

Channel bandwidths follow the platform model: PL-internal streams are wide
(the paper's MeshB moves 9 Kb per cycle, ~300 GB/s), the PL->AIE streams carry
the per-MME share of the PLIO budget, and off-chip transfer time is charged by
the DDR/LPDDR FUs themselves (their channels are therefore untimed to avoid
double counting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import Datapath
from ..hardware.aie import AIEArrayModel, MMEGroupPlan
from ..hardware.memory import ddr_channel, lpddr_channel
from ..hardware.vck190 import VCK190, VCK190Spec
from .fus import DDRFU, HostMemory, LPDDRFU, MMEFU, MemAFU, MemBFU, MemCFU, MeshFU

__all__ = ["XNNConfig", "XNNDatapath", "build_xnn_datapath"]


@dataclass(frozen=True)
class XNNConfig:
    """Configuration of an RSN-XNN datapath instance.

    The defaults reproduce the paper's design point; the counts and capacities
    are exposed so ablations (fewer MMEs, smaller scratchpads, scaled off-chip
    bandwidth) can reuse the same construction code.
    """

    num_mme: int = 6
    num_mem_a: int = 3
    num_mem_b: int = 3
    num_mem_c: int = 6
    mem_a_bytes: int = 1024 * 1024
    mem_b_bytes: int = 1024 * 1024
    mem_c_bytes: int = 1024 * 1024
    mme_tile_shape: tuple = (32, 32, 32)
    carry_data: bool = True
    bandwidth_scale: float = 1.0
    pl_stream_bw: float = 300e9
    channel_capacity: int = 2
    spec: VCK190Spec = VCK190

    def __post_init__(self) -> None:
        if self.num_mme < 1 or self.num_mem_c < self.num_mme:
            raise ValueError("need at least one MME and one MemC per MME")
        if self.num_mem_a < 1 or self.num_mem_b < 1:
            raise ValueError("need at least one MemA and one MemB")
        if self.bandwidth_scale <= 0:
            raise ValueError("bandwidth_scale must be positive")
        for knob in ("mem_a_bytes", "mem_b_bytes", "mem_c_bytes"):
            if getattr(self, knob) < 1:
                raise ValueError(f"{knob} must be positive")

    @classmethod
    def for_design(cls, num_mme: int = 6, **overrides) -> "XNNConfig":
        """Build a *validated* config for one design-space point.

        This is the hardware-side mutation hook of :mod:`repro.explore`:
        unlike plain construction it (a) couples the MemC count to the MME
        count (the datapath needs one MemC per MME and the paper's extra
        MemCs carry no work in this model), and (b) checks the MME grouping
        against the AIE array's tile and stream budgets *immediately*, so an
        infeasible design point is rejected identically by the analytic and
        engine backends -- before either spends any time on it.
        """
        from ..hardware.aie import AIEArrayModel, MMEGroupPlan
        overrides.setdefault("num_mem_c", num_mme)
        overrides.setdefault("carry_data", False)
        config = cls(num_mme=num_mme, **overrides)
        AIEArrayModel(config.spec, MMEGroupPlan(num_groups=num_mme)).validate_plan()
        return config


class XNNDatapath:
    """The built RSN-XNN datapath plus the platform models it references."""

    def __init__(self, config: XNNConfig):
        self.config = config
        self.memory = HostMemory(carry_data=config.carry_data)
        self.ddr = ddr_channel(config.spec, bandwidth_scale=config.bandwidth_scale)
        self.lpddr = lpddr_channel(config.spec, bandwidth_scale=config.bandwidth_scale)
        self.aie = AIEArrayModel(config.spec, MMEGroupPlan(num_groups=config.num_mme))
        self.aie.validate_plan()
        self.datapath = Datapath("rsn-xnn")
        self.mme_names: List[str] = [f"MME{i}" for i in range(config.num_mme)]
        self.mem_a_names: List[str] = [f"MemA{i}" for i in range(config.num_mem_a)]
        self.mem_b_names: List[str] = [f"MemB{i}" for i in range(config.num_mem_b)]
        self.mem_c_names: List[str] = [f"MemC{i}" for i in range(config.num_mem_c)]
        self._build()

    # ------------------------------------------------------------------ build

    def _build(self) -> None:
        config = self.config
        dp = self.datapath
        cap = config.channel_capacity

        mme_flops = self.aie.mme_flops(config.mme_tile_shape)
        plio_in_bw = self.aie.mme_input_bw() / 2.0  # LHS and RHS share the budget
        plio_out_bw = self.aie.mme_output_bw()

        self.ddr_fu = dp.add_fu(DDRFU("DDR", self.ddr, self.memory))
        self.lpddr_fu = dp.add_fu(LPDDRFU("LPDDR", self.lpddr, self.memory))
        self.mesh_a = dp.add_fu(MeshFU("MeshA", fu_type="MeshA"))
        self.mesh_b = dp.add_fu(MeshFU("MeshB", fu_type="MeshB"))
        self.mem_a = [
            dp.add_fu(MemAFU(name, config.mem_a_bytes)) for name in self.mem_a_names
        ]
        self.mem_b = [
            dp.add_fu(MemBFU(name, config.mem_b_bytes)) for name in self.mem_b_names
        ]
        self.mem_c = [
            dp.add_fu(MemCFU(name, self.memory, config.mem_c_bytes))
            for name in self.mem_c_names
        ]
        self.mme = [
            dp.add_fu(MMEFU(name, compute_throughput=mme_flops))
            for name in self.mme_names
        ]

        # DDR <-> scratchpads (off-chip timing charged inside the DDR FU).
        for mem_a in self.mem_a:
            self.ddr_fu.add_output(f"to_{mem_a.name}")
            dp.connect(self.ddr_fu, f"to_{mem_a.name}", mem_a, "from_ddr", capacity=cap)
        for mem_b in self.mem_b:
            self.ddr_fu.add_output(f"to_{mem_b.name}")
            dp.connect(self.ddr_fu, f"to_{mem_b.name}", mem_b, "from_ddr", capacity=cap)
            self.lpddr_fu.add_output(f"to_{mem_b.name}")
            dp.connect(
                self.lpddr_fu, f"to_{mem_b.name}", mem_b, "from_lpddr", capacity=cap
            )
        for mem_c in self.mem_c:
            self.ddr_fu.add_output(f"to_{mem_c.name}")
            dp.connect(self.ddr_fu, f"to_{mem_c.name}", mem_c, "from_ddr", capacity=cap)
            self.ddr_fu.add_input(f"from_{mem_c.name}")
            dp.connect(mem_c, "to_ddr", self.ddr_fu, f"from_{mem_c.name}", capacity=cap)

        # Scratchpads -> meshes (wide PL-internal streams).
        for mem_a in self.mem_a:
            self.mesh_a.add_input(f"from_{mem_a.name}")
            dp.connect(
                mem_a,
                "to_mesh",
                self.mesh_a,
                f"from_{mem_a.name}",
                capacity=cap,
                bandwidth=config.pl_stream_bw,
            )
        for mem_b in self.mem_b:
            self.mesh_b.add_input(f"from_{mem_b.name}")
            dp.connect(
                mem_b,
                "to_mesh",
                self.mesh_b,
                f"from_{mem_b.name}",
                capacity=cap,
                bandwidth=config.pl_stream_bw,
            )
        # MemC -> meshes (dynamic layer chaining).
        for mem_c in self.mem_c:
            self.mesh_a.add_input(f"from_{mem_c.name}")
            dp.connect(
                mem_c,
                "to_mesh_a",
                self.mesh_a,
                f"from_{mem_c.name}",
                capacity=cap,
                bandwidth=config.pl_stream_bw,
            )
            self.mesh_b.add_input(f"from_{mem_c.name}")
            dp.connect(
                mem_c,
                "to_mesh_b",
                self.mesh_b,
                f"from_{mem_c.name}",
                capacity=cap,
                bandwidth=config.pl_stream_bw,
            )

        # Meshes -> MMEs (PLIO streams) and MMEs -> their MemC.
        for index, mme in enumerate(self.mme):
            self.mesh_a.add_output(f"to_{mme.name}")
            dp.connect(
                self.mesh_a,
                f"to_{mme.name}",
                mme,
                "lhs",
                capacity=cap,
                bandwidth=plio_in_bw,
            )
            self.mesh_b.add_output(f"to_{mme.name}")
            dp.connect(
                self.mesh_b,
                f"to_{mme.name}",
                mme,
                "rhs",
                capacity=cap,
                bandwidth=plio_in_bw,
            )
            dp.connect(
                mme,
                "out",
                self.mem_c[index],
                "from_mme",
                capacity=cap,
                bandwidth=plio_out_bw,
            )

    # ------------------------------------------------------------- accessors

    @property
    def fu_names_by_type(self) -> Dict[str, List[str]]:
        return {
            "DDR": ["DDR"],
            "LPDDR": ["LPDDR"],
            "MeshA": ["MeshA"],
            "MeshB": ["MeshB"],
            "MemA": list(self.mem_a_names),
            "MemB": list(self.mem_b_names),
            "MemC": list(self.mem_c_names),
            "MME": list(self.mme_names),
        }

    def mem_c_for(self, mme_name: str) -> str:
        """The MemC wired to a given MME."""
        index = self.mme_names.index(mme_name)
        return self.mem_c_names[index]

    def reset(self) -> None:
        """Clear per-run statistics on the datapath and the off-chip channels."""
        self.datapath.reset_stats()
        self.ddr.reset()
        self.lpddr.reset()

    def fu_properties(self) -> List[Dict[str, object]]:
        """Per-FU compute/memory/bandwidth properties (the Fig. 16 data)."""
        properties = []
        mme_flops = self.aie.mme_flops(self.config.mme_tile_shape)
        for name in self.mme_names:
            properties.append(
                {
                    "fu": name,
                    "tflops": mme_flops / 1e12,
                    "memory_mb": self.aie.mme_local_memory_bytes() / 2**20,
                    "bandwidth_gbs": (
                        self.aie.mme_input_bw() + self.aie.mme_output_bw()
                    )
                    / 1e9,
                }
            )
        for name in self.mem_a_names:
            properties.append(
                {
                    "fu": name,
                    "tflops": 0.0,
                    "memory_mb": self.config.mem_a_bytes / 2**20,
                    "bandwidth_gbs": 2 * self.config.pl_stream_bw / 1e9,
                }
            )
        for name in self.mem_b_names:
            properties.append(
                {
                    "fu": name,
                    "tflops": 0.0,
                    "memory_mb": self.config.mem_b_bytes / 2**20,
                    "bandwidth_gbs": 2 * self.config.pl_stream_bw / 1e9,
                }
            )
        for index, name in enumerate(self.mem_c_names):
            properties.append(
                {
                    "fu": name,
                    "tflops": self.mem_c[index].compute_throughput / 1e12,
                    "memory_mb": self.config.mem_c_bytes / 2**20,
                    "bandwidth_gbs": (
                        self.aie.mme_output_bw() + self.ddr.effective_write_bw
                    )
                    / 1e9,
                }
            )
        for mesh in ("MeshA", "MeshB"):
            properties.append(
                {
                    "fu": mesh,
                    "tflops": 0.0,
                    "memory_mb": 0.0,
                    "bandwidth_gbs": self.config.num_mme
                    * self.aie.mme_input_bw()
                    / 2
                    / 1e9,
                }
            )
        properties.append(
            {
                "fu": "DDR",
                "tflops": 0.0,
                "memory_mb": 0.0,
                "bandwidth_gbs": (
                    self.ddr.effective_read_bw + self.ddr.effective_write_bw
                )
                / 1e9,
            }
        )
        properties.append(
            {
                "fu": "LPDDR",
                "tflops": 0.0,
                "memory_mb": 0.0,
                "bandwidth_gbs": self.lpddr.effective_read_bw / 1e9,
            }
        )
        return properties


def build_xnn_datapath(config: Optional[XNNConfig] = None, **overrides) -> XNNDatapath:
    """Build an RSN-XNN datapath; keyword overrides update the default config."""
    if config is None:
        config = XNNConfig(**overrides)
    elif overrides:
        raise ValueError("pass either a config object or keyword overrides, not both")
    return XNNDatapath(config)
