"""End-to-end execution of DNN workloads on the simulated RSN-XNN overlay.

:class:`XNNExecutor` is the equivalent of the paper's host program: it places
tensors in (simulated) off-chip memory, generates the RSN instructions for a
workload with the chosen optimisation options, runs the event-driven datapath
simulation, and collects latency, traffic, and utilisation.

A transformer encoder is executed as three simulation groups, split exactly at
the LayerNorm boundaries the paper's Table 9 also uses to group segments:

1. the Key/Query/Value projections,
2. the attention heads plus the dense projection,
3. the two feed-forward MMs.

Within a group the instruction stream is continuous, so load/store
interleaving and prolog/epilog overlap act across layer boundaries; between
groups the executor applies LayerNorm on the assembled off-chip tensor (the
mean/variance reduction spans the full hidden dimension, wider than one MemC
tile -- the time for it is charged inside MemC, the arithmetic is applied
here; see DESIGN.md).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..workloads import reference, tensors
from ..workloads.bert import BERT_LARGE, BertConfig, bert_large_encoder
from ..workloads.layers import FusedOp, MatMulLayer, ModelSpec
from .codegen import CodegenOptions, ProgramBuilder
from .datapath import XNNConfig, XNNDatapath

__all__ = ["SegmentResult", "EncoderResult", "XNNExecutor"]


@dataclass
class SegmentResult:
    """Latency and traffic of one simulation group (or standalone segment)."""

    name: str
    latency_s: float
    flops: float
    ddr_bytes: int
    lpddr_bytes: int
    uops: int

    @property
    def achieved_tflops(self) -> float:
        if not self.latency_s:
            return 0.0
        return self.flops / self.latency_s / 1e12

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3


@dataclass
class EncoderResult:
    """Aggregate result of running a workload on RSN-XNN."""

    name: str
    batch: int
    segments: List[SegmentResult] = field(default_factory=list)

    @property
    def latency_s(self) -> float:
        return sum(segment.latency_s for segment in self.segments)

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def flops(self) -> float:
        return sum(segment.flops for segment in self.segments)

    @property
    def ddr_bytes(self) -> int:
        return sum(segment.ddr_bytes for segment in self.segments)

    @property
    def lpddr_bytes(self) -> int:
        return sum(segment.lpddr_bytes for segment in self.segments)

    @property
    def offchip_bytes(self) -> int:
        return self.ddr_bytes + self.lpddr_bytes

    @property
    def achieved_tflops(self) -> float:
        if not self.latency_s:
            return 0.0
        return self.flops / self.latency_s / 1e12

    @property
    def throughput_tasks_per_s(self) -> float:
        """Tasks (sequences through this workload) completed per second."""
        if not self.latency_s:
            return 0.0
        return self.batch / self.latency_s

    def segment(self, name: str) -> SegmentResult:
        for segment in self.segments:
            if segment.name == name:
                return segment
        raise KeyError(f"no segment named {name!r}")


#: sentinel: "use the process-wide segment memo" (the default).
_PROCESS_MEMO = object()


# ------------------------------------------------------------ segment workloads
#
# A segment is described *before* any codegen runs as an ordered list of
# builder operations.  Each op knows how to (a) serialise itself into a
# JSON-able descriptor -- the basis of the upstream workload fingerprint --
# and (b) replay itself onto a :class:`ProgramBuilder` when the simulation
# actually has to happen.  The descriptor mirrors the builder-call arguments
# exactly (layer shapes, fused ops, operand names, attention geometry), so
# equal descriptors under equal ``XNNConfig``/``CodegenOptions``/code version
# are guaranteed to generate byte-identical uOP streams.


@dataclass(frozen=True)
class _GemmOp:
    """One ``add_gemm_layer`` call, deferred."""

    layer: MatMulLayer
    lhs: str
    rhs: str
    out: str
    bias: Optional[str] = None
    residual: Optional[str] = None

    def describe(self) -> Dict[str, object]:
        return {
            "op": "gemm",
            "layer": asdict(self.layer),
            "lhs": self.lhs,
            "rhs": self.rhs,
            "out": self.out,
            "bias": self.bias,
            "residual": self.residual,
        }

    def apply(self, builder: ProgramBuilder) -> None:
        builder.add_gemm_layer(
            self.layer,
            lhs=self.lhs,
            rhs=self.rhs,
            out=self.out,
            bias=self.bias,
            residual=self.residual,
        )


@dataclass(frozen=True)
class _AttentionOp:
    """One ``add_attention`` call, deferred."""

    seq_len: int
    head_dim: int
    num_heads: int
    heads_per_sample: int
    query: str
    key: str
    value: str
    out: str

    def describe(self) -> Dict[str, object]:
        return {
            "op": "attention",
            "seq_len": self.seq_len,
            "head_dim": self.head_dim,
            "num_heads": self.num_heads,
            "heads_per_sample": self.heads_per_sample,
            "query": self.query,
            "key": self.key,
            "value": self.value,
            "out": self.out,
        }

    def apply(self, builder: ProgramBuilder) -> None:
        builder.add_attention(
            seq_len=self.seq_len,
            head_dim=self.head_dim,
            num_heads=self.num_heads,
            heads_per_sample=self.heads_per_sample,
            query=self.query,
            key=self.key,
            value=self.value,
            out=self.out,
        )


class XNNExecutor:
    """Runs workloads on a freshly built RSN-XNN datapath per simulation group.

    Parameters
    ----------
    config / options:
        Hardware configuration and codegen options, as before.
    segment_memo:
        A :class:`~repro.runner.cache.SegmentMemo` caching per-segment
        simulation results, ``None`` to disable memoization entirely, or
        the default sentinel to share the process-wide memo.  Memoization
        only applies to timing-only runs (``carry_data=False``): a
        functional run must execute the event loop to produce its tensor
        outputs.  Memoized results are byte-identical to fresh simulation,
        which ``tests/differential/test_segment_memo_contract.py`` pins.
    workload_memo:
        When true (the default), the memo is consulted with an *upstream*
        workload-level fingerprint -- a hash of the segment's builder-call
        descriptors, the :class:`XNNConfig`, the :class:`CodegenOptions`,
        and the code version -- before any :class:`ProgramBuilder` is
        constructed, so a hit skips codegen entirely.  On an upstream miss
        the downstream :meth:`ProgramBuilder.fingerprint` key is tried
        before simulating, and a full miss populates *both* keys, so the
        two-layer scheme degrades to single-key behaviour.  ``False``
        restores the downstream-only warm path (programs loaded eagerly,
        memo keyed by program fingerprint alone) -- kept for benchmarking
        the upstream layer against it.
    """

    def __init__(
        self,
        config: Optional[XNNConfig] = None,
        options: Optional[CodegenOptions] = None,
        segment_memo=_PROCESS_MEMO,
        workload_memo: bool = True,
    ):
        self.config = config or XNNConfig(carry_data=False)
        self.options = options or CodegenOptions()
        if segment_memo is _PROCESS_MEMO:
            from ..runner.cache import process_segment_memo
            segment_memo = process_segment_memo()
        self.segment_memo = segment_memo
        self.workload_memo = workload_memo

    # ----------------------------------------------------------- primitives

    def _workload_key(self, ops: Sequence) -> str:
        """Upstream memo key: hash of the workload descriptor, not the uOPs.

        Everything the generated program is a function of appears in the
        hash -- the ordered builder-op descriptors (layer shapes, fused ops,
        operand names, attention geometry), the datapath configuration, the
        codegen options, and the code version -- so equal keys guarantee the
        downstream :meth:`ProgramBuilder.fingerprint` would have been equal
        too (pinned against fresh simulation across the catalogue by the
        differential suite).  The ``workload-`` prefix keeps the two key
        namespaces distinguishable on disk.
        """
        from ..runner.cache import code_version  # runtime import: no cycle
        payload = {
            "code_version": code_version(),
            "config": asdict(self.config),
            "options": asdict(self.options),
            "workload": [op.describe() for op in ops],
        }
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return "workload-" + hashlib.sha256(encoded.encode()).hexdigest()

    @staticmethod
    def _memoized_result(name: str, flops: float, payload: Dict) -> SegmentResult:
        return SegmentResult(
            name=name,
            latency_s=payload["latency_s"],
            flops=flops,
            ddr_bytes=payload["ddr_bytes"],
            lpddr_bytes=payload["lpddr_bytes"],
            uops=payload["uops"],
        )

    def _simulate(
        self, xnn: XNNDatapath, ops: Sequence, name: str, flops: float
    ) -> SegmentResult:
        """Simulate one segment described by ``ops``, memoizing two ways.

        The memo is consulted with the upstream workload key first: a hit
        returns before a :class:`ProgramBuilder` is even constructed (zero
        codegen).  On a miss the program is generated and the downstream
        program-fingerprint key is tried before the event loop runs; a full
        miss simulates and stores the payload under both keys.
        """
        memo = self.segment_memo if not xnn.memory.carry_data else None
        upstream_key = None
        if memo is not None and self.workload_memo:
            upstream_key = self._workload_key(ops)
            hit = memo.load(upstream_key)
            if hit is not None:
                return self._memoized_result(name, flops, hit)
        builder = ProgramBuilder(xnn, self.options)
        for op in ops:
            op.apply(builder)
        loaded = False
        if not self.workload_memo:
            # Downstream-only emulation: load programs eagerly, exactly like
            # the pre-upstream-key warm path the benchmark compares against.
            builder.load_programs()
            loaded = True
        key = None
        if memo is not None:
            key = builder.fingerprint()
            hit = memo.load(key)
            if hit is not None:
                payload = dict(hit)
                payload.setdefault("uops", builder.uop_count())
                if upstream_key is not None:
                    memo.store(upstream_key, payload)
                return self._memoized_result(name, flops, payload)
        if not loaded:
            builder.load_programs()
        uops = builder.uop_count()
        simulator = xnn.datapath.build_simulator()
        stats = simulator.run()
        result = SegmentResult(
            name=name,
            latency_s=stats.end_time,
            flops=flops,
            ddr_bytes=xnn.ddr.total_bytes,
            lpddr_bytes=xnn.lpddr.total_bytes,
            uops=uops,
        )
        if memo is not None:
            payload = {
                "latency_s": result.latency_s,
                "ddr_bytes": result.ddr_bytes,
                "lpddr_bytes": result.lpddr_bytes,
                "uops": result.uops,
            }
            memo.store(key, payload)
            if upstream_key is not None:
                memo.store(upstream_key, payload)
        return result

    def _fresh_datapath(self) -> XNNDatapath:
        return XNNDatapath(self.config)

    # ------------------------------------------------------------ single GEMM

    def run_gemm(
        self,
        m: int,
        k: int,
        n: int,
        lhs_data: Optional[np.ndarray] = None,
        rhs_data: Optional[np.ndarray] = None,
        fused_ops: Tuple[FusedOp, ...] = (),
        bias_data: Optional[np.ndarray] = None,
    ) -> Tuple[SegmentResult, Optional[np.ndarray]]:
        """Run one GEMM layer end to end; returns the result and the output."""
        xnn = self._fresh_datapath()
        memory = xnn.memory
        if lhs_data is not None and rhs_data is not None:
            memory.add("lhs", lhs_data)
            memory.add("rhs", rhs_data)
        else:
            memory.add("lhs", (m, k))
            memory.add("rhs", (k, n))
        bias_name = None
        if bias_data is not None:
            memory.add("bias", np.atleast_2d(bias_data))
            bias_name = "bias"
        memory.allocate("out", (m, n))
        layer = MatMulLayer("gemm", m=m, k=k, n=n, fused_ops=fused_ops)
        ops = [_GemmOp(layer, lhs="lhs", rhs="rhs", out="out", bias=bias_name)]
        result = self._simulate(xnn, ops, "gemm", layer.flops)
        output = memory.array("out") if memory.carry_data else None
        return result, output

    # --------------------------------------------------------------- encoder

    def _setup_encoder_memory(
        self, xnn: XNNDatapath, batch: int, seq_len: int, config: BertConfig, seed: int
    ) -> Dict[str, np.ndarray]:
        """Place encoder inputs, weights, and intermediate tensors off-chip."""
        memory = xnn.memory
        tokens = batch * seq_len
        hidden, ffn = config.hidden, config.ffn_hidden
        weights: Dict[str, np.ndarray] = {}
        if memory.carry_data:
            rng = tensors.make_rng(seed)
            weights = tensors.encoder_weights(hidden, ffn, rng)
            hidden_input = tensors.activation((tokens, hidden), rng)
            memory.add("input", hidden_input)
            for key in ("wq", "wk", "wv", "wo", "w1", "w2"):
                memory.add(key, weights[key])
            for key in ("bq", "bk", "bv", "bo", "b1", "b2"):
                memory.add(key, weights[key].reshape(1, -1))
        else:
            memory.add("input", (tokens, hidden))
            for key, shape in (
                ("wq", (hidden, hidden)),
                ("wk", (hidden, hidden)),
                ("wv", (hidden, hidden)),
                ("wo", (hidden, hidden)),
                ("w1", (hidden, ffn)),
                ("w2", (ffn, hidden)),
            ):
                memory.add(key, shape)
            for key, size in (
                ("bq", hidden),
                ("bk", hidden),
                ("bv", hidden),
                ("bo", hidden),
                ("b1", ffn),
                ("b2", hidden),
            ):
                memory.add(key, (1, size))
        for name, shape in (
            ("query", (tokens, hidden)),
            ("key", (tokens, hidden)),
            ("value", (tokens, hidden)),
            ("attn_context", (tokens, hidden)),
            ("attn_out", (tokens, hidden)),
            ("attn_norm", (tokens, hidden)),
            ("ffn_inter", (tokens, config.ffn_hidden)),
            ("ffn_out", (tokens, hidden)),
            ("encoder_out", (tokens, hidden)),
        ):
            memory.allocate(name, shape)
        return weights

    def run_encoder(
        self,
        batch: int = 6,
        seq_len: int = 512,
        config: BertConfig = BERT_LARGE,
        seed: int = tensors.DEFAULT_SEED,
    ) -> EncoderResult:
        """Run one transformer encoder layer (the paper's primary workload)."""
        spec = bert_large_encoder(batch=batch, seq_len=seq_len, config=config)
        layer = {lyr.name: lyr for lyr in spec.layers}
        result = EncoderResult(name=spec.name, batch=batch)
        self._last_heads = config.heads
        self._last_batch = batch

        # ---- group 1: Key / Query / Value projections --------------------
        xnn = self._fresh_datapath()
        weights = self._setup_encoder_memory(xnn, batch, seq_len, config, seed)
        qkv_ops = [
            _GemmOp(layer["query"], lhs="input", rhs="wq", out="query", bias="bq"),
            _GemmOp(layer["key"], lhs="input", rhs="wk", out="key", bias="bk"),
            _GemmOp(layer["value"], lhs="input", rhs="wv", out="value", bias="bv"),
        ]
        qkv_flops = sum(layer[n].flops for n in ("query", "key", "value"))
        result.segments.append(self._simulate(xnn, qkv_ops, "qkv", qkv_flops))
        memory = xnn.memory

        # ---- group 2: attention heads + dense projection ------------------
        xnn2 = self._fresh_datapath()
        self._carry_tensors(
            memory, xnn2.memory, ("input", "query", "key", "value", "wo", "bo")
        )
        for name in ("attn_context", "attn_out", "attn_norm"):
            xnn2.memory.allocate(name, memory.shape(name))
        attention_ops = [
            _AttentionOp(
                seq_len=seq_len,
                head_dim=config.head_dim,
                num_heads=batch * config.heads,
                heads_per_sample=config.heads,
                query="query",
                key="key",
                value="value",
                out="attn_context",
            ),
            _GemmOp(
                layer["dense"],
                lhs="attn_context",
                rhs="wo",
                out="attn_out",
                bias="bo",
                residual="input",
            ),
        ]
        attention_flops = (
            layer["attention_mm1"].flops
            + layer["attention_mm2"].flops
            + layer["dense"].flops
        )
        result.segments.append(
            self._simulate(xnn2, attention_ops, "attention+dense", attention_flops)
        )
        if xnn2.memory.carry_data:
            attn_out = xnn2.memory.array("attn_out")
            xnn2.memory.array("attn_norm")[:] = reference.layer_norm(
                attn_out, weights["ln1_gamma"], weights["ln1_beta"]
            )

        # ---- group 3: feed-forward network --------------------------------
        xnn3 = self._fresh_datapath()
        self._carry_tensors(xnn2.memory, xnn3.memory, ("attn_norm",))
        self._carry_tensors(memory, xnn3.memory, ("w1", "b1", "w2", "b2"))
        for name in ("ffn_inter", "ffn_out", "encoder_out"):
            xnn3.memory.allocate(name, memory.shape(name))
        ffn_ops = [
            _GemmOp(
                layer["ffn_mm1"], lhs="attn_norm", rhs="w1", out="ffn_inter", bias="b1"
            ),
            _GemmOp(
                layer["ffn_mm2"],
                lhs="ffn_inter",
                rhs="w2",
                out="ffn_out",
                bias="b2",
                residual="attn_norm",
            ),
        ]
        ffn_flops = layer["ffn_mm1"].flops + layer["ffn_mm2"].flops
        result.segments.append(self._simulate(xnn3, ffn_ops, "ffn", ffn_flops))
        if xnn3.memory.carry_data:
            ffn_out = xnn3.memory.array("ffn_out")
            xnn3.memory.array("encoder_out")[:] = reference.layer_norm(
                ffn_out, weights["ln2_gamma"], weights["ln2_beta"]
            )
            self._final_memory = xnn3.memory
        else:
            self._final_memory = xnn3.memory
        self._weights = weights
        self._input_memory = memory
        return result

    @staticmethod
    def _carry_tensors(source, destination, names) -> None:
        """Copy tensors (or just shapes) from one group's memory to the next."""
        for name in names:
            if source.carry_data:
                destination.add(name, source.array(name))
            else:
                destination.add(name, source.shape(name))

    def encoder_output(self) -> np.ndarray:
        """The final encoder output of the last :meth:`run_encoder` call."""
        return self._final_memory.array("encoder_out")

    def reference_encoder_output(self) -> np.ndarray:
        """NumPy reference output for the same inputs/weights (validation).

        The reference applies attention per sequence, so the stored input is
        processed sample by sample using the batch/sequence split of the last
        :meth:`run_encoder` call.
        """
        hidden_input = self._input_memory.array("input")
        tokens = hidden_input.shape[0]
        seq_len = tokens // self._last_batch
        outputs = []
        for sample in range(self._last_batch):
            rows = slice(sample * seq_len, (sample + 1) * seq_len)
            outputs.append(
                reference.encoder_layer(
                    hidden_input[rows], self._weights, self._last_heads
                )
            )
        return np.concatenate(outputs, axis=0)

    # ----------------------------------------------------------- plain models

    def run_feedforward_model(
        self, model: ModelSpec, seed: int = tensors.DEFAULT_SEED
    ) -> EncoderResult:
        """Run a pure-GEMM model (NCF, MLP): layers chained through DDR."""
        xnn = self._fresh_datapath()
        memory = xnn.memory
        rng = tensors.make_rng(seed)
        first = model.layers[0]
        if memory.carry_data:
            memory.add("act0", tensors.activation((first.m, first.k), rng))
        else:
            memory.add("act0", (first.m, first.k))
        ops: List[_GemmOp] = []
        total_flops = 0.0
        for index, layer in enumerate(model.layers):
            weight_name, bias_name = f"w{index}", f"b{index}"
            out_name = f"act{index + 1}"
            if memory.carry_data:
                memory.add(weight_name, tensors.weight((layer.k, layer.n), rng))
                memory.add(bias_name, tensors.bias(layer.n, rng).reshape(1, -1))
            else:
                memory.add(weight_name, (layer.k, layer.n))
                memory.add(bias_name, (1, layer.n))
            memory.allocate(out_name, (layer.m, layer.n))
            ops.append(
                _GemmOp(
                    layer,
                    lhs=f"act{index}",
                    rhs=weight_name,
                    out=out_name,
                    bias=bias_name if layer.has_fused(FusedOp.BIAS) else None,
                )
            )
            total_flops += layer.flops
        segment = self._simulate(xnn, ops, model.name, total_flops)
        result = EncoderResult(name=model.name, batch=model.batch)
        result.segments.append(segment)
        self._final_memory = memory
        return result

    # ---------------------------------------------------------------- hooks

    _final_memory = None
    _input_memory = None
    _weights: Dict[str, np.ndarray] = {}
    _last_heads: int = 16
    _last_batch: int = 1
