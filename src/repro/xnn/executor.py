"""End-to-end execution of DNN workloads on the simulated RSN-XNN overlay.

:class:`XNNExecutor` is the equivalent of the paper's host program: it places
tensors in (simulated) off-chip memory, generates the RSN instructions for a
workload with the chosen optimisation options, runs the event-driven datapath
simulation, and collects latency, traffic, and utilisation.

A transformer encoder is executed as three simulation groups, split exactly at
the LayerNorm boundaries the paper's Table 9 also uses to group segments:

1. the Key/Query/Value projections,
2. the attention heads plus the dense projection,
3. the two feed-forward MMs.

Within a group the instruction stream is continuous, so load/store
interleaving and prolog/epilog overlap act across layer boundaries; between
groups the executor applies LayerNorm on the assembled off-chip tensor (the
mean/variance reduction spans the full hidden dimension, wider than one MemC
tile -- the time for it is charged inside MemC, the arithmetic is applied
here; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..workloads import reference, tensors
from ..workloads.bert import BERT_LARGE, BertConfig, bert_large_encoder
from ..workloads.layers import FusedOp, MatMulLayer, ModelSpec
from .codegen import CodegenOptions, ProgramBuilder
from .datapath import XNNConfig, XNNDatapath

__all__ = ["SegmentResult", "EncoderResult", "XNNExecutor"]


@dataclass
class SegmentResult:
    """Latency and traffic of one simulation group (or standalone segment)."""

    name: str
    latency_s: float
    flops: float
    ddr_bytes: int
    lpddr_bytes: int
    uops: int

    @property
    def achieved_tflops(self) -> float:
        if not self.latency_s:
            return 0.0
        return self.flops / self.latency_s / 1e12

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3


@dataclass
class EncoderResult:
    """Aggregate result of running a workload on RSN-XNN."""

    name: str
    batch: int
    segments: List[SegmentResult] = field(default_factory=list)

    @property
    def latency_s(self) -> float:
        return sum(segment.latency_s for segment in self.segments)

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def flops(self) -> float:
        return sum(segment.flops for segment in self.segments)

    @property
    def ddr_bytes(self) -> int:
        return sum(segment.ddr_bytes for segment in self.segments)

    @property
    def lpddr_bytes(self) -> int:
        return sum(segment.lpddr_bytes for segment in self.segments)

    @property
    def offchip_bytes(self) -> int:
        return self.ddr_bytes + self.lpddr_bytes

    @property
    def achieved_tflops(self) -> float:
        if not self.latency_s:
            return 0.0
        return self.flops / self.latency_s / 1e12

    @property
    def throughput_tasks_per_s(self) -> float:
        """Tasks (sequences through this workload) completed per second."""
        if not self.latency_s:
            return 0.0
        return self.batch / self.latency_s

    def segment(self, name: str) -> SegmentResult:
        for segment in self.segments:
            if segment.name == name:
                return segment
        raise KeyError(f"no segment named {name!r}")


#: sentinel: "use the process-wide segment memo" (the default).
_PROCESS_MEMO = object()


class XNNExecutor:
    """Runs workloads on a freshly built RSN-XNN datapath per simulation group.

    Parameters
    ----------
    config / options:
        Hardware configuration and codegen options, as before.
    segment_memo:
        A :class:`~repro.runner.cache.SegmentMemo` caching per-segment
        simulation results by program fingerprint, ``None`` to disable
        memoization entirely, or the default sentinel to share the
        process-wide memo.  Memoization only applies to timing-only runs
        (``carry_data=False``): a functional run must execute the event loop
        to produce its tensor outputs.  Memoized results are byte-identical
        to fresh simulation (the fingerprint covers everything a timing run
        depends on), which ``tests/differential/test_segment_memo_contract.py`` pins.
    """

    def __init__(
        self,
        config: Optional[XNNConfig] = None,
        options: Optional[CodegenOptions] = None,
        segment_memo=_PROCESS_MEMO,
    ):
        self.config = config or XNNConfig(carry_data=False)
        self.options = options or CodegenOptions()
        if segment_memo is _PROCESS_MEMO:
            from ..runner.cache import process_segment_memo
            segment_memo = process_segment_memo()
        self.segment_memo = segment_memo

    # ----------------------------------------------------------- primitives

    def _simulate(
        self, xnn: XNNDatapath, builder: ProgramBuilder, name: str, flops: float
    ) -> SegmentResult:
        builder.load_programs()
        uops = builder.uop_count()
        memo = self.segment_memo if not xnn.memory.carry_data else None
        key = None
        if memo is not None:
            key = builder.fingerprint()
            hit = memo.load(key)
            if hit is not None:
                return SegmentResult(
                    name=name,
                    latency_s=hit["latency_s"],
                    flops=flops,
                    ddr_bytes=hit["ddr_bytes"],
                    lpddr_bytes=hit["lpddr_bytes"],
                    uops=uops,
                )
        simulator = xnn.datapath.build_simulator()
        stats = simulator.run()
        result = SegmentResult(
            name=name,
            latency_s=stats.end_time,
            flops=flops,
            ddr_bytes=xnn.ddr.total_bytes,
            lpddr_bytes=xnn.lpddr.total_bytes,
            uops=uops,
        )
        if memo is not None:
            memo.store(key, {
                "latency_s": result.latency_s,
                "ddr_bytes": result.ddr_bytes,
                "lpddr_bytes": result.lpddr_bytes,
            })
        return result

    def _fresh_datapath(self) -> XNNDatapath:
        return XNNDatapath(self.config)

    # ------------------------------------------------------------ single GEMM

    def run_gemm(
        self,
        m: int,
        k: int,
        n: int,
        lhs_data: Optional[np.ndarray] = None,
        rhs_data: Optional[np.ndarray] = None,
        fused_ops: Tuple[FusedOp, ...] = (),
        bias_data: Optional[np.ndarray] = None,
    ) -> Tuple[SegmentResult, Optional[np.ndarray]]:
        """Run one GEMM layer end to end; returns the result and the output."""
        xnn = self._fresh_datapath()
        memory = xnn.memory
        if lhs_data is not None and rhs_data is not None:
            memory.add("lhs", lhs_data)
            memory.add("rhs", rhs_data)
        else:
            memory.add("lhs", (m, k))
            memory.add("rhs", (k, n))
        bias_name = None
        if bias_data is not None:
            memory.add("bias", np.atleast_2d(bias_data))
            bias_name = "bias"
        memory.allocate("out", (m, n))
        layer = MatMulLayer("gemm", m=m, k=k, n=n, fused_ops=fused_ops)
        builder = ProgramBuilder(xnn, self.options)
        builder.add_gemm_layer(layer, lhs="lhs", rhs="rhs", out="out", bias=bias_name)
        result = self._simulate(xnn, builder, "gemm", layer.flops)
        output = memory.array("out") if memory.carry_data else None
        return result, output

    # --------------------------------------------------------------- encoder

    def _setup_encoder_memory(
        self, xnn: XNNDatapath, batch: int, seq_len: int, config: BertConfig, seed: int
    ) -> Dict[str, np.ndarray]:
        """Place encoder inputs, weights, and intermediate tensors off-chip."""
        memory = xnn.memory
        tokens = batch * seq_len
        hidden, ffn = config.hidden, config.ffn_hidden
        weights: Dict[str, np.ndarray] = {}
        if memory.carry_data:
            rng = tensors.make_rng(seed)
            weights = tensors.encoder_weights(hidden, ffn, rng)
            hidden_input = tensors.activation((tokens, hidden), rng)
            memory.add("input", hidden_input)
            for key in ("wq", "wk", "wv", "wo", "w1", "w2"):
                memory.add(key, weights[key])
            for key in ("bq", "bk", "bv", "bo", "b1", "b2"):
                memory.add(key, weights[key].reshape(1, -1))
        else:
            memory.add("input", (tokens, hidden))
            for key, shape in (
                ("wq", (hidden, hidden)),
                ("wk", (hidden, hidden)),
                ("wv", (hidden, hidden)),
                ("wo", (hidden, hidden)),
                ("w1", (hidden, ffn)),
                ("w2", (ffn, hidden)),
            ):
                memory.add(key, shape)
            for key, size in (
                ("bq", hidden),
                ("bk", hidden),
                ("bv", hidden),
                ("bo", hidden),
                ("b1", ffn),
                ("b2", hidden),
            ):
                memory.add(key, (1, size))
        for name, shape in (
            ("query", (tokens, hidden)),
            ("key", (tokens, hidden)),
            ("value", (tokens, hidden)),
            ("attn_context", (tokens, hidden)),
            ("attn_out", (tokens, hidden)),
            ("attn_norm", (tokens, hidden)),
            ("ffn_inter", (tokens, config.ffn_hidden)),
            ("ffn_out", (tokens, hidden)),
            ("encoder_out", (tokens, hidden)),
        ):
            memory.allocate(name, shape)
        return weights

    def run_encoder(
        self,
        batch: int = 6,
        seq_len: int = 512,
        config: BertConfig = BERT_LARGE,
        seed: int = tensors.DEFAULT_SEED,
    ) -> EncoderResult:
        """Run one transformer encoder layer (the paper's primary workload)."""
        spec = bert_large_encoder(batch=batch, seq_len=seq_len, config=config)
        layer = {lyr.name: lyr for lyr in spec.layers}
        result = EncoderResult(name=spec.name, batch=batch)
        self._last_heads = config.heads
        self._last_batch = batch

        # ---- group 1: Key / Query / Value projections --------------------
        xnn = self._fresh_datapath()
        weights = self._setup_encoder_memory(xnn, batch, seq_len, config, seed)
        builder = ProgramBuilder(xnn, self.options)
        builder.add_gemm_layer(
            layer["query"], lhs="input", rhs="wq", out="query", bias="bq"
        )
        builder.add_gemm_layer(
            layer["key"], lhs="input", rhs="wk", out="key", bias="bk"
        )
        builder.add_gemm_layer(
            layer["value"], lhs="input", rhs="wv", out="value", bias="bv"
        )
        qkv_flops = sum(layer[n].flops for n in ("query", "key", "value"))
        result.segments.append(self._simulate(xnn, builder, "qkv", qkv_flops))
        memory = xnn.memory

        # ---- group 2: attention heads + dense projection ------------------
        xnn2 = self._fresh_datapath()
        self._carry_tensors(
            memory, xnn2.memory, ("input", "query", "key", "value", "wo", "bo")
        )
        for name in ("attn_context", "attn_out", "attn_norm"):
            xnn2.memory.allocate(name, memory.shape(name))
        builder = ProgramBuilder(xnn2, self.options)
        builder.add_attention(
            seq_len=seq_len,
            head_dim=config.head_dim,
            num_heads=batch * config.heads,
            heads_per_sample=config.heads,
            query="query",
            key="key",
            value="value",
            out="attn_context",
        )
        builder.add_gemm_layer(
            layer["dense"],
            lhs="attn_context",
            rhs="wo",
            out="attn_out",
            bias="bo",
            residual="input",
        )
        attention_flops = (
            layer["attention_mm1"].flops
            + layer["attention_mm2"].flops
            + layer["dense"].flops
        )
        result.segments.append(
            self._simulate(xnn2, builder, "attention+dense", attention_flops)
        )
        if xnn2.memory.carry_data:
            attn_out = xnn2.memory.array("attn_out")
            xnn2.memory.array("attn_norm")[:] = reference.layer_norm(
                attn_out, weights["ln1_gamma"], weights["ln1_beta"]
            )

        # ---- group 3: feed-forward network --------------------------------
        xnn3 = self._fresh_datapath()
        self._carry_tensors(xnn2.memory, xnn3.memory, ("attn_norm",))
        self._carry_tensors(memory, xnn3.memory, ("w1", "b1", "w2", "b2"))
        for name in ("ffn_inter", "ffn_out", "encoder_out"):
            xnn3.memory.allocate(name, memory.shape(name))
        builder = ProgramBuilder(xnn3, self.options)
        builder.add_gemm_layer(
            layer["ffn_mm1"], lhs="attn_norm", rhs="w1", out="ffn_inter", bias="b1"
        )
        builder.add_gemm_layer(
            layer["ffn_mm2"],
            lhs="ffn_inter",
            rhs="w2",
            out="ffn_out",
            bias="b2",
            residual="attn_norm",
        )
        ffn_flops = layer["ffn_mm1"].flops + layer["ffn_mm2"].flops
        result.segments.append(self._simulate(xnn3, builder, "ffn", ffn_flops))
        if xnn3.memory.carry_data:
            ffn_out = xnn3.memory.array("ffn_out")
            xnn3.memory.array("encoder_out")[:] = reference.layer_norm(
                ffn_out, weights["ln2_gamma"], weights["ln2_beta"]
            )
            self._final_memory = xnn3.memory
        else:
            self._final_memory = xnn3.memory
        self._weights = weights
        self._input_memory = memory
        return result

    @staticmethod
    def _carry_tensors(source, destination, names) -> None:
        """Copy tensors (or just shapes) from one group's memory to the next."""
        for name in names:
            if source.carry_data:
                destination.add(name, source.array(name))
            else:
                destination.add(name, source.shape(name))

    def encoder_output(self) -> np.ndarray:
        """The final encoder output of the last :meth:`run_encoder` call."""
        return self._final_memory.array("encoder_out")

    def reference_encoder_output(self) -> np.ndarray:
        """NumPy reference output for the same inputs/weights (validation).

        The reference applies attention per sequence, so the stored input is
        processed sample by sample using the batch/sequence split of the last
        :meth:`run_encoder` call.
        """
        hidden_input = self._input_memory.array("input")
        tokens = hidden_input.shape[0]
        seq_len = tokens // self._last_batch
        outputs = []
        for sample in range(self._last_batch):
            rows = slice(sample * seq_len, (sample + 1) * seq_len)
            outputs.append(
                reference.encoder_layer(
                    hidden_input[rows], self._weights, self._last_heads
                )
            )
        return np.concatenate(outputs, axis=0)

    # ----------------------------------------------------------- plain models

    def run_feedforward_model(
        self, model: ModelSpec, seed: int = tensors.DEFAULT_SEED
    ) -> EncoderResult:
        """Run a pure-GEMM model (NCF, MLP): layers chained through DDR."""
        xnn = self._fresh_datapath()
        memory = xnn.memory
        rng = tensors.make_rng(seed)
        first = model.layers[0]
        if memory.carry_data:
            memory.add("act0", tensors.activation((first.m, first.k), rng))
        else:
            memory.add("act0", (first.m, first.k))
        builder = ProgramBuilder(xnn, self.options)
        total_flops = 0.0
        for index, layer in enumerate(model.layers):
            weight_name, bias_name = f"w{index}", f"b{index}"
            out_name = f"act{index + 1}"
            if memory.carry_data:
                memory.add(weight_name, tensors.weight((layer.k, layer.n), rng))
                memory.add(bias_name, tensors.bias(layer.n, rng).reshape(1, -1))
            else:
                memory.add(weight_name, (layer.k, layer.n))
                memory.add(bias_name, (1, layer.n))
            memory.allocate(out_name, (layer.m, layer.n))
            builder.add_gemm_layer(
                layer,
                lhs=f"act{index}",
                rhs=weight_name,
                out=out_name,
                bias=bias_name if layer.has_fused(FusedOp.BIAS) else None,
            )
            total_flops += layer.flops
        segment = self._simulate(xnn, builder, model.name, total_flops)
        result = EncoderResult(name=model.name, batch=model.batch)
        result.segments.append(segment)
        self._final_memory = memory
        return result

    # ---------------------------------------------------------------- hooks

    _final_memory = None
    _input_memory = None
    _weights: Dict[str, np.ndarray] = {}
    _last_heads: int = 16
    _last_batch: int = 1
