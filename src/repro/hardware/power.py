"""Power estimation for RSN-XNN components (Table 4 and Fig. 15).

The paper's power numbers come from Vivado's vectorless power analysis, which
we obviously cannot run.  What the evaluation actually uses is the *breakdown*
-- which component classes dominate (AIE ~62%, MemC ~23%, everything else
marginal, decoder <0.1%) -- so this module provides:

* :data:`PAPER_POWER_BREAKDOWN` -- the Table 4 numbers verbatim, used as the
  reference column by the benchmark, and
* :class:`PowerModel` -- a coefficient model that estimates per-FU power from
  the FU's physical properties (compute throughput, on-chip memory, stream
  bandwidth).  Coefficients are calibrated once against Table 4 so that the
  same model can be applied to modified datapaths (ablations, different FU
  counts) and still produce the paper's breakdown for the baseline design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

__all__ = [
    "FUPowerInput",
    "PowerModel",
    "PowerReport",
    "PAPER_POWER_BREAKDOWN",
    "PAPER_TOTAL_POWER_W",
]


#: Table 4: estimated power consumption per component class, in watts.
PAPER_POWER_BREAKDOWN: Dict[str, float] = {
    "Decoder": 0.08,
    "AIE": 60.8,
    "MemC": 22.91,
    "MemB": 0.47,
    "MemA": 0.25,
    "DDR": 0.33,
    "LPDDR": 0.15,
    "MeshA": 0.10,
    "MeshB": 0.09,
}

#: Fig. 15: total estimated power of the design (includes PS, NoC, clocking
#: and other platform infrastructure beyond the FUs above).
PAPER_TOTAL_POWER_W = 98.66


@dataclass(frozen=True)
class FUPowerInput:
    """The physical properties of one FU class that drive its power estimate.

    Parameters
    ----------
    name:
        Component class name (``"AIE"``, ``"MemC"``, ...).
    count:
        Number of FU instances of this class.
    compute_tflops:
        Aggregate sustained arithmetic throughput of the class, in TFLOPS.
    onchip_mb:
        Aggregate on-chip memory behind the class, in MB.
    bandwidth_gbs:
        Aggregate stream bandwidth through the class, in GB/s.
    on_aie:
        Whether the arithmetic runs on the hardened AIE array (much more
        efficient per FLOP than soft logic on the PL).
    """

    name: str
    count: int = 1
    compute_tflops: float = 0.0
    onchip_mb: float = 0.0
    bandwidth_gbs: float = 0.0
    on_aie: bool = False


@dataclass
class PowerReport:
    """Per-component power estimates plus totals."""

    breakdown_w: Dict[str, float] = field(default_factory=dict)
    infrastructure_w: float = 0.0

    @property
    def fu_total_w(self) -> float:
        return sum(self.breakdown_w.values())

    @property
    def total_w(self) -> float:
        return self.fu_total_w + self.infrastructure_w

    def fraction(self, name: str) -> float:
        total = self.fu_total_w
        if not total:
            return 0.0
        return self.breakdown_w.get(name, 0.0) / total

    def dominant(self) -> str:
        return max(self.breakdown_w, key=self.breakdown_w.get)


class PowerModel:
    """Coefficient-based power model for RSN overlay components.

    The coefficients are chosen so that applying the model to the RSN-XNN
    inventory of Fig. 16 reproduces the Table 4 breakdown to within a few
    percent (verified by the test suite); they are deliberately coarse --
    watts per TFLOPS, per MB of on-chip RAM, per GB/s of routed bandwidth --
    because that is the granularity at which the paper reasons about power.
    """

    def __init__(
        self,
        aie_w_per_tflops: float = 8.9,
        pl_w_per_tflops: float = 52.0,
        w_per_onchip_mb: float = 0.32,
        w_per_gbs: float = 0.0020,
        w_per_fu_static: float = 0.03,
        decoder_w: float = 0.08,
        infrastructure_w: float = 13.0,
    ):
        self.aie_w_per_tflops = aie_w_per_tflops
        self.pl_w_per_tflops = pl_w_per_tflops
        self.w_per_onchip_mb = w_per_onchip_mb
        self.w_per_gbs = w_per_gbs
        self.w_per_fu_static = w_per_fu_static
        self.decoder_w = decoder_w
        self.infrastructure_w = infrastructure_w

    def estimate_fu(self, fu: FUPowerInput) -> float:
        """Estimated power in watts for one FU class."""
        compute_coeff = self.aie_w_per_tflops if fu.on_aie else self.pl_w_per_tflops
        return (
            fu.count * self.w_per_fu_static
            + fu.compute_tflops * compute_coeff
            + fu.onchip_mb * self.w_per_onchip_mb
            + fu.bandwidth_gbs * self.w_per_gbs
        )

    def estimate(
        self, inventory: Iterable[FUPowerInput], include_decoder: bool = True
    ) -> PowerReport:
        """Estimate the full breakdown for an FU inventory."""
        report = PowerReport(infrastructure_w=self.infrastructure_w)
        for fu in inventory:
            report.breakdown_w[fu.name] = self.estimate_fu(fu)
        if include_decoder:
            report.breakdown_w["Decoder"] = self.decoder_w
        return report

    # ------------------------------------------------------------- reference

    @staticmethod
    def paper_breakdown() -> PowerReport:
        """The Table 4 breakdown wrapped in a :class:`PowerReport`."""
        breakdown = dict(PAPER_POWER_BREAKDOWN)
        infrastructure = PAPER_TOTAL_POWER_W - sum(breakdown.values())
        return PowerReport(breakdown_w=breakdown, infrastructure_w=infrastructure)
