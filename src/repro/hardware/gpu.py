"""GPU comparison models (NVIDIA T4, V100, A100, L4) for Table 10.

The paper does not implement anything on these GPUs: it takes BERT-Large
latencies from NVIDIA's published DeepLearningExamples reports (T4/V100/A100),
measures the L4 on Google Colab, and reads peak specs from the datasheets.
This module therefore carries two things:

* :class:`GPUSpec` -- the datasheet and measurement data exactly as Table 10
  reports them (peak TFLOPS, bandwidth, die area, power, DRAM traffic, and the
  published latencies per batch size), and
* :class:`GPUModel` -- a roofline estimator that predicts latency from the
  spec and a workload description, used to sanity-check the published numbers
  and to extrapolate to batch sizes the reports do not include.

Energy efficiency in sequences/J is always *derived* (batch / latency / power),
matching how the paper computes its efficiency rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["GPUSpec", "GPUModel", "GPU_SPECS"]


@dataclass(frozen=True)
class GPUSpec:
    """Datasheet and Table 10 measurement data for one GPU (one precision)."""

    name: str
    precision: str
    release_year: int
    process_nm: int
    peak_tflops: float
    mem_bw_gbs: float
    die_area_mm2: Optional[float]
    operating_power_w: float
    dynamic_power_w: float
    #: measured BERT-Large latency (ms) by batch size, from the sources above.
    published_latency_ms: Mapping[int, float] = field(default_factory=dict)
    #: measured total DRAM traffic in GB at batch 8 (Nsight Compute profile).
    dram_traffic_gb_b8: Optional[float] = None

    @property
    def key(self) -> str:
        return f"{self.name}-{self.precision}"

    # ------------------------------------------------------------ efficiency

    def sequences_per_joule(self, batch: int, latency_ms: Optional[float] = None,
                            dynamic: bool = False) -> float:
        """Energy efficiency in sequences per joule (Table 10's Seq/J rows)."""
        if latency_ms is None:
            latency_ms = self.published_latency_ms.get(batch)
        if latency_ms is None:
            raise KeyError(f"{self.key}: no latency for batch {batch}")
        power = self.dynamic_power_w if dynamic else self.operating_power_w
        return batch / (latency_ms / 1e3 * power)


#: Table 10 data.  Latencies are the published BERT-Large (sequence length 384,
#: FP32 unless noted) numbers the paper cites.
GPU_SPECS: Dict[str, GPUSpec] = {
    spec.key: spec
    for spec in [
        GPUSpec(
            name="T4", precision="fp32", release_year=2018, process_nm=12,
            peak_tflops=8.1, mem_bw_gbs=320, die_area_mm2=545,
            operating_power_w=72, dynamic_power_w=42,
            published_latency_ms={1: 67, 2: 127, 4: 258, 8: 499},
            dram_traffic_gb_b8=31,
        ),
        GPUSpec(
            name="V100", precision="fp32", release_year=2017, process_nm=12,
            peak_tflops=15.7, mem_bw_gbs=900, die_area_mm2=815,
            operating_power_w=292, dynamic_power_w=256,
            published_latency_ms={1: 29, 2: 49, 4: 93, 8: 182},
        ),
        GPUSpec(
            name="A100", precision="fp32", release_year=2020, process_nm=7,
            peak_tflops=19.5, mem_bw_gbs=1555, die_area_mm2=826,
            operating_power_w=308, dynamic_power_w=268,
            published_latency_ms={1: 23, 2: 40, 4: 72, 8: 137},
            dram_traffic_gb_b8=34,
        ),
        GPUSpec(
            name="A100", precision="fp16", release_year=2020, process_nm=7,
            peak_tflops=312, mem_bw_gbs=1555, die_area_mm2=826,
            operating_power_w=392, dynamic_power_w=352,
            published_latency_ms={1: 8, 2: 10, 4: 15, 8: 23},
            dram_traffic_gb_b8=25,
        ),
        GPUSpec(
            name="L4", precision="fp32", release_year=2023, process_nm=5,
            peak_tflops=30.3, mem_bw_gbs=300, die_area_mm2=294,
            operating_power_w=72, dynamic_power_w=41,
            published_latency_ms={1: 41, 2: 83, 4: 156, 8: 307},
            dram_traffic_gb_b8=12,
        ),
    ]
}


class GPUModel:
    """Roofline latency estimator for a GPU running a dense DNN workload.

    Parameters
    ----------
    spec:
        The GPU to model.
    compute_efficiency:
        Fraction of peak FLOPS achievable on large, saturating GEMMs.
    memory_efficiency:
        Fraction of peak DRAM bandwidth achievable.
    saturation_batch:
        Batch size at which the GPU reaches its compute efficiency; smaller
        batches scale efficiency down as ``batch / (batch + saturation_batch)``
        x 2 (so ``batch == saturation_batch`` gives full efficiency).  This is
        the simple curve behind "all GPUs should reach saturation in FP32 at
        B = 8".
    kernel_overhead_s:
        Fixed per-layer launch/synchronisation overhead.
    """

    def __init__(
        self,
        spec: GPUSpec,
        compute_efficiency: float = 0.75,
        memory_efficiency: float = 0.75,
        saturation_batch: int = 8,
        kernel_overhead_s: float = 20e-6,
    ):
        if not 0 < compute_efficiency <= 1 or not 0 < memory_efficiency <= 1:
            raise ValueError("efficiencies must be in (0, 1]")
        self.spec = spec
        self.compute_efficiency = compute_efficiency
        self.memory_efficiency = memory_efficiency
        self.saturation_batch = saturation_batch
        self.kernel_overhead_s = kernel_overhead_s

    # -------------------------------------------------------------- roofline

    def _batch_scaled_compute_eff(self, batch: int) -> float:
        scale = min(1.0, 2.0 * batch / (batch + self.saturation_batch))
        return self.compute_efficiency * scale

    def estimate_latency(
        self, flops: float, dram_bytes: float, batch: int, num_kernels: int = 0
    ) -> float:
        """Roofline latency in seconds for one inference step.

        ``flops`` and ``dram_bytes`` are totals for the whole batch.
        """
        if flops < 0 or dram_bytes < 0:
            raise ValueError("flops and dram_bytes must be non-negative")
        compute = flops / (
            self.spec.peak_tflops * 1e12 * self._batch_scaled_compute_eff(batch)
        )
        memory = dram_bytes / (self.spec.mem_bw_gbs * 1e9 * self.memory_efficiency)
        return max(compute, memory) + num_kernels * self.kernel_overhead_s

    def estimate_latency_ms(
        self, flops: float, dram_bytes: float, batch: int, num_kernels: int = 0
    ) -> float:
        return 1e3 * self.estimate_latency(flops, dram_bytes, batch, num_kernels)

    # ------------------------------------------------------------ efficiency

    def sequences_per_joule(
        self, batch: int, latency_s: float, dynamic: bool = False
    ) -> float:
        power = self.spec.dynamic_power_w if dynamic else self.spec.operating_power_w
        return batch / (latency_s * power)

    def is_memory_bound(self, flops: float, dram_bytes: float, batch: int) -> bool:
        compute = flops / (
            self.spec.peak_tflops * 1e12 * self._batch_scaled_compute_eff(batch)
        )
        memory = dram_bytes / (self.spec.mem_bw_gbs * 1e9 * self.memory_efficiency)
        return memory > compute
