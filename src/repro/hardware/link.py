"""Inter-chip link model for the multi-chip (chiplet) scale-out axis.

The paper's design is a single VCK190.  The scale-out axis partitions a
workload's segments across ``num_chips`` devices arranged as a pipeline, with
each chip handing its boundary activations to the next over a serial link.
This module models that link with the same roofline vocabulary the rest of
the repository uses: a transfer occupies the link for ``serialization_s``
plus ``nbytes / bandwidth`` seconds, and additionally spends ``hop_latency_s``
in flight before the receiver can start.

Two costs fall out of one transfer, and the analytic model uses both:

* :meth:`InterChipLink.transfer_time` -- the end-to-end time a single task
  waits on the hop (latency + serialization + wire time).  Summed into the
  per-task chiplet latency, so the analytic latency stays a lower bound on
  any real interconnect.
* :meth:`InterChipLink.occupancy_time` -- the time the link itself is busy
  (serialization + wire time, *excluding* flight latency, which pipelines
  across back-to-back transfers).  This is the link's busy time in the
  steady-state pipeline roofline, where the link is one more contended
  resource next to the chips.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InterChipLink"]


@dataclass(frozen=True)
class InterChipLink:
    """One inter-chip hop: bandwidth, per-hop latency, serialization cost.

    Parameters
    ----------
    bandwidth:
        Link bandwidth in bytes/s.  The 64 GB/s default is a conservative
        single-direction figure for a short-reach chiplet interconnect.
    hop_latency_s:
        Fixed per-transfer flight latency in seconds (SerDes + protocol).
    serialization_s:
        Optional fixed cost to pack/unpack one transfer, charged to the
        link's occupancy as well as to the task.
    """

    bandwidth: float = 64e9
    hop_latency_s: float = 1e-6
    serialization_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.hop_latency_s < 0:
            raise ValueError("hop latency must be non-negative")
        if self.serialization_s < 0:
            raise ValueError("serialization cost must be non-negative")

    @classmethod
    def from_design(
        cls,
        link_gbs: float = 64.0,
        link_hop_us: float = 1.0,
        link_serialization_us: float = 0.0,
    ) -> "InterChipLink":
        """Build a link from the ``DesignSpace`` axis units (GB/s and us)."""
        return cls(
            bandwidth=link_gbs * 1e9,
            hop_latency_s=link_hop_us * 1e-6,
            serialization_s=link_serialization_us * 1e-6,
        )

    @property
    def bandwidth_gbs(self) -> float:
        return self.bandwidth / 1e9

    def transfer_time(self, nbytes: int) -> float:
        """End-to-end seconds one task waits for ``nbytes`` to cross the hop."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.hop_latency_s + self.serialization_s + nbytes / self.bandwidth

    def occupancy_time(self, nbytes: int) -> float:
        """Seconds the link itself is busy with ``nbytes`` (flight latency
        pipelines across transfers, so it does not occupy the link)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.serialization_s + nbytes / self.bandwidth
