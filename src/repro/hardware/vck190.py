"""The AMD Versal VCK190 evaluation kit, as the paper describes it.

All numbers are taken directly from the paper:

* Section 2.1: 8 rows x 50 columns of AIE tiles (1.25 GHz, 7-way VLIW, 32 KB
  local memory each) for a peak of 8 TFLOPS FP32; 4 MB of BRAM and 16 MB of
  URAM on the PL side; one 8 GB DDR4 (25.6 GB/s peak) and one 8 GB LPDDR4
  (32 GB/s peak).
* Section 5: the PL runs at 260 MHz; observed off-chip bandwidths are 21 GB/s
  (DDR reads), 23.5 GB/s (DDR writes), and 20.5 GB/s (LPDDR reads); the
  AIE/PL boundary offers 234 input and 156 output 64-bit streams.
* Section 5.3: reaching the 6.78 TFLOPS GEMM peak requires each loaded weight
  to be reused more than 661 times.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VCK190Spec", "VCK190"]

GIB = 1 << 30
MIB = 1 << 20
KIB = 1 << 10


@dataclass(frozen=True)
class VCK190Spec:
    """Static description of the VCK190 platform used by RSN-XNN."""

    # Clocks
    pl_clock_hz: float = 260e6
    aie_clock_hz: float = 1.25e9

    # AI engine array
    aie_rows: int = 8
    aie_cols: int = 50
    aie_tile_memory_bytes: int = 32 * KIB
    peak_fp32_flops: float = 8e12

    # PL on-chip memories
    bram_bytes: int = 4 * MIB
    uram_bytes: int = 16 * MIB

    # Off-chip memories (peak and observed)
    ddr_capacity_bytes: int = 8 * GIB
    lpddr_capacity_bytes: int = 8 * GIB
    ddr_peak_bw: float = 25.6e9
    lpddr_peak_bw: float = 32e9
    ddr_read_bw: float = 21e9
    ddr_write_bw: float = 23.5e9
    lpddr_read_bw: float = 20.5e9

    # PL <-> AIE stream budget (64-bit streams)
    plio_input_streams: int = 234
    plio_output_streams: int = 156
    plio_stream_bits: int = 64

    # Physical / reporting data used by Table 10
    process_nm: int = 7
    die_area_mm2: float = 458.0
    release_year: int = 2021

    # ----------------------------------------------------------- derived

    @property
    def aie_tiles(self) -> int:
        return self.aie_rows * self.aie_cols

    @property
    def peak_flops_per_tile(self) -> float:
        return self.peak_fp32_flops / self.aie_tiles

    @property
    def total_offchip_bw(self) -> float:
        """Aggregate peak off-chip bandwidth (the 57.6 GB/s quoted in Table 5b)."""
        return self.ddr_peak_bw + self.lpddr_peak_bw

    @property
    def observed_offchip_bw(self) -> float:
        """Aggregate observed read bandwidth from both channels."""
        return self.ddr_read_bw + self.lpddr_read_bw

    @property
    def onchip_memory_bytes(self) -> int:
        return self.bram_bytes + self.uram_bytes

    @property
    def plio_input_bw(self) -> float:
        """Aggregate PL->AIE stream bandwidth in bytes/s."""
        return self.plio_input_streams * self.plio_stream_bits / 8 * self.pl_clock_hz

    @property
    def plio_output_bw(self) -> float:
        """Aggregate AIE->PL stream bandwidth in bytes/s."""
        return self.plio_output_streams * self.plio_stream_bits / 8 * self.pl_clock_hz

    def weight_reuse_for_peak(
        self, achieved_flops: float = 6.78e12, bytes_per_element: int = 4
    ) -> float:
        """Minimum times each loaded weight must be reused to hit ``achieved_flops``.

        Derivation used in Section 5.3: sustaining F FLOP/s with 2 FLOPs per
        loaded weight element requires loading F/2 elements per second worth of
        work; with only ``lpddr_read_bw`` bytes/s available each element must be
        reused ``F / 2 / (bw / bytes_per_element)`` times.  For the paper's
        numbers this evaluates to roughly 661.
        """
        elements_per_second = self.lpddr_read_bw / bytes_per_element
        return achieved_flops / 2.0 / elements_per_second


#: The default platform instance used across the library.
VCK190 = VCK190Spec()
