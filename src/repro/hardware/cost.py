"""Scalar design-cost helpers: area and power of one DSE design point.

The area/power models in :mod:`repro.hardware.area` and
:mod:`repro.hardware.power` are calibrated against the paper's published
tables for the *baseline* design (6 MMEs, 6 MemCs, the Fig. 16 inventory).
DSE points vary the FU counts, scratchpad depths, bandwidth scale and -- on
the chiplet axis -- the chip count, so exploration needs the same models
evaluated at arbitrary design parameters.  This module provides exactly
that, as plain-float functions so the scalar runners and the batched
analytic evaluator compute bit-identical cost keys from identical inputs.

Calibration anchors (checked by the test suite):

* ``design_area_luts(6, 6)`` lands near the published 494,855 routed LUTs
  of the full RSN-XNN design (``RSN_XNN_TOTAL_UTILIZATION``).
* The MemC power term at 6 MemCs (6 x 0.072 TFLOPS x 52 W/TFLOPS ~ 22.5 W)
  lands near the paper's 22.91 W, and the full-design power at defaults
  lands near the 98.66 W total of Fig. 15.
"""

from __future__ import annotations

from typing import Optional

from .area import AreaModel
from .link import InterChipLink
from .power import FUPowerInput, PowerModel

__all__ = ["design_area_luts", "design_power_w"]

#: Soft-logic budget of one chip that does not scale with the explored FU
#: counts (mesh interconnect, DMA engines, memory controllers, platform glue).
_BASE_LUTS = 200_000

#: Routed LUTs per MemC (the wide PL-side compute FUs dominate soft logic).
_LUTS_PER_MEMC = 40_000

#: Routed LUTs per MME group's PL-side shim (the arithmetic itself is AIE).
_LUTS_PER_MME = 8_000

#: FU types feeding the decoder structure model (Table 5a's 8 PL FU types).
_DECODER_FU_TYPES = 8

#: PL-side FUs that exist regardless of the explored counts: 3 MemA, 3 MemB
#: (weight/activation scratchpads) -- MME and MemC counts are added on top.
_FIXED_FUS = 6


def design_area_luts(num_mme: int, num_mem_c: int, num_chips: int = 1) -> float:
    """Routed-LUT estimate for a design with the given FU counts.

    Multi-chip designs replicate the full per-chip design, so area scales
    linearly with ``num_chips``.
    """
    if num_mme < 1 or num_mem_c < 1 or num_chips < 1:
        raise ValueError("num_mme, num_mem_c and num_chips must be >= 1")
    decoder = AreaModel().decoder_area(
        _DECODER_FU_TYPES, num_mme + num_mem_c + _FIXED_FUS
    )
    per_chip = (
        _BASE_LUTS
        + num_mem_c * _LUTS_PER_MEMC
        + num_mme * _LUTS_PER_MME
        + decoder.luts
    )
    return float(num_chips * per_chip)


def design_power_w(
    *,
    num_mme: int,
    num_mem_c: int,
    peak_tflops: float,
    memc_tflops: float,
    scratchpad_mb: float,
    offchip_gbs: float,
    num_chips: int = 1,
    link: Optional[InterChipLink] = None,
) -> float:
    """Estimated total power in watts for one design point.

    Parameters mirror the per-chip design: ``peak_tflops`` is the chip's MME
    peak (AIE-side arithmetic), ``memc_tflops`` the aggregate MemC non-matmul
    throughput (PL-side arithmetic), ``scratchpad_mb`` the aggregate on-chip
    scratchpad capacity (MemA + MemB + MemC), and ``offchip_gbs`` the scaled
    DDR+LPDDR bandwidth.  Multi-chip designs replicate the chip inventory
    ``num_chips`` times and add one powered link per pipeline hop.
    """
    if num_chips < 1:
        raise ValueError("num_chips must be >= 1")
    model = PowerModel()
    inventory = (
        FUPowerInput("AIE", count=num_mme, compute_tflops=peak_tflops, on_aie=True),
        FUPowerInput("MemC", count=num_mem_c, compute_tflops=memc_tflops),
        FUPowerInput("Scratchpads", count=_FIXED_FUS, onchip_mb=scratchpad_mb),
        FUPowerInput("Mesh", count=2),
        FUPowerInput("Offchip", count=2, bandwidth_gbs=offchip_gbs),
    )
    per_chip = model.estimate(inventory).total_w
    total = num_chips * per_chip
    if link is not None and num_chips > 1:
        hops = num_chips - 1
        total = total + model.estimate_fu(
            FUPowerInput("Link", count=hops, bandwidth_gbs=hops * link.bandwidth_gbs)
        )
    return total
