"""Off-chip memory channel models (DDR4 and LPDDR4 on the VCK190).

The paper treats the two off-chip channels asymmetrically: LPDDR only loads
read-only weights and biases, while DDR both loads and stores feature maps and
is therefore the channel whose load/store interleaving the RSN instructions
orchestrate (Section 4.4).  The model here captures what the evaluation
depends on:

* distinct observed read and write bandwidths (21 / 23.5 GB/s for DDR,
  20.5 GB/s for LPDDR reads -- Section 5.3),
* an efficiency penalty for strided accesses, which is why RSN-XNN stores
  data off-chip in a 128x64 blocked layout and converts on-chip,
* a single-port constraint: a channel can only serve one direction at a time,
  which is what makes the *ordering* of loads and stores a software decision
  worth exposing in the ISA.
"""

from __future__ import annotations

from dataclasses import dataclass

from .vck190 import VCK190, VCK190Spec

__all__ = ["MemoryChannelModel", "ddr_channel", "lpddr_channel"]


@dataclass
class MemoryChannelModel:
    """Bandwidth/latency model of one off-chip memory channel.

    Parameters
    ----------
    name:
        Channel name (``"DDR"`` or ``"LPDDR"``).
    read_bw / write_bw:
        Observed sequential read/write bandwidth in bytes per second.
    strided_efficiency:
        Multiplier (0..1] applied to bandwidth when an access is strided
        rather than contiguous/blocked.
    request_latency:
        Fixed latency charged once per request (controller + NoC round trip).
    bandwidth_scale:
        Global scaling knob used by the Table 11 bandwidth-sensitivity sweep
        (0.5x, 1x, 2x, 3x).
    """

    name: str
    read_bw: float
    write_bw: float
    strided_efficiency: float = 0.6
    request_latency: float = 1e-6
    bandwidth_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.read_bw <= 0 or self.write_bw <= 0:
            raise ValueError(f"channel {self.name!r}: bandwidths must be positive")
        if not 0 < self.strided_efficiency <= 1:
            raise ValueError(
                f"channel {self.name!r}: strided_efficiency must be in (0, 1]"
            )
        if self.bandwidth_scale <= 0:
            raise ValueError(f"channel {self.name!r}: bandwidth_scale must be positive")
        #: lifetime counters (bytes actually moved through this model).
        self.bytes_read = 0
        self.bytes_written = 0

    # ----------------------------------------------------------- effective BW

    @property
    def effective_read_bw(self) -> float:
        return self.read_bw * self.bandwidth_scale

    @property
    def effective_write_bw(self) -> float:
        return self.write_bw * self.bandwidth_scale

    # ------------------------------------------------------------- accounting

    def read_time(self, nbytes: int, strided: bool = False) -> float:
        """Seconds to read ``nbytes`` from this channel."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        bw = self.effective_read_bw
        if strided:
            bw *= self.strided_efficiency
        self.bytes_read += nbytes
        return self.request_latency + nbytes / bw

    def write_time(self, nbytes: int, strided: bool = False) -> float:
        """Seconds to write ``nbytes`` to this channel."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        bw = self.effective_write_bw
        if strided:
            bw *= self.strided_efficiency
        self.bytes_written += nbytes
        return self.request_latency + nbytes / bw

    def _bulk_time(
        self, bandwidth: float, nbytes: int, requests: int, strided: bool
    ) -> float:
        if requests < 0:
            raise ValueError("requests must be non-negative")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0 or requests == 0:
            return 0.0
        if strided:
            bandwidth *= self.strided_efficiency
        return (
            self.request_latency
            + nbytes / bandwidth
            + (requests - 1) * self.request_latency
        )

    def bulk_read_time(
        self, nbytes: int, requests: int = 1, strided: bool = False
    ) -> float:
        """Seconds to read ``nbytes`` split across ``requests`` transfers.

        Equals the sum of ``requests`` individual :meth:`read_time` calls with
        a single aggregate bandwidth term -- the per-request fixed latency is
        charged once per transfer, exactly as the event-driven DDR/LPDDR FUs
        charge it.  Used by the analytic fast-model backend to tally channel
        occupancy without enumerating every transfer; unlike
        :meth:`read_time` it is a pure query and does not touch the
        ``bytes_read`` traffic counter.
        """
        return self._bulk_time(self.effective_read_bw, nbytes, requests, strided)

    def bulk_write_time(self, nbytes: int, requests: int = 1,
                        strided: bool = False) -> float:
        """Seconds to write ``nbytes`` split across ``requests`` transfers.

        Pure query; does not touch the ``bytes_written`` traffic counter.
        """
        return self._bulk_time(self.effective_write_bw, nbytes, requests, strided)

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0

    def scaled(self, factor: float) -> "MemoryChannelModel":
        """A copy of this channel with its bandwidth scaled (Table 11 sweeps)."""
        return MemoryChannelModel(
            name=self.name,
            read_bw=self.read_bw,
            write_bw=self.write_bw,
            strided_efficiency=self.strided_efficiency,
            request_latency=self.request_latency,
            bandwidth_scale=self.bandwidth_scale * factor,
        )


def ddr_channel(
    spec: VCK190Spec = VCK190, bandwidth_scale: float = 1.0
) -> MemoryChannelModel:
    """The VCK190's DDR4 channel (feature-map loads and stores)."""
    return MemoryChannelModel(
        name="DDR",
        read_bw=spec.ddr_read_bw,
        write_bw=spec.ddr_write_bw,
        bandwidth_scale=bandwidth_scale,
    )


def lpddr_channel(
    spec: VCK190Spec = VCK190, bandwidth_scale: float = 1.0
) -> MemoryChannelModel:
    """The VCK190's LPDDR4 channel (read-only weights and biases)."""
    return MemoryChannelModel(
        name="LPDDR",
        read_bw=spec.lpddr_read_bw,
        write_bw=spec.lpddr_read_bw,
        bandwidth_scale=bandwidth_scale,
    )
