"""Model of the Versal AI-engine (AIE) array and its use as MME FUs.

The paper virtualises the 400-tile AIE array as six coarse matrix
multiplication engine (MME) FUs (Section 4.1).  Two aspects of the array
matter for the evaluation and are modelled here:

* **Stream budget** (Fig. 17).  Each AIE tile wants two input streams and one
  output stream, but the PL/AIE boundary only offers 234 inputs and 156
  outputs.  RSN-XNN groups 64 tiles into a 4x4x4 block per MME, shares each
  input stream between 4 tiles and cascades partial results through 4 tiles so
  that 6 groups fit in 192 input / 96 output streams.
* **GEMM kernel efficiency** (Table 6a).  The per-tile matrix-multiply kernel
  does not reach the tile's peak throughput; efficiency depends on the tile
  shape because stream synchronisation and loop overheads are amortised over
  ``m*k*n`` multiply-accumulates.  We model the overhead as
  ``alpha*m*n + beta*(m*k + k*n) + gamma`` cycles-equivalent, with
  coefficients calibrated so the relative ordering and magnitudes of the
  paper's measured points (32x16x32 < 32x32x16 < 32x32x32) are preserved.

The published comparison points for Table 6a (CHARM, MaxEVA, AMA) are
literature values; they are kept here as constants so the benchmark can print
them next to the model's own numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .vck190 import VCK190, VCK190Spec

__all__ = ["StreamBudget", "MMEGroupPlan", "AIEArrayModel", "PUBLISHED_AIE_GEMM"]


#: Published single-kernel AIE GEMM results used as comparison rows in
#: Table 6a: method -> (tile shape, AIE tiles used, GFLOPS).
PUBLISHED_AIE_GEMM: Dict[str, Tuple[Tuple[int, int, int], int, float]] = {
    "CHARM": ((32, 32, 32), 384, 4504.46),
    "MaxEVA": ((32, 32, 32), 390, 5442.11),
    "AMA": ((32, 32, 32), 342, 5867.29),
}


@dataclass(frozen=True)
class StreamBudget:
    """Available and requested PL<->AIE streams."""

    inputs_available: int
    outputs_available: int
    inputs_used: int
    outputs_used: int

    @property
    def fits(self) -> bool:
        return (self.inputs_used <= self.inputs_available
                and self.outputs_used <= self.outputs_available)


@dataclass(frozen=True)
class MMEGroupPlan:
    """How AIE tiles are grouped into MME FUs (the Fig. 17 organisation).

    Parameters
    ----------
    num_groups:
        Number of MME FUs (6 in RSN-XNN).
    tiles_per_group:
        AIE tiles per MME (64, arranged 4x4x4).
    input_share:
        How many tiles share one input stream (4).
    cascade_length:
        How many tiles chain their outputs through the cascade port before one
        stream returns to the PL (4).
    """

    num_groups: int = 6
    tiles_per_group: int = 64
    input_share: int = 4
    cascade_length: int = 4

    @property
    def tiles_used(self) -> int:
        return self.num_groups * self.tiles_per_group

    @property
    def input_streams(self) -> int:
        # Two logical inputs (LHS, RHS) per tile, shared input_share ways.
        return self.num_groups * (2 * self.tiles_per_group) // self.input_share

    @property
    def output_streams(self) -> int:
        return self.num_groups * self.tiles_per_group // self.cascade_length

    def budget(self, spec: VCK190Spec = VCK190) -> StreamBudget:
        return StreamBudget(
            inputs_available=spec.plio_input_streams,
            outputs_available=spec.plio_output_streams,
            inputs_used=self.input_streams,
            outputs_used=self.output_streams,
        )


class AIEArrayModel:
    """Throughput model of the AIE array organised as MME FUs.

    Parameters
    ----------
    spec:
        Platform description (clock rates, tile count, peak FLOPS).
    plan:
        Tile grouping plan; defaults to the RSN-XNN 6x64 organisation.
    overhead_alpha / overhead_beta / overhead_gamma:
        Coefficients of the per-kernel overhead model (see module docstring).
    """

    def __init__(
        self,
        spec: VCK190Spec = VCK190,
        plan: Optional[MMEGroupPlan] = None,
        overhead_alpha: float = 1.5,
        overhead_beta: float = 1.0,
        overhead_gamma: float = 1200.0,
    ):
        self.spec = spec
        self.plan = plan or MMEGroupPlan()
        self.overhead_alpha = overhead_alpha
        self.overhead_beta = overhead_beta
        self.overhead_gamma = overhead_gamma

    # ------------------------------------------------------------ throughput

    @property
    def tile_peak_flops(self) -> float:
        """Peak FP32 FLOP/s of a single AIE tile."""
        return self.spec.peak_flops_per_tile

    def kernel_efficiency(self, tile_shape: Tuple[int, int, int]) -> float:
        """Fraction of a tile's peak achieved by one (m, k, n) GEMM kernel."""
        m, k, n = tile_shape
        if min(m, k, n) <= 0:
            raise ValueError(f"tile dimensions must be positive, got {tile_shape}")
        useful = m * k * n
        overhead = (
            self.overhead_alpha * m * n
            + self.overhead_beta * (m * k + k * n)
            + self.overhead_gamma
        )
        return useful / (useful + overhead)

    def array_gemm_flops(
        self,
        tile_shape: Tuple[int, int, int] = (32, 32, 32),
        plan: Optional[MMEGroupPlan] = None,
    ) -> float:
        """Achieved FLOP/s of the whole array for a PL-fed GEMM (Table 6a)."""
        plan = plan or self.plan
        return (
            plan.tiles_used * self.tile_peak_flops * self.kernel_efficiency(tile_shape)
        )

    def mme_flops(self, tile_shape: Tuple[int, int, int] = (32, 32, 32)) -> float:
        """Achieved FLOP/s of one MME FU (one group of tiles)."""
        return self.array_gemm_flops(tile_shape) / self.plan.num_groups

    def utilization(self, tile_shape: Tuple[int, int, int] = (32, 32, 32)) -> float:
        """Achieved fraction of the full array's peak (including unused tiles)."""
        return self.array_gemm_flops(tile_shape) / self.spec.peak_fp32_flops

    # ------------------------------------------------------------ data rates

    def mme_input_bw(self) -> float:
        """Bytes/s one MME FU can accept from the PL over its input streams."""
        streams = self.plan.input_streams / self.plan.num_groups
        return streams * self.spec.plio_stream_bits / 8 * self.spec.pl_clock_hz

    def mme_output_bw(self) -> float:
        """Bytes/s one MME FU can return to the PL over its output streams."""
        streams = self.plan.output_streams / self.plan.num_groups
        return streams * self.spec.plio_stream_bits / 8 * self.spec.pl_clock_hz

    def mme_local_memory_bytes(self) -> int:
        """Aggregate local scratchpad of the tiles behind one MME FU."""
        return self.plan.tiles_per_group * self.spec.aie_tile_memory_bytes

    # -------------------------------------------------------------- validity

    def validate_plan(self, plan: Optional[MMEGroupPlan] = None) -> StreamBudget:
        """Check a grouping plan against the platform's stream budget."""
        plan = plan or self.plan
        if plan.tiles_used > self.spec.aie_tiles:
            raise ValueError(
                f"plan uses {plan.tiles_used} tiles but the array only has "
                f"{self.spec.aie_tiles}"
            )
        budget = plan.budget(self.spec)
        if not budget.fits:
            raise ValueError(
                f"plan needs {budget.inputs_used} input / {budget.outputs_used} output "
                f"streams but only {budget.inputs_available}/{budget.outputs_available} "
                "are available"
            )
        return budget
