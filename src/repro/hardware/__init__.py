"""Models of the hardware platforms the paper evaluates on.

Nothing in this package simulates behaviour cycle by cycle; it provides the
*parameters* (clocks, peak throughputs, bandwidths, stream budgets, power and
area coefficients) that the RSN-XNN overlay simulation and the analytical
comparisons consume.  All numbers come from the paper (Sections 2.1, 5) and
from the public datasheets it cites; each module documents its sources.
"""

from .aie import AIEArrayModel, MMEGroupPlan, StreamBudget
from .cost import design_area_luts, design_power_w
from .gpu import GPU_SPECS, GPUModel, GPUSpec
from .link import InterChipLink
from .memory import MemoryChannelModel, ddr_channel, lpddr_channel
from .power import PowerModel, PowerReport
from .area import AreaModel, AreaReport, DECODER_AREA_COMPARISON
from .vck190 import VCK190, VCK190Spec

__all__ = [
    "AIEArrayModel",
    "AreaModel",
    "AreaReport",
    "DECODER_AREA_COMPARISON",
    "GPU_SPECS",
    "GPUModel",
    "GPUSpec",
    "InterChipLink",
    "MMEGroupPlan",
    "MemoryChannelModel",
    "PowerModel",
    "PowerReport",
    "StreamBudget",
    "VCK190",
    "VCK190Spec",
    "ddr_channel",
    "design_area_luts",
    "design_power_w",
    "lpddr_channel",
]
