"""Network transport for the distributed work queue: ``spoold`` + NetSpool.

``python -m repro.runner spoold --spool DIR`` runs a :class:`SpoolServer`: a
TCP job server that fronts a *server-local* directory :class:`Spool` and
speaks a JSON-lines protocol implementing the exact
enqueue / claim-exclusively / heartbeat / result / orphan-requeue contract
of the filesystem transport.  Submitters and workers connect with
``--spool tcp://host:port`` (:class:`NetSpool`, selected by
:func:`repro.runner.executors.open_spool`), so no participant needs a
shared filesystem.

Why a thin front-end over the directory spool rather than an in-memory
queue:

* **Restart recovery is free.**  All queue state (pending jobs, claims,
  results, heartbeats) lives on the server's local disk in the proven
  spool layout; a restarted server resumes exactly where it stopped, with
  jobs in flight recovered by the ordinary orphan-requeue path.
* **One authoritative clock.**  Every mtime -- heartbeats, claims -- is
  stamped by the server host, and every staleness comparison samples the
  same host's clock, so the NFS clock-skew bug family (three fixed so far
  across PRs 6 and 7) cannot occur by construction: there is no second
  clock.
* **Exclusivity is inherited.**  A claim is still one atomic rename on one
  (local) filesystem, serialised under the server's lock.

Protocol: one JSON object per line in each direction.  Requests carry an
``op``; responses are ``{"ok": true, ...}`` or ``{"ok": false, "error":
message}``.  A malformed line is answered with an error and the connection
is closed; an unknown ``op`` is an error but keeps the connection.  Jobs
and results cross the wire as *raw text*, so corrupted-payload recovery
behaves identically over both transports -- and so the transport is
payload-shape-agnostic: scalar jobs and the chunk jobs of sharded batched
evaluation (a whole generation slice per job file, see
:meth:`repro.runner.executors.WorkQueueExecutor.submit_chunks`) travel
over it unchanged.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .executors import Spool, _sanitize_id

__all__ = [
    "DEFAULT_PORT",
    "NetSpool",
    "NetSpoolError",
    "PROTOCOL_VERSION",
    "SpoolServer",
    "parse_spool_url",
]

#: bumped on any wire-incompatible change; checked in the ``hello`` handshake.
PROTOCOL_VERSION = 1

#: default port when a ``tcp://host`` URL omits one.
DEFAULT_PORT = 7733


def parse_spool_url(url: str) -> Tuple[str, int]:
    """Split ``tcp://host[:port]`` into ``(host, port)``.

    Raises ``ValueError`` for anything else -- the caller chose the network
    transport explicitly, so a malformed URL is a configuration error, not
    something to fall back from.
    """
    if not url.startswith("tcp://"):
        raise ValueError(f"not a tcp:// spool URL: {url!r}")
    rest = url[len("tcp://") :].rstrip("/")
    host, separator, port_text = rest.rpartition(":")
    if not separator:
        host, port_text = rest, str(DEFAULT_PORT)
    if not host:
        raise ValueError(f"spool URL has no host: {url!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"spool URL has a non-numeric port: {url!r}") from None
    if not 0 < port < 65536:
        raise ValueError(f"spool URL port out of range: {url!r}")
    return host, port


class NetSpoolError(OSError):
    """The job server rejected an operation or cannot be reached."""


class _NetClaimedJob:
    """A claim received over the network: the job id plus its raw text.

    Mirrors :class:`repro.runner.executors._ClaimedJob` for the worker loop;
    the payload travelled with the claim, so :meth:`read` is local.
    """

    __slots__ = ("job_id", "raw", "worker_id")

    def __init__(self, job_id: str, raw: str, worker_id: str):
        self.job_id = job_id
        self.raw = raw
        self.worker_id = worker_id

    def read(self) -> str:
        return self.raw


# --------------------------------------------------------------------- server


class _SpoolRequestHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, answer each on its own line."""

    server: "_SpoolTCPServer"

    def handle(self) -> None:
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request is not a JSON object")
            except (ValueError, json.JSONDecodeError) as error:
                # A peer that cannot frame JSON lines cannot be reasoned
                # with: answer once and drop the connection.
                self._send({"ok": False, "error": f"malformed request: {error}"})
                return
            try:
                response = self.server.owner.dispatch(request)
            except Exception as error:  # never kill the server thread
                response = {"ok": False, "error": f"{type(error).__name__}: {error}"}
            try:
                self._send(response)
            except OSError:
                return  # peer went away mid-reply

    def _send(self, response: Dict[str, Any]) -> None:
        self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
        self.wfile.flush()


class _SpoolTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    owner: "SpoolServer"


class SpoolServer:
    """The ``spoold`` job server: a JSON-lines TCP front over a local Spool.

    All spool operations run under one lock, so the whole queue behaves as
    a single serialised actor -- claims, requeues, and result publishes
    cannot interleave.  The underlying :class:`Spool` directory holds every
    piece of state; stopping and restarting a server on the same directory
    (and port) resumes the queue with nothing lost.
    """

    def __init__(self, root: os.PathLike, host: str = "127.0.0.1", port: int = 0):
        self.spool = Spool(root).ensure()
        self._lock = threading.Lock()
        self._requeues: Dict[str, int] = {}
        self._tcp = _SpoolTCPServer((host, port), _SpoolRequestHandler)
        self._tcp.owner = self

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"tcp://{host}:{port}"

    def serve_forever(self) -> None:
        self._tcp.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        self._tcp.shutdown()

    def close(self) -> None:
        self._tcp.server_close()

    def __enter__(self) -> "SpoolServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
        self.close()

    # ------------------------------------------------------------- dispatch

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return {"ok": False, "error": f"unknown op: {op!r}"}
        return handler(request)

    def _op_hello(self, request: Dict[str, Any]) -> Dict[str, Any]:
        proto = request.get("proto")
        if proto != PROTOCOL_VERSION:
            return {
                "ok": False,
                "error": f"protocol version mismatch: client speaks {proto!r}, "
                f"server speaks {PROTOCOL_VERSION}",
            }
        return {"ok": True, "proto": PROTOCOL_VERSION, "root": str(self.spool.root)}

    def _op_enqueue(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self.spool.enqueue(str(request["job"]), request["payload"])
        return {"ok": True}

    def _op_enqueue_many(self, request: Dict[str, Any]) -> Dict[str, Any]:
        jobs = [(str(job_id), payload) for job_id, payload in request["jobs"]]
        with self._lock:
            count = self.spool.enqueue_many(jobs)
        return {"ok": True, "count": count}

    def _op_claim(self, request: Dict[str, Any]) -> Dict[str, Any]:
        worker_id = str(request["worker"])
        with self._lock:
            claimed = self.spool.claim(worker_id)
            if claimed is None:
                return {"ok": True, "job": None}
            try:
                raw = claimed.path.read_text()
            except OSError:
                # Unreadable claim (local-disk failure): surrender it so the
                # exclusivity invariant holds, and report empty-handed.
                try:
                    os.replace(
                        claimed.path, self.spool.pending_dir / f"{claimed.job_id}.json"
                    )
                except OSError:
                    pass
                return {"ok": True, "job": None}
        return {"ok": True, "job": claimed.job_id, "raw": raw}

    def _op_result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job_id = str(request["job"])
        worker_id = _sanitize_id(str(request["worker"]))
        claim_path = self.spool.claimed_dir / f"{job_id}@@{worker_id}.json"
        with self._lock:
            if not claim_path.exists():
                # The claim was requeued away (orphan recovery) while the
                # worker was stalled: the job belongs to someone else now.
                # Dropping the stale result here is the single-clock
                # equivalent of the fs worker's vanished-claim path.
                return {"ok": True, "accepted": False}
            self.spool.write_result(job_id, request["payload"])
            try:
                claim_path.unlink()
            except OSError:
                pass
        return {"ok": True, "accepted": True}

    def _op_take_results(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            taken = self.spool.take_results(str(request["prefix"]))
        return {"ok": True, "results": taken}

    def _op_requeue_orphans(self, request: Dict[str, Any]) -> Dict[str, Any]:
        timeout_s = float(request["timeout_s"])
        prefix = request.get("prefix")
        job_ids = request.get("job_ids")
        with self._lock:
            requeued = self.spool.requeue_orphans(
                timeout_s,
                job_ids=job_ids,
                prefix=None if prefix is None else str(prefix),
            )
            for job_id in requeued:
                self._requeues[job_id] = self._requeues.get(job_id, 0) + 1
        return {"ok": True, "requeued": requeued}

    def _op_beat(self, request: Dict[str, Any]) -> Dict[str, Any]:
        info = request.get("info")
        with self._lock:
            self.spool.beat(str(request["worker"]), info=info)
        return {"ok": True}

    def _op_clear_beat(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self.spool.clear_heartbeat(str(request["worker"]))
        return {"ok": True}

    def _op_live_workers(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            workers = self.spool.live_workers(within_s=float(request["within_s"]))
        return {"ok": True, "workers": workers}

    def _op_abandon(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self.spool.abandon(str(request["prefix"]))
        return {"ok": True}

    def _op_now(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # The single authoritative clock: the server host's view of its own
        # spool filesystem, the same clock that stamps every mtime above.
        return {"ok": True, "now": self.spool.fs_now("netq-now")}

    def _op_memo_sync(self, request: Dict[str, Any]) -> Dict[str, Any]:
        entries = request.get("entries") or []
        known = request.get("known") or []
        if not isinstance(entries, list) or not isinstance(known, list):
            return {"ok": False, "error": "memo_sync: entries/known must be lists"}
        with self._lock:
            fetched = self.spool.memo_sync(entries, known=[str(k) for k in known])
        return {"ok": True, "entries": fetched}

    def _op_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            status = self.spool.status()
            status["requeues"] = dict(self._requeues)
        return {"ok": True, "status": status}

    def _op_gc(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            report = self.spool.gc(float(request["max_age_s"]))
        return {"ok": True, "report": report}


# --------------------------------------------------------------------- client


class NetSpool:
    """Client half of the network transport: the :class:`Spool` surface
    spoken to a ``spoold`` server over one persistent TCP connection.

    The connection is shared between the worker's main loop and its
    heartbeat thread, so every round-trip holds a lock.  On a connection
    error each call reconnects and retries once; if the server is still
    unreachable, polling operations (``claim``/``take_results``/
    ``requeue_orphans``/``live_workers``) degrade to their empty results so
    the caller's poll loop simply tries again -- which is exactly what
    lets submitters and workers ride out a server restart -- while
    one-shot operations (``ensure``/``status``/``gc``) raise
    :class:`NetSpoolError`.
    """

    def __init__(self, url: str):
        self.url = url
        self.host, self.port = parse_spool_url(url)
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._log_dir: Optional[Path] = None

    # ------------------------------------------------------------ transport

    def _connect_locked(self) -> None:
        self._disconnect_locked()
        sock = socket.create_connection((self.host, self.port), timeout=30.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._file = sock.makefile("rwb")

    def _disconnect_locked(self) -> None:
        for closer in (self._file, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._file = None
        self._sock = None

    def _roundtrip_locked(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._file is None:
            self._connect_locked()
        assert self._file is not None
        self._file.write(json.dumps(request).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not isinstance(response, dict):
            raise ConnectionError("server sent a non-object response")
        return response

    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round-trip, with a single reconnect retry.

        Raises :class:`NetSpoolError` both for unreachable servers and for
        server-side rejections; tolerant wrappers below catch it.
        """
        with self._lock:
            try:
                response = self._roundtrip_locked(request)
            except (OSError, ValueError):
                # Stale connection (server restarted, idle timeout): one
                # fresh connection, one retry.  Every operation in this
                # protocol is safe to retry -- the ambiguous case, a claim
                # whose response was lost, leaves a server-side claim that
                # ordinary orphan recovery requeues.
                try:
                    self._connect_locked()
                    response = self._roundtrip_locked(request)
                except (OSError, ValueError) as error:
                    self._disconnect_locked()
                    raise NetSpoolError(
                        f"spool server {self.url} unreachable: {error}"
                    ) from None
        if not response.get("ok"):
            raise NetSpoolError(
                f"spool server {self.url} rejected {request.get('op')!r}: "
                f"{response.get('error', 'unknown error')}"
            )
        return response

    # -------------------------------------------------------- spool surface

    def ensure(self) -> "NetSpool":
        self._call({"op": "hello", "proto": PROTOCOL_VERSION})
        return self

    def describe(self) -> str:
        return self.url

    def close(self) -> None:
        with self._lock:
            self._disconnect_locked()

    def worker_log_dir(self) -> Path:
        """Logs cannot live on the (remote) spool; use a local scratch dir."""
        if self._log_dir is None:
            self._log_dir = Path(tempfile.mkdtemp(prefix="repro-netspool-logs-"))
        return self._log_dir

    def enqueue(self, job_id: str, payload: Dict[str, Any]) -> None:
        self._call({"op": "enqueue", "job": job_id, "payload": payload})

    def enqueue_many(self, jobs: Sequence[Tuple[str, Dict[str, Any]]]) -> int:
        if not jobs:
            return 0
        response = self._call({"op": "enqueue_many", "jobs": list(jobs)})
        return int(response.get("count", len(jobs)))

    def claim(self, worker_id: str) -> Optional[_NetClaimedJob]:
        try:
            response = self._call({"op": "claim", "worker": worker_id})
        except NetSpoolError:
            return None  # server briefly away: the poll loop retries
        job_id = response.get("job")
        if job_id is None:
            return None
        return _NetClaimedJob(str(job_id), str(response.get("raw", "")), worker_id)

    def finish(self, claimed: _NetClaimedJob, payload: Dict[str, Any]) -> bool:
        try:
            response = self._call(
                {
                    "op": "result",
                    "job": claimed.job_id,
                    "worker": claimed.worker_id,
                    "payload": payload,
                }
            )
        except NetSpoolError:
            # Result lost with the connection: the claim goes stale on the
            # server and orphan recovery re-runs the job (byte-identical by
            # the determinism contract).
            return False
        return bool(response.get("accepted"))

    def take_results(self, prefix: str) -> Dict[str, str]:
        try:
            response = self._call({"op": "take_results", "prefix": prefix})
        except NetSpoolError:
            return {}
        results = response.get("results")
        return dict(results) if isinstance(results, dict) else {}

    def requeue_orphans(
        self,
        orphan_timeout_s: float,
        job_ids: Optional[Sequence[str]] = None,
        now: Optional[float] = None,
        prefix: Optional[str] = None,
    ) -> List[str]:
        # ``now`` is deliberately not shipped: staleness is judged on the
        # server's own clock, the only clock in this transport.
        request: Dict[str, Any] = {
            "op": "requeue_orphans",
            "timeout_s": orphan_timeout_s,
        }
        if job_ids is not None:
            request["job_ids"] = list(job_ids)
        if prefix is not None:
            request["prefix"] = prefix
        try:
            response = self._call(request)
        except NetSpoolError:
            return []
        requeued = response.get("requeued")
        return [str(job_id) for job_id in requeued] if requeued else []

    def beat(self, worker_id: str, info: Optional[Dict[str, Any]] = None) -> None:
        try:
            self._call({"op": "beat", "worker": worker_id, "info": info})
        except NetSpoolError:
            pass  # a missed beat only risks a harmless requeue

    def live_workers(self, within_s: float, now: Optional[float] = None) -> List[str]:
        try:
            response = self._call({"op": "live_workers", "within_s": within_s})
        except NetSpoolError:
            return []
        workers = response.get("workers")
        return [str(worker) for worker in workers] if workers else []

    def clear_heartbeat(self, worker_id: str) -> None:
        try:
            self._call({"op": "clear_beat", "worker": worker_id})
        except NetSpoolError:
            pass

    def abandon(self, prefix: str) -> None:
        try:
            self._call({"op": "abandon", "prefix": prefix})
        except NetSpoolError:
            pass  # best-effort cleanup; spool GC sweeps what this misses

    def memo_sync(
        self, entries: Sequence[Dict[str, Any]], known: Sequence[str] = ()
    ) -> List[Dict[str, Any]]:
        """Exchange segment-memo entries through the server's ``memo/``.

        Degrades to an empty exchange when the server is away *or* predates
        the op (an older server answers "unknown op", which :meth:`_call`
        raises as :class:`NetSpoolError` too) -- the memo is an accelerator,
        so a sweep against a PR-8-era ``spoold`` simply runs unwarmed.
        """
        try:
            response = self._call(
                {"op": "memo_sync", "entries": list(entries), "known": list(known)}
            )
        except NetSpoolError:
            return []
        fetched = response.get("entries")
        return [e for e in fetched if isinstance(e, dict)] if fetched else []

    def fs_now(self, token: str) -> float:
        try:
            response = self._call({"op": "now"})
        except NetSpoolError:
            return time.time()
        return float(response["now"])

    def status(self) -> Dict[str, Any]:
        return dict(self._call({"op": "status"})["status"])

    def gc(self, max_age_s: float) -> Dict[str, Any]:
        if max_age_s < 0:
            raise ValueError(f"max_age_s must be >= 0, got {max_age_s}")
        return dict(self._call({"op": "gc", "max_age_s": max_age_s})["report"])
