"""The sweep front-end: resolve cache hits, hand the rest to an executor.

:func:`run_sweep` takes scenario names (or :class:`Scenario` objects),
resolves cache hits first, and hands the remaining scenarios to an
:class:`~repro.runner.executors.Executor` -- serial, local process pool, or
the distributed work queue (:mod:`repro.runner.executors`).  Executors
receive only JSON-able scenarios, so nothing non-picklable ever crosses a
process (or host) boundary and results are identical however they were
computed (in-process, in a pool worker, on another machine, or read back
from the cache -- the determinism and executor-contract suites assert
exactly this).

Every sweep runs on one execution *backend*: the event-driven ``"engine"``
(cycle-level, slow, exact) or the closed-form ``"analytic"`` fast model
(roofline lower bounds, no event loop, orders of magnitude faster).  The
backend is part of the cache identity, so engine and analytic results never
collide on disk.

Batch-capable kinds additionally travel as **chunk jobs**: contiguous
slices of a generation, each evaluated in a single batch-runner call
wherever the executor lands it (in-process, pool worker, or a detached
workqueue worker).  :func:`run_sweep` shards cache-missing batch-capable
scenarios into chunks on distributed executors (``chunk_size`` selects the
policy), and :func:`evaluate_chunked` is the list-of-params front door the
exploration layer uses -- with per-chunk result caching so warm reruns
skip whole chunks.  Chunk results splice back in submission order, so the
outcome is byte-identical to the serial batched path by the batch-runner
equality contract.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .cache import ResultCache, configure_segment_memo
from .executors import ChunkJob, ChunkResult, Executor, SerialExecutor, default_executor
from .scenarios import BACKENDS, DEFAULT_BACKEND, REGISTRY, Scenario

__all__ = [
    "SweepOutcome",
    "auto_chunk_size",
    "evaluate_chunked",
    "partition_chunks",
    "resolve_chunk_size",
    "run_sweep",
]

#: ``chunk_size`` policy values accepted everywhere the knob appears (the
#: CLI, :func:`run_sweep`, :func:`evaluate_chunked`):
#:
#: * ``None``      -- default policy: serial executors evaluate the whole
#:   generation in one batch call; distributed executors shard it with
#:   :func:`auto_chunk_size`.
#: * ``"auto"``    -- shard with :func:`auto_chunk_size` on any executor.
#: * ``"off"``     -- never batch: one scalar job per scenario everywhere
#:   (the pre-chunking behaviour, kept as the benchmark baseline and as an
#:   escape hatch).
#: * ``int >= 1``  -- shard into chunks of exactly this many points.
CHUNK_SIZE_POLICIES = (None, "auto", "off")


@dataclass
class SweepOutcome:
    """Result of one scenario within a sweep."""

    scenario: str
    kind: str
    result: Dict[str, Any]
    elapsed_s: float
    cached: bool
    backend: str = DEFAULT_BACKEND

    def metric(self) -> str:
        """A compact human-readable headline number for CLI tables."""
        result = self.result
        for key, fmt in (
            ("latency_ms", "{:.3f} ms"),
            ("latency_s", "{:.3e} s"),
            ("gflops", "{:.0f} GFLOPS"),
            ("events", "{} events"),
            ("end_time", "{:.3e} s"),
        ):
            if key in result and result[key] is not None:
                return fmt.format(result[key])
        return f"{len(result)} field(s)"


def _resolve(scenarios: Iterable[Union[str, Scenario]]) -> List[Scenario]:
    resolved = []
    for item in scenarios:
        resolved.append(item if isinstance(item, Scenario) else REGISTRY.get(item))
    return resolved


def _run_one(
    scenario: Scenario,
    backend: str = DEFAULT_BACKEND,
    segment_memo_dir: Optional[str] = None,
) -> Tuple[str, Dict[str, Any], float]:
    """Worker entry point: execute one scenario on one backend.

    The scenario object itself crosses the process boundary (it is a frozen
    dataclass of JSON-able values), so ad-hoc scenarios that are not in the
    registry run with exactly the parameters they carry; only their *kind*
    must be registered.  ``segment_memo_dir`` re-attaches (or, when None,
    detaches) the on-disk segment-memo layer in workers (under fork the
    parent's state is already inherited; ``set_root`` is idempotent then).
    """
    # The import populates the kind registry in freshly spawned workers;
    # under the default fork start method it is an instant no-op.
    from . import library  # noqa: F401
    configure_segment_memo(segment_memo_dir)
    start = time.perf_counter()
    result = REGISTRY.run(scenario, backend=backend)
    return scenario.name, result, time.perf_counter() - start


def _run_batched(
    scenarios: List[Scenario], backend: str
) -> Tuple[List[Scenario], List[Tuple[Scenario, Dict[str, Any], float]]]:
    """Evaluate the batch-capable kinds of a sweep generation-at-a-time.

    Scenarios whose kind registers a batch runner for ``backend`` are grouped
    by kind and handed to it in one call each -- the in-process fast path for
    serial sweeps (a batch runner's contract is result equality with the
    scalar runner, so outcomes are indistinguishable).  Returns the scenarios
    that must still go through the executor, plus ``(scenario, result,
    elapsed_s)`` tuples for the batched ones; the batch call's wall time is
    attributed evenly across its scenarios.
    """
    groups: Dict[str, List[Scenario]] = {}
    remaining: List[Scenario] = []
    for scenario in scenarios:
        if REGISTRY.batch_runner(scenario.kind, backend) is None:
            remaining.append(scenario)
        else:
            groups.setdefault(scenario.kind, []).append(scenario)
    executed: List[Tuple[Scenario, Dict[str, Any], float]] = []
    for kind, group in groups.items():
        runner = REGISTRY.batch_runner(kind, backend)
        start = time.perf_counter()
        results = runner([dict(scenario.params) for scenario in group])
        elapsed_s = (time.perf_counter() - start) / len(group)
        if len(results) != len(group):
            raise RuntimeError(
                f"batch runner for kind {kind!r} ({backend} backend) returned "
                f"{len(results)} results for {len(group)} scenarios"
            )
        for scenario, result in zip(group, results):
            executed.append((scenario, result, elapsed_s))
    return remaining, executed


# ------------------------------------------------------------------ chunking


def partition_chunks(count: int, size: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges covering ``count`` points in
    chunks of ``size`` (the final chunk may be shorter).

    ``count == 0`` partitions into no chunks; ``size`` larger than
    ``count`` yields a single chunk spanning everything.  Ranges are in
    ascending order -- splicing chunk results back by these ranges
    reproduces the original point order regardless of the order chunks
    *complete* in.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    return [(start, min(start + size, count)) for start in range(0, count, size)]


def auto_chunk_size(
    total: int,
    align: int = 1,
    target_jobs: int = 32,
    floor: int = 16,
    ceiling: int = 4096,
) -> int:
    """The adaptive chunk size ``--chunk-size auto`` resolves to.

    Targets ``target_jobs`` jobs over ``total`` points -- enough fan-out to
    keep a realistic worker fleet busy with several chunks each (so a slow
    host sheds work to fast ones), few enough that per-job spool overhead
    stays negligible against a batch call.  ``floor`` keeps tiny
    generations from fragmenting into pointless jobs and ``ceiling`` bounds
    job-file size (a chunk ships its params as JSON).  ``align`` rounds the
    size to a multiple of the design space's trailing-axis block (see
    :meth:`repro.explore.space.DesignSpace.chunk_alignment`), so chunks cut
    along axis boundaries and batch evaluators see maximal shared leading
    structure.
    """
    if total < 1:
        raise ValueError(f"total must be >= 1, got {total}")
    if align < 1:
        raise ValueError(f"align must be >= 1, got {align}")
    size = min(max(floor, math.ceil(total / target_jobs)), ceiling)
    if align > 1:
        size = max(align, round(size / align) * align)
        size = min(size, max(align, ceiling))
    return max(1, min(size, total))


def resolve_chunk_size(
    chunk_size: Optional[Union[int, str]], total: int, align: int = 1
) -> int:
    """Map a ``chunk_size`` policy value to a concrete size for ``total``
    points (``"off"`` is handled by callers before sharding; here it means
    one point per chunk)."""
    _validate_chunk_size(chunk_size)
    if chunk_size == "off":
        return 1
    if chunk_size is None or chunk_size == "auto":
        return auto_chunk_size(total, align=align)
    return min(int(chunk_size), max(total, 1))


def _validate_chunk_size(chunk_size: Optional[Union[int, str]]) -> None:
    if chunk_size in CHUNK_SIZE_POLICIES:
        return
    if (
        isinstance(chunk_size, int)
        and not isinstance(chunk_size, bool)
        and chunk_size >= 1
    ):
        return
    raise ValueError(
        f"chunk_size must be None, 'auto', 'off', or an int >= 1; "
        f"got {chunk_size!r}"
    )


def _run_chunk(
    chunk: ChunkJob,
    backend: str = DEFAULT_BACKEND,
    segment_memo_dir: Optional[str] = None,
) -> ChunkResult:
    """Worker entry point: execute one chunk job via its batch runner.

    The chunk-side twin of :func:`_run_one` -- module-level and bound only
    to JSON-able arguments so it crosses pickle (pool) and JSON (workqueue)
    boundaries; the workqueue worker rebuilds this exact call from the job
    payload.  Returns the per-point results (in chunk order) plus the batch
    call's wall seconds.
    """
    from . import library  # noqa: F401  (populates the kind registry)

    kind, params_list = chunk
    configure_segment_memo(segment_memo_dir)
    runner = REGISTRY.batch_runner(kind, backend)
    if runner is None:
        raise KeyError(
            f"kind {kind!r} has no batch runner for backend {backend!r}; "
            "chunk jobs require one"
        )
    start = time.perf_counter()
    results = runner([dict(params) for params in params_list])
    elapsed_s = time.perf_counter() - start
    if len(results) != len(params_list):
        raise RuntimeError(
            f"batch runner for kind {kind!r} ({backend} backend) returned "
            f"{len(results)} results for {len(params_list)} points"
        )
    return results, elapsed_s


def _run_chunked(
    scenarios: List[Scenario],
    backend: str,
    executor: Executor,
    chunk_size: Optional[Union[int, str]],
    segment_memo_dir: Optional[str],
) -> Tuple[List[Scenario], List[Tuple[Scenario, Dict[str, Any], float]]]:
    """Shard the batch-capable kinds of a sweep into chunk jobs.

    The distributed counterpart of :func:`_run_batched`: scenarios whose
    kind registers a batch runner are grouped by kind, partitioned into
    contiguous chunks, and submitted through
    :meth:`~repro.runner.executors.Executor.submit_chunks`; the rest go
    back to the caller for the scalar path.  Chunk results splice back in
    submission order, and each chunk's wall time is attributed evenly
    across its points.
    """
    groups: Dict[str, List[Scenario]] = {}
    remaining: List[Scenario] = []
    for scenario in scenarios:
        if REGISTRY.batch_runner(scenario.kind, backend) is None:
            remaining.append(scenario)
        else:
            groups.setdefault(scenario.kind, []).append(scenario)
    if not groups:
        return remaining, []
    chunks: List[ChunkJob] = []
    members: List[List[Scenario]] = []
    for kind, group in groups.items():
        size = resolve_chunk_size(chunk_size, len(group))
        for start, stop in partition_chunks(len(group), size):
            part = group[start:stop]
            chunks.append((kind, [dict(scenario.params) for scenario in part]))
            members.append(part)
    executor.configure(backend=backend, segment_memo_dir=segment_memo_dir)
    raw = executor.submit_chunks(
        chunks,
        partial(_run_chunk, backend=backend, segment_memo_dir=segment_memo_dir),
    )
    executed: List[Tuple[Scenario, Dict[str, Any], float]] = []
    for part, (results, elapsed_s) in zip(members, raw):
        per_point = elapsed_s / len(part)
        for scenario, result in zip(part, results):
            executed.append((scenario, result, per_point))
    return remaining, executed


def evaluate_chunked(
    kind: str,
    params_list: Sequence[Dict[str, Any]],
    backend: str = DEFAULT_BACKEND,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    chunk_size: Optional[Union[int, str]] = None,
    align: int = 1,
) -> Tuple[List[Dict[str, Any]], int]:
    """Batch-evaluate ``params_list`` under ``kind``'s batch runner, sharded
    into chunk jobs across ``executor``, with per-chunk result caching.

    The exploration layer's batched-proxy front door: one parameter mapping
    per point, results returned in input order, byte-identical to a single
    in-process batch call (which is exactly what a serial executor with the
    default ``chunk_size=None`` performs).  ``cache`` stores one entry per
    *chunk*, keyed like per-scenario entries (canonical params + backend +
    code version -- see :meth:`~repro.runner.cache.ResultCache.chunk_key`),
    so a warm rerun skips whole chunks without executing anything;
    ``align`` feeds the auto chunk-size heuristic so cache keys stay stable
    across runs that share a design space.  Returns ``(results,
    cached_points)`` where ``cached_points`` counts points served from the
    chunk cache.
    """
    _validate_chunk_size(chunk_size)
    if REGISTRY.batch_runner(kind, backend) is None:
        raise KeyError(
            f"kind {kind!r} has no batch runner for backend {backend!r}"
        )
    params_list = list(params_list)
    total = len(params_list)
    if total == 0:
        return [], 0
    if executor is None:
        executor = SerialExecutor()
    if chunk_size == "off" or (
        chunk_size is None and isinstance(executor, SerialExecutor)
    ):
        # One chunk spanning the generation: the classic serial batched
        # call ("off" additionally forces it through a single job even on
        # distributed executors -- chunking disabled, not scalarised, since
        # this path exists only for batch-capable kinds).
        size = total
    else:
        size = resolve_chunk_size(chunk_size, total, align=align)
    segment_memo_dir = str(cache.segments_dir) if cache is not None else None
    results: List[Optional[Dict[str, Any]]] = [None] * total
    pending: List[Tuple[int, int]] = []
    cached_points = 0
    for start, stop in partition_chunks(total, size):
        part = params_list[start:stop]
        payload = (
            None
            if (cache is None or force)
            else cache.load_chunk(kind, part, backend=backend)
        )
        if payload is not None:
            results[start:stop] = payload["results"]
            cached_points += stop - start
        else:
            pending.append((start, stop))
    if pending:
        configure_segment_memo(segment_memo_dir)
        executor.configure(backend=backend, segment_memo_dir=segment_memo_dir)
        chunks: List[ChunkJob] = [
            (kind, [dict(params) for params in params_list[start:stop]])
            for start, stop in pending
        ]
        raw = executor.submit_chunks(
            chunks,
            partial(_run_chunk, backend=backend, segment_memo_dir=segment_memo_dir),
        )
        for (start, stop), (chunk_results, elapsed_s) in zip(pending, raw):
            results[start:stop] = chunk_results
            if cache is not None:
                cache.store_chunk(
                    kind,
                    params_list[start:stop],
                    chunk_results,
                    elapsed_s,
                    backend=backend,
                )
    return results, cached_points


def run_sweep(
    scenarios: Sequence[Union[str, Scenario]],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    backend: str = DEFAULT_BACKEND,
    executor: Optional[Executor] = None,
    chunk_size: Optional[Union[int, str]] = None,
) -> List[SweepOutcome]:
    """Execute ``scenarios``, returning one :class:`SweepOutcome` per input.

    Parameters
    ----------
    executor:
        The :class:`~repro.runner.executors.Executor` that computes the
        cache misses -- ``SerialExecutor()`` when omitted.  The executor's
        lifecycle belongs to the caller (one instance can serve many
        sweeps); ``run_sweep`` only calls ``configure`` + ``submit``.
    workers:
        Deprecated alias: ``workers=N`` constructs the executor a plain
        worker count maps to (serial for ``N <= 1``, else a local
        ``ProcessPoolExecutor``).  Mutually exclusive with ``executor``.
    cache:
        Optional :class:`ResultCache`.  Hits skip execution entirely; misses
        are stored after execution.
    force:
        Re-run scenarios even when the cache holds a valid entry (the fresh
        result overwrites it).
    backend:
        Execution backend for every scenario in the sweep (``"engine"`` or
        ``"analytic"``).  Scenarios whose kind does not support the backend
        raise ``KeyError`` before anything executes.
    chunk_size:
        How batch-capable kinds shard into chunk jobs -- one of
        :data:`CHUNK_SIZE_POLICIES` or an explicit ``int``.  The default
        (``None``) keeps serial sweeps on the whole-generation batched path
        and auto-shards on every other executor; ``"off"`` forces one
        scalar job per scenario everywhere.  Kinds without a batch runner
        always take the scalar path regardless.
    """
    if backend not in BACKENDS:
        raise KeyError(f"unknown backend {backend!r}; known: {list(BACKENDS)}")
    _validate_chunk_size(chunk_size)
    if workers is not None:
        if executor is not None:
            raise ValueError(
                "pass either executor= or the deprecated " "workers= alias, not both"
            )
        warnings.warn(
            "run_sweep(workers=...) is deprecated; pass "
            "executor=ProcessPoolExecutor(workers) (or another "
            "repro.runner.executors.Executor) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        executor = default_executor(workers)
    elif executor is None:
        executor = default_executor(None)
    resolved = _resolve(scenarios)
    for scenario in resolved:
        # Fail the whole sweep up front rather than mid-flight in a worker.
        REGISTRY.runner(scenario.kind, backend)

    # Outcomes are keyed by (name, canonical identity) so duplicate inputs
    # execute once, while two ad-hoc scenarios that share a name but differ
    # in parameters stay distinct.
    def _key(scenario: Scenario) -> Tuple[str, str]:
        return scenario.name, scenario.canonical()

    outcomes: Dict[Tuple[str, str], SweepOutcome] = {}
    to_run: List[Scenario] = []
    seen: Set[Tuple[str, str]] = set()
    for scenario in resolved:
        key = _key(scenario)
        # Membership in the seen-keys set (not a scan of ``to_run``, which
        # would make resolution quadratic in the sweep size) decides
        # duplicates exactly once per input.
        if key in seen:
            continue
        seen.add(key)
        payload = (
            None if (cache is None or force) else cache.load(scenario, backend=backend)
        )
        if payload is not None:
            outcomes[key] = SweepOutcome(
                scenario=scenario.name,
                kind=scenario.kind,
                result=payload["result"],
                elapsed_s=payload.get("elapsed_s", 0.0),
                cached=True,
                backend=backend,
            )
        else:
            to_run.append(scenario)

    if to_run:
        # Cache-enabled sweeps persist memoized segments next to the
        # scenario entries; cache-less sweeps still share the in-memory
        # process memo between scenarios.  Configured unconditionally so a
        # cache-less sweep *detaches* any root a previous sweep attached --
        # otherwise it would keep writing into (or crash on a deleted)
        # stale cache directory.
        segment_memo_dir = str(cache.segments_dir) if cache is not None else None
        configure_segment_memo(segment_memo_dir)
        # Serial sweeps route batch-capable kinds through their batch runner
        # generation-at-a-time (shared tallies, vectorized rooflines) instead
        # of one scalar call per scenario.  Distributed executors shard the
        # same kinds into chunk jobs -- contiguous slices that run the batch
        # runner worker-side -- so fan-out no longer forfeits the batching
        # win; ``chunk_size="off"`` restores per-scenario jobs everywhere.
        executed: List[Tuple[Scenario, Dict[str, Any], float]] = []
        if chunk_size == "off":
            pass  # every scenario takes the scalar path below
        elif chunk_size is None and isinstance(executor, SerialExecutor):
            to_run, executed = _run_batched(to_run, backend)
        else:
            to_run, executed = _run_chunked(
                to_run, backend, executor, chunk_size, segment_memo_dir
            )
        if to_run:
            executor.configure(backend=backend, segment_memo_dir=segment_memo_dir)
            raw = executor.submit(
                to_run,
                partial(_run_one, backend=backend, segment_memo_dir=segment_memo_dir),
            )
            executed.extend(
                (scenario, result, elapsed)
                for scenario, (_, result, elapsed) in zip(to_run, raw)
            )
        for scenario, result, elapsed in executed:
            outcomes[_key(scenario)] = SweepOutcome(
                scenario=scenario.name,
                kind=scenario.kind,
                result=result,
                elapsed_s=elapsed,
                cached=False,
                backend=backend,
            )
            if cache is not None:
                cache.store(scenario, result, elapsed, backend=backend)

    return [outcomes[_key(scenario)] for scenario in resolved]
