"""The sweep front-end: resolve cache hits, hand the rest to an executor.

:func:`run_sweep` takes scenario names (or :class:`Scenario` objects),
resolves cache hits first, and hands the remaining scenarios to an
:class:`~repro.runner.executors.Executor` -- serial, local process pool, or
the distributed work queue (:mod:`repro.runner.executors`).  Executors
receive only JSON-able scenarios, so nothing non-picklable ever crosses a
process (or host) boundary and results are identical however they were
computed (in-process, in a pool worker, on another machine, or read back
from the cache -- the determinism and executor-contract suites assert
exactly this).

Every sweep runs on one execution *backend*: the event-driven ``"engine"``
(cycle-level, slow, exact) or the closed-form ``"analytic"`` fast model
(roofline lower bounds, no event loop, orders of magnitude faster).  The
backend is part of the cache identity, so engine and analytic results never
collide on disk.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .cache import ResultCache, configure_segment_memo
from .executors import Executor, SerialExecutor, default_executor
from .scenarios import BACKENDS, DEFAULT_BACKEND, REGISTRY, Scenario

__all__ = ["SweepOutcome", "run_sweep"]


@dataclass
class SweepOutcome:
    """Result of one scenario within a sweep."""

    scenario: str
    kind: str
    result: Dict[str, Any]
    elapsed_s: float
    cached: bool
    backend: str = DEFAULT_BACKEND

    def metric(self) -> str:
        """A compact human-readable headline number for CLI tables."""
        result = self.result
        for key, fmt in (
            ("latency_ms", "{:.3f} ms"),
            ("latency_s", "{:.3e} s"),
            ("gflops", "{:.0f} GFLOPS"),
            ("events", "{} events"),
            ("end_time", "{:.3e} s"),
        ):
            if key in result and result[key] is not None:
                return fmt.format(result[key])
        return f"{len(result)} field(s)"


def _resolve(scenarios: Iterable[Union[str, Scenario]]) -> List[Scenario]:
    resolved = []
    for item in scenarios:
        resolved.append(item if isinstance(item, Scenario) else REGISTRY.get(item))
    return resolved


def _run_one(
    scenario: Scenario,
    backend: str = DEFAULT_BACKEND,
    segment_memo_dir: Optional[str] = None,
) -> Tuple[str, Dict[str, Any], float]:
    """Worker entry point: execute one scenario on one backend.

    The scenario object itself crosses the process boundary (it is a frozen
    dataclass of JSON-able values), so ad-hoc scenarios that are not in the
    registry run with exactly the parameters they carry; only their *kind*
    must be registered.  ``segment_memo_dir`` re-attaches (or, when None,
    detaches) the on-disk segment-memo layer in workers (under fork the
    parent's state is already inherited; ``set_root`` is idempotent then).
    """
    # The import populates the kind registry in freshly spawned workers;
    # under the default fork start method it is an instant no-op.
    from . import library  # noqa: F401
    configure_segment_memo(segment_memo_dir)
    start = time.perf_counter()
    result = REGISTRY.run(scenario, backend=backend)
    return scenario.name, result, time.perf_counter() - start


def _run_batched(
    scenarios: List[Scenario], backend: str
) -> Tuple[List[Scenario], List[Tuple[Scenario, Dict[str, Any], float]]]:
    """Evaluate the batch-capable kinds of a sweep generation-at-a-time.

    Scenarios whose kind registers a batch runner for ``backend`` are grouped
    by kind and handed to it in one call each -- the in-process fast path for
    serial sweeps (a batch runner's contract is result equality with the
    scalar runner, so outcomes are indistinguishable).  Returns the scenarios
    that must still go through the executor, plus ``(scenario, result,
    elapsed_s)`` tuples for the batched ones; the batch call's wall time is
    attributed evenly across its scenarios.
    """
    groups: Dict[str, List[Scenario]] = {}
    remaining: List[Scenario] = []
    for scenario in scenarios:
        if REGISTRY.batch_runner(scenario.kind, backend) is None:
            remaining.append(scenario)
        else:
            groups.setdefault(scenario.kind, []).append(scenario)
    executed: List[Tuple[Scenario, Dict[str, Any], float]] = []
    for kind, group in groups.items():
        runner = REGISTRY.batch_runner(kind, backend)
        start = time.perf_counter()
        results = runner([dict(scenario.params) for scenario in group])
        elapsed_s = (time.perf_counter() - start) / len(group)
        if len(results) != len(group):
            raise RuntimeError(
                f"batch runner for kind {kind!r} ({backend} backend) returned "
                f"{len(results)} results for {len(group)} scenarios"
            )
        for scenario, result in zip(group, results):
            executed.append((scenario, result, elapsed_s))
    return remaining, executed


def run_sweep(
    scenarios: Sequence[Union[str, Scenario]],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    backend: str = DEFAULT_BACKEND,
    executor: Optional[Executor] = None,
) -> List[SweepOutcome]:
    """Execute ``scenarios``, returning one :class:`SweepOutcome` per input.

    Parameters
    ----------
    executor:
        The :class:`~repro.runner.executors.Executor` that computes the
        cache misses -- ``SerialExecutor()`` when omitted.  The executor's
        lifecycle belongs to the caller (one instance can serve many
        sweeps); ``run_sweep`` only calls ``configure`` + ``submit``.
    workers:
        Deprecated alias: ``workers=N`` constructs the executor a plain
        worker count maps to (serial for ``N <= 1``, else a local
        ``ProcessPoolExecutor``).  Mutually exclusive with ``executor``.
    cache:
        Optional :class:`ResultCache`.  Hits skip execution entirely; misses
        are stored after execution.
    force:
        Re-run scenarios even when the cache holds a valid entry (the fresh
        result overwrites it).
    backend:
        Execution backend for every scenario in the sweep (``"engine"`` or
        ``"analytic"``).  Scenarios whose kind does not support the backend
        raise ``KeyError`` before anything executes.
    """
    if backend not in BACKENDS:
        raise KeyError(f"unknown backend {backend!r}; known: {list(BACKENDS)}")
    if workers is not None:
        if executor is not None:
            raise ValueError(
                "pass either executor= or the deprecated " "workers= alias, not both"
            )
        warnings.warn(
            "run_sweep(workers=...) is deprecated; pass "
            "executor=ProcessPoolExecutor(workers) (or another "
            "repro.runner.executors.Executor) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        executor = default_executor(workers)
    elif executor is None:
        executor = default_executor(None)
    resolved = _resolve(scenarios)
    for scenario in resolved:
        # Fail the whole sweep up front rather than mid-flight in a worker.
        REGISTRY.runner(scenario.kind, backend)

    # Outcomes are keyed by (name, canonical identity) so duplicate inputs
    # execute once, while two ad-hoc scenarios that share a name but differ
    # in parameters stay distinct.
    def _key(scenario: Scenario) -> Tuple[str, str]:
        return scenario.name, scenario.canonical()

    outcomes: Dict[Tuple[str, str], SweepOutcome] = {}
    to_run: List[Scenario] = []
    seen: Set[Tuple[str, str]] = set()
    for scenario in resolved:
        key = _key(scenario)
        # Membership in the seen-keys set (not a scan of ``to_run``, which
        # would make resolution quadratic in the sweep size) decides
        # duplicates exactly once per input.
        if key in seen:
            continue
        seen.add(key)
        payload = (
            None if (cache is None or force) else cache.load(scenario, backend=backend)
        )
        if payload is not None:
            outcomes[key] = SweepOutcome(
                scenario=scenario.name,
                kind=scenario.kind,
                result=payload["result"],
                elapsed_s=payload.get("elapsed_s", 0.0),
                cached=True,
                backend=backend,
            )
        else:
            to_run.append(scenario)

    if to_run:
        # Cache-enabled sweeps persist memoized segments next to the
        # scenario entries; cache-less sweeps still share the in-memory
        # process memo between scenarios.  Configured unconditionally so a
        # cache-less sweep *detaches* any root a previous sweep attached --
        # otherwise it would keep writing into (or crash on a deleted)
        # stale cache directory.
        segment_memo_dir = str(cache.segments_dir) if cache is not None else None
        configure_segment_memo(segment_memo_dir)
        # Serial sweeps route batch-capable kinds through their batch runner
        # generation-at-a-time (shared tallies, vectorized rooflines) instead
        # of one scalar call per scenario.  Distributed executors keep the
        # per-scenario path: their parallelism comes from fan-out, and jobs
        # must stay individually shippable.
        executed: List[Tuple[Scenario, Dict[str, Any], float]] = []
        if isinstance(executor, SerialExecutor):
            to_run, executed = _run_batched(to_run, backend)
        if to_run:
            executor.configure(backend=backend, segment_memo_dir=segment_memo_dir)
            raw = executor.submit(
                to_run,
                partial(_run_one, backend=backend, segment_memo_dir=segment_memo_dir),
            )
            executed.extend(
                (scenario, result, elapsed)
                for scenario, (_, result, elapsed) in zip(to_run, raw)
            )
        for scenario, result, elapsed in executed:
            outcomes[_key(scenario)] = SweepOutcome(
                scenario=scenario.name,
                kind=scenario.kind,
                result=result,
                elapsed_s=elapsed,
                cached=False,
                backend=backend,
            )
            if cache is not None:
                cache.store(scenario, result, elapsed, backend=backend)

    return [outcomes[_key(scenario)] for scenario in resolved]
