"""Pluggable execution executors: serial, process pool, distributed work queue.

:func:`~repro.runner.sweep.run_sweep` delegates the *execution policy* --
how the scenarios that missed the cache actually get computed -- to an
:class:`Executor`.  Three implementations ship:

* :class:`SerialExecutor` -- run every scenario in-process, in order.
* :class:`ProcessPoolExecutor` -- fan out over a local ``multiprocessing``
  pool (the pre-executor ``run_sweep(workers=N)`` behaviour, including the
  per-worker segment-memo re-attachment).
* :class:`WorkQueueExecutor` -- fan out to *detached* worker processes over
  a shared **spool directory**.  Workers can run on any host that shares the
  filesystem (``python -m repro.runner worker --spool DIR``); the executor
  enqueues JSON job files, workers claim them by atomic rename, results come
  back as JSON files, and a heartbeat/orphan-requeue protocol recovers jobs
  whose worker died mid-flight.  See :class:`Spool` for the on-disk protocol.

The contract every executor honours is the repository-wide determinism
contract: workers receive only JSON-able scenarios, and results are
byte-identical however they were computed (in-process, in a pool worker, or
on another host).  ``tests/differential/test_executor_contract.py`` pins
serial == pool == workqueue differentially.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .cache import code_version
from .scenarios import DEFAULT_BACKEND, Scenario

__all__ = [
    "EXECUTOR_NAMES",
    "Executor",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "Spool",
    "WorkQueueExecutor",
    "default_executor",
    "scenario_from_payload",
    "scenario_to_payload",
]

#: one (scenario name, result dict, elapsed seconds) triple per scenario --
#: exactly what :func:`repro.runner.sweep._run_one` returns.
RunResult = Tuple[str, Dict[str, Any], float]

#: ``run_fn(scenario) -> (name, result, elapsed_s)`` -- the work function
#: executors apply; :func:`run_sweep` passes a pre-bound ``_run_one``.
RunFn = Callable[[Scenario], RunResult]


def scenario_to_payload(scenario: Scenario) -> Dict[str, Any]:
    """The JSON-able wire form of a scenario (inverse of
    :func:`scenario_from_payload`)."""
    return {
        "name": scenario.name,
        "kind": scenario.kind,
        "params": dict(scenario.params),
        "tags": list(scenario.tags),
        "description": scenario.description,
    }


def scenario_from_payload(payload: Dict[str, Any]) -> Scenario:
    """Rebuild a :class:`Scenario` from its wire form."""
    return Scenario(
        name=payload["name"],
        kind=payload["kind"],
        params=dict(payload.get("params") or {}),
        tags=tuple(payload.get("tags") or ()),
        description=payload.get("description", ""),
    )


class Executor:
    """Execution policy for the scenarios of one sweep.

    Lifecycle: :func:`run_sweep` calls :meth:`configure` (backend plus the
    segment-memo directory the sweep attached) before every :meth:`submit`,
    so one executor instance can serve many sweeps -- an exploration reuses
    its executor across every proxy generation and the engine verification
    pass.  Executors holding external resources (the work queue's local
    worker processes) release them in :meth:`close`; all executors are
    context managers (``with make_executor(...) as ex: ...``).
    """

    name = "abstract"

    def __init__(self) -> None:
        self.backend: str = DEFAULT_BACKEND
        self.segment_memo_dir: Optional[str] = None

    # ------------------------------------------------------------- lifecycle

    def configure(self, backend: str, segment_memo_dir: Optional[str]) -> None:
        """Per-sweep wiring: execution backend and on-disk segment-memo root.

        Both travel with every job so out-of-process workers reproduce the
        submitting process's memo configuration exactly.
        """
        self.backend = backend
        self.segment_memo_dir = segment_memo_dir

    def close(self) -> None:
        """Release external resources; idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- execution

    def submit(self, scenarios: Sequence[Scenario], run_fn: RunFn) -> List[RunResult]:
        """Execute ``scenarios``, returning one result triple per input, in
        input order."""
        raise NotImplementedError


class SerialExecutor(Executor):
    """Run every scenario in-process, in order -- the zero-overhead policy."""

    name = "serial"

    def submit(self, scenarios: Sequence[Scenario], run_fn: RunFn) -> List[RunResult]:
        return [run_fn(scenario) for scenario in scenarios]


class ProcessPoolExecutor(Executor):
    """Fan scenarios out over a local ``multiprocessing`` pool.

    A pool is created per :meth:`submit` call and sized to
    ``min(workers, len(scenarios))``; single-scenario (or single-worker)
    submissions run serially in-process, so a pool executor never pays fork
    overhead it cannot amortise.  ``run_fn`` crosses the process boundary
    pickled, which is why :func:`run_sweep` binds only module-level
    functions and JSON-able arguments into it; the segment-memo directory
    bound into ``run_fn`` re-attaches the on-disk memo layer inside every
    pool worker.
    """

    name = "pool"

    def __init__(self, workers: int):
        super().__init__()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def submit(self, scenarios: Sequence[Scenario], run_fn: RunFn) -> List[RunResult]:
        if self.workers > 1 and len(scenarios) > 1:
            import multiprocessing

            processes = min(self.workers, len(scenarios))
            with multiprocessing.Pool(processes=processes) as pool:
                return pool.map(run_fn, scenarios)
        return [run_fn(scenario) for scenario in scenarios]


def default_executor(workers: Optional[int]) -> Executor:
    """The executor a plain ``workers=N`` request maps to.

    ``None`` or ``<= 1`` is the serial policy; anything larger is a local
    process pool -- exactly the pre-executor ``run_sweep`` behaviour.
    """
    if workers is not None and workers > 1:
        return ProcessPoolExecutor(workers)
    return SerialExecutor()


# ----------------------------------------------------------------- work queue


def _write_json_atomic(directory: Path, path: Path, payload: Dict[str, Any]) -> None:
    """Write ``payload`` to ``path`` via a same-directory tempfile + rename,
    so readers never observe a partial file."""
    encoded = json.dumps(payload, sort_keys=True, indent=1)
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(encoded)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise


def _sanitize_id(identifier: str) -> str:
    """Restrict worker/job identifiers to filesystem-safe characters."""
    return re.sub(r"[^A-Za-z0-9._-]", "_", identifier)


@dataclass(frozen=True)
class _ClaimedJob:
    """One claimed spool job: its id and the claim file holding its payload."""

    job_id: str
    path: Path


class Spool:
    """The on-disk work-queue protocol shared by submitters and workers.

    Layout (all under one *spool root*, which must live on a filesystem
    every participating host shares)::

        <spool>/pending/<job>.json            jobs awaiting a claim
        <spool>/claimed/<job>@@<worker>.json  jobs being executed
        <spool>/results/<job>.json            finished jobs (result or error)
        <spool>/workers/<worker>.json         worker heartbeat files

    The protocol rests on one primitive: **atomic rename**.  A worker claims
    a job by renaming ``pending/<job>.json`` to its worker-unique name under
    ``claimed/`` -- exactly one rename of a given source can succeed, so a
    job is never executed by two workers that both believe they own it; the
    losing worker gets ``FileNotFoundError`` and moves on to the next file.
    Results and jobs are written via tempfile + rename in the same
    directory, so a reader never sees a partial JSON file.

    Liveness: every worker touches ``workers/<worker>.json`` on a heartbeat
    interval.  The submitter treats a claimed job whose worker heartbeat
    (or, for a worker that never heartbeat, the claim file itself) is older
    than the orphan timeout as abandoned, and requeues it by renaming the
    claim file back to ``pending/`` -- the claim file *is* the job payload,
    so requeueing loses nothing.  If the worker was merely slow and finishes
    anyway, the duplicated execution is harmless: results are byte-identical
    by the determinism contract, and result files are keyed by job id.

    Multiple submitters may share one spool: job ids are prefixed with a
    per-submission unique batch id, and each submitter only collects (and
    requeues) its own jobs.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)

    # ---------------------------------------------------------------- layout

    @property
    def pending_dir(self) -> Path:
        return self.root / "pending"

    @property
    def claimed_dir(self) -> Path:
        return self.root / "claimed"

    @property
    def results_dir(self) -> Path:
        return self.root / "results"

    @property
    def workers_dir(self) -> Path:
        return self.root / "workers"

    def ensure(self) -> "Spool":
        """Create the spool layout; safe to call from every participant."""
        for directory in (
            self.pending_dir,
            self.claimed_dir,
            self.results_dir,
            self.workers_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        return self

    # ------------------------------------------------------------------ jobs

    def enqueue(self, job_id: str, payload: Dict[str, Any]) -> Path:
        """Publish one job file atomically; returns its pending path."""
        path = self.pending_dir / f"{job_id}.json"
        _write_json_atomic(self.pending_dir, path, payload)
        return path

    def claim(self, worker_id: str) -> Optional[_ClaimedJob]:
        """Claim the oldest pending job for ``worker_id``, or ``None``.

        Claiming is the atomic rename described in the class docstring;
        contention with other workers is resolved by the filesystem (the
        losers skip to the next pending file).  The claim file is touched
        after the rename: ``os.replace`` preserves the *submission-time*
        mtime, and until the worker's first heartbeat that mtime is what
        orphan detection falls back on -- a job that sat in ``pending/``
        longer than the orphan timeout would otherwise look abandoned the
        instant it was claimed, and two workers would execute it.
        """
        worker_id = _sanitize_id(worker_id)
        try:
            pending = sorted(self.pending_dir.glob("*.json"))
        except OSError:
            return None
        for path in pending:
            job_id = path.stem
            target = self.claimed_dir / f"{job_id}@@{worker_id}.json"
            try:
                os.replace(path, target)
            except FileNotFoundError:
                continue  # another worker won this claim
            except OSError:
                continue
            try:
                os.utime(target)
            except OSError:
                pass  # worst case the stale mtime risks one spurious requeue
            return _ClaimedJob(job_id=job_id, path=target)
        return None

    def requeue_orphans(
        self,
        orphan_timeout_s: float,
        job_ids: Optional[Sequence[str]] = None,
        now: Optional[float] = None,
    ) -> List[str]:
        """Move abandoned claimed jobs back to ``pending/``.

        A claim is abandoned when its worker's heartbeat file -- or the
        claim file itself, for a worker that died before its first beat --
        is older than ``orphan_timeout_s``.  ``job_ids`` restricts the scan
        to one submitter's jobs (so co-tenant submitters never requeue each
        other's work).  Returns the requeued job ids.

        Staleness is judged against the *fileserver's* clock (see
        :meth:`fs_now`): when ``now`` is omitted it is sampled from the
        spool's filesystem, never from the caller's local ``time.time()``,
        so callers on clock-skewed hosts inherit the documented contract
        instead of the NFS skew bug it exists to prevent.
        """
        now = self.fs_now("requeue-orphans") if now is None else now
        wanted = set(job_ids) if job_ids is not None else None
        requeued: List[str] = []
        for path in sorted(self.claimed_dir.glob("*.json")):
            stem = path.stem
            job_id, separator, worker_id = stem.partition("@@")
            if not separator:
                continue  # not a claim file of this protocol
            if wanted is not None and job_id not in wanted:
                continue
            heartbeat = self.workers_dir / f"{worker_id}.json"
            try:
                last_alive = heartbeat.stat().st_mtime
            except OSError:
                try:
                    last_alive = path.stat().st_mtime
                except OSError:
                    continue  # claim vanished (worker finished)
            if now - last_alive <= orphan_timeout_s:
                continue
            try:
                os.replace(path, self.pending_dir / f"{job_id}.json")
            except OSError:
                continue  # worker finished (or another requeuer won)
            requeued.append(job_id)
        return requeued

    # --------------------------------------------------------------- results

    def write_result(self, job_id: str, payload: Dict[str, Any]) -> Path:
        """Publish one result file atomically; returns its path."""
        path = self.results_dir / f"{job_id}.json"
        _write_json_atomic(self.results_dir, path, payload)
        return path

    def result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    # ------------------------------------------------------------ heartbeats

    def beat(self, worker_id: str, info: Optional[Dict[str, Any]] = None) -> None:
        """Refresh ``worker_id``'s heartbeat (content on first beat, mtime
        after); failures are swallowed -- a missed beat only risks a
        harmless requeue."""
        worker_id = _sanitize_id(worker_id)
        path = self.workers_dir / f"{worker_id}.json"
        try:
            if path.exists():
                os.utime(path)
            else:
                _write_json_atomic(
                    self.workers_dir, path, {"worker": worker_id, **(info or {})}
                )
        except OSError:
            pass

    def live_workers(self, within_s: float, now: Optional[float] = None) -> List[str]:
        """Worker ids whose heartbeat is younger than ``within_s``."""
        now = time.time() if now is None else now
        alive = []
        for path in sorted(self.workers_dir.glob("*.json")):
            try:
                if now - path.stat().st_mtime <= within_s:
                    alive.append(path.stem)
            except OSError:
                continue
        return alive

    def clear_heartbeat(self, worker_id: str) -> None:
        """Remove ``worker_id``'s heartbeat file (worker shutdown)."""
        try:
            (self.workers_dir / f"{_sanitize_id(worker_id)}.json").unlink()
        except OSError:
            pass

    def fs_now(self, token: str) -> float:
        """The *filesystem's* notion of now, for comparing against mtimes.

        Heartbeat staleness must be judged on the clock that stamped the
        heartbeats -- the fileserver's -- not the submitter's local clock:
        on a shared (e.g. NFS) spool, cross-host clock skew larger than the
        orphan timeout would otherwise make every fresh heartbeat look
        stale (or make dead workers look alive forever).  Touching a
        caller-private scratch file and reading its mtime samples that
        clock; local ``time.time()`` is the fallback when the touch fails.
        The ``.clock`` suffix keeps the file invisible to every ``*.json``
        glob in the protocol.
        """
        path = self.workers_dir / f"{_sanitize_id(token)}.clock"
        try:
            path.touch()
            return path.stat().st_mtime
        except OSError:
            return time.time()


class WorkQueueExecutor(Executor):
    """Fan scenarios out to detached worker processes over a shared spool.

    Jobs carry the full JSON-able scenario (plus backend, segment-memo
    directory, and the submitter's code version), so any worker that shares
    the filesystem -- same host or not -- computes the byte-identical result
    the submitting process would have.  Workers are started with ``python -m
    repro.runner worker --spool DIR``; the executor can additionally spawn
    ``local_workers`` such processes itself (terminated on :meth:`close`),
    which is how the CLI gives ``--executor workqueue`` standalone capacity.

    Failure handling:

    * a worker that dies mid-job stops heartbeating; after
      ``orphan_timeout_s`` the submitter renames the claim back to
      ``pending/`` (at most ``max_requeues`` times per job);
    * a job file a worker cannot parse (external corruption) comes back as a
      ``corrupt-job`` error result; the submitter rewrites the pristine job
      from memory, again bounded by ``max_requeues``;
    * a scenario that *raises* in a worker, or a worker running different
      code than the submitter, is a hard error: the submitter raises
      ``RuntimeError`` with the worker's report (matching the in-process
      executors, where the exception propagates directly).
    """

    name = "workqueue"

    #: how long a spawned local worker lingers after the spool runs dry
    #: before exiting on its own -- a leak backstop for executors that are
    #: never :meth:`close`\ d.
    LOCAL_WORKER_IDLE_EXIT_S = 300.0

    def __init__(
        self,
        spool: os.PathLike,
        local_workers: int = 0,
        poll_s: float = 0.05,
        orphan_timeout_s: float = 30.0,
        max_requeues: int = 3,
        timeout_s: Optional[float] = None,
    ):
        super().__init__()
        if local_workers < 0:
            raise ValueError(f"local_workers must be >= 0, got {local_workers}")
        if poll_s <= 0:
            raise ValueError(f"poll_s must be > 0, got {poll_s}")
        if orphan_timeout_s <= 0:
            raise ValueError(f"orphan_timeout_s must be > 0, got {orphan_timeout_s}")
        self.spool = Spool(spool)
        self.local_workers = local_workers
        self.poll_s = poll_s
        self.orphan_timeout_s = orphan_timeout_s
        self.max_requeues = max_requeues
        self.timeout_s = timeout_s
        self._procs: List[subprocess.Popen] = []
        self._logs: List[Any] = []

    # --------------------------------------------------------- local workers

    def _spawn_local_workers(self) -> None:
        if self.local_workers <= 0:
            return
        self._procs = [p for p in self._procs if p.poll() is None]
        missing = self.local_workers - len(self._procs)
        if missing <= 0:
            return
        import repro

        env = os.environ.copy()
        package_parent = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = package_parent + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        for _ in range(missing):
            worker_id = f"local-{os.getpid()}-{uuid.uuid4().hex[:6]}"
            log = open(self.spool.workers_dir / f"{worker_id}.log", "ab")
            self._logs.append(log)
            self._procs.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.runner",
                        "worker",
                        "--spool",
                        str(self.spool.root),
                        "--poll",
                        str(self.poll_s),
                        "--idle-exit",
                        str(self.LOCAL_WORKER_IDLE_EXIT_S),
                        "--worker-id",
                        worker_id,
                    ],
                    stdout=log,
                    stderr=subprocess.STDOUT,
                    env=env,
                )
            )

    def close(self) -> None:
        """Terminate spawned local workers and release their log handles."""
        procs, self._procs = self._procs, []
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        logs, self._logs = self._logs, []
        for log in logs:
            try:
                log.close()
            except OSError:
                pass

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------- execution

    def configure(self, backend: str, segment_memo_dir: Optional[str]) -> None:
        # The memo directory crosses host/process boundaries inside job
        # files, so a relative path (".repro-cache/segments") must be pinned
        # to the submitter's filesystem location before it travels.
        if segment_memo_dir is not None:
            segment_memo_dir = str(Path(segment_memo_dir).resolve())
        super().configure(backend, segment_memo_dir)

    def submit(self, scenarios: Sequence[Scenario], run_fn: RunFn) -> List[RunResult]:
        # ``run_fn`` is intentionally unused: a work-queue job cannot ship a
        # callable, so workers rebuild the identical work function from the
        # job's (scenario, backend, segment_memo_dir) payload -- the
        # determinism contract makes the two indistinguishable.
        del run_fn
        if not scenarios:
            return []
        self.spool.ensure()
        batch = uuid.uuid4().hex[:10]
        order: List[str] = []
        payloads: Dict[str, Dict[str, Any]] = {}
        for index, scenario in enumerate(scenarios):
            job_id = f"{batch}.{index:05d}"
            payloads[job_id] = {
                "job": job_id,
                "scenario": scenario_to_payload(scenario),
                "backend": self.backend,
                "segment_memo_dir": self.segment_memo_dir,
                "code_version": code_version(),
            }
            order.append(job_id)
        try:
            for job_id in order:
                self.spool.enqueue(job_id, payloads[job_id])
            self._spawn_local_workers()
            collected = self._collect(batch, order, payloads)
        except BaseException:
            self._abandon(order)
            raise
        results = []
        for job_id in order:
            payload = collected[job_id]
            results.append(
                (payload["scenario"], payload["result"], payload["elapsed_s"])
            )
        return results

    # ------------------------------------------------------------ collection

    def _collect(
        self,
        batch: str,
        order: Sequence[str],
        payloads: Dict[str, Dict[str, Any]],
    ) -> Dict[str, Dict[str, Any]]:
        outstanding = set(order)
        collected: Dict[str, Dict[str, Any]] = {}
        requeues: Dict[str, int] = {}
        deadline = None if self.timeout_s is None else time.monotonic() + self.timeout_s
        last_orphan_scan = time.monotonic()
        while outstanding:
            progress = False
            # One directory listing per pass, scoped to our batch: probing
            # every outstanding result path individually would be O(n) failed
            # opens per pass against a possibly-remote filesystem.
            try:
                present = {
                    path.stem
                    for path in self.spool.results_dir.glob(f"{batch}.*.json")
                }
            except OSError:
                present = set()
            for job_id in sorted(outstanding & present):
                path = self.spool.result_path(job_id)
                try:
                    raw = path.read_text()
                except OSError:
                    continue
                try:
                    payload = json.loads(raw)
                    if not isinstance(payload, dict):
                        raise ValueError("result is not a JSON object")
                except (ValueError, json.JSONDecodeError):
                    # Externally corrupted result file: retry the job.
                    self._requeue(job_id, payloads, requeues, path)
                    progress = True
                    continue
                error = payload.get("error")
                if error:
                    if error.get("type") == "corrupt-job":
                        self._requeue(job_id, payloads, requeues, path)
                        progress = True
                        continue
                    self._abandon(outstanding)
                    raise RuntimeError(
                        f"workqueue job {job_id} "
                        f"({payloads[job_id]['scenario']['name']!r}) failed in "
                        f"worker {payload.get('worker', '<unknown>')}: "
                        f"{error.get('message', error)}"
                    )
                if payload.get("code_version") != code_version():
                    self._abandon(outstanding)
                    raise RuntimeError(
                        f"workqueue job {job_id} was executed by worker "
                        f"{payload.get('worker', '<unknown>')} running a "
                        "different code version; results would not be "
                        "byte-identical.  Restart the workers from this "
                        "source tree."
                    )
                collected[job_id] = payload
                outstanding.discard(job_id)
                try:
                    path.unlink()
                except OSError:
                    pass
                progress = True
            if not outstanding:
                break
            now = time.monotonic()
            if now - last_orphan_scan >= min(self.orphan_timeout_s, 1.0):
                last_orphan_scan = now
                for job_id in self.spool.requeue_orphans(
                    self.orphan_timeout_s,
                    job_ids=sorted(outstanding),
                    now=self.spool.fs_now(f"submitter-{batch}"),
                ):
                    requeues[job_id] = requeues.get(job_id, 0) + 1
                    if requeues[job_id] > self.max_requeues:
                        self._abandon(outstanding)
                        raise RuntimeError(
                            f"workqueue job {job_id} was orphaned "
                            f"{requeues[job_id]} times (> max_requeues="
                            f"{self.max_requeues}); giving up"
                        )
                self._check_for_dead_pool(outstanding)
            if deadline is not None and now > deadline:
                self._abandon(outstanding)
                raise TimeoutError(
                    f"workqueue sweep timed out after {self.timeout_s:g}s with "
                    f"{len(outstanding)} job(s) outstanding -- are any workers "
                    f"attached to {self.spool.root}?"
                )
            if not progress:
                time.sleep(self.poll_s)
        return collected

    def _requeue(
        self,
        job_id: str,
        payloads: Dict[str, Dict[str, Any]],
        requeues: Dict[str, int],
        result_path: Path,
    ) -> None:
        """Re-publish the pristine job after a recoverable failure."""
        requeues[job_id] = requeues.get(job_id, 0) + 1
        if requeues[job_id] > self.max_requeues:
            raise RuntimeError(
                f"workqueue job {job_id} failed {requeues[job_id]} times "
                f"(> max_requeues={self.max_requeues}); giving up.  Last "
                f"result file: {result_path}"
            )
        try:
            result_path.unlink()
        except OSError:
            pass
        self.spool.enqueue(job_id, payloads[job_id])

    def _check_for_dead_pool(self, outstanding: Sequence[str]) -> None:
        """Fail fast when this executor's own workers all died and nobody
        else is heartbeating -- otherwise the submit would hang forever."""
        if self.local_workers <= 0 or not self._procs:
            return  # external-only mode waits patiently by design
        if any(proc.poll() is None for proc in self._procs):
            return
        if self.spool.live_workers(within_s=self.orphan_timeout_s):
            return
        codes = [proc.returncode for proc in self._procs]
        raise RuntimeError(
            f"all {len(self._procs)} local workqueue worker(s) exited "
            f"(exit codes {codes}) with {len(outstanding)} job(s) "
            f"outstanding and no external workers heartbeating; see the "
            f"worker logs under {self.spool.workers_dir}"
        )

    def _abandon(self, job_ids: Sequence[str]) -> None:
        """Best-effort removal of our unfinished spool files on failure, so
        shared spools do not accumulate jobs no submitter will collect.

        Claims are withdrawn too (a worker mid-job already holds the parsed
        payload, so removing its claim file does not disturb it); the one
        leak this cannot prevent is a result file published *after* this
        cleanup by a worker that was still executing -- bounded garbage a
        future spool GC can sweep by result-file age.
        """
        for job_id in list(job_ids):
            paths = [
                self.spool.pending_dir / f"{job_id}.json",
                self.spool.result_path(job_id),
            ]
            try:
                paths.extend(self.spool.claimed_dir.glob(f"{job_id}@@*.json"))
            except OSError:
                pass
            for path in paths:
                try:
                    path.unlink()
                except OSError:
                    pass


#: CLI-selectable executor names (see ``repro.runner.cli``).
EXECUTOR_NAMES: Tuple[str, ...] = (
    SerialExecutor.name,
    ProcessPoolExecutor.name,
    WorkQueueExecutor.name,
)
