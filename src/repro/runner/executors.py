"""Pluggable execution executors: serial, process pool, distributed work queue.

:func:`~repro.runner.sweep.run_sweep` delegates the *execution policy* --
how the scenarios that missed the cache actually get computed -- to an
:class:`Executor`.  Three implementations ship:

* :class:`SerialExecutor` -- run every scenario in-process, in order.
* :class:`ProcessPoolExecutor` -- fan out over a local ``multiprocessing``
  pool (the pre-executor ``run_sweep(workers=N)`` behaviour, including the
  per-worker segment-memo re-attachment).
* :class:`WorkQueueExecutor` -- fan out to *detached* worker processes over
  a **spool transport**.  The filesystem transport is a shared spool
  directory (:class:`Spool`): workers can run on any host that shares the
  filesystem (``python -m repro.runner worker --spool DIR``); the executor
  enqueues JSON job files, workers claim them by atomic rename, results come
  back as JSON files, and a heartbeat/orphan-requeue protocol recovers jobs
  whose worker died mid-flight.  The network transport
  (:mod:`repro.runner.netqueue`) speaks the same contract to a ``python -m
  repro.runner spoold`` job server over TCP (``--spool tcp://host:port``),
  so submitters and workers need no shared filesystem at all.
  :func:`open_spool` maps a path or URL to the right transport.

The contract every executor honours is the repository-wide determinism
contract: workers receive only JSON-able scenarios, and results are
byte-identical however they were computed (in-process, in a pool worker, or
on another host).  ``tests/differential/test_executor_contract.py`` pins
serial == pool == workqueue differentially.

Executors carry two job shapes.  A **scalar job** is one scenario
(:meth:`Executor.submit`).  A **chunk job**
(:meth:`Executor.submit_chunks`) is a contiguous slice of a batch-capable
generation -- a ``(kind, [params, ...])`` pair evaluated in a single
batch-runner call wherever the job lands -- so fanning out a sharded
generation costs one job per *chunk* instead of one per point, and the
>100x batched-evaluation win survives distribution.
``tests/differential/test_chunk_contract.py`` pins chunked results
byte-identical to the serial batched path across every executor.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .cache import code_version
from .scenarios import DEFAULT_BACKEND, Scenario

__all__ = [
    "EXECUTOR_NAMES",
    "Executor",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "Spool",
    "WorkQueueExecutor",
    "default_executor",
    "format_job_id",
    "open_spool",
    "scenario_from_payload",
    "scenario_to_payload",
]

#: one (scenario name, result dict, elapsed seconds) triple per scenario --
#: exactly what :func:`repro.runner.sweep._run_one` returns.
RunResult = Tuple[str, Dict[str, Any], float]

#: ``run_fn(scenario) -> (name, result, elapsed_s)`` -- the work function
#: executors apply; :func:`run_sweep` passes a pre-bound ``_run_one``.
RunFn = Callable[[Scenario], RunResult]

#: one **chunk job**: a scenario kind plus the parameter mappings of a
#: contiguous slice of points, evaluated in a single batch-runner call.
ChunkJob = Tuple[str, List[Dict[str, Any]]]

#: what executing one chunk yields: the per-point result dicts (in the
#: chunk's own order) and the batch call's wall seconds.
ChunkResult = Tuple[List[Dict[str, Any]], float]

#: ``run_chunk_fn(chunk) -> (results, elapsed_s)`` -- the chunk work
#: function; :func:`repro.runner.sweep` passes a pre-bound ``_run_chunk``.
RunChunkFn = Callable[[ChunkJob], ChunkResult]


def scenario_to_payload(scenario: Scenario) -> Dict[str, Any]:
    """The JSON-able wire form of a scenario (inverse of
    :func:`scenario_from_payload`)."""
    return {
        "name": scenario.name,
        "kind": scenario.kind,
        "params": dict(scenario.params),
        "tags": list(scenario.tags),
        "description": scenario.description,
    }


def scenario_from_payload(payload: Dict[str, Any]) -> Scenario:
    """Rebuild a :class:`Scenario` from its wire form."""
    return Scenario(
        name=payload["name"],
        kind=payload["kind"],
        params=dict(payload.get("params") or {}),
        tags=tuple(payload.get("tags") or ()),
        description=payload.get("description", ""),
    )


class Executor:
    """Execution policy for the scenarios of one sweep.

    Lifecycle: :func:`run_sweep` calls :meth:`configure` (backend plus the
    segment-memo directory the sweep attached) before every :meth:`submit`,
    so one executor instance can serve many sweeps -- an exploration reuses
    its executor across every proxy generation and the engine verification
    pass.  Executors holding external resources (the work queue's local
    worker processes) release them in :meth:`close`; all executors are
    context managers (``with make_executor(...) as ex: ...``).
    """

    name = "abstract"

    def __init__(self) -> None:
        self.backend: str = DEFAULT_BACKEND
        self.segment_memo_dir: Optional[str] = None

    # ------------------------------------------------------------- lifecycle

    def configure(self, backend: str, segment_memo_dir: Optional[str]) -> None:
        """Per-sweep wiring: execution backend and on-disk segment-memo root.

        Both travel with every job so out-of-process workers reproduce the
        submitting process's memo configuration exactly.
        """
        self.backend = backend
        self.segment_memo_dir = segment_memo_dir

    def close(self) -> None:
        """Release external resources; idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- execution

    def submit(self, scenarios: Sequence[Scenario], run_fn: RunFn) -> List[RunResult]:
        """Execute ``scenarios``, returning one result triple per input, in
        input order."""
        raise NotImplementedError

    def submit_chunks(
        self, chunks: Sequence[ChunkJob], run_chunk_fn: RunChunkFn
    ) -> List[ChunkResult]:
        """Execute **chunk jobs** -- whole contiguous slices of a
        batch-capable generation, one batch-runner call per chunk --
        returning one :data:`ChunkResult` per input, in input order.

        The base implementation runs every chunk in-process, in order,
        which is exactly the serial policy; fan-out executors override it
        to ship each chunk as a single unit of distributed work.  The
        determinism contract extends to chunks: each per-point result is
        byte-identical to what the scalar runner would have produced, so
        splicing chunk results back in submission order reproduces the
        serial batched path exactly.
        """
        return [run_chunk_fn(chunk) for chunk in chunks]


class SerialExecutor(Executor):
    """Run every scenario in-process, in order -- the zero-overhead policy."""

    name = "serial"

    def submit(self, scenarios: Sequence[Scenario], run_fn: RunFn) -> List[RunResult]:
        return [run_fn(scenario) for scenario in scenarios]


class ProcessPoolExecutor(Executor):
    """Fan scenarios out over a local ``multiprocessing`` pool.

    A pool is created per :meth:`submit` call and sized to
    ``min(workers, len(scenarios))``; single-scenario (or single-worker)
    submissions run serially in-process, so a pool executor never pays fork
    overhead it cannot amortise.  ``run_fn`` crosses the process boundary
    pickled, which is why :func:`run_sweep` binds only module-level
    functions and JSON-able arguments into it; the segment-memo directory
    bound into ``run_fn`` re-attaches the on-disk memo layer inside every
    pool worker.
    """

    name = "pool"

    def __init__(self, workers: int):
        super().__init__()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def submit(self, scenarios: Sequence[Scenario], run_fn: RunFn) -> List[RunResult]:
        if self.workers > 1 and len(scenarios) > 1:
            import multiprocessing

            processes = min(self.workers, len(scenarios))
            with multiprocessing.Pool(processes=processes) as pool:
                return pool.map(run_fn, scenarios)
        return [run_fn(scenario) for scenario in scenarios]

    def submit_chunks(
        self, chunks: Sequence[ChunkJob], run_chunk_fn: RunChunkFn
    ) -> List[ChunkResult]:
        # Same shape as ``submit``: one pool task per chunk, ``pool.map``
        # preserving submission order, serial fallback when a pool could
        # not amortise its fork cost.  ``run_chunk_fn`` crosses the process
        # boundary pickled, so callers bind only module-level functions.
        if self.workers > 1 and len(chunks) > 1:
            import multiprocessing

            processes = min(self.workers, len(chunks))
            with multiprocessing.Pool(processes=processes) as pool:
                return pool.map(run_chunk_fn, chunks)
        return [run_chunk_fn(chunk) for chunk in chunks]


def default_executor(workers: Optional[int]) -> Executor:
    """The executor a plain ``workers=N`` request maps to.

    ``None`` or ``<= 1`` is the serial policy; anything larger is a local
    process pool -- exactly the pre-executor ``run_sweep`` behaviour.
    """
    if workers is not None and workers > 1:
        return ProcessPoolExecutor(workers)
    return SerialExecutor()


# ----------------------------------------------------------------- work queue


def _write_json_atomic(directory: Path, path: Path, payload: Dict[str, Any]) -> None:
    """Write ``payload`` to ``path`` via a same-directory tempfile + rename,
    so readers never observe a partial file."""
    encoded = json.dumps(payload, sort_keys=True, indent=1)
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(encoded)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise


def _sanitize_id(identifier: str) -> str:
    """Restrict worker/job identifiers to filesystem-safe characters."""
    return re.sub(r"[^A-Za-z0-9._-]", "_", identifier)


def _job_label(payload: Dict[str, Any]) -> str:
    """A human label for a job payload in error messages: the scenario name
    for scalar jobs, ``chunk KIND[N points]`` for chunk jobs."""
    scenario = payload.get("scenario")
    if isinstance(scenario, dict):
        return repr(scenario.get("name"))
    chunk = payload.get("chunk")
    if isinstance(chunk, dict):
        return f"chunk {chunk.get('kind')}[{len(chunk.get('params') or ())} points]"
    return "<unknown job>"


#: valid segment-memo keys on the wire: a hex program fingerprint or a
#: ``workload-`` prefixed upstream key.  Anything else never becomes a
#: ``memo/`` filename (defence against a hostile or broken peer).
_MEMO_KEY_RE = re.compile(r"[A-Za-z0-9-]{1,100}")


#: zero-padding width of the per-batch job index.  Job ids must sort
#: lexicographically in submission order (``Spool.claim`` hands out the
#: smallest id first), so the width bounds the batch size: 8 digits keeps
#: ordering intact out to 10^8 jobs per submission -- two orders of
#: magnitude past the largest design-space sweeps on the roadmap.  (The old
#: 5-digit width silently broke claim ordering at 100k jobs.)
_JOB_INDEX_WIDTH = 8


def format_job_id(batch: str, index: int) -> str:
    """The id of job ``index`` of submission ``batch``; lexicographic order
    over one batch's ids equals submission order for up to ``10 **
    _JOB_INDEX_WIDTH`` jobs."""
    return f"{batch}.{index:0{_JOB_INDEX_WIDTH}d}"


def open_spool(target: os.PathLike) -> "Spool":
    """Map a spool *target* -- a directory path, or a ``tcp://host:port``
    job-server URL -- to the transport that speaks it.

    Everything that accepts a spool (the work-queue executor, the worker
    loop, the ``spool`` maintenance CLI) routes through here, so the network
    transport is selectable anywhere a spool directory is today.
    """
    text = os.fspath(target) if not isinstance(target, str) else target
    if isinstance(text, str) and text.startswith("tcp://"):
        from .netqueue import NetSpool

        return NetSpool(text)
    return Spool(target)


@dataclass(frozen=True)
class _ClaimedJob:
    """One claimed spool job: its id and the claim file holding its payload."""

    job_id: str
    path: Path

    def read(self) -> str:
        """The raw job text; raises ``FileNotFoundError`` when the claim
        vanished under us (orphan-requeued away by the submitter)."""
        return self.path.read_text()


class Spool:
    """The on-disk work-queue protocol shared by submitters and workers.

    Layout (all under one *spool root*, which must live on a filesystem
    every participating host shares)::

        <spool>/pending/<job>.json            jobs awaiting a claim
        <spool>/claimed/<job>@@<worker>.json  jobs being executed
        <spool>/results/<job>.json            finished jobs (result or error)
        <spool>/workers/<worker>.json         worker heartbeat files

    The protocol rests on one primitive: **atomic rename**.  A worker claims
    a job by renaming ``pending/<job>.json`` to its worker-unique name under
    ``claimed/`` -- exactly one rename of a given source can succeed, so a
    job is never executed by two workers that both believe they own it; the
    losing worker gets ``FileNotFoundError`` and moves on to the next file.
    Results and jobs are written via tempfile + rename in the same
    directory, so a reader never sees a partial JSON file.

    Liveness: every worker touches ``workers/<worker>.json`` on a heartbeat
    interval.  The submitter treats a claimed job whose worker heartbeat
    (or, for a worker that never heartbeat, the claim file itself) is older
    than the orphan timeout as abandoned, and requeues it by renaming the
    claim file back to ``pending/`` -- the claim file *is* the job payload,
    so requeueing loses nothing.  If the worker was merely slow and finishes
    anyway, the duplicated execution is harmless: results are byte-identical
    by the determinism contract, and result files are keyed by job id.

    Multiple submitters may share one spool: job ids are prefixed with a
    per-submission unique batch id, and each submitter only collects (and
    requeues) its own jobs.

    This class is also the reference implementation of the **spool
    transport** contract -- the method surface
    (``ensure``/``enqueue``/``claim``/``finish``/``take_results``/
    ``requeue_orphans``/``beat``/``live_workers``/``abandon``/``status``/
    ``gc``) the work-queue executor and the worker loop program against.
    :class:`repro.runner.netqueue.NetSpool` implements the same surface over
    a TCP job server, so neither side needs a shared filesystem;
    :func:`open_spool` selects the transport from the spool target.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        # Claim-order cache: one sorted directory listing amortised over many
        # claims (see ``claim``), instead of re-globbing the whole pending
        # directory per claim (O(n^2) over a large backlog).
        self._pending_cache: List[Path] = []

    # ---------------------------------------------------------------- layout

    @property
    def pending_dir(self) -> Path:
        return self.root / "pending"

    @property
    def claimed_dir(self) -> Path:
        return self.root / "claimed"

    @property
    def results_dir(self) -> Path:
        return self.root / "results"

    @property
    def workers_dir(self) -> Path:
        return self.root / "workers"

    @property
    def memo_dir(self) -> Path:
        return self.root / "memo"

    def ensure(self) -> "Spool":
        """Create the spool layout; safe to call from every participant."""
        for directory in (
            self.pending_dir,
            self.claimed_dir,
            self.results_dir,
            self.workers_dir,
            self.memo_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        return self

    def describe(self) -> str:
        """Human-readable spool target for error messages and logs."""
        return str(self.root)

    def close(self) -> None:
        """Release transport resources; a directory spool holds none."""

    def worker_log_dir(self) -> Path:
        """Where locally spawned worker processes should write their logs."""
        self.workers_dir.mkdir(parents=True, exist_ok=True)
        return self.workers_dir

    # ------------------------------------------------------------------ jobs

    def enqueue(self, job_id: str, payload: Dict[str, Any]) -> Path:
        """Publish one job file atomically; returns its pending path."""
        path = self.pending_dir / f"{job_id}.json"
        _write_json_atomic(self.pending_dir, path, payload)
        return path

    def enqueue_many(self, jobs: Sequence[Tuple[str, Dict[str, Any]]]) -> int:
        """Publish many ``(job_id, payload)`` jobs; returns the count.

        On the directory transport this is a plain loop; the network
        transport overrides it to batch jobs into few round-trips.
        """
        for job_id, payload in jobs:
            self.enqueue(job_id, payload)
        return len(jobs)

    def claim(self, worker_id: str) -> Optional[_ClaimedJob]:
        """Claim the oldest pending job for ``worker_id``, or ``None``.

        Claiming is the atomic rename described in the class docstring;
        contention with other workers is resolved by the filesystem (the
        losers skip to the next pending file).  The claim file is touched
        after the rename: ``os.replace`` preserves the *submission-time*
        mtime, and until the worker's first heartbeat that mtime is what
        orphan detection falls back on -- a job that sat in ``pending/``
        longer than the orphan timeout would otherwise look abandoned the
        instant it was claimed, and two workers would execute it.

        The sorted directory listing is cached on this instance and consumed
        across calls, so claiming a backlog of n jobs costs O(n) listings in
        total rather than O(n) *per claim* (O(n^2) at the 10^5-job scale the
        roadmap targets).  Stale cache entries -- files another worker
        claimed first -- lose the rename and are skipped; jobs enqueued
        after a listing are picked up by the next one, so a snapshot can
        only ever delay a new job by one cache drain, never starve it.
        """
        worker_id = _sanitize_id(worker_id)
        listed_fresh = False
        while True:
            if not self._pending_cache:
                if listed_fresh:
                    return None
                try:
                    # Reverse-sorted so pop() takes the smallest id first.
                    self._pending_cache = sorted(
                        self.pending_dir.glob("*.json"), reverse=True
                    )
                except OSError:
                    return None
                listed_fresh = True
                if not self._pending_cache:
                    return None
            path = self._pending_cache.pop()
            job_id = path.stem
            target = self.claimed_dir / f"{job_id}@@{worker_id}.json"
            try:
                os.replace(path, target)
            except FileNotFoundError:
                continue  # another worker won this claim
            except OSError:
                continue
            try:
                os.utime(target)
            except OSError:
                pass  # worst case the stale mtime risks one spurious requeue
            return _ClaimedJob(job_id=job_id, path=target)

    def requeue_orphans(
        self,
        orphan_timeout_s: float,
        job_ids: Optional[Sequence[str]] = None,
        now: Optional[float] = None,
        prefix: Optional[str] = None,
    ) -> List[str]:
        """Move abandoned claimed jobs back to ``pending/``.

        A claim is abandoned when its worker's heartbeat file -- or the
        claim file itself, for a worker that died before its first beat --
        is older than ``orphan_timeout_s``.  ``job_ids`` (an explicit id
        set) or ``prefix`` (a batch id prefix -- O(1) to ship over the
        network transport, where a 10^5-id list per scan would not be)
        restricts the scan to one submitter's jobs, so co-tenant submitters
        never requeue each other's work.  Returns the requeued job ids.

        Staleness is judged against the *fileserver's* clock (see
        :meth:`fs_now`): when ``now`` is omitted it is sampled from the
        spool's filesystem, never from the caller's local ``time.time()``,
        so callers on clock-skewed hosts inherit the documented contract
        instead of the NFS skew bug it exists to prevent.
        """
        now = self.fs_now("requeue-orphans") if now is None else now
        wanted = set(job_ids) if job_ids is not None else None
        requeued: List[str] = []
        for path in sorted(self.claimed_dir.glob("*.json")):
            stem = path.stem
            job_id, separator, worker_id = stem.partition("@@")
            if not separator:
                continue  # not a claim file of this protocol
            if wanted is not None and job_id not in wanted:
                continue
            if prefix is not None and not job_id.startswith(prefix):
                continue
            heartbeat = self.workers_dir / f"{worker_id}.json"
            try:
                last_alive = heartbeat.stat().st_mtime
            except OSError:
                try:
                    last_alive = path.stat().st_mtime
                except OSError:
                    continue  # claim vanished (worker finished)
            if now - last_alive <= orphan_timeout_s:
                continue
            try:
                os.replace(path, self.pending_dir / f"{job_id}.json")
            except OSError:
                continue  # worker finished (or another requeuer won)
            requeued.append(job_id)
        return requeued

    # --------------------------------------------------------------- results

    def write_result(self, job_id: str, payload: Dict[str, Any]) -> Path:
        """Publish one result file atomically; returns its path."""
        path = self.results_dir / f"{job_id}.json"
        _write_json_atomic(self.results_dir, path, payload)
        return path

    def result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    def finish(self, claimed: _ClaimedJob, payload: Dict[str, Any]) -> bool:
        """Publish the result of a claimed job and release the claim.

        Returns whether the result was accepted.  On the directory transport
        it always is -- a worker that lost its claim to an orphan requeue
        still publishes a byte-identical result, so the overwrite is a
        no-op by the determinism contract.  The network transport returns
        ``False`` for a stale claim (the server has requeued the job away),
        and the worker then drops the job from its processed count.
        """
        self.write_result(claimed.job_id, payload)
        try:
            claimed.path.unlink()
        except OSError:
            pass
        return True

    def take_results(self, prefix: str) -> Dict[str, str]:
        """Consume every published result whose job id starts with
        ``prefix``, returning ``{job_id: raw_text}``.

        One directory listing per call (probing outstanding result paths
        individually would be O(n) failed opens per poll against a
        possibly-remote filesystem); the files are unlinked as they are
        read, so each result is observed exactly once.  Raw text is
        returned rather than parsed JSON so the submitter's
        corrupted-result recovery works identically over every transport.
        Transient filesystem errors yield an empty dict -- the caller polls
        again.
        """
        try:
            present = sorted(self.results_dir.glob(f"{prefix}*.json"))
        except OSError:
            return {}
        taken: Dict[str, str] = {}
        for path in present:
            try:
                raw = path.read_text()
            except OSError:
                continue  # mid-publish or vanished; next poll sees it
            try:
                path.unlink()
            except OSError:
                pass
            taken[path.stem] = raw
        return taken

    def abandon(self, prefix: str) -> None:
        """Best-effort removal of one batch's unfinished spool files, so
        shared spools do not accumulate jobs no submitter will collect.

        Claims are withdrawn too (a worker mid-job already holds the parsed
        payload, so removing its claim file does not disturb it); the one
        leak this cannot prevent is a result file published *after* this
        cleanup by a worker that was still executing -- bounded garbage
        :meth:`gc` sweeps by result-file age.
        """
        for directory, pattern in (
            (self.pending_dir, f"{prefix}*.json"),
            (self.results_dir, f"{prefix}*.json"),
            (self.claimed_dir, f"{prefix}*@@*.json"),
        ):
            try:
                stale = list(directory.glob(pattern))
            except OSError:
                continue
            for path in stale:
                try:
                    path.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------- memo sync

    def memo_sync(
        self, entries: Sequence[Dict[str, Any]], known: Sequence[str] = ()
    ) -> List[Dict[str, Any]]:
        """Exchange segment-memo entries through the spool.

        ``entries`` (full ``key``/``code_version``/``result`` entry dicts,
        the shape :meth:`repro.runner.cache.SegmentMemo.take_new` returns)
        are published under ``memo/``; every published entry whose key is
        *not* in ``known`` comes back, so each participant pushes what it
        just simulated and pulls what its peers have.  The spool stores the
        entries opaquely -- validation (including the code-version check
        that keeps a stale peer from poisoning anyone) happens in each
        participant's :meth:`~repro.runner.cache.SegmentMemo.absorb`.
        Failures degrade to an empty exchange: the memo is an accelerator,
        never a correctness dependency.
        """
        try:
            self.memo_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            return []
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            key = entry.get("key")
            if not isinstance(key, str) or not _MEMO_KEY_RE.fullmatch(key):
                continue
            try:
                _write_json_atomic(
                    self.memo_dir, self.memo_dir / f"{key}.json", entry
                )
            except OSError:
                continue
        known_keys = set(known)
        fetched: List[Dict[str, Any]] = []
        try:
            present = sorted(self.memo_dir.glob("*.json"))
        except OSError:
            return []
        for path in present:
            if path.stem in known_keys:
                continue
            try:
                entry = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # mid-publish or corrupted; absorb would reject it
            if isinstance(entry, dict):
                fetched.append(entry)
        return fetched

    # ------------------------------------------------------------ heartbeats

    def beat(self, worker_id: str, info: Optional[Dict[str, Any]] = None) -> None:
        """Refresh ``worker_id``'s heartbeat; failures are swallowed -- a
        missed beat only risks a harmless requeue.

        Without ``info`` the beat is a bare mtime touch (content written on
        the first beat only).  With ``info`` the file is rewritten
        atomically, so a worker can publish live counters -- processed
        jobs, start time -- that ``spool --status`` renders as throughput.
        """
        worker_id = _sanitize_id(worker_id)
        path = self.workers_dir / f"{worker_id}.json"
        try:
            if info is None and path.exists():
                os.utime(path)
            else:
                _write_json_atomic(
                    self.workers_dir, path, {"worker": worker_id, **(info or {})}
                )
        except OSError:
            pass

    def live_workers(self, within_s: float, now: Optional[float] = None) -> List[str]:
        """Worker ids whose heartbeat is younger than ``within_s``.

        Like :meth:`requeue_orphans`, staleness is judged on the clock that
        stamped the heartbeats: ``now`` defaults to :meth:`fs_now`, never to
        the caller's local ``time.time()``.  (The old local-clock default
        was the same NFS skew bug family -- a skewed submitter's
        ``_check_for_dead_pool`` could falsely abort a sweep because live
        external workers looked dead, or hang forever because dead ones
        looked alive.)
        """
        now = self.fs_now("live-workers") if now is None else now
        alive = []
        for path in sorted(self.workers_dir.glob("*.json")):
            try:
                if now - path.stat().st_mtime <= within_s:
                    alive.append(path.stem)
            except OSError:
                continue
        return alive

    def clear_heartbeat(self, worker_id: str) -> None:
        """Remove ``worker_id``'s heartbeat file (worker shutdown)."""
        try:
            (self.workers_dir / f"{_sanitize_id(worker_id)}.json").unlink()
        except OSError:
            pass

    def fs_now(self, token: str) -> float:
        """The *filesystem's* notion of now, for comparing against mtimes.

        Heartbeat staleness must be judged on the clock that stamped the
        heartbeats -- the fileserver's -- not the submitter's local clock:
        on a shared (e.g. NFS) spool, cross-host clock skew larger than the
        orphan timeout would otherwise make every fresh heartbeat look
        stale (or make dead workers look alive forever).  Touching a
        scratch file and reading its mtime samples that clock; local
        ``time.time()`` is the fallback when the touch fails.  The scratch
        name is unique per call (two callers sharing a token must never
        race each other's unlink into the fallback) and removed before
        returning -- earlier versions leaked one ``.clock`` file per token
        forever; :meth:`gc` sweeps any stragglers from crashed callers.
        The ``.clock`` suffix keeps the scratch invisible to every
        ``*.json`` glob in the protocol.
        """
        path = self.workers_dir / (
            f"{_sanitize_id(token)}-{uuid.uuid4().hex[:8]}.clock"
        )
        try:
            path.touch()
            stamp = path.stat().st_mtime
        except OSError:
            return time.time()
        try:
            path.unlink()
        except OSError:
            pass
        return stamp

    # ---------------------------------------------------------- maintenance

    def status(self, now: Optional[float] = None) -> Dict[str, Any]:
        """A live snapshot of the spool: queue depth, claims, workers.

        Ages are relative to the spool filesystem's clock (:meth:`fs_now`).
        The returned dict is JSON-able; ``spool --status`` renders it via
        :func:`repro.analysis.reporting.spool_status_table`, and the
        ``spoold`` server serves the same shape (plus its requeue counters)
        over the network transport.
        """
        now = self.fs_now("status") if now is None else now

        def _listing(directory: Path, pattern: str) -> List[Path]:
            try:
                return sorted(directory.glob(pattern))
            except OSError:
                return []

        claimed = []
        for path in _listing(self.claimed_dir, "*.json"):
            job_id, separator, worker_id = path.stem.partition("@@")
            if not separator:
                continue
            try:
                age_s = max(now - path.stat().st_mtime, 0.0)
            except OSError:
                continue
            claimed.append({"job": job_id, "worker": worker_id, "age_s": age_s})
        workers = []
        for path in _listing(self.workers_dir, "*.json"):
            try:
                age_s = max(now - path.stat().st_mtime, 0.0)
                info = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # heartbeat mid-rewrite; the next snapshot sees it
            if not isinstance(info, dict):
                info = {}
            workers.append(
                {
                    "worker": path.stem,
                    "age_s": age_s,
                    "pid": info.get("pid"),
                    "host": info.get("host"),
                    "processed": info.get("processed"),
                    "started": info.get("started"),
                }
            )
        return {
            "now": now,
            "pending": len(_listing(self.pending_dir, "*.json")),
            "results": len(_listing(self.results_dir, "*.json")),
            "claimed": claimed,
            "workers": workers,
            "requeues": {},  # only the network server observes requeues
        }

    def gc(self, max_age_s: float, now: Optional[float] = None) -> Dict[str, Any]:
        """Age-based sweep of the garbage the protocol admits to leaking:
        results no submitter collected (abandoned batches), claims and
        heartbeats of dead workers whose submitter is gone, ``.clock``
        scratch files from crashed :meth:`fs_now` callers, worker ``.log``
        files, and published ``memo/`` entries (a source edit orphans them
        -- peers on the new code version reject them on absorb, so age is
        the right reaper).  ``pending/`` is never touched -- a pending job
        is a promise to some submitter, however old.

        A file is garbage when it is older than ``max_age_s`` *and* (for
        claims, heartbeats, and logs) its worker has not heartbeat within
        ``max_age_s`` -- a live worker's long-running claim is work, not
        garbage.  Ages are judged on the spool filesystem's clock.
        Returns ``{"removed": {category: count}, "kept": count}``.
        """
        if max_age_s < 0:
            raise ValueError(f"max_age_s must be >= 0, got {max_age_s}")
        now = self.fs_now("gc") if now is None else now
        live = set(self.live_workers(within_s=max_age_s, now=now))
        removed = {
            "results": 0,
            "claims": 0,
            "heartbeats": 0,
            "clocks": 0,
            "logs": 0,
            "memo": 0,
        }
        kept = 0

        def _stale(path: Path) -> Optional[bool]:
            try:
                return now - path.stat().st_mtime > max_age_s
            except OSError:
                return None  # vanished mid-scan: neither removed nor kept

        def _sweep(directory: Path, pattern: str, category: str, keep_workers):
            nonlocal kept
            try:
                candidates = sorted(directory.glob(pattern))
            except OSError:
                return
            for path in candidates:
                if keep_workers is not None and keep_workers(path.stem) in live:
                    kept += 1
                    continue
                stale = _stale(path)
                if stale is None:
                    continue
                if not stale:
                    kept += 1
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                removed[category] += 1

        _sweep(self.results_dir, "*.json", "results", None)
        _sweep(
            self.claimed_dir,
            "*.json",
            "claims",
            lambda stem: stem.partition("@@")[2],
        )
        _sweep(self.workers_dir, "*.json", "heartbeats", lambda stem: stem)
        _sweep(self.workers_dir, "*.clock", "clocks", None)
        _sweep(self.workers_dir, "*.log", "logs", lambda stem: stem)
        _sweep(self.memo_dir, "*.json", "memo", None)
        return {"removed": removed, "kept": kept, "max_age_s": max_age_s}


class WorkQueueExecutor(Executor):
    """Fan scenarios out to detached worker processes over a spool transport.

    ``spool`` is either a directory on a filesystem all participants share
    (the :class:`Spool` transport) or a ``tcp://host:port`` URL of a
    ``python -m repro.runner spoold`` job server (the
    :class:`~repro.runner.netqueue.NetSpool` transport -- no shared
    filesystem required).  Jobs carry the full JSON-able scenario (plus
    backend, segment-memo directory, and the submitter's code version), so
    any worker reaching the spool -- same host or not -- computes the
    byte-identical result the submitting process would have.  Workers are
    started with ``python -m repro.runner worker --spool DIR|URL``; the
    executor can additionally spawn ``local_workers`` such processes itself
    (terminated on :meth:`close`), which is how the CLI gives ``--executor
    workqueue`` standalone capacity.

    Failure handling:

    * a worker that dies mid-job stops heartbeating; after
      ``orphan_timeout_s`` the submitter renames the claim back to
      ``pending/`` (at most ``max_requeues`` times per job);
    * a job file a worker cannot parse (external corruption) comes back as a
      ``corrupt-job`` error result; the submitter rewrites the pristine job
      from memory, again bounded by ``max_requeues``;
    * a scenario that *raises* in a worker, or a worker running different
      code than the submitter, is a hard error: the submitter raises
      ``RuntimeError`` with the worker's report (matching the in-process
      executors, where the exception propagates directly).
    """

    name = "workqueue"

    #: how long a spawned local worker lingers after the spool runs dry
    #: before exiting on its own -- a leak backstop for executors that are
    #: never :meth:`close`\ d.
    LOCAL_WORKER_IDLE_EXIT_S = 300.0

    def __init__(
        self,
        spool: os.PathLike,
        local_workers: int = 0,
        poll_s: float = 0.05,
        orphan_timeout_s: float = 30.0,
        max_requeues: int = 3,
        timeout_s: Optional[float] = None,
    ):
        super().__init__()
        if local_workers < 0:
            raise ValueError(f"local_workers must be >= 0, got {local_workers}")
        if poll_s <= 0:
            raise ValueError(f"poll_s must be > 0, got {poll_s}")
        if orphan_timeout_s <= 0:
            raise ValueError(f"orphan_timeout_s must be > 0, got {orphan_timeout_s}")
        self.spool = open_spool(spool)
        self.local_workers = local_workers
        self.poll_s = poll_s
        self.orphan_timeout_s = orphan_timeout_s
        self.max_requeues = max_requeues
        self.timeout_s = timeout_s
        self._procs: List[subprocess.Popen] = []
        self._logs: List[Any] = []

    # --------------------------------------------------------- local workers

    def _spawn_local_workers(self) -> None:
        if self.local_workers <= 0:
            return
        self._procs = [p for p in self._procs if p.poll() is None]
        missing = self.local_workers - len(self._procs)
        if missing <= 0:
            return
        import repro

        env = os.environ.copy()
        package_parent = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = package_parent + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        log_dir = self.spool.worker_log_dir()
        for _ in range(missing):
            worker_id = f"local-{os.getpid()}-{uuid.uuid4().hex[:6]}"
            log = open(log_dir / f"{worker_id}.log", "ab")
            self._logs.append(log)
            self._procs.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.runner",
                        "worker",
                        "--spool",
                        self.spool.describe(),
                        "--poll",
                        str(self.poll_s),
                        "--idle-exit",
                        str(self.LOCAL_WORKER_IDLE_EXIT_S),
                        "--worker-id",
                        worker_id,
                    ],
                    stdout=log,
                    stderr=subprocess.STDOUT,
                    env=env,
                )
            )

    def close(self) -> None:
        """Terminate spawned local workers and release their log handles."""
        procs, self._procs = self._procs, []
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        logs, self._logs = self._logs, []
        for log in logs:
            try:
                log.close()
            except OSError:
                pass
        self.spool.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------- execution

    def configure(self, backend: str, segment_memo_dir: Optional[str]) -> None:
        # The memo directory crosses host/process boundaries inside job
        # files, so a relative path (".repro-cache/segments") must be pinned
        # to the submitter's filesystem location before it travels.
        if segment_memo_dir is not None:
            segment_memo_dir = str(Path(segment_memo_dir).resolve())
        super().configure(backend, segment_memo_dir)

    def submit(self, scenarios: Sequence[Scenario], run_fn: RunFn) -> List[RunResult]:
        # ``run_fn`` is intentionally unused: a work-queue job cannot ship a
        # callable, so workers rebuild the identical work function from the
        # job's (scenario, backend, segment_memo_dir) payload -- the
        # determinism contract makes the two indistinguishable.
        del run_fn
        if not scenarios:
            return []
        batch = uuid.uuid4().hex[:10]
        order: List[str] = []
        payloads: Dict[str, Dict[str, Any]] = {}
        for index, scenario in enumerate(scenarios):
            job_id = format_job_id(batch, index)
            payloads[job_id] = {
                "job": job_id,
                "scenario": scenario_to_payload(scenario),
                "backend": self.backend,
                "segment_memo_dir": self.segment_memo_dir,
                "code_version": code_version(),
            }
            order.append(job_id)
        collected = self._dispatch(batch, order, payloads)
        results = []
        for job_id in order:
            payload = collected[job_id]
            results.append(
                (payload["scenario"], payload["result"], payload["elapsed_s"])
            )
        return results

    def submit_chunks(
        self, chunks: Sequence[ChunkJob], run_chunk_fn: RunChunkFn
    ) -> List[ChunkResult]:
        # Like ``submit``, ``run_chunk_fn`` never crosses the wire: a chunk
        # job ships its (kind, params, backend, segment_memo_dir) payload
        # and the worker rebuilds the identical batch-runner call.  Each
        # chunk is one job file, so the whole failure protocol -- orphan
        # requeue, corrupt-job retry, code-version fencing -- operates at
        # chunk granularity: a dead worker forfeits (and a healthy one
        # re-executes) the entire chunk, never a partial slice of it.
        del run_chunk_fn
        if not chunks:
            return []
        batch = uuid.uuid4().hex[:10]
        order: List[str] = []
        payloads: Dict[str, Dict[str, Any]] = {}
        for index, (kind, params_list) in enumerate(chunks):
            job_id = format_job_id(batch, index)
            payloads[job_id] = {
                "job": job_id,
                "chunk": {"kind": kind, "params": list(params_list)},
                "backend": self.backend,
                "segment_memo_dir": self.segment_memo_dir,
                "code_version": code_version(),
            }
            order.append(job_id)
        collected = self._dispatch(batch, order, payloads)
        results: List[ChunkResult] = []
        for job_id in order:
            payload = collected[job_id]
            chunk_results = payload.get("results")
            expected = len(payloads[job_id]["chunk"]["params"])
            if not isinstance(chunk_results, list) or len(chunk_results) != expected:
                got = len(chunk_results) if isinstance(chunk_results, list) else "no"
                raise RuntimeError(
                    f"workqueue chunk job {job_id} returned {got} result(s) "
                    f"for {expected} point(s); worker "
                    f"{payload.get('worker', '<unknown>')} violated the "
                    "batch-runner contract"
                )
            results.append((chunk_results, payload["elapsed_s"]))
        return results

    def _dispatch(
        self,
        batch: str,
        order: Sequence[str],
        payloads: Dict[str, Dict[str, Any]],
    ) -> Dict[str, Dict[str, Any]]:
        """Publish one batch of job payloads (scalar or chunk -- the
        collection protocol is payload-shape-agnostic) and collect every
        result, abandoning the batch's spool files on any failure."""
        self.spool.ensure()
        try:
            self.spool.enqueue_many([(job_id, payloads[job_id]) for job_id in order])
            self._spawn_local_workers()
            return self._collect(batch, order, payloads)
        except BaseException:
            self.spool.abandon(f"{batch}.")
            raise

    # ------------------------------------------------------------ collection

    def _collect(
        self,
        batch: str,
        order: Sequence[str],
        payloads: Dict[str, Dict[str, Any]],
    ) -> Dict[str, Dict[str, Any]]:
        outstanding = set(order)
        collected: Dict[str, Dict[str, Any]] = {}
        requeues: Dict[str, int] = {}
        deadline = None if self.timeout_s is None else time.monotonic() + self.timeout_s
        last_orphan_scan = time.monotonic()
        prefix = f"{batch}."
        while outstanding:
            progress = False
            # One transport round-trip per pass, scoped to our batch by id
            # prefix: probing outstanding results individually would be O(n)
            # operations per pass against a possibly-remote spool.  Raw
            # texts come back so corrupted-result recovery is
            # transport-independent.
            for job_id, raw in sorted(self.spool.take_results(prefix).items()):
                if job_id not in outstanding:
                    continue  # duplicate from a requeue race; drop it
                progress = True
                try:
                    payload = json.loads(raw)
                    if not isinstance(payload, dict):
                        raise ValueError("result is not a JSON object")
                except (ValueError, json.JSONDecodeError):
                    # Externally corrupted result: retry the job.
                    self._requeue(job_id, payloads, requeues, "corrupted result")
                    continue
                error = payload.get("error")
                if error:
                    if error.get("type") == "corrupt-job":
                        self._requeue(job_id, payloads, requeues, "corrupted job")
                        continue
                    self.spool.abandon(prefix)
                    raise RuntimeError(
                        f"workqueue job {job_id} "
                        f"({_job_label(payloads[job_id])}) failed in "
                        f"worker {payload.get('worker', '<unknown>')}: "
                        f"{error.get('message', error)}"
                    )
                if payload.get("code_version") != code_version():
                    self.spool.abandon(prefix)
                    raise RuntimeError(
                        f"workqueue job {job_id} was executed by worker "
                        f"{payload.get('worker', '<unknown>')} running a "
                        "different code version; results would not be "
                        "byte-identical.  Restart the workers from this "
                        "source tree."
                    )
                synced = payload.get("segment_memo")
                if synced:
                    # Fold the worker's piggybacked segment-memo entries into
                    # this process's memo (absorb validates each against the
                    # current code version), so later in-process work -- the
                    # next generation of an exploration, a verify pass --
                    # starts warm from what remote workers just simulated.
                    from .cache import process_segment_memo

                    process_segment_memo().absorb(synced)
                collected[job_id] = payload
                outstanding.discard(job_id)
            if not outstanding:
                break
            now = time.monotonic()
            if now - last_orphan_scan >= min(self.orphan_timeout_s, 1.0):
                last_orphan_scan = now
                for job_id in self.spool.requeue_orphans(
                    self.orphan_timeout_s, prefix=prefix
                ):
                    requeues[job_id] = requeues.get(job_id, 0) + 1
                    if requeues[job_id] > self.max_requeues:
                        self.spool.abandon(prefix)
                        raise RuntimeError(
                            f"workqueue job {job_id} was orphaned "
                            f"{requeues[job_id]} times (> max_requeues="
                            f"{self.max_requeues}); giving up"
                        )
                self._check_for_dead_pool(outstanding)
            if deadline is not None and now > deadline:
                self.spool.abandon(prefix)
                raise TimeoutError(
                    f"workqueue sweep timed out after {self.timeout_s:g}s with "
                    f"{len(outstanding)} job(s) outstanding -- are any workers "
                    f"attached to {self.spool.describe()}?"
                )
            if not progress:
                time.sleep(self.poll_s)
        return collected

    def _requeue(
        self,
        job_id: str,
        payloads: Dict[str, Dict[str, Any]],
        requeues: Dict[str, int],
        reason: str,
    ) -> None:
        """Re-publish the pristine job after a recoverable failure."""
        requeues[job_id] = requeues.get(job_id, 0) + 1
        if requeues[job_id] > self.max_requeues:
            raise RuntimeError(
                f"workqueue job {job_id} failed {requeues[job_id]} times "
                f"(> max_requeues={self.max_requeues}); giving up.  Last "
                f"failure: {reason}"
            )
        self.spool.enqueue(job_id, payloads[job_id])

    def _check_for_dead_pool(self, outstanding: Sequence[str]) -> None:
        """Fail fast when this executor's own workers all died and nobody
        else is heartbeating -- otherwise the submit would hang forever."""
        if self.local_workers <= 0 or not self._procs:
            return  # external-only mode waits patiently by design
        if any(proc.poll() is None for proc in self._procs):
            return
        if self.spool.live_workers(within_s=self.orphan_timeout_s):
            return
        codes = [proc.returncode for proc in self._procs]
        raise RuntimeError(
            f"all {len(self._procs)} local workqueue worker(s) exited "
            f"(exit codes {codes}) with {len(outstanding)} job(s) "
            f"outstanding and no external workers heartbeating; see the "
            f"worker logs under {self.spool.worker_log_dir()}"
        )


#: CLI-selectable executor names (see ``repro.runner.cli``).
EXECUTOR_NAMES: Tuple[str, ...] = (
    SerialExecutor.name,
    ProcessPoolExecutor.name,
    WorkQueueExecutor.name,
)
