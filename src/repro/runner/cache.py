"""On-disk result cache for scenario runs.

Cache entries are JSON files keyed by a stable hash of the scenario's
canonical identity (kind + parameters) *and* the code version -- a content
hash over every ``.py`` file of the :mod:`repro` package.  Editing any source
file therefore invalidates the whole cache automatically; repeated sweeps on
unchanged code are near-instant cache hits that return byte-identical results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from .scenarios import DEFAULT_BACKEND, Scenario, canonical_json

__all__ = ["PruneStats", "ResultCache", "code_version", "DEFAULT_CACHE_DIR"]

#: default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Content hash of the :mod:`repro` package sources (cached per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro
        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


@dataclass
class PruneStats:
    """What one :meth:`ResultCache.prune` pass did.

    ``warnings`` records entries that could not be read or removed cleanly --
    corrupted JSON, files vanishing under a concurrent writer/pruner -- which
    the CLI reports on stderr without failing (prune is maintenance, not
    correctness: a skipped entry simply stays a cache miss).
    """

    kept: int = 0
    removed: int = 0
    warnings: List[str] = field(default_factory=list)


#: ``.tmp`` spill files older than this are considered crash leftovers; prune
#: leaves younger ones alone because a concurrent writer may still own them.
_TMP_GRACE_S = 3600.0


class ResultCache:
    """A directory of ``<scenario>-<key>.json`` scenario results."""

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ---------------------------------------------------------------- keying

    def key(self, scenario: Scenario, backend: str = DEFAULT_BACKEND) -> str:
        """Stable hash of (scenario identity, execution backend, code version).

        The backend is part of the identity: the engine and analytic backends
        legitimately produce different results for the same scenario, so their
        entries must never collide.
        """
        identity = scenario.canonical() + "|" + backend + "|" + code_version()
        return hashlib.sha256(identity.encode()).hexdigest()[:20]

    def path(self, scenario: Scenario, backend: str = DEFAULT_BACKEND) -> Path:
        safe_name = scenario.name.replace("/", "__")
        return self.root / f"{safe_name}-{self.key(scenario, backend)}.json"

    # ----------------------------------------------------------------- store

    def store(self, scenario: Scenario, result: Dict[str, Any],
              elapsed_s: float, backend: str = DEFAULT_BACKEND) -> Path:
        """Persist one scenario result atomically; returns the entry path."""
        path = self.path(scenario, backend)
        payload = {
            "scenario": scenario.name,
            "kind": scenario.kind,
            "backend": backend,
            "params": dict(scenario.params),
            "code_version": code_version(),
            "elapsed_s": elapsed_s,
            "result": result,
        }
        encoded = json.dumps(payload, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        return path

    # ------------------------------------------------------------------ load

    def load(self, scenario: Scenario,
             backend: str = DEFAULT_BACKEND) -> Optional[Dict[str, Any]]:
        """Return the cached payload for ``scenario``, or ``None`` on a miss.

        A hit requires the file to exist *and* its recorded identity to match
        the scenario, backend, and current code version (defence against
        hash-prefix collisions and manually edited entries).  Entries written
        before backends existed hash to different paths (and an older code
        version) and are therefore plain misses -- there is no migration.
        """
        path = self.path(scenario, backend)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (payload.get("kind") != scenario.kind
                or payload.get("backend") != backend
                or payload.get("code_version") != code_version()
                or canonical_json(payload.get("params")) != canonical_json(
                    dict(scenario.params))):
            return None
        return payload

    # ------------------------------------------------------------- inventory

    def entries(self) -> list:
        return sorted(self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed.

        Tolerates entries vanishing between listing and unlinking -- sweeps
        and prunes may run concurrently on the same directory.
        """
        removed = 0
        for path in self.entries():
            if self._unlink(path):
                removed += 1
        return removed

    @staticmethod
    def _unlink(path: Path, warnings: Optional[List[str]] = None) -> bool:
        """Remove ``path``; False if it vanished or cannot be removed.

        A concurrent pruner winning the race is silent; anything else (a
        read-only cache directory, foreign ownership on a shared cache) is
        appended to ``warnings`` when given -- cache maintenance degrades to
        a warning, it never tracebacks.
        """
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        except OSError as error:
            if warnings is not None:
                warnings.append(f"cannot remove {path.name}: {error}")
            return False
        return True

    def prune(self) -> PruneStats:
        """Remove stale and corrupted entries; keep everything current.

        An entry is *stale* when its recorded ``code_version`` is not the
        current one (superseded by a source edit -- it can never hit again)
        and *corrupted* when it cannot be parsed as a JSON object.  Both are
        removed.  Concurrent writers are tolerated end to end: fresh ``.tmp``
        spill files are left alone, vanished files are skipped, and nothing
        in here raises for an individual bad entry -- problems are collected
        as warnings instead.
        """
        stats = PruneStats()
        current = code_version()
        now = time.time()
        for path in self.entries():
            try:
                payload = json.loads(path.read_text())
                if not isinstance(payload, dict):
                    raise ValueError(f"expected a JSON object, got "
                                     f"{type(payload).__name__}")
            except FileNotFoundError:
                continue  # concurrent prune/clear got there first
            except (OSError, ValueError) as error:
                stats.warnings.append(f"removing corrupted entry "
                                      f"{path.name}: {error}")
                if self._unlink(path, stats.warnings):
                    stats.removed += 1
                continue
            if payload.get("code_version") != current:
                if self._unlink(path, stats.warnings):
                    stats.removed += 1
            else:
                stats.kept += 1
        for tmp in sorted(self.root.glob("*.tmp")):
            try:
                age = now - tmp.stat().st_mtime
            except OSError:
                continue
            if age > _TMP_GRACE_S:
                stats.warnings.append(f"removing abandoned spill file "
                                      f"{tmp.name} ({age:.0f}s old)")
                if self._unlink(tmp, stats.warnings):
                    stats.removed += 1
        return stats
