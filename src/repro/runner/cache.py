"""On-disk result cache for scenario runs.

Cache entries are JSON files keyed by a stable hash of the scenario's
canonical identity (kind + parameters) *and* the code version -- a content
hash over every ``.py`` file of the :mod:`repro` package.  Editing any source
file therefore invalidates the whole cache automatically; repeated sweeps on
unchanged code are near-instant cache hits that return byte-identical results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from .scenarios import DEFAULT_BACKEND, Scenario, canonical_json

__all__ = ["ResultCache", "code_version", "DEFAULT_CACHE_DIR"]

#: default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Content hash of the :mod:`repro` package sources (cached per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro
        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


class ResultCache:
    """A directory of ``<scenario>-<key>.json`` scenario results."""

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ---------------------------------------------------------------- keying

    def key(self, scenario: Scenario, backend: str = DEFAULT_BACKEND) -> str:
        """Stable hash of (scenario identity, execution backend, code version).

        The backend is part of the identity: the engine and analytic backends
        legitimately produce different results for the same scenario, so their
        entries must never collide.
        """
        identity = scenario.canonical() + "|" + backend + "|" + code_version()
        return hashlib.sha256(identity.encode()).hexdigest()[:20]

    def path(self, scenario: Scenario, backend: str = DEFAULT_BACKEND) -> Path:
        safe_name = scenario.name.replace("/", "__")
        return self.root / f"{safe_name}-{self.key(scenario, backend)}.json"

    # ----------------------------------------------------------------- store

    def store(self, scenario: Scenario, result: Dict[str, Any],
              elapsed_s: float, backend: str = DEFAULT_BACKEND) -> Path:
        """Persist one scenario result atomically; returns the entry path."""
        path = self.path(scenario, backend)
        payload = {
            "scenario": scenario.name,
            "kind": scenario.kind,
            "backend": backend,
            "params": dict(scenario.params),
            "code_version": code_version(),
            "elapsed_s": elapsed_s,
            "result": result,
        }
        encoded = json.dumps(payload, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        return path

    # ------------------------------------------------------------------ load

    def load(self, scenario: Scenario,
             backend: str = DEFAULT_BACKEND) -> Optional[Dict[str, Any]]:
        """Return the cached payload for ``scenario``, or ``None`` on a miss.

        A hit requires the file to exist *and* its recorded identity to match
        the scenario, backend, and current code version (defence against
        hash-prefix collisions and manually edited entries).  Entries written
        before backends existed hash to different paths (and an older code
        version) and are therefore plain misses -- there is no migration.
        """
        path = self.path(scenario, backend)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (payload.get("kind") != scenario.kind
                or payload.get("backend") != backend
                or payload.get("code_version") != code_version()
                or canonical_json(payload.get("params")) != canonical_json(
                    dict(scenario.params))):
            return None
        return payload

    # ------------------------------------------------------------- inventory

    def entries(self) -> list:
        return sorted(self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        return removed
