"""On-disk result cache for scenario runs, plus the segment-level memo.

Cache entries are JSON files keyed by a stable hash of the scenario's
canonical identity (kind + parameters) *and* the code version -- a content
hash over every ``.py`` file of the :mod:`repro` package.  Editing any source
file therefore invalidates the whole cache automatically; repeated sweeps on
unchanged code are near-instant cache hits that return byte-identical results.

Below the scenario cache sits :class:`SegmentMemo`: a process-wide (and
optionally on-disk) memo of *simulated segment* results keyed by the program
fingerprint of :meth:`repro.xnn.codegen.ProgramBuilder.fingerprint` (a hash
of the per-FU uOP streams, the datapath configuration, the codegen options,
and the code version).  Two scenarios that generate byte-identical programs
for a segment -- the same encoder group appearing under different scenario
names, a sweep revisiting a design point, ``explore --verify-top``
re-certifying a point a previous exploration already simulated -- therefore
run the event loop once; every later occurrence is a dictionary lookup that
returns the exact same numbers (the differential suite pins memoized ==
fresh byte for byte).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from .scenarios import DEFAULT_BACKEND, Scenario, canonical_json

__all__ = [
    "PruneStats",
    "ResultCache",
    "SegmentMemo",
    "code_version",
    "configure_segment_memo",
    "process_segment_memo",
    "DEFAULT_CACHE_DIR",
]

#: default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Content hash of the :mod:`repro` package sources (cached per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro
        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


@dataclass
class PruneStats:
    """What one :meth:`ResultCache.prune` pass did.

    ``warnings`` records entries that could not be read or removed cleanly --
    corrupted JSON, files vanishing under a concurrent writer/pruner -- which
    the CLI reports on stderr without failing (prune is maintenance, not
    correctness: a skipped entry simply stays a cache miss).
    """

    kept: int = 0
    removed: int = 0
    warnings: List[str] = field(default_factory=list)


#: ``.tmp`` spill files older than this are considered crash leftovers; prune
#: leaves younger ones alone because a concurrent writer may still own them.
_TMP_GRACE_S = 3600.0


class ResultCache:
    """A directory of ``<scenario>-<key>.json`` scenario results, plus
    ``chunk__<kind>-<key>.json`` whole-chunk entries for sharded batched
    evaluation (see :func:`repro.runner.sweep.evaluate_chunked`)."""

    #: subdirectory holding the on-disk segment-memo entries.
    SEGMENTS_SUBDIR = "segments"

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    @property
    def segments_dir(self) -> Path:
        """Where this cache keeps segment-memo entries (may not exist yet)."""
        return self.root / self.SEGMENTS_SUBDIR

    # ---------------------------------------------------------------- keying

    def key(self, scenario: Scenario, backend: str = DEFAULT_BACKEND) -> str:
        """Stable hash of (scenario identity, execution backend, code version).

        The backend is part of the identity: the engine and analytic backends
        legitimately produce different results for the same scenario, so their
        entries must never collide.
        """
        identity = scenario.canonical() + "|" + backend + "|" + code_version()
        return hashlib.sha256(identity.encode()).hexdigest()[:20]

    def path(self, scenario: Scenario, backend: str = DEFAULT_BACKEND) -> Path:
        safe_name = scenario.name.replace("/", "__")
        return self.root / f"{safe_name}-{self.key(scenario, backend)}.json"

    # ----------------------------------------------------------------- store

    def store(
        self,
        scenario: Scenario,
        result: Dict[str, Any],
        elapsed_s: float,
        backend: str = DEFAULT_BACKEND,
    ) -> Path:
        """Persist one scenario result atomically; returns the entry path."""
        path = self.path(scenario, backend)
        payload = {
            "scenario": scenario.name,
            "kind": scenario.kind,
            "backend": backend,
            "params": dict(scenario.params),
            "code_version": code_version(),
            "elapsed_s": elapsed_s,
            "result": result,
        }
        encoded = json.dumps(payload, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        return path

    # ------------------------------------------------------------------ load

    def load(
        self, scenario: Scenario, backend: str = DEFAULT_BACKEND
    ) -> Optional[Dict[str, Any]]:
        """Return the cached payload for ``scenario``, or ``None`` on a miss.

        A hit requires the file to exist *and* its recorded identity to match
        the scenario, backend, and current code version (defence against
        hash-prefix collisions and manually edited entries).  Entries written
        before backends existed hash to different paths (and an older code
        version) and are therefore plain misses -- there is no migration.
        """
        path = self.path(scenario, backend)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            payload.get("kind") != scenario.kind
            or payload.get("backend") != backend
            or payload.get("code_version") != code_version()
            or canonical_json(payload.get("params"))
            != canonical_json(dict(scenario.params))
        ):
            return None
        return payload

    # ---------------------------------------------------------- chunk entries

    def chunk_key(
        self,
        kind: str,
        params_list: List[Dict[str, Any]],
        backend: str = DEFAULT_BACKEND,
    ) -> str:
        """Stable hash of one **chunk job**'s identity.

        Keyed exactly like per-scenario entries -- canonical identity
        (here: the kind plus every point's parameters, order-sensitive,
        since results splice back positionally) + backend + code version --
        so chunk entries share the scenario cache's lifecycle: a source
        edit invalidates them, :meth:`prune` sweeps them, :meth:`clear`
        removes them, all through the generic ``code_version`` check.
        """
        identity = (
            canonical_json(
                {"kind": kind, "params": [dict(params) for params in params_list]}
            )
            + "|"
            + backend
            + "|"
            + code_version()
        )
        return hashlib.sha256(identity.encode()).hexdigest()[:20]

    def chunk_path(
        self,
        kind: str,
        params_list: List[Dict[str, Any]],
        backend: str = DEFAULT_BACKEND,
    ) -> Path:
        safe_kind = kind.replace("/", "__")
        key = self.chunk_key(kind, params_list, backend)
        return self.root / f"chunk__{safe_kind}-{key}.json"

    def store_chunk(
        self,
        kind: str,
        params_list: List[Dict[str, Any]],
        results: List[Dict[str, Any]],
        elapsed_s: float,
        backend: str = DEFAULT_BACKEND,
    ) -> Path:
        """Persist one chunk's results atomically; returns the entry path."""
        if len(results) != len(params_list):
            raise ValueError(
                f"chunk for kind {kind!r} has {len(params_list)} points but "
                f"{len(results)} results"
            )
        path = self.chunk_path(kind, params_list, backend)
        payload = {
            "chunk": True,
            "kind": kind,
            "backend": backend,
            "params": [dict(params) for params in params_list],
            "code_version": code_version(),
            "elapsed_s": elapsed_s,
            "results": results,
        }
        encoded = json.dumps(payload, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        return path

    def load_chunk(
        self,
        kind: str,
        params_list: List[Dict[str, Any]],
        backend: str = DEFAULT_BACKEND,
    ) -> Optional[Dict[str, Any]]:
        """Return the cached chunk payload, or ``None`` on a miss.

        Validated like :meth:`load`: the recorded identity must match the
        requested kind, point parameters (order included), backend, and the
        current code version, and the results list must be point-for-point
        complete -- a partial or foreign entry is a plain miss.
        """
        path = self.chunk_path(kind, params_list, backend)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        results = payload.get("results") if isinstance(payload, dict) else None
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != kind
            or payload.get("backend") != backend
            or payload.get("code_version") != code_version()
            or canonical_json(payload.get("params"))
            != canonical_json([dict(params) for params in params_list])
            or not isinstance(results, list)
            or len(results) != len(params_list)
        ):
            return None
        return payload

    # ------------------------------------------------------------- inventory

    def entries(self) -> list:
        return sorted(self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed.

        Segment-memo entries under :attr:`segments_dir` are cleared along
        with the scenario results (they share the code-version lifecycle).
        Tolerates entries vanishing between listing and unlinking -- sweeps
        and prunes may run concurrently on the same directory.
        """
        removed = 0
        for path in self.entries():
            if self._unlink(path):
                removed += 1
        segments = self.segments_dir
        if segments.is_dir():
            for path in sorted(segments.glob("*.json")):
                if self._unlink(path):
                    removed += 1
        return removed

    @staticmethod
    def _unlink(path: Path, warnings: Optional[List[str]] = None) -> bool:
        """Remove ``path``; False if it vanished or cannot be removed.

        A concurrent pruner winning the race is silent; anything else (a
        read-only cache directory, foreign ownership on a shared cache) is
        appended to ``warnings`` when given -- cache maintenance degrades to
        a warning, it never tracebacks.
        """
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        except OSError as error:
            if warnings is not None:
                warnings.append(f"cannot remove {path.name}: {error}")
            return False
        return True

    def prune(self) -> PruneStats:
        """Remove stale and corrupted entries; keep everything current.

        An entry is *stale* when its recorded ``code_version`` is not the
        current one (superseded by a source edit -- it can never hit again)
        and *corrupted* when it cannot be parsed as a JSON object.  Both are
        removed.  Concurrent writers are tolerated end to end: fresh ``.tmp``
        spill files are left alone, vanished files are skipped, and nothing
        in here raises for an individual bad entry -- problems are collected
        as warnings instead.
        """
        stats = PruneStats()
        current = code_version()
        now = time.time()
        for path in self.entries():
            try:
                payload = json.loads(path.read_text())
                if not isinstance(payload, dict):
                    raise ValueError(
                        f"expected a JSON object, got " f"{type(payload).__name__}"
                    )
            except FileNotFoundError:
                continue  # concurrent prune/clear got there first
            except (OSError, ValueError) as error:
                stats.warnings.append(
                    f"removing corrupted entry " f"{path.name}: {error}"
                )
                if self._unlink(path, stats.warnings):
                    stats.removed += 1
                continue
            if payload.get("code_version") != current:
                if self._unlink(path, stats.warnings):
                    stats.removed += 1
            else:
                stats.kept += 1
        segments = self.segments_dir
        if segments.is_dir():
            for path in sorted(segments.glob("*.json")):
                try:
                    payload = json.loads(path.read_text())
                    if not isinstance(payload, dict):
                        raise ValueError(
                            f"expected a JSON object, got " f"{type(payload).__name__}"
                        )
                except FileNotFoundError:
                    continue
                except (OSError, ValueError) as error:
                    stats.warnings.append(
                        f"removing corrupted segment entry " f"{path.name}: {error}"
                    )
                    if self._unlink(path, stats.warnings):
                        stats.removed += 1
                    continue
                if payload.get("code_version") != current:
                    if self._unlink(path, stats.warnings):
                        stats.removed += 1
                else:
                    stats.kept += 1
        for tmp in sorted(self.root.glob("*.tmp")):
            try:
                age = now - tmp.stat().st_mtime
            except OSError:
                continue
            if age > _TMP_GRACE_S:
                stats.warnings.append(
                    f"removing abandoned spill file " f"{tmp.name} ({age:.0f}s old)"
                )
                if self._unlink(tmp, stats.warnings):
                    stats.removed += 1
        return stats


# --------------------------------------------------------------- segment memo


class SegmentMemo:
    """Memo of simulated segment results, keyed two ways per segment.

    Every simulated segment is stored under **two keys**: the *upstream*
    workload key (``workload-`` prefixed; a SHA-256 over the segment's
    builder-op descriptors, the :class:`XNNConfig`, the
    :class:`CodegenOptions`, and the code version, computed by
    :meth:`repro.xnn.executor.XNNExecutor._workload_key` before any codegen
    runs) and the *downstream* program fingerprint
    (:meth:`repro.xnn.codegen.ProgramBuilder.fingerprint` -- a SHA-256 over
    the per-FU uOP streams plus the same config/options/code version).  An
    upstream hit skips codegen entirely; a downstream hit skips only the
    event-loop simulation.  Either way a hit guarantees the skipped work
    would have produced a byte-identical result.  The storage is layered:

    * an **in-memory** dict, always on: identical segments within one process
      (one sweep, one exploration, one test run) simulate once;
    * an optional **on-disk** layer under a :class:`ResultCache`'s
      ``segments/`` directory, attached with :meth:`set_root`: identical
      segments across processes and across runs are also served from memo.

    Entries are validated against the recorded code version on load, exactly
    like scenario cache entries; stale entries are plain misses (and are
    swept by ``ResultCache.prune``).  Results never depend on tensor *data*,
    so the memo must only be consulted for timing-only simulations
    (``carry_data=False``) -- the executor enforces this.

    For cross-host sharing, :meth:`store` additionally records each *newly*
    stored entry so :meth:`take_new` can hand them to the work-queue layer
    (workers piggyback them on result files, submitters and TCP peers fold
    them back in through :meth:`absorb`).  Absorbed entries are validated
    against the current code version -- a peer running different sources can
    never poison this memo -- and are *not* re-recorded as new, so entries
    do not ping-pong between hosts.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self._memory: Dict[str, Dict[str, Any]] = {}
        self._root: Optional[Path] = None
        self._new: Dict[str, Dict[str, Any]] = {}
        #: lifetime counters, for benchmarks and tests.
        self.hits = 0
        self.misses = 0
        if root is not None:
            self.set_root(root)

    @property
    def root(self) -> Optional[Path]:
        return self._root

    def set_root(self, root: Optional[os.PathLike]) -> None:
        """Attach (or detach, with ``None``) the on-disk layer."""
        if root is None:
            self._root = None
            return
        path = Path(root)
        if self._root != path:
            path.mkdir(parents=True, exist_ok=True)
            self._root = path

    def _path(self, key: str) -> Path:
        assert self._root is not None
        return self._root / f"segment-{key[:32]}.json"

    # ------------------------------------------------------------------ load

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the memoized payload for ``key``, or ``None`` on a miss."""
        payload = self._memory.get(key)
        if payload is None and self._root is not None:
            path = self._path(key)
            if path.exists():
                try:
                    entry = json.loads(path.read_text())
                except (OSError, json.JSONDecodeError):
                    entry = None
                if (
                    isinstance(entry, dict)
                    and entry.get("key") == key
                    and entry.get("code_version") == code_version()
                    and isinstance(entry.get("result"), dict)
                ):
                    payload = entry["result"]
                    self._memory[key] = payload
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return dict(payload)

    # ----------------------------------------------------------------- store

    def store(self, key: str, payload: Dict[str, Any], fresh: bool = True) -> None:
        """Memoize ``payload`` (JSON-able scalars) under ``key``.

        ``fresh`` entries (the default: locally simulated results) are also
        recorded for :meth:`take_new`, so the work-queue layer can ship them
        to other hosts; entries arriving *from* other hosts are stored with
        ``fresh=False`` (see :meth:`absorb`) and are not re-shipped.

        The disk layer is an accelerator, not a correctness requirement: a
        failed write (deleted cache directory, permissions, full disk)
        degrades to the in-memory entry instead of failing the simulation
        that produced the result.
        """
        self._memory[key] = dict(payload)
        if fresh:
            self._new[key] = {
                "key": key,
                "code_version": code_version(),
                "result": dict(payload),
            }
        if self._root is None:
            return
        entry = {
            "key": key,
            "code_version": code_version(),
            "result": dict(payload),
        }
        encoded = json.dumps(entry, sort_keys=True, indent=1)
        try:
            fd, tmp_name = tempfile.mkstemp(dir=self._root, suffix=".tmp")
        except OSError:
            return
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(encoded)
            os.replace(tmp_name, self._path(key))
        except OSError:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    # ----------------------------------------------------- cross-host sharing

    def keys(self) -> List[str]:
        """Every in-memory key (the ``known`` set for a memo-sync exchange)."""
        return list(self._memory)

    def take_new(self) -> List[Dict[str, Any]]:
        """Return-and-clear the entries stored fresh since the last call.

        Each element is a full entry dict (``key`` / ``code_version`` /
        ``result``), the same shape the disk layer writes, ready to travel
        over the spool and be fed to a peer's :meth:`absorb`.
        """
        entries = list(self._new.values())
        self._new.clear()
        return entries

    def absorb(self, entries) -> int:
        """Fold entries from another host in; returns how many were accepted.

        Every entry is validated the same way a disk read is: it must be a
        well-formed entry dict whose recorded ``code_version`` matches this
        process's -- a peer running edited sources (or replaying stale
        entries) contributes nothing, so a synced memo can never poison a
        sweep.  Accepted entries are stored with ``fresh=False``: they are
        persisted locally (memory + disk layer) but never re-shipped.
        """
        accepted = 0
        if not isinstance(entries, (list, tuple)):
            return 0
        current = code_version()
        for entry in entries:
            if (
                not isinstance(entry, dict)
                or not isinstance(entry.get("key"), str)
                or entry.get("code_version") != current
                or not isinstance(entry.get("result"), dict)
            ):
                continue
            key = entry["key"]
            if key not in self._memory:
                self.store(key, entry["result"], fresh=False)
            accepted += 1
        return accepted

    # ----------------------------------------------------------- maintenance

    def clear(self) -> None:
        """Drop every in-memory entry and delete any on-disk entries."""
        self._memory.clear()
        self._new.clear()
        self.hits = 0
        self.misses = 0
        if self._root is not None and self._root.is_dir():
            for path in sorted(self._root.glob("*.json")):
                try:
                    path.unlink()
                except OSError:
                    continue

    def __len__(self) -> int:
        return len(self._memory)


#: the process-wide memo every :class:`~repro.xnn.executor.XNNExecutor`
#: shares by default.  Purely in-memory until a sweep attaches a cache
#: directory via :func:`configure_segment_memo`.
_PROCESS_SEGMENT_MEMO = SegmentMemo()


def process_segment_memo() -> SegmentMemo:
    """The process-wide segment memo (default for every executor)."""
    return _PROCESS_SEGMENT_MEMO


def configure_segment_memo(root: Optional[os.PathLike]) -> SegmentMemo:
    """Attach (``root``) or detach (``None``) the process memo's disk layer.

    Called by the sweep executor in the parent process and in every worker,
    so cache-enabled sweeps persist segment results next to the scenario
    cache (``<cache-dir>/segments/``).
    """
    _PROCESS_SEGMENT_MEMO.set_root(root)
    return _PROCESS_SEGMENT_MEMO
