"""Parallel sweep-runner subsystem: declarative scenarios, caching, fan-out.

The runner turns the benchmark suite's ad-hoc scripts into data:

* :mod:`repro.runner.scenarios` -- the :class:`Scenario` dataclass and the
  process-wide :data:`REGISTRY` of scenario kinds and named scenarios;
* :mod:`repro.runner.library` -- the catalogue: every benchmark table/figure
  point registered as a tagged scenario (imported here, so ``import
  repro.runner`` yields a fully populated registry);
* :mod:`repro.runner.cache` -- the on-disk :class:`ResultCache`, keyed by
  scenario identity plus a content hash of the package sources;
* :mod:`repro.runner.executors` -- the pluggable execution policies:
  :class:`SerialExecutor`, :class:`ProcessPoolExecutor` (local
  ``multiprocessing`` pool), and :class:`WorkQueueExecutor` (distributed
  fan-out over a spool transport: a shared :class:`Spool` directory, or a
  ``tcp://`` job server -- :func:`open_spool` picks the transport);
* :mod:`repro.runner.netqueue` -- the network transport: the ``spoold``
  TCP job server (:class:`SpoolServer`) and its client (:class:`NetSpool`),
  so submitters and workers need no shared filesystem;
* :mod:`repro.runner.worker` -- the detached work-queue worker loop behind
  ``python -m repro.runner worker``;
* :mod:`repro.runner.sweep` -- :func:`run_sweep`, which resolves cache hits
  and hands the rest to an executor (batch-capable kinds travel as sharded
  **chunk jobs** on distributed executors), and :func:`evaluate_chunked`,
  the chunk-cached bulk-evaluation front door of the exploration layer;
* :mod:`repro.runner.cli` -- ``python -m repro.runner`` (list / run / sweep /
  explore / worker / spoold / spool / cache subcommands).

Typical library use::

    from repro.runner import (REGISTRY, ProcessPoolExecutor, ResultCache,
                              run_sweep)

    outcomes = run_sweep([s.name for s in REGISTRY.select(tags=["table9"])],
                         executor=ProcessPoolExecutor(4), cache=ResultCache())
"""

from .scenarios import (
    BACKENDS,
    DEFAULT_BACKEND,
    REGISTRY,
    Scenario,
    ScenarioRegistry,
    canonical_json,
)
from .cache import DEFAULT_CACHE_DIR, ResultCache, code_version
from .executors import (
    EXECUTOR_NAMES,
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    Spool,
    WorkQueueExecutor,
    default_executor,
    format_job_id,
    open_spool,
)
from .sweep import (
    SweepOutcome,
    auto_chunk_size,
    evaluate_chunked,
    partition_chunks,
    run_sweep,
)
from .worker import run_worker
from . import library  # noqa: F401 -- registers the scenario catalogue

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "DEFAULT_CACHE_DIR",
    "EXECUTOR_NAMES",
    "Executor",
    "ProcessPoolExecutor",
    "REGISTRY",
    "ResultCache",
    "Scenario",
    "ScenarioRegistry",
    "SerialExecutor",
    "Spool",
    "SweepOutcome",
    "WorkQueueExecutor",
    "auto_chunk_size",
    "canonical_json",
    "code_version",
    "default_executor",
    "evaluate_chunked",
    "format_job_id",
    "open_spool",
    "partition_chunks",
    "run_sweep",
    "run_worker",
]
