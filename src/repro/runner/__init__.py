"""Parallel sweep-runner subsystem: declarative scenarios, caching, fan-out.

The runner turns the benchmark suite's ad-hoc scripts into data:

* :mod:`repro.runner.scenarios` -- the :class:`Scenario` dataclass and the
  process-wide :data:`REGISTRY` of scenario kinds and named scenarios;
* :mod:`repro.runner.library` -- the catalogue: every benchmark table/figure
  point registered as a tagged scenario (imported here, so ``import
  repro.runner`` yields a fully populated registry);
* :mod:`repro.runner.cache` -- the on-disk :class:`ResultCache`, keyed by
  scenario identity plus a content hash of the package sources;
* :mod:`repro.runner.sweep` -- :func:`run_sweep`, which resolves cache hits
  and fans the rest out over a ``multiprocessing`` pool;
* :mod:`repro.runner.cli` -- ``python -m repro.runner`` (list / run / sweep /
  cache subcommands).

Typical library use::

    from repro.runner import REGISTRY, ResultCache, run_sweep

    outcomes = run_sweep([s.name for s in REGISTRY.select(tags=["table9"])],
                         workers=4, cache=ResultCache())
"""

from .scenarios import (BACKENDS, DEFAULT_BACKEND, REGISTRY, Scenario,
                        ScenarioRegistry, canonical_json)
from .cache import DEFAULT_CACHE_DIR, ResultCache, code_version
from .sweep import SweepOutcome, run_sweep
from . import library  # noqa: F401 -- registers the scenario catalogue

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "DEFAULT_CACHE_DIR",
    "REGISTRY",
    "ResultCache",
    "Scenario",
    "ScenarioRegistry",
    "SweepOutcome",
    "canonical_json",
    "code_version",
    "run_sweep",
]
