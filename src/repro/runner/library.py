"""The scenario catalogue: every benchmark table/figure point as data.

Importing this module populates :data:`repro.runner.scenarios.REGISTRY` with

* the runner functions for each scenario *kind* (end-to-end GEMM, encoder
  run, CHARM baseline point, mapping-type estimate, ...), and
* one named scenario per benchmark data point (``table6b/gemm-1024``,
  ``fig18/rsn-b6``, ``table11/bw-2x``, ...), tagged by the table or figure
  it reproduces.

Every kind declares the execution backends it supports.  Simulation kinds
(``xnn_*``, ``engine_chain``) register two implementations: the event-driven
``engine`` backend and the closed-form ``analytic`` backend
(:class:`~repro.xnn.analytic.AnalyticXNN`), whose latency is a certified
lower bound on the engine's result (pinned by ``tests/differential/``).
Kinds that are analytical by nature (CHARM, mapping estimates, GPU
rooflines, ...) register one backend-independent function for both.

Runner functions take only JSON-able keyword parameters and return JSON-able
dicts, so every scenario can be executed in a worker process and cached on
disk byte-for-byte (:mod:`repro.runner.sweep`, :mod:`repro.runner.cache`).

Batch-capable kinds additionally register a *batch runner*
(``@REGISTRY.batch_kind``): one call evaluating a whole list of parameter
sets, payload-identical to the scalar runner point for point.  Batch
runners are what sharded **chunk jobs** execute -- a distributed sweep or
exploration ships a contiguous slice of a generation as a single job, and
the worker runs the slice through the batch runner in one call
(:func:`repro.runner.sweep.evaluate_chunked`,
:mod:`repro.runner.worker`), so per-job overhead amortises over the
whole chunk while results stay byte-identical to the serial batched path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .scenarios import REGISTRY

__all__ = ["REGISTRY"]


# --------------------------------------------------------------------- helpers


def _codegen_options(options: Optional[Dict[str, Any]]):
    from repro.xnn import CodegenOptions

    return CodegenOptions(**(options or {}))


def _xnn_config(bandwidth_scale: float = 1.0, **overrides):
    from repro.xnn import XNNConfig

    return XNNConfig(carry_data=False, bandwidth_scale=bandwidth_scale, **overrides)


def _encoder_config(model: str):
    """Encoder hyper-parameters by name, shared by both backends of the
    ``xnn_encoder`` kind so their supported models cannot diverge."""
    from repro.workloads.bert import BERT_LARGE
    from repro.workloads.vit import VIT_BASE

    configs = {"bert_large": BERT_LARGE, "vit_base": VIT_BASE}
    if model not in configs:
        raise KeyError(f"unknown encoder model {model!r}; known: {sorted(configs)}")
    return configs[model]


def _feedforward_builder(model: str):
    """Feed-forward model builder by name, shared by both backends."""
    from repro.workloads import mlp_model, ncf_model

    builders = {"ncf": ncf_model, "mlp": mlp_model}
    if model not in builders:
        raise KeyError(
            f"unknown feedforward model {model!r}; known: {sorted(builders)}"
        )
    return builders[model]


def _segment_dict(segment) -> Dict[str, Any]:
    return {
        "name": segment.name,
        "latency_s": segment.latency_s,
        "flops": segment.flops,
        "ddr_bytes": segment.ddr_bytes,
        "lpddr_bytes": segment.lpddr_bytes,
        "uops": segment.uops,
    }


def _encoder_dict(result) -> Dict[str, Any]:
    return {
        "name": result.name,
        "batch": result.batch,
        "latency_s": result.latency_s,
        "latency_ms": result.latency_ms,
        "flops": result.flops,
        "ddr_bytes": result.ddr_bytes,
        "lpddr_bytes": result.lpddr_bytes,
        "offchip_bytes": result.offchip_bytes,
        "achieved_tflops": result.achieved_tflops,
        "throughput_tasks_per_s": result.throughput_tasks_per_s,
        "segments": [_segment_dict(s) for s in result.segments],
    }


def _analytic_segment_dict(segment) -> Dict[str, Any]:
    payload = _segment_dict(segment)
    payload["bottleneck"] = segment.bottleneck
    payload["bounds_s"] = dict(segment.bounds_s)
    payload["utilization"] = dict(segment.utilization)
    if segment.mapping:
        payload["mapping"] = segment.mapping
    return payload


def _analytic_encoder_dict(result) -> Dict[str, Any]:
    payload = _encoder_dict(result)
    payload["segments"] = [_analytic_segment_dict(s) for s in result.segments]
    return payload


# ---------------------------------------------------------------- kind runners


@REGISTRY.kind("aie_gemm", backend=("engine", "analytic"))
def run_aie_gemm(shape: List[int]) -> dict:
    """Single-kernel AIE-array GEMM throughput for one tile shape (Table 6a)."""
    from repro.hardware.aie import AIEArrayModel

    aie = AIEArrayModel()
    flops = aie.array_gemm_flops(tuple(shape))
    return {"shape": list(shape), "gflops": flops / 1e9}


@REGISTRY.kind("xnn_gemm")
def run_xnn_gemm(
    m: int,
    k: int,
    n: int,
    options: Optional[Dict[str, Any]] = None,
    bandwidth_scale: float = 1.0,
) -> dict:
    """End-to-end square/rectangular GEMM on the simulated datapath (Table 6b)."""
    from repro.xnn import XNNExecutor

    executor = XNNExecutor(
        config=_xnn_config(bandwidth_scale), options=_codegen_options(options)
    )
    result, _ = executor.run_gemm(m, k, n)
    payload = _segment_dict(result)
    payload["gflops"] = (
        result.flops / result.latency_s / 1e9 if result.latency_s else 0.0
    )
    return payload


@REGISTRY.kind("xnn_gemm", backend="analytic")
def estimate_xnn_gemm(
    m: int,
    k: int,
    n: int,
    options: Optional[Dict[str, Any]] = None,
    bandwidth_scale: float = 1.0,
) -> dict:
    """Analytic lower-bound estimate of the end-to-end GEMM (Table 6b)."""
    from repro.xnn.analytic import AnalyticXNN

    model = AnalyticXNN(
        config=_xnn_config(bandwidth_scale), options=_codegen_options(options)
    )
    result = model.run_gemm(m, k, n)
    payload = _analytic_segment_dict(result)
    payload["gflops"] = (
        result.flops / result.latency_s / 1e9 if result.latency_s else 0.0
    )
    return payload


def _gemm_point(
    m: int,
    k: int,
    n: int,
    options: Optional[Dict[str, Any]] = None,
    bandwidth_scale: float = 1.0,
):
    """One ``xnn_gemm`` parameter set resolved into the exact objects the
    scalar analytic runner constructs.  Same signature as the scalar runner,
    so unknown or missing parameters fail identically on either path."""
    return (_xnn_config(bandwidth_scale), _codegen_options(options), m, k, n)


@REGISTRY.batch_kind("xnn_gemm", backend="analytic")
def estimate_xnn_gemm_batch(param_sets: List[Dict[str, Any]]) -> List[dict]:
    """Batched analytic evaluation of many ``xnn_gemm`` scenarios.

    Shared-tally memoization plus vectorized rooflines, payload-formatted
    through the same helpers as :func:`estimate_xnn_gemm` -- every payload
    equals the scalar runner's for the same parameters exactly
    (``tests/differential/test_batched_analytic.py`` pins this).
    """
    from repro.xnn.analytic import encoder_batch_evaluator

    points = [_gemm_point(**params) for params in param_sets]
    payloads = []
    for result in encoder_batch_evaluator().gemm_results(points):
        payload = _analytic_segment_dict(result)
        payload["gflops"] = (
            result.flops / result.latency_s / 1e9 if result.latency_s else 0.0
        )
        payloads.append(payload)
    return payloads


@REGISTRY.kind("xnn_encoder")
def run_xnn_encoder(
    batch: int,
    seq_len: int,
    model: str = "bert_large",
    options: Optional[Dict[str, Any]] = None,
    bandwidth_scale: float = 1.0,
) -> dict:
    """One transformer encoder layer on the simulated datapath."""
    from repro.xnn import XNNExecutor

    executor = XNNExecutor(
        config=_xnn_config(bandwidth_scale), options=_codegen_options(options)
    )
    result = executor.run_encoder(
        batch=batch, seq_len=seq_len, config=_encoder_config(model)
    )
    return _encoder_dict(result)


@REGISTRY.kind("xnn_encoder", backend="analytic")
def estimate_xnn_encoder(
    batch: int,
    seq_len: int,
    model: str = "bert_large",
    options: Optional[Dict[str, Any]] = None,
    bandwidth_scale: float = 1.0,
) -> dict:
    """Analytic lower-bound estimate of one encoder layer, per segment."""
    from repro.xnn.analytic import AnalyticXNN

    analytic = AnalyticXNN(
        config=_xnn_config(bandwidth_scale), options=_codegen_options(options)
    )
    result = analytic.run_encoder(
        batch=batch, seq_len=seq_len, config=_encoder_config(model)
    )
    return _analytic_encoder_dict(result)


def _encoder_point(
    batch: int,
    seq_len: int,
    model: str = "bert_large",
    options: Optional[Dict[str, Any]] = None,
    bandwidth_scale: float = 1.0,
):
    """One ``xnn_encoder`` parameter set resolved into the exact objects the
    scalar analytic runner constructs.  Same signature as the scalar runner,
    so unknown or missing parameters fail identically on either path."""
    return (
        _xnn_config(bandwidth_scale),
        _codegen_options(options),
        batch,
        seq_len,
        _encoder_config(model),
    )


@REGISTRY.batch_kind("xnn_encoder", backend="analytic")
def estimate_xnn_encoder_batch(param_sets: List[Dict[str, Any]]) -> List[dict]:
    """Batched analytic evaluation of many ``xnn_encoder`` scenarios.

    One call per sweep generation: tallies are memoized across points (and
    calls), the bandwidth-dependent rooflines are vectorized, and each point
    is payload-formatted through the same helper as
    :func:`estimate_xnn_encoder` -- so every payload equals the scalar
    runner's for the same parameters exactly
    (``tests/differential/test_batched_analytic.py`` pins this).
    """
    from repro.xnn.analytic import encoder_batch_evaluator

    points = [_encoder_point(**params) for params in param_sets]
    results = encoder_batch_evaluator().encoder_results(points)
    return [_analytic_encoder_dict(result) for result in results]


@REGISTRY.kind("xnn_feedforward")
def run_xnn_feedforward(
    model: str, batch: int, options: Optional[Dict[str, Any]] = None
) -> dict:
    """A pure-GEMM model (NCF / MLP) chained through DDR (Table 7)."""
    from repro.xnn import XNNExecutor

    executor = XNNExecutor(config=_xnn_config(), options=_codegen_options(options))
    result = executor.run_feedforward_model(_feedforward_builder(model)(batch=batch))
    return _encoder_dict(result)


@REGISTRY.kind("xnn_feedforward", backend="analytic")
def estimate_xnn_feedforward(
    model: str, batch: int, options: Optional[Dict[str, Any]] = None
) -> dict:
    """Analytic lower-bound estimate of a pure-GEMM model (Table 7)."""
    from repro.xnn.analytic import AnalyticXNN

    analytic = AnalyticXNN(config=_xnn_config(), options=_codegen_options(options))
    result = analytic.run_feedforward_model(_feedforward_builder(model)(batch=batch))
    return _analytic_encoder_dict(result)


@REGISTRY.kind("charm_gemm", backend=("engine", "analytic"))
def run_charm_gemm(size: int) -> dict:
    """CHARM baseline end-to-end square-MM throughput (Table 6b column)."""
    from repro.baselines import CharmModel

    return {"size": size, "gflops": CharmModel().gemm_throughput_gflops(size)}


@REGISTRY.kind("charm_encoder", backend=("engine", "analytic"))
def run_charm_encoder(batch: int, seq_len: int) -> dict:
    """CHARM BERT-Large encoder point with six-batch scheduling (Fig. 18)."""
    from repro.baselines import CharmModel
    from repro.workloads import bert_large_encoder

    charm = CharmModel()
    scheduled = max(batch, charm.schedule_batch)
    encoder = bert_large_encoder(batch=scheduled, seq_len=seq_len)
    return {
        "batch": batch,
        "scheduled_batch": scheduled,
        "latency_ms": charm.model_latency(encoder) * 1e3,
        "throughput_tasks_per_s": charm.throughput_tasks_per_s(
            encoder, useful_tasks=batch
        ),
    }


@REGISTRY.kind("mapping_types", backend=("engine", "analytic"))
def run_mapping_types(batch: int, seq_len: int) -> dict:
    """Latency estimates of the four mapping types on BERT attention (Table 3)."""
    from repro.workloads import bert_large_encoder
    from repro.xnn.mapping import compare_mapping_types

    encoder = bert_large_encoder(batch=batch, seq_len=seq_len)
    estimates = compare_mapping_types(
        encoder.layer("attention_mm1"), encoder.layer("attention_mm2")
    )
    return {
        mapping.value: {
            "bandwidth_bound_s": estimate.bandwidth_bound_s,
            "compute_bound_s": estimate.compute_bound_s,
            "used_aie_fraction": estimate.used_aie_fraction,
            "final_latency_ms": estimate.final_latency_ms,
        }
        for mapping, estimate in estimates.items()
    }


@REGISTRY.kind("fu_properties", backend=("engine", "analytic"))
def run_fu_properties() -> dict:
    """Per-FU compute/memory/bandwidth inventory of the datapath (Fig. 16)."""
    from repro.xnn import XNNDatapath

    xnn = XNNDatapath(_xnn_config())
    return {"rows": xnn.fu_properties()}


#: physical constants of the synthetic engine-chain pipeline, shared by the
#: engine implementation and its analytic twin so they cannot drift apart.
_CHAIN_MSG_BYTES = 64
_CHAIN_CHANNEL_BW = 1e9
_CHAIN_DELAY_S = 1e-9


@REGISTRY.kind("engine_chain")
def run_engine_chain(
    n_msgs: int = 2000,
    stages: int = 2,
    capacity: int = 4,
    fast_zero_delay: bool = True,
) -> dict:
    """A synthetic producer->relay->consumer pipeline on the raw engine.

    Used by the determinism tests and the CI smoke sweep: cheap, exercises the
    read/write fast path, and its stats are exactly reproducible.
    """
    from repro.core import Delay, Read, Simulator, StreamChannel, Write

    class _Msg:
        __slots__ = ("nbytes",)

        def __init__(self) -> None:
            self.nbytes = _CHAIN_MSG_BYTES

    sim = Simulator(fast_zero_delay=fast_zero_delay)
    channels = [
        StreamChannel(f"c{i}", capacity=capacity, bandwidth=_CHAIN_CHANNEL_BW)
        for i in range(stages + 1)
    ]

    def producer():
        # Requests are immutable: hoist the per-iteration constants so the
        # loop measures engine throughput, not dataclass allocation.
        delay = Delay(_CHAIN_DELAY_S)
        first = channels[0]
        for _ in range(n_msgs):
            yield delay
            yield Write(first, _Msg())

    def relay(index: int):
        read_in = Read(channels[index])
        out = channels[index + 1]
        for _ in range(n_msgs):
            message = yield read_in
            yield Write(out, message)

    def consumer():
        read_last = Read(channels[stages])
        for _ in range(n_msgs):
            yield read_last

    sim.add_process("producer", producer())
    for index in range(stages):
        sim.add_process(f"relay{index}", relay(index))
    sim.add_process("consumer", consumer())
    stats = sim.run()
    return {
        "events": stats.events,
        "end_time": stats.end_time,
        "processes": stats.processes,
    }


@REGISTRY.kind("engine_chain", backend="analytic")
def estimate_engine_chain(
    n_msgs: int = 2000,
    stages: int = 2,
    capacity: int = 4,
    fast_zero_delay: bool = True,
) -> dict:
    """Closed-form lower bound on the synthetic pipeline's end time.

    The producer must serially pay ``n_msgs`` delays plus ``n_msgs`` channel
    transfers; the final message must then traverse the remaining ``stages``
    relays, one transfer each.  Event counts are an artefact of the engine's
    scheduling and are not modelled (``None``).
    """
    transfer_s = _CHAIN_MSG_BYTES / _CHAIN_CHANNEL_BW
    end_time = n_msgs * (_CHAIN_DELAY_S + transfer_s) + stages * transfer_s
    return {"events": None, "end_time": end_time, "processes": stages + 2}


def _dse_design(
    num_mme: int,
    mem_b_bytes: int,
    bandwidth_scale: float,
    pipeline_attention: bool,
    tile_m: int,
    tile_k: int,
    super_n: int,
):
    """Materialise one design point's hardware config and codegen options.

    Shared by both backends of the ``dse_encoder`` kind so the engine and the
    analytic proxy always evaluate *exactly* the same design: the validated
    :meth:`~repro.xnn.datapath.XNNConfig.for_design` /
    :meth:`~repro.xnn.codegen.CodegenOptions.with_overrides` hooks reject
    infeasible points identically on either path.
    """
    from repro.xnn import CodegenOptions, XNNConfig

    config = XNNConfig.for_design(
        num_mme=num_mme, mem_b_bytes=mem_b_bytes, bandwidth_scale=bandwidth_scale
    )
    options = CodegenOptions.with_overrides(
        pipeline_attention=pipeline_attention,
        tile_m=tile_m,
        tile_k=tile_k,
        super_n=super_n,
    )
    return config, options


def _dse_payload(result, config) -> Dict[str, Any]:
    """Flatten an encoder result into the DSE objective vector payload.

    ``utilization`` (achieved fraction of the design's *own* MME peak) is
    computed here for both backends because the engine result does not carry
    roofline diagnostics; normalising by the per-design peak keeps points
    with different MME counts comparable on the same Pareto axis.
    """
    from repro.hardware.aie import AIEArrayModel, MMEGroupPlan
    from repro.xnn.partition import design_cost

    aie = AIEArrayModel(config.spec, MMEGroupPlan(num_groups=config.num_mme))
    peak_flops = config.num_mme * aie.mme_flops(config.mme_tile_shape)
    latency_s = result.latency_s
    utilization = (result.flops / latency_s / peak_flops) if latency_s else 0.0
    power_w, area_luts = design_cost(config, peak_flops)
    return {
        "latency_s": latency_s,
        "latency_ms": latency_s * 1e3,
        "flops": result.flops,
        "ddr_bytes": result.ddr_bytes,
        "lpddr_bytes": result.lpddr_bytes,
        "offchip_bytes": result.offchip_bytes,
        "achieved_tflops": result.achieved_tflops,
        "utilization": utilization,
        "num_mme": config.num_mme,
        "pipeline_tasks_per_s": (result.batch / latency_s) if latency_s else 0.0,
        "power_w": power_w,
        "area_luts": area_luts,
        "energy_j": power_w * latency_s,
    }


@REGISTRY.kind("dse_encoder")
def run_dse_encoder(
    batch: int = 1,
    seq_len: int = 128,
    model: str = "bert_large",
    num_mme: int = 6,
    mem_b_bytes: int = 1024 * 1024,
    bandwidth_scale: float = 1.0,
    pipeline_attention: bool = True,
    tile_m: int = 768,
    tile_k: int = 128,
    super_n: int = 1024,
) -> dict:
    """Cycle-level evaluation of one encoder design point (DSE verification)."""
    from repro.xnn import XNNExecutor

    config, options = _dse_design(
        num_mme,
        mem_b_bytes,
        bandwidth_scale,
        pipeline_attention,
        tile_m,
        tile_k,
        super_n,
    )
    executor = XNNExecutor(config=config, options=options)
    result = executor.run_encoder(
        batch=batch, seq_len=seq_len, config=_encoder_config(model)
    )
    return _dse_payload(result, config)


@REGISTRY.kind("dse_encoder", backend="analytic")
def estimate_dse_encoder(
    batch: int = 1,
    seq_len: int = 128,
    model: str = "bert_large",
    num_mme: int = 6,
    mem_b_bytes: int = 1024 * 1024,
    bandwidth_scale: float = 1.0,
    pipeline_attention: bool = True,
    tile_m: int = 768,
    tile_k: int = 128,
    super_n: int = 1024,
) -> dict:
    """Analytic-proxy evaluation of one encoder design point (DSE search)."""
    from repro.xnn.analytic import AnalyticXNN

    config, options = _dse_design(
        num_mme,
        mem_b_bytes,
        bandwidth_scale,
        pipeline_attention,
        tile_m,
        tile_k,
        super_n,
    )
    analytic = AnalyticXNN(config=config, options=options)
    result = analytic.run_encoder(
        batch=batch, seq_len=seq_len, config=_encoder_config(model)
    )
    return _dse_payload(result, config)


@REGISTRY.batch_kind("dse_encoder", backend="analytic")
def estimate_dse_encoder_batch(param_sets: List[Dict[str, Any]]) -> List[dict]:
    """Batched analytic evaluation of many encoder design points.

    One call per strategy *generation*: shared tallies are memoized across
    points (and across calls) and the bandwidth-dependent rooflines are
    evaluated as NumPy arrays.  Every payload is exactly equal -- float for
    float -- to :func:`estimate_dse_encoder` on the same parameters, which
    ``tests/differential/test_batched_analytic.py`` pins.
    """
    from repro.xnn.analytic import encoder_batch_evaluator

    return encoder_batch_evaluator().evaluate_batch(param_sets, _encoder_config)


def _chiplet_result_payload(
    result, config, *, batch: int, seq_len: int, model: str,
    num_chips: int, link_gbs: float, link_hop_us: float,
    link_serialization_us: float,
) -> Dict[str, Any]:
    """Flatten a (single-chip) encoder result into the multi-chip payload.

    Shared by both scalar backends of ``dse_chiplet``: the backend only
    determines the per-segment latencies and traffic; the partition, link
    terms, cost models, and payload arithmetic are the same
    :func:`~repro.xnn.partition.chiplet_payload` call the batched evaluator
    makes.  Since each analytic segment latency is a certified lower bound
    on its engine counterpart and the link terms are identical on both
    backends, the combined chiplet latency inherits the lower-bound
    contract, and the untouched per-segment traffic keeps byte-identity.
    """
    from repro.hardware.aie import AIEArrayModel, MMEGroupPlan
    from repro.hardware.link import InterChipLink
    from repro.xnn.partition import chiplet_payload

    aie = AIEArrayModel(config.spec, MMEGroupPlan(num_groups=config.num_mme))
    per_chip_peak = config.num_mme * aie.mme_flops(config.mme_tile_shape)
    link = InterChipLink.from_design(link_gbs, link_hop_us, link_serialization_us)
    return chiplet_payload(
        segment_latency_s=[segment.latency_s for segment in result.segments],
        flops=result.flops,
        ddr_bytes=result.ddr_bytes,
        lpddr_bytes=result.lpddr_bytes,
        batch=batch,
        seq_len=seq_len,
        encoder=_encoder_config(model),
        config=config,
        per_chip_peak_flops=per_chip_peak,
        num_chips=num_chips,
        link=link,
    )


@REGISTRY.kind("dse_chiplet")
def run_dse_chiplet(
    batch: int = 1,
    seq_len: int = 128,
    model: str = "bert_large",
    num_mme: int = 6,
    mem_b_bytes: int = 1024 * 1024,
    bandwidth_scale: float = 1.0,
    pipeline_attention: bool = True,
    tile_m: int = 768,
    tile_k: int = 128,
    super_n: int = 1024,
    num_chips: int = 1,
    link_gbs: float = 64.0,
    link_hop_us: float = 1.0,
    link_serialization_us: float = 0.0,
) -> dict:
    """Cycle-level evaluation of one multi-chip encoder design point.

    ``num_chips=1`` delegates to the single-chip ``dse_encoder`` runner
    verbatim, so the payload is byte-identical by construction (the certified
    contract the chiplet differential suite pins).
    """
    if num_chips == 1:
        return run_dse_encoder(
            batch=batch, seq_len=seq_len, model=model, num_mme=num_mme,
            mem_b_bytes=mem_b_bytes, bandwidth_scale=bandwidth_scale,
            pipeline_attention=pipeline_attention, tile_m=tile_m,
            tile_k=tile_k, super_n=super_n,
        )
    from repro.xnn import XNNExecutor

    config, options = _dse_design(
        num_mme, mem_b_bytes, bandwidth_scale, pipeline_attention,
        tile_m, tile_k, super_n,
    )
    executor = XNNExecutor(config=config, options=options)
    result = executor.run_encoder(
        batch=batch, seq_len=seq_len, config=_encoder_config(model)
    )
    return _chiplet_result_payload(
        result, config, batch=batch, seq_len=seq_len, model=model,
        num_chips=num_chips, link_gbs=link_gbs, link_hop_us=link_hop_us,
        link_serialization_us=link_serialization_us,
    )


@REGISTRY.kind("dse_chiplet", backend="analytic")
def estimate_dse_chiplet(
    batch: int = 1,
    seq_len: int = 128,
    model: str = "bert_large",
    num_mme: int = 6,
    mem_b_bytes: int = 1024 * 1024,
    bandwidth_scale: float = 1.0,
    pipeline_attention: bool = True,
    tile_m: int = 768,
    tile_k: int = 128,
    super_n: int = 1024,
    num_chips: int = 1,
    link_gbs: float = 64.0,
    link_hop_us: float = 1.0,
    link_serialization_us: float = 0.0,
) -> dict:
    """Analytic-proxy evaluation of one multi-chip encoder design point."""
    if num_chips == 1:
        return estimate_dse_encoder(
            batch=batch, seq_len=seq_len, model=model, num_mme=num_mme,
            mem_b_bytes=mem_b_bytes, bandwidth_scale=bandwidth_scale,
            pipeline_attention=pipeline_attention, tile_m=tile_m,
            tile_k=tile_k, super_n=super_n,
        )
    from repro.xnn.analytic import AnalyticXNN

    config, options = _dse_design(
        num_mme, mem_b_bytes, bandwidth_scale, pipeline_attention,
        tile_m, tile_k, super_n,
    )
    analytic = AnalyticXNN(config=config, options=options)
    result = analytic.run_encoder(
        batch=batch, seq_len=seq_len, config=_encoder_config(model)
    )
    return _chiplet_result_payload(
        result, config, batch=batch, seq_len=seq_len, model=model,
        num_chips=num_chips, link_gbs=link_gbs, link_hop_us=link_hop_us,
        link_serialization_us=link_serialization_us,
    )


@REGISTRY.batch_kind("dse_chiplet", backend="analytic")
def estimate_dse_chiplet_batch(param_sets: List[Dict[str, Any]]) -> List[dict]:
    """Batched analytic evaluation of many multi-chip design points.

    The chiplet axes change no tally, so whole generations share the
    single-chip vectorized evaluation; every payload equals
    :func:`estimate_dse_chiplet` on the same parameters exactly.
    """
    from repro.xnn.analytic import encoder_batch_evaluator

    return encoder_batch_evaluator().evaluate_chiplet_batch(
        param_sets, _encoder_config
    )


@REGISTRY.kind("gpu_roofline", backend=("engine", "analytic"))
def run_gpu_roofline(gpu: str, batch: int, seq_len: int = 384) -> dict:
    """Roofline latency estimate of full BERT-Large on a Table 10 GPU.

    Purely analytical (the paper never runs on these GPUs either): combines
    the :class:`~repro.hardware.gpu.GPUModel` roofline with the BERT-Large
    layer inventory, next to the published measurement for that batch size.
    """
    from repro.hardware.gpu import GPU_SPECS, GPUModel
    from repro.workloads.bert import bert_large_model

    if gpu not in GPU_SPECS:
        raise KeyError(f"unknown GPU {gpu!r}; known: {sorted(GPU_SPECS)}")
    spec = GPU_SPECS[gpu]
    model = GPUModel(spec)
    workload = bert_large_model(batch=batch, seq_len=seq_len)
    latency_s = model.estimate_latency(
        flops=workload.total_flops,
        dram_bytes=float(workload.total_offchip_bytes),
        batch=batch,
        num_kernels=len(workload.layers),
    )
    return {
        "gpu": spec.key,
        "batch": batch,
        "seq_len": seq_len,
        "latency_s": latency_s,
        "latency_ms": latency_s * 1e3,
        "published_latency_ms": spec.published_latency_ms.get(batch),
        "memory_bound": model.is_memory_bound(
            workload.total_flops, float(workload.total_offchip_bytes), batch
        ),
        "sequences_per_joule": model.sequences_per_joule(batch, latency_s),
    }


# ------------------------------------------------------------------ catalogue


def _register_catalogue() -> None:
    # Table 6a: single-kernel AIE GEMM throughput per tile shape.
    for shape in ((32, 16, 32), (32, 32, 16), (32, 32, 32)):
        REGISTRY.add(
            f"table6a/aie-{'x'.join(map(str, shape))}",
            "aie_gemm",
            {"shape": list(shape)},
            tags=("table6", "table6a", "analytic"),
            description="AIE-only GEMM throughput (Table 6a)",
        )

    # Table 6b: end-to-end square MM with DRAM, vs the CHARM model.
    for size in (1024, 3072, 6144):
        REGISTRY.add(
            f"table6b/gemm-{size}",
            "xnn_gemm",
            {"m": size, "k": size, "n": size},
            tags=("table6", "table6b", "sim"),
            description="End-to-end square GEMM throughput (Table 6b)",
        )
        REGISTRY.add(
            f"table6b/charm-{size}",
            "charm_gemm",
            {"size": size},
            tags=("table6", "table6b", "charm", "analytic"),
            description="CHARM end-to-end GEMM model point (Table 6b)",
        )

    # Table 9: the optimisation-knob ablation on the BERT-Large encoder.
    table9_variants = {
        "no-optimize": {
            "interleave_load_store": False,
            "pipeline_attention": False,
            "overlap_prolog_epilog": False,
        },
        "bw-optimized": {
            "interleave_load_store": True,
            "pipeline_attention": False,
            "overlap_prolog_epilog": False,
        },
        "pipeline-attention": {
            "interleave_load_store": False,
            "pipeline_attention": True,
            "overlap_prolog_epilog": False,
        },
        "all-optimizations": {
            "interleave_load_store": True,
            "pipeline_attention": True,
            "overlap_prolog_epilog": True,
        },
    }
    for variant, options in table9_variants.items():
        REGISTRY.add(
            f"table9/{variant}",
            "xnn_encoder",
            {"batch": 6, "seq_len": 512, "options": options},
            tags=("table9", "sim"),
            description="BERT-Large encoder, B=6 L=512 (Table 9 ablation)",
        )

    # Table 11: off-chip bandwidth sensitivity, L=384 B=8.
    for scale in (0.5, 1.0, 2.0, 3.0):
        REGISTRY.add(
            f"table11/bw-{scale:g}x",
            "xnn_encoder",
            {"batch": 8, "seq_len": 384, "bandwidth_scale": scale},
            tags=("table11", "sim"),
            description="BERT-Large encoder with scaled off-chip BW (Table 11)",
        )

    # Fig. 18: latency/throughput across batch sizes, RSN vs CHARM.
    for batch in (1, 2, 3, 6, 12, 24):
        REGISTRY.add(
            f"fig18/rsn-b{batch}",
            "xnn_encoder",
            {"batch": batch, "seq_len": 512},
            tags=("fig18", "sim"),
            description="BERT-Large encoder across batch sizes (Fig. 18)",
        )
        REGISTRY.add(
            f"fig18/charm-b{batch}",
            "charm_encoder",
            {"batch": batch, "seq_len": 512},
            tags=("fig18", "charm", "analytic"),
            description="CHARM encoder model across batch sizes (Fig. 18)",
        )

    # Table 7: latency per task at maximum throughput for four models.
    REGISTRY.add(
        "table7/bert",
        "xnn_encoder",
        {"batch": 6, "seq_len": 512},
        tags=("table7", "sim"),
        description="BERT-Large encoder, B=6 L=512 (Table 7)",
    )
    REGISTRY.add(
        "table7/vit",
        "xnn_encoder",
        {"batch": 6, "seq_len": 208, "model": "vit_base"},
        tags=("table7", "sim"),
        description="ViT-Base encoder, B=6 L=208 (Table 7)",
    )
    REGISTRY.add(
        "table7/ncf",
        "xnn_feedforward",
        {"model": "ncf", "batch": 16384},
        tags=("table7", "sim"),
        description="NCF MLP tower (Table 7)",
    )
    REGISTRY.add(
        "table7/mlp",
        "xnn_feedforward",
        {"model": "mlp", "batch": 3072},
        tags=("table7", "sim"),
        description="5-layer MLP (Table 7)",
    )

    # Table 8 reuses the BERT peak-throughput run; register the point under
    # its own name so the table can be regenerated in isolation.
    REGISTRY.add(
        "table8/encoder-peak",
        "xnn_encoder",
        {"batch": 6, "seq_len": 512},
        tags=("table8", "sim"),
        description="BERT-Large encoder peak-throughput point (Table 8)",
    )

    # Table 10: GPU comparison runs, L=384 across batch sizes.
    for batch in (1, 2, 4, 8):
        REGISTRY.add(
            f"table10/l384-b{batch}",
            "xnn_encoder",
            {"batch": batch, "seq_len": 384},
            tags=("table10", "sim"),
            description="BERT-Large encoder, L=384 (Table 10 GPU comparison)",
        )

    # Table 10: GPU roofline estimates next to the published latencies.
    for gpu in ("T4-fp32", "V100-fp32", "A100-fp32", "A100-fp16", "L4-fp32"):
        for batch in (1, 8):
            REGISTRY.add(
                f"table10/{gpu.lower()}-b{batch}",
                "gpu_roofline",
                {"gpu": gpu, "batch": batch, "seq_len": 384},
                tags=("table10", "gpu", "analytic"),
                description="GPU roofline, full BERT-Large L=384 (Table 10)",
            )

    # Table 3: mapping-type estimates; Fig. 16: FU property inventory.
    REGISTRY.add(
        "table3/mapping-types",
        "mapping_types",
        {"batch": 6, "seq_len": 512},
        tags=("table3", "analytic"),
        description="Mapping-type latency estimates (Table 3)",
    )
    REGISTRY.add(
        "fig16/fu-properties",
        "fu_properties",
        {},
        tags=("fig16", "table4", "analytic"),
        description="Per-FU compute/memory/BW inventory (Fig. 16 / Table 4)",
    )

    # Chiplet scale-out reference points.  The first two are the certified
    # identity pair: a num_chips=1 dse_chiplet point and the dse_encoder
    # point with the same parameters must produce byte-identical payloads.
    chiplet_base = {"batch": 1, "seq_len": 128, "num_mme": 6}
    REGISTRY.add(
        "chiplet/1chip-identity",
        "dse_chiplet",
        {**chiplet_base, "num_chips": 1},
        tags=("chiplet", "smoke", "sim"),
        description="Single-chip chiplet point (byte-identical to dse_encoder)",
    )
    REGISTRY.add(
        "chiplet/encoder-reference",
        "dse_encoder",
        dict(chiplet_base),
        tags=("chiplet", "smoke", "sim"),
        description="dse_encoder reference for the num_chips=1 identity",
    )
    REGISTRY.add(
        "chiplet/2chip-64gbs",
        "dse_chiplet",
        {**chiplet_base, "num_chips": 2, "link_gbs": 64.0},
        tags=("chiplet", "smoke", "sim"),
        description="Two-chip encoder pipeline over a 64 GB/s link",
    )
    REGISTRY.add(
        "chiplet/3chip-16gbs",
        "dse_chiplet",
        {**chiplet_base, "num_chips": 3, "link_gbs": 16.0},
        tags=("chiplet", "smoke", "sim"),
        description="Three-chip encoder pipeline over a slow 16 GB/s link",
    )

    # Cheap synthetic engine scenarios for smoke tests and determinism checks.
    REGISTRY.add(
        "smoke/engine-chain",
        "engine_chain",
        {"n_msgs": 2000, "stages": 2},
        tags=("smoke",),
        description="Synthetic engine pipeline (CI smoke / determinism)",
    )
    REGISTRY.add(
        "smoke/engine-chain-deep",
        "engine_chain",
        {"n_msgs": 500, "stages": 6},
        tags=("smoke",),
        description="Deeper synthetic engine pipeline (CI smoke)",
    )


_register_catalogue()

# The serving-layer kind (``serve_sim``) and its named scenarios live with
# the simulator; importing them here means every registry consumer -- the
# CLI, sweeps, and detached work-queue workers -- sees them.
from ..serve import simulate as _serve_simulate  # noqa: E402,F401
