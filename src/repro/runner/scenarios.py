"""Declarative simulation scenarios and the registry that holds them.

A *scenario* is one parameterized simulation or model evaluation -- a
(workload x config x codegen options) point -- described purely as data: a
scenario *kind* naming a registered runner function, plus a JSON-able
parameter mapping.  Because scenarios are data, they can be enumerated,
filtered by tag, fanned out across worker processes, and hashed into stable
on-disk cache keys (:mod:`repro.runner.cache`).

The registry has two layers:

* **kinds** -- runner functions ``fn(**params) -> dict`` registered with
  :meth:`ScenarioRegistry.kind`.  A runner must be deterministic in its
  parameters and return a JSON-serialisable dict, so results can round-trip
  through the cache and through ``multiprocessing`` unchanged.
* **scenarios** -- named, tagged parameterizations of a kind, registered with
  :meth:`ScenarioRegistry.add`.  The benchmark suite's table/figure points
  are all registered in :mod:`repro.runner.library`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Scenario", "ScenarioRegistry", "REGISTRY", "canonical_json"]


def canonical_json(value: Any) -> str:
    """A stable, whitespace-free JSON encoding used for hashing and equality."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Scenario:
    """One declarative simulation point.

    Parameters are stored as a plain mapping of JSON-able values; anything a
    runner needs beyond that (option objects, model specs) is reconstructed
    inside the runner from these primitives.
    """

    name: str
    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()
    description: str = ""

    def canonical(self) -> str:
        """Stable identity string of the work this scenario describes."""
        return canonical_json({"kind": self.kind, "params": self.params})


class ScenarioRegistry:
    """Registry of scenario kinds (runner functions) and named scenarios."""

    def __init__(self) -> None:
        self._kinds: Dict[str, Callable[..., dict]] = {}
        self._scenarios: Dict[str, Scenario] = {}

    # ----------------------------------------------------------------- kinds

    def kind(self, name: str) -> Callable[[Callable[..., dict]], Callable[..., dict]]:
        """Decorator registering a runner function for scenario kind ``name``."""
        def decorator(fn: Callable[..., dict]) -> Callable[..., dict]:
            if name in self._kinds:
                raise ValueError(f"scenario kind {name!r} already registered")
            self._kinds[name] = fn
            return fn
        return decorator

    def runner(self, kind: str) -> Callable[..., dict]:
        try:
            return self._kinds[kind]
        except KeyError:
            raise KeyError(f"unknown scenario kind {kind!r}; "
                           f"known: {sorted(self._kinds)}") from None

    # ------------------------------------------------------------- scenarios

    def add(self, name: str, kind: str, params: Optional[Mapping[str, Any]] = None,
            tags: Sequence[str] = (), description: str = "") -> Scenario:
        """Register a named scenario; returns the frozen :class:`Scenario`."""
        if name in self._scenarios:
            raise ValueError(f"scenario {name!r} already registered")
        if kind not in self._kinds:
            raise KeyError(f"unknown scenario kind {kind!r} for scenario {name!r}")
        scenario = Scenario(name=name, kind=kind, params=dict(params or {}),
                            tags=tuple(tags), description=description)
        # Fail fast on non-JSON-able params -- they could not be cached or
        # shipped to worker processes faithfully.
        canonical_json(scenario.params)
        self._scenarios[name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(f"unknown scenario {name!r}; run `python -m repro.runner "
                           "list` for the catalogue") from None

    def names(self) -> List[str]:
        return sorted(self._scenarios)

    def select(self, names: Optional[Iterable[str]] = None,
               tags: Optional[Iterable[str]] = None) -> List[Scenario]:
        """Scenarios by explicit name and/or by tag (union), in stable order."""
        picked: Dict[str, Scenario] = {}
        for name in names or ():
            picked[name] = self.get(name)
        wanted = set(tags or ())
        if wanted:
            for name in self.names():
                scenario = self._scenarios[name]
                if wanted & set(scenario.tags):
                    picked[name] = scenario
        if names is None and tags is None:
            picked = {name: self._scenarios[name] for name in self.names()}
        return [picked[name] for name in sorted(picked)]

    def all_tags(self) -> List[str]:
        tags = set()
        for scenario in self._scenarios.values():
            tags.update(scenario.tags)
        return sorted(tags)

    # ------------------------------------------------------------- execution

    def run(self, scenario_or_name) -> dict:
        """Execute one scenario in-process and return its result dict."""
        scenario = (scenario_or_name if isinstance(scenario_or_name, Scenario)
                    else self.get(scenario_or_name))
        result = self.runner(scenario.kind)(**scenario.params)
        if not isinstance(result, dict):
            raise TypeError(f"scenario {scenario.name!r}: runner for kind "
                            f"{scenario.kind!r} returned {type(result).__name__}, "
                            "expected a JSON-able dict")
        return result


#: the process-wide registry; populated by :mod:`repro.runner.library`.
REGISTRY = ScenarioRegistry()
