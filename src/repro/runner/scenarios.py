"""Declarative simulation scenarios and the registry that holds them.

A *scenario* is one parameterized simulation or model evaluation -- a
(workload x config x codegen options) point -- described purely as data: a
scenario *kind* naming a registered runner function, plus a JSON-able
parameter mapping.  Because scenarios are data, they can be enumerated,
filtered by tag, fanned out across worker processes, and hashed into stable
on-disk cache keys (:mod:`repro.runner.cache`).

The registry has two layers:

* **kinds** -- runner functions ``fn(**params) -> dict`` registered with
  :meth:`ScenarioRegistry.kind`.  A runner must be deterministic in its
  parameters and return a JSON-serialisable dict, so results can round-trip
  through the cache and through ``multiprocessing`` unchanged.  Each kind
  declares which execution *backends* it supports: the cycle-level
  ``"engine"`` backend (event-driven simulation) and/or the ``"analytic"``
  backend (closed-form roofline estimation, no event loop).  A kind may
  register one function per backend, or a single backend-independent
  function for both.
* **scenarios** -- named, tagged parameterizations of a kind, registered with
  :meth:`ScenarioRegistry.add`.  The benchmark suite's table/figure points
  are all registered in :mod:`repro.runner.library`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "Scenario",
    "ScenarioRegistry",
    "REGISTRY",
    "canonical_json",
    "BACKENDS",
    "DEFAULT_BACKEND",
]


#: the execution backends a scenario kind can support.
BACKENDS: Tuple[str, ...] = ("engine", "analytic")

#: backend used when callers do not ask for one explicitly.
DEFAULT_BACKEND = "engine"


def canonical_json(value: Any) -> str:
    """A stable, whitespace-free JSON encoding used for hashing and equality.

    Non-finite floats (NaN, +/-Infinity) are rejected: ``json`` would emit the
    non-standard tokens ``NaN``/``Infinity`` for them, which silently
    round-trip through Python but are not valid JSON and would poison cache
    keys (two NaN-parameterised scenarios can never compare equal).
    """
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"), allow_nan=False)
    except ValueError as error:
        raise ValueError(
            f"canonical_json: non-finite float in {value!r} ({error}); "
            "NaN/Infinity cannot be used in scenario parameters or cache keys"
        ) from None


def _normalize_backends(backend: Union[str, Sequence[str]]) -> Tuple[str, ...]:
    backends = (backend,) if isinstance(backend, str) else tuple(backend)
    unknown = [b for b in backends if b not in BACKENDS]
    if unknown:
        raise ValueError(f"unknown backend(s) {unknown}; known: {list(BACKENDS)}")
    if not backends:
        raise ValueError("at least one backend must be declared")
    return backends


@dataclass(frozen=True)
class Scenario:
    """One declarative simulation point.

    Parameters are stored as a plain mapping of JSON-able values; anything a
    runner needs beyond that (option objects, model specs) is reconstructed
    inside the runner from these primitives.
    """

    name: str
    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()
    description: str = ""

    def canonical(self) -> str:
        """Stable identity string of the work this scenario describes."""
        return canonical_json({"kind": self.kind, "params": self.params})


class ScenarioRegistry:
    """Registry of scenario kinds (runner functions) and named scenarios."""

    def __init__(self) -> None:
        #: kind name -> backend name -> runner function.
        self._kinds: Dict[str, Dict[str, Callable[..., dict]]] = {}
        #: kind name -> backend name -> batch runner (param list -> results).
        self._batch_kinds: Dict[str, Dict[str, Callable[..., List[dict]]]] = {}
        self._scenarios: Dict[str, Scenario] = {}

    # ----------------------------------------------------------------- kinds

    def kind(
        self, name: str, backend: Union[str, Sequence[str]] = DEFAULT_BACKEND
    ) -> Callable[[Callable[..., dict]], Callable[..., dict]]:
        """Decorator registering a runner function for scenario kind ``name``.

        ``backend`` names the execution backend(s) this function implements:
        ``"engine"`` (default), ``"analytic"``, or a sequence of both for
        backend-independent kinds (pure analytical models behave identically
        under either backend).
        """
        backends = _normalize_backends(backend)

        def decorator(fn: Callable[..., dict]) -> Callable[..., dict]:
            implementations = self._kinds.setdefault(name, {})
            for b in backends:
                if b in implementations:
                    raise ValueError(
                        f"scenario kind {name!r} already "
                        f"registered for the {b!r} backend"
                    )
                implementations[b] = fn
            return fn

        return decorator

    def batch_kind(
        self, name: str, backend: Union[str, Sequence[str]] = "analytic"
    ) -> Callable[[Callable[..., List[dict]]], Callable[..., List[dict]]]:
        """Decorator registering a *batch* runner for scenario kind ``name``.

        A batch runner takes a sequence of parameter mappings and returns one
        result dict per mapping, in order -- with the hard contract that each
        result equals what the scalar runner for the same backend returns for
        the same parameters (the differential suite pins this for the
        ``dse_encoder`` kind).  Batch runners exist so bulk evaluators (the
        design-space explorer above all) can amortise shared work across a
        whole generation of points instead of paying the full per-point cost.
        """
        backends = _normalize_backends(backend)

        def decorator(fn: Callable[..., List[dict]]) -> Callable[..., List[dict]]:
            if name not in self._kinds:
                raise KeyError(
                    f"unknown scenario kind {name!r}; register the "
                    "scalar runner before its batch runner"
                )
            implementations = self._batch_kinds.setdefault(name, {})
            for b in backends:
                if b in implementations:
                    raise ValueError(
                        f"scenario kind {name!r} already has a "
                        f"batch runner for the {b!r} backend"
                    )
                if b not in self._kinds[name]:
                    raise ValueError(
                        f"scenario kind {name!r} has no scalar "
                        f"{b!r} runner to match the batch runner"
                    )
                implementations[b] = fn
            return fn

        return decorator

    def batch_runner(
        self, kind: str, backend: str = "analytic"
    ) -> Optional[Callable[..., List[dict]]]:
        """The batch runner for ``kind`` on ``backend``, or ``None``.

        Unlike :meth:`runner` this is a capability probe, not a hard lookup:
        callers fall back to the scalar path when no batch runner exists.
        """
        return self._batch_kinds.get(kind, {}).get(backend)

    def runner(self, kind: str, backend: str = DEFAULT_BACKEND) -> Callable[..., dict]:
        try:
            implementations = self._kinds[kind]
        except KeyError:
            raise KeyError(
                f"unknown scenario kind {kind!r}; known: {sorted(self._kinds)}"
            ) from None
        try:
            return implementations[backend]
        except KeyError:
            raise KeyError(
                f"scenario kind {kind!r} does not support the {backend!r} "
                f"backend; it supports: {sorted(implementations)}"
            ) from None

    def backends(self, kind: str) -> Tuple[str, ...]:
        """The backends a kind supports, in canonical ``BACKENDS`` order."""
        try:
            implementations = self._kinds[kind]
        except KeyError:
            raise KeyError(
                f"unknown scenario kind {kind!r}; known: {sorted(self._kinds)}"
            ) from None
        return tuple(b for b in BACKENDS if b in implementations)

    def supports(self, kind: str, backend: str) -> bool:
        return backend in self.backends(kind)

    # ------------------------------------------------------------- scenarios

    def add(
        self,
        name: str,
        kind: str,
        params: Optional[Mapping[str, Any]] = None,
        tags: Sequence[str] = (),
        description: str = "",
    ) -> Scenario:
        """Register a named scenario; returns the frozen :class:`Scenario`."""
        if name in self._scenarios:
            raise ValueError(f"scenario {name!r} already registered")
        if kind not in self._kinds:
            raise KeyError(f"unknown scenario kind {kind!r} for scenario {name!r}")
        scenario = Scenario(
            name=name,
            kind=kind,
            params=dict(params or {}),
            tags=tuple(tags),
            description=description,
        )
        # Fail fast on non-JSON-able params -- they could not be cached or
        # shipped to worker processes faithfully.
        canonical_json(scenario.params)
        self._scenarios[name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; run `python -m repro.runner "
                "list` for the catalogue"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._scenarios)

    def select(
        self,
        names: Optional[Iterable[str]] = None,
        tags: Optional[Iterable[str]] = None,
        backend: Optional[str] = None,
    ) -> List[Scenario]:
        """Scenarios by explicit name and/or by tag (union), in stable order.

        ``backend`` optionally filters to scenarios whose kind supports that
        backend (explicitly named scenarios that do not support it raise, so a
        typo'd request fails loudly instead of silently shrinking).
        """
        explicit = list(names) if names is not None else None
        picked: Dict[str, Scenario] = {}
        for name in explicit or ():
            picked[name] = self.get(name)
        wanted = set(tags or ())
        if wanted:
            for name in self.names():
                scenario = self._scenarios[name]
                if wanted & set(scenario.tags):
                    picked[name] = scenario
        if explicit is None and tags is None:
            picked = {name: self._scenarios[name] for name in self.names()}
        selected = [picked[name] for name in sorted(picked)]
        if backend is not None:
            for name in explicit or ():
                scenario = picked[name]
                if not self.supports(scenario.kind, backend):
                    raise KeyError(
                        f"scenario {scenario.name!r} (kind {scenario.kind!r}) does "
                        f"not support the {backend!r} backend"
                    )
            selected = [s for s in selected if self.supports(s.kind, backend)]
        return selected

    def all_tags(self) -> List[str]:
        tags = set()
        for scenario in self._scenarios.values():
            tags.update(scenario.tags)
        return sorted(tags)

    # ------------------------------------------------------------- execution

    def run(self, scenario_or_name, backend: str = DEFAULT_BACKEND) -> dict:
        """Execute one scenario in-process on ``backend``; returns its result."""
        scenario = (
            scenario_or_name
            if isinstance(scenario_or_name, Scenario)
            else self.get(scenario_or_name)
        )
        result = self.runner(scenario.kind, backend)(**scenario.params)
        if not isinstance(result, dict):
            raise TypeError(
                f"scenario {scenario.name!r}: runner for kind "
                f"{scenario.kind!r} ({backend} backend) returned "
                f"{type(result).__name__}, expected a JSON-able dict"
            )
        return result


#: the process-wide registry; populated by :mod:`repro.runner.library`.
REGISTRY = ScenarioRegistry()
